module apierrtest

go 1.23
