package api

import (
	"encoding/json"
	"fmt"
	"time"

	"hive/internal/core"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/textindex"
)

// Entity and knowledge-service DTOs. These alias the platform's public
// types: their JSON tags are the v1 wire schema.
type (
	// User is a researcher profile (request body of POST /users).
	User = social.User
	// Conference is an event edition (POST /conferences).
	Conference = social.Conference
	// Session is a technical session (POST /sessions).
	Session = social.Session
	// Paper is a published paper (POST /papers).
	Paper = social.Paper
	// Presentation is uploaded slide content (POST /presentations).
	Presentation = social.Presentation
	// Question is a question about an entity (POST /questions).
	Question = social.Question
	// Answer replies to a question (POST /answers).
	Answer = social.Answer
	// Comment is free-form feedback (POST /comments).
	Comment = social.Comment
	// Workpad is a context-defining resource pad (POST /workpads).
	Workpad = social.Workpad
	// WorkpadItem is one workpad resource (POST /workpads/{id}/items).
	WorkpadItem = social.WorkpadItem
	// Event is one activity-stream entry (feeds, tag fan-out).
	Event = social.Event
	// ChangeEvent is one typed change-log entry (replication feed).
	ChangeEvent = social.ChangeEvent
	// ReplicationBatch is one journaled change batch: sequence range,
	// typed events, and the raw kv write image followers apply verbatim
	// (GET /replication/events).
	ReplicationBatch = social.ReplicationBatch

	// Explanation answers GET /relationship.
	Explanation = core.Explanation
	// PeerRecommendation items fill GET /users/{id}/recommendations/peers.
	PeerRecommendation = core.PeerRecommendation
	// ResourceRecommendation items fill GET /users/{id}/recommendations/resources.
	ResourceRecommendation = core.ResourceRecommendation
	// SessionSuggestion items fill GET /users/{id}/sessions/suggest.
	SessionSuggestion = core.SessionSuggestion
	// SearchResult items fill GET /search.
	SearchResult = core.SearchResult
	// Snippet items answer GET /preview.
	Snippet = textindex.Snippet
	// Summary answers GET /users/{id}/digest.
	Summary = summarize.Summary
	// HistoryEntry items fill GET /users/{id}/history.
	HistoryEntry = core.HistoryEntry
	// ResourceEvidence items answer GET /users/{id}/resource-relationship.
	ResourceEvidence = core.ResourceEvidence
	// KnowledgePath items answer GET /knowledge/paths.
	KnowledgePath = rdf.RankedPath
)

// ConnectRequest is the body of POST /connections: a mutual connection
// between two researchers.
type ConnectRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

// FollowRequest is the body of POST /follows.
type FollowRequest struct {
	Follower string `json:"follower"`
	Followee string `json:"followee"`
}

// CheckinRequest is the body of POST /checkins.
type CheckinRequest struct {
	SessionID string `json:"session_id"`
	UserID    string `json:"user_id"`
}

// ActivateWorkpadRequest is the body of POST /workpads/{id}/activate.
type ActivateWorkpadRequest struct {
	Owner string `json:"owner"`
}

// CreatedResponse acknowledges a successful mutation.
type CreatedResponse struct {
	Status string `json:"status"`
}

// DeltaHealth reports the incremental-maintenance state of the serving
// snapshot: how large the overlay segment has grown since the last full
// build (the compaction), how many change events await application, and
// the latency of the delta path.
type DeltaHealth struct {
	// OverlayDocs and Tombstones size the overlay segment layered over
	// the frozen base.
	OverlayDocs int `json:"overlay_docs"`
	Tombstones  int `json:"tombstones"`
	// PendingEvents counts queued, not-yet-applied change events.
	PendingEvents int `json:"pending_events"`
	// GraphPending counts applied events whose evidence-graph effects
	// await the next compaction.
	GraphPending int `json:"graph_pending"`
	// DeltasApplied and Compactions count snapshot swaps by kind since
	// the server started.
	DeltasApplied uint64 `json:"deltas_applied"`
	Compactions   uint64 `json:"compactions"`
	// LastDeltaUS is the duration of the most recent delta apply in
	// microseconds (deltas are micro- to millisecond work; a millisecond
	// field would round most of them to zero).
	LastDeltaUS int64 `json:"last_delta_us"`
	// CompactionDue reports that the snapshot drifted past the
	// compaction policy and a full rebuild is scheduled-worthy.
	CompactionDue bool `json:"compaction_due"`
}

// RefreshResponse acknowledges a snapshot refresh request and reports
// the resulting maintenance state.
type RefreshResponse struct {
	Status string       `json:"status"`
	Delta  *DeltaHealth `json:"delta,omitempty"`
}

// Replication roles reported by healthz.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// ReplicationHealth reports a node's replication state: its role, the
// durable journal's addressable range, and — on followers — how far
// behind the leader it is. LagEvents is the number of change events the
// leader has journaled that this follower has not yet folded into its
// serving snapshot; it is computed from the tail observed on the most
// recent poll, so it is an at-least bound while disconnected.
type ReplicationHealth struct {
	Role string `json:"role"`
	// Epoch is the leadership term the node has adopted — the fencing
	// token stamped into every batch it journals. 0 on unmanaged
	// in-memory nodes.
	Epoch uint64 `json:"epoch"`
	// JournalOldest/JournalTail bound the locally readable journal
	// range; JournalSegments counts its segment files. All zero when
	// the store is in-memory (no journal, cannot lead).
	JournalOldest   uint64 `json:"journal_oldest"`
	JournalTail     uint64 `json:"journal_tail"`
	JournalSegments int    `json:"journal_segments"`
	// JournalError surfaces a failing journal append (stalls followers
	// but does not fail writes).
	JournalError string `json:"journal_error,omitempty"`

	// CommitIndex is the cluster commit index this node has persisted:
	// the highest change sequence known quorum-acknowledged. Followers
	// adopt it from the leader's poll responses; 0 before any quorum
	// write committed (and always 0 in async mode).
	CommitIndex uint64 `json:"commit_index,omitempty"`
	// QuorumWrites is the configured write quorum (0 = async durability).
	QuorumWrites int `json:"quorum_writes,omitempty"`

	// Follower-only fields.
	LeaderURL  string `json:"leader_url,omitempty"`
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	LeaderTail uint64 `json:"leader_tail,omitempty"`
	LagEvents  uint64 `json:"lag_events,omitempty"`
	// LastReplicationError reports the tail loop's most recent failure
	// (reconnecting with backoff when set).
	LastReplicationError string `json:"last_replication_error,omitempty"`

	// FollowerAcks reports, on a leader, each follower's most recent
	// ack: the sequence it confirmed applied, the term it asserted, and
	// how stale the report is. A silently stalled follower shows up here
	// (age growing, applied frozen) before it blocks a quorum.
	FollowerAcks []FollowerAckStatus `json:"follower_acks,omitempty"`
}

// FollowerAckStatus is one follower's ack-lag entry in the leader's
// ReplicationHealth.
type FollowerAckStatus struct {
	URL        string `json:"url"`
	AppliedSeq uint64 `json:"applied_seq"`
	Epoch      uint64 `json:"epoch"`
	// AgeMS is how long ago the follower last reported progress.
	AgeMS int64 `json:"age_ms"`
}

// Health is the GET /healthz response: liveness plus snapshot freshness.
type Health struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Stale      bool   `json:"stale"`
	Snapshot   bool   `json:"snapshot"`
	BuiltAt    string `json:"built_at,omitempty"`
	BuildMS    int64  `json:"build_ms"`
	AgeMS      int64  `json:"age_ms"`
	// FrozenDocs counts the documents in the snapshot's frozen base
	// segment — the lock-free read representation queries serve from
	// (0 when no snapshot is live). Overlay documents are counted
	// separately in Delta.
	FrozenDocs       int               `json:"frozen_docs"`
	Delta            DeltaHealth       `json:"delta"`
	Replication      ReplicationHealth `json:"replication"`
	LastRefreshError string            `json:"last_refresh_error,omitempty"`
	// ShardCount/Shards mirror ClusterStatus on a sharded node: the
	// top-level fields above describe shard 0, Shards the whole map.
	ShardCount int           `json:"shard_count,omitempty"`
	Shards     []ShardStatus `json:"shards,omitempty"`
}

// ReplicationEvents is the GET /replication/events response: the
// journaled batches after the requested sequence, plus the responding
// node's journal tail so the poller can compute its lag. An empty
// Batches with Tail == from means the poller is caught up (a long-poll
// that timed out).
// Epoch is the responding node's leadership term: a poller seeing it
// rise past its own adopted term must re-bootstrap (the compatibility
// rule: accept batches at your term N, re-bootstrap on N+1).
// Commit is the responding node's cluster commit index — the highest
// change sequence a quorum of followers has acknowledged applying
// (0 until a quorum write commits; always 0 in async mode). Followers
// persist it so every member carries the durability watermark.
type ReplicationEvents struct {
	Batches []ReplicationBatch `json:"batches,omitempty"`
	Tail    uint64             `json:"tail"`
	Epoch   uint64             `json:"epoch,omitempty"`
	Commit  uint64             `json:"commit,omitempty"`
}

// ReplicationSnapshot is the GET /replication/snapshot response: the
// full kv image a follower bootstraps from and the change-sequence
// watermark it covers (tail the journal from Seq). Values are base64 in
// JSON per encoding/json's []byte convention.
// Epoch is the term the image was captured under; a follower refuses a
// snapshot behind its adopted term (it would regress onto a deposed
// leader's world) and adopts the term on import otherwise.
type ReplicationSnapshot struct {
	Seq     uint64    `json:"seq"`
	Epoch   uint64    `json:"epoch,omitempty"`
	Entries []KVEntry `json:"entries"`
}

// KVEntry is one key-value pair of a replication snapshot.
type KVEntry struct {
	Key   string `json:"k"`
	Value []byte `json:"v"`
}

// ClusterStatus is the GET /cluster response: the responding node's
// view of the replica set — its own role and term, the leader it
// believes in, and a liveness/lag probe of each configured peer. Any
// node answers (followers included), so a client that lost the leader
// can ask whichever peer it reaches.
type ClusterStatus struct {
	// Self is the node's advertised URL ("" outside cluster mode).
	Self  string `json:"self,omitempty"`
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	// LeaderURL is the leader this node believes in: itself when
	// leading, the followed URL on a follower, "" while an election is
	// unresolved (or on a standalone node).
	LeaderURL string `json:"leader_url,omitempty"`
	// CommitIndex is the cluster commit index this node has persisted
	// (see ReplicationHealth.CommitIndex).
	CommitIndex uint64 `json:"commit_index,omitempty"`
	// QuorumWrites is the write quorum this node enforces when leading
	// (0 = async).
	QuorumWrites int `json:"quorum_writes,omitempty"`
	// Peers reports one probe per configured peer; empty outside
	// cluster mode.
	Peers []PeerStatus `json:"peers"`

	// ShardCount is the deployment's shard map size: owners hash to
	// shard ShardOf(owner, ShardCount). 1 (or 0 on pre-shard servers)
	// means unsharded. Fixed for the life of a data dir.
	ShardCount int `json:"shard_count,omitempty"`
	// Shards reports one entry per shard on a sharded node; empty when
	// unsharded.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one shard's replication position in ClusterStatus and
// healthz: the shard-local role/term/journal state of the shard leader
// hosted by the responding process.
type ShardStatus struct {
	ID   int    `json:"id"`
	Role string `json:"role"`
	// Epoch is the shard leader's term (shard journals are fenced
	// independently).
	Epoch uint64 `json:"epoch"`
	// JournalTail is the shard journal's highest change sequence;
	// CommitIndex its quorum watermark (0 in async mode).
	JournalTail uint64 `json:"journal_tail"`
	CommitIndex uint64 `json:"commit_index,omitempty"`
	// PendingEvents counts the shard's queued, not-yet-folded change
	// events — per-shard delta-pipeline backpressure.
	PendingEvents int `json:"pending_events"`
	// Generation counts the shard engine's snapshot swaps.
	Generation uint64 `json:"generation"`
}

// PeerStatus is one peer's liveness and replication position as probed
// by the responding node at request time.
type PeerStatus struct {
	URL string `json:"url"`
	// Alive reports whether the peer answered its healthz probe within
	// the probe budget.
	Alive bool   `json:"alive"`
	Role  string `json:"role,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// JournalTail/AppliedSeq/LagEvents mirror the peer's own
	// ReplicationHealth (zero when not reported).
	JournalTail uint64 `json:"journal_tail,omitempty"`
	AppliedSeq  uint64 `json:"applied_seq,omitempty"`
	LagEvents   uint64 `json:"lag_events,omitempty"`
	// ProbeMS is how long the healthz probe round trip took, in
	// milliseconds (set for answered probes and for timed-out ones —
	// a dead peer reports the full probe budget it burned).
	ProbeMS float64 `json:"probe_ms,omitempty"`
	// Error describes a failed probe.
	Error string `json:"error,omitempty"`
}

// TraceStage is one named, timed step inside a recorded trace.
type TraceStage struct {
	Name string `json:"name"`
	// DurationUS is the stage's wall time in microseconds.
	DurationUS float64 `json:"duration_us"`
}

// TraceInfo is one recorded request trace in the GET
// /api/v1/debug/traces response: the trace ID (minted by the server or
// propagated from the client's X-Hive-Trace-Id), the matched route,
// the resolved shard (-1 when no shard applies) and per-stage timings.
type TraceInfo struct {
	TraceID    string       `json:"trace_id"`
	Method     string       `json:"method"`
	Route      string       `json:"route"`
	Status     int          `json:"status"`
	Shard      int          `json:"shard"`
	StartedAt  time.Time    `json:"started_at"`
	DurationUS float64      `json:"duration_us"`
	Stages     []TraceStage `json:"stages,omitempty"`
}

// TraceReport is the GET /api/v1/debug/traces envelope: the slowest
// recent traces, slowest first, out of the server's bounded in-memory
// ring.
type TraceReport struct {
	Traces []TraceInfo `json:"traces"`
	// Capacity is the ring size — how many recent traces the server
	// retains at most.
	Capacity int `json:"capacity"`
}

// Batch entity kinds accepted by POST /batch.
const (
	KindUser         = "user"
	KindConference   = "conference"
	KindSession      = "session"
	KindPaper        = "paper"
	KindPresentation = "presentation"
	KindConnection   = "connection"
	KindFollow       = "follow"
	KindCheckin      = "checkin"
	KindQuestion     = "question"
	KindAnswer       = "answer"
	KindComment      = "comment"
	KindWorkpad      = "workpad"
)

// BatchEntity is one element of a batch: a kind tag plus the entity's
// usual request body. Connection/follow/checkin kinds carry the
// corresponding request DTOs.
type BatchEntity struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// NewBatchEntity marshals v as the data of a tagged batch entity.
func NewBatchEntity(kind string, v any) (BatchEntity, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return BatchEntity{}, fmt.Errorf("api: marshal batch %s: %w", kind, err)
	}
	return BatchEntity{Kind: kind, Data: raw}, nil
}

// BatchRequest is the body of POST /batch. Entities apply in array
// order within a single store pass (one snapshot invalidation total),
// so dependent entities — a conference before its sessions — belong in
// the same batch, in order.
type BatchRequest struct {
	Entities []BatchEntity `json:"entities"`
}

// BatchItemError reports one failed batch element.
type BatchItemError struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	Error *Error `json:"error"`
}

// BatchResponse summarizes a batch: elements are applied independently,
// failures don't abort the rest.
type BatchResponse struct {
	Applied int              `json:"applied"`
	Failed  int              `json:"failed"`
	Errors  []BatchItemError `json:"errors,omitempty"`
}
