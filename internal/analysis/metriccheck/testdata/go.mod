module metrictest

go 1.23
