// Benchmarks: one per experiment of EXPERIMENTS.md (E1-E12), matching the
// rows printed by cmd/hivebench. Run with:
//
//	go test -bench=. -benchmem
package hive_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hive"
	"hive/internal/align"
	"hive/internal/conceptmap"
	"hive/internal/core"
	"hive/internal/diffusion"
	"hive/internal/election"
	"hive/internal/graph"
	"hive/internal/metrics"
	"hive/internal/rdf"
	"hive/internal/server"
	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/tensor"
	"hive/internal/workload"
)

func benchClock() func() time.Time {
	t := time.Unix(1363000000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// Shared fixture: a 64-user platform with a refreshed engine, built once.
var (
	fixtureOnce sync.Once
	fixture     *hive.Platform
	fixtureEng  *core.Engine
	fixtureErr  error
)

func benchPlatform(b *testing.B) (*hive.Platform, *core.Engine) {
	b.Helper()
	fixtureOnce.Do(func() {
		p, err := hive.Open(hive.Options{Clock: benchClock()})
		if err != nil {
			fixtureErr = err
			return
		}
		ds := workload.Generate(workload.Config{Seed: 42, Users: 64})
		if err := ds.Load(p.Store()); err != nil {
			fixtureErr = err
			return
		}
		if err := p.Refresh(); err != nil {
			fixtureErr = err
			return
		}
		eng, err := p.Engine()
		if err != nil {
			fixtureErr = err
			return
		}
		fixture, fixtureEng = p, eng
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixture, fixtureEng
}

// BenchmarkE1_PlatformAPI measures end-to-end REST latency of the
// context-aware search endpoint (Figure 1's interactive surface).
func BenchmarkE1_PlatformAPI(b *testing.B) {
	p, _ := benchPlatform(b)
	ts := httptest.NewServer(server.New(p))
	defer ts.Close()
	uid := p.Users()[0]
	url := ts.URL + "/api/search?q=graph+partitioning&k=10&user=" + uid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkE2_RelationshipDiscovery measures evidence discovery and
// explanation between random user pairs (Figure 2).
func BenchmarkE2_RelationshipDiscovery(b *testing.B) {
	p, eng := benchPlatform(b)
	ids := p.Users()
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ids[rng.Intn(len(ids))]
		c := ids[rng.Intn(len(ids))]
		if a == c {
			continue
		}
		if _, err := eng.Explain(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_LayerAlignment measures multi-layer alignment plus
// integration of the context network (Figure 3).
func BenchmarkE3_LayerAlignment(b *testing.B) {
	_, eng := benchPlatform(b)
	layers := eng.Layers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.Integrate(layers, align.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_WorkpadContext measures context-conditioned resource
// recommendation (Figure 4); the "nocontext" sub-bench is the ablation.
func BenchmarkE4_WorkpadContext(b *testing.B) {
	p, eng := benchPlatform(b)
	uid := p.Users()[0]
	for _, arm := range []struct {
		name string
		ctx  bool
	}{{"context", true}, {"nocontext", false}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.RecommendResources(uid, 5, arm.ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_ServiceMatrix runs one pass over every Table 1 service.
func BenchmarkE5_ServiceMatrix(b *testing.B) {
	p, eng := benchPlatform(b)
	uid, other := p.Users()[0], p.Users()[1]
	conf := p.Store().Conferences()[0]
	doc := core.DocPaper + p.Store().Papers()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RecommendPeers(uid, 5); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Explain(uid, other); err != nil {
			b.Fatal(err)
		}
		eng.SearchWithContext(uid, "graph partitioning", 5)
		if _, err := eng.Preview(uid, doc, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.UpdateDigest(uid, 5); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.SuggestSessions(uid, conf, 3); err != nil {
			b.Fatal(err)
		}
		eng.Communities()
	}
}

// BenchmarkE6_SCENT compares change-detection methods on a tensor stream:
// incremental sketches vs full re-sketch vs exact diff vs CP recompute.
func BenchmarkE6_SCENT(b *testing.B) {
	shape := []int{64, 64, 16}
	changeAt := map[int]bool{20: true}
	stream, deltas := tensor.SyntheticStreamWithDeltas(11, shape, 30, 2000, changeAt)
	sk, err := tensor.NewSketcher(64, 3, shape...)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sketch-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MonitorIncremental(sk, deltas, &tensor.Detector{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sketch-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MonitorSketched(sk, stream, &tensor.Detector{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-frobenius", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MonitorExact(stream, &tensor.Detector{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cp-als-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MonitorDecomposition(stream, 5, 10, &tensor.Detector{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7_INI compares indexed vs online top-k impact queries.
func BenchmarkE7_INI(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 500
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.EnsureNode(fmt.Sprintf("n%d", i), "user")
	}
	for i := 0; i < 6*n; i++ {
		a := graph.NodeID(rng.Intn(n))
		c := graph.NodeID(rng.Intn(n))
		if a != c {
			_ = g.AddEdge(a, c, "e", 0.2+0.7*rng.Float64())
		}
	}
	idx, err := diffusion.BuildIndex(g, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.TopK(graph.NodeID(i%n), 10)
		}
	})
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := diffusion.TopKOnline(g, graph.NodeID(i%n), 10, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8_RankedPaths compares best-first ranked path search against
// exhaustive enumeration on a weighted RDF graph.
func BenchmarkE8_RankedPaths(b *testing.B) {
	st := rdf.NewStore()
	rng := rand.New(rand.NewSource(13))
	const n = 60
	for i := 0; i < 8*n; i++ {
		s := fmt.Sprintf("n%d", rng.Intn(n))
		o := fmt.Sprintf("n%d", rng.Intn(n))
		if s == o {
			continue
		}
		_ = st.Add(rdf.Triple{Subject: s, Predicate: "rel", Object: o, Weight: 0.1 + 0.9*rng.Float64()})
	}
	b.Run("ranked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.RankedPaths("n0", fmt.Sprintf("n%d", n-1), 5, rdf.PathOptions{MaxLength: 4})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.AllPathsNaive("n0", fmt.Sprintf("n%d", n-1), 5, 4, false)
		}
	})
}

// BenchmarkE9_AlphaSum compares greedy vs exhaustive summarization.
func BenchmarkE9_AlphaSum(b *testing.B) {
	p, _ := benchPlatform(b)
	ds := workload.Generate(workload.Config{Seed: 42, Users: 64})
	affil := map[string]string{}
	for _, u := range ds.Users {
		affil[u.ID] = u.Affiliation
	}
	tab := &summarize.Table{Columns: []string{"verb", "topic", "affil"}}
	for _, ev := range p.Store().EventsSince(0, 0) {
		topic := "other"
		if t, ok := ds.TopicOfUser[ev.Actor]; ok {
			topic = workload.Topics[t].Name
		}
		tab.Rows = append(tab.Rows, []string{ev.Verb, topic, affil[ev.Actor]})
	}
	verbs, err := summarize.NewHierarchy(map[string]string{
		"question": "discussion", "answer": "discussion", "comment": "discussion",
		"checkin": "presence", "connect": "networking", "follow": "networking",
		"upload": "content", "browse": "content",
		"discussion": summarize.Root, "presence": summarize.Root,
		"networking": summarize.Root, "content": summarize.Root,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := summarize.NewSummarizer(tab.Columns, map[string]*summarize.Hierarchy{"verb": verbs})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Greedy(tab, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Optimal(tab, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10_CollabFilter compares user-based CF against popularity.
func BenchmarkE10_CollabFilter(b *testing.B) {
	p, eng := benchPlatform(b)
	ids := p.Users()
	b.Run("cf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.RecommendByCF(ids[i%len(ids)], 5)
		}
	})
	b.Run("popularity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.RecommendByPopularity(ids[i%len(ids)], 5)
		}
	})
}

// BenchmarkE11_ConceptBootstrap measures concept-map bootstrapping over a
// paper corpus.
func BenchmarkE11_ConceptBootstrap(b *testing.B) {
	ds := workload.Generate(workload.Config{Seed: 21, Users: 40})
	var docs []string
	for _, p := range ds.Papers {
		docs = append(docs, p.Title+". "+p.Abstract)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conceptmap.Bootstrap(docs, conceptmap.BootstrapOptions{MaxConcepts: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelRebuild measures a full engine snapshot rebuild at
// increasing builder worker counts: the speedup from fanning the layer
// derivations (connections, coauthor, attendance, QA), the text index,
// the concept map and the knowledge base out across goroutines.
func BenchmarkParallelRebuild(b *testing.B) {
	p, err := hive.Open(hive.Options{Clock: benchClock()})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ds := workload.Generate(workload.Config{Seed: 42, Users: 64})
	if err := ds.Load(p.Store()); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			builder := &core.Builder{Store: p.Store(), Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := builder.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebuildUnderLoad measures read latency on the serving
// snapshot while a background goroutine rebuilds and swaps snapshots
// continuously — the zero-downtime refresh path. The read numbers show
// what queries cost during a refresh; compare with E2 at steady state.
func BenchmarkRebuildUnderLoad(b *testing.B) {
	p, err := hive.Open(hive.Options{Clock: benchClock()})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ds := workload.Generate(workload.Config{Seed: 42, Users: 64})
	if err := ds.Load(p.Store()); err != nil {
		b.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		b.Fatal(err)
	}
	ids := p.Users()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Dirty the snapshot so every refresh is a real rebuild.
			_ = p.RegisterUser(hive.User{ID: "churn", Name: fmt.Sprintf("c%d", i)})
			_ = p.Refresh()
		}
	}()
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := p.Snapshot()
		if eng == nil {
			b.Fatal("nil snapshot under load")
		}
		a := ids[rng.Intn(len(ids))]
		c := ids[rng.Intn(len(ids))]
		if a == c {
			continue
		}
		if _, err := eng.Explain(a, c); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkSearch compares BM25 keyword search on the live (locked,
// map-based) index against the frozen read snapshot. The frozen path
// must be no slower ("no regression on Search").
func BenchmarkSearch(b *testing.B) {
	_, eng := benchPlatform(b)
	live, frozen := eng.Index(), eng.Frozen()
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			live.Search("graph partitioning streams", 10)
		}
	})
	b.Run("frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frozen.Search("graph partitioning streams", 10)
		}
	})
}

// BenchmarkSearchVector compares context-vector search: the live path
// recomputes every matched document's norm by scanning the whole
// postings map; the frozen path reads precomputed norms and IDF from
// contiguous postings (the PR-3 tentpole's headline ≥10x win).
func BenchmarkSearchVector(b *testing.B) {
	p, eng := benchPlatform(b)
	ctx := eng.ContextVector(p.Users()[0])
	live, frozen := eng.Index(), eng.Frozen()
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			live.SearchVector(ctx, 10)
		}
	})
	b.Run("frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frozen.SearchVector(ctx, 10)
		}
	})
	// The serving path: per-user context vectors are compiled against
	// the frozen index at build time, so a request is pure postings
	// arithmetic (no term extraction, sorting or hash lookups).
	b.Run("frozen-compiled", func(b *testing.B) {
		cq := frozen.Compile(ctx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frozen.SearchCompiled(cq, 10)
		}
	})
}

// BenchmarkInstrumentedSearch measures what the PR-10 observability
// layer costs on the frozen search path: "bare" is the uninstrumented
// call, "observed" adds exactly what the serving path now pays per
// request — a timed histogram observation (one bucket add, one count
// add, one CAS float fold) plus a labeled counter increment. The
// acceptance bar is <5%% overhead on the frozen path.
func BenchmarkInstrumentedSearch(b *testing.B) {
	_, eng := benchPlatform(b)
	frozen := eng.Frozen()
	reg := metrics.New()
	h := reg.Histogram(metrics.SearchSeconds, "bench", nil)
	c := reg.CounterVec(metrics.HTTPRequestsTotal, "bench", "route", "method", "class").
		With("/api/v1/search", "GET", "2xx")
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frozen.Search("graph partitioning streams", 10)
		}
	})
	b.Run("observed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			start := time.Now()
			frozen.Search("graph partitioning streams", 10)
			h.ObserveSince(start)
			c.Inc()
		}
	})
}

// BenchmarkTFIDFVector compares per-document vector materialization:
// O(total postings) on the live index vs O(terms-in-doc) through the
// frozen forward index.
func BenchmarkTFIDFVector(b *testing.B) {
	p, eng := benchPlatform(b)
	papers := p.Store().Papers()
	live, frozen := eng.Index(), eng.Frozen()
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := live.TFIDFVector(core.DocPaper + papers[i%len(papers)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := frozen.TFIDFVector(core.DocPaper + papers[i%len(papers)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecommendPeers measures peer recommendation: "ppr-per-call"
// is the old cost of running a fresh power iteration on every request;
// "memoized" is the serving path with the per-snapshot PageRank memo
// (explanations still computed per call).
func BenchmarkRecommendPeers(b *testing.B) {
	p, eng := benchPlatform(b)
	ids := p.Users()
	b.Run("ppr-per-call", func(b *testing.B) {
		pg := eng.PeerGraph()
		for i := 0; i < b.N; i++ {
			me := pg.Lookup(ids[i%len(ids)])
			pg.PersonalizedPageRank(map[graph.NodeID]float64{me: 1}, graph.PageRankOptions{})
		}
	})
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RecommendPeers(ids[i%len(ids)], 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecommendResources measures resource recommendation on the
// frozen read path, with and without the workpad context.
func BenchmarkRecommendResources(b *testing.B) {
	p, eng := benchPlatform(b)
	uid := p.Users()[0]
	b.Run("context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RecommendResources(uid, 5, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nocontext", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RecommendResources(uid, 5, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12_Snippets measures context-aware snippet extraction.
func BenchmarkE12_Snippets(b *testing.B) {
	p, eng := benchPlatform(b)
	uid := p.Users()[0]
	papers := p.Store().Papers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := core.DocPaper + papers[i%len(papers)]
		if _, err := eng.Preview(uid, doc, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaVsRebuild is the PR-4 headline: folding a single
// mutation's change events into the serving snapshot with ApplyDelta
// (structural sharing + overlay segment) versus the full rebuild that
// used to be the only repair. The acceptance bar is delta ≥ 50x faster
// at the 64-user fixture.
func BenchmarkDeltaVsRebuild(b *testing.B) {
	st, err := social.Open("", social.Clock(benchClock()))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ds := workload.Generate(workload.Config{Seed: 42, Users: 64})
	if err := ds.Load(st); err != nil {
		b.Fatal(err)
	}
	var (
		mu  sync.Mutex
		evs []social.ChangeEvent
	)
	st.OnChange(func(batch []social.ChangeEvent) {
		mu.Lock()
		evs = append(evs[:0], batch...)
		mu.Unlock()
	})
	builder := &core.Builder{Store: st}
	eng, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	author := st.Users()[0]
	if err := st.PutPaper(social.Paper{
		ID: "bench-delta", Title: "Write visibility through overlay segments",
		Abstract: "One mutation, one delta, zero rebuild.", Authors: []string{author},
	}); err != nil {
		b.Fatal(err)
	}
	mu.Lock()
	batch := append([]social.ChangeEvent(nil), evs...)
	mu.Unlock()
	if len(batch) == 0 {
		b.Fatal("no change events captured")
	}

	b.Run("delta-apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := builder.ApplyDelta(eng, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSegmentedSearch measures the merge-on-read cost: BM25 search
// through a pristine segmented view (delegates to the frozen base) and
// through a view carrying a small overlay (merged statistics computed
// per query).
func BenchmarkSegmentedSearch(b *testing.B) {
	_, eng := benchPlatform(b)
	pristine := eng.Segment()
	overlaid := pristine.WithDocs(map[string]string{
		"paper/seg-1": "graph partitioning with overlay segments",
		"paper/seg-2": "streaming tensor sketches for social networks",
	})
	b.Run("pristine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pristine.Search("graph partitioning streams", 10)
		}
	})
	b.Run("overlay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			overlaid.Search("graph partitioning streams", 10)
		}
	})
}

// BenchmarkQuorumWrite prices the synchronous durability mode in
// isolation: a leader platform with write quorum k whose followers are
// goroutines acking every sequence the moment it appears, so the
// measured cost is the quorum machinery itself (ack bookkeeping,
// commit-index persistence, the waitQuorum wakeup) with no network in
// the loop. E17 in cmd/hivebench measures the same path over real HTTP
// followers.
func BenchmarkQuorumWrite(b *testing.B) {
	for _, k := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			el := election.NewManual()
			self := "http://bench-leader.invalid"
			followers := []string{"http://bench-f1.invalid", "http://bench-f2.invalid"}
			el.Set(election.State{Role: election.Leader, Epoch: 1, Leader: self})
			p, err := hive.Open(hive.Options{
				Dir: b.TempDir(),
				Cluster: &hive.ClusterConfig{
					SelfURL: self, Peers: followers, Election: el, QuorumWrites: k,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			for p.Role() != "leader" {
				time.Sleep(time.Millisecond)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for _, f := range followers {
				wg.Add(1)
				go func(f string) {
					defer wg.Done()
					var last uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						if seq := p.Store().ChangeSeq(); seq > last {
							last = seq
							p.RecordFollowerAck(f, seq, 1)
							continue
						}
						// Poll, don't spin: a busy loop starves the writer
						// goroutine on small machines and the measured
						// latency becomes the scheduler's, not the quorum's.
						time.Sleep(20 * time.Microsecond)
					}
				}(f)
			}
			defer func() { close(stop); wg.Wait() }()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.RegisterUser(hive.User{
					ID: fmt.Sprintf("bq-%d-%d", k, i), Name: "Q"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
