// Package client is the Go SDK for the Hive v1 REST API. It speaks the
// typed contract of the hive/api package end-to-end: every endpoint has
// a typed method, list endpoints return api.Page envelopes whose
// NextCursor tokens feed the next call, non-2xx responses come back as
// *api.Error (stable machine-readable codes), and an optional ETag
// cache revalidates knowledge reads with If-None-Match so unchanged
// snapshots cost a 304 instead of a recompute.
//
//	c := client.New("http://localhost:8080", client.WithETagCache())
//	page, err := c.Users(ctx, "", 100)        // first page
//	page, err = c.Users(ctx, page.NextCursor, 100)
//
// Against an elected replica set, construct the client with WithCluster
// and it survives failover without caller changes: a not_leader
// rejection redirects it to the hinted leader, a dead or hint-less node
// makes it re-resolve the leader via GET /cluster across the configured
// peers, and requests retry with capped backoff until the new leader
// accepts them.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"hive/api"
	"hive/internal/metrics"
)

// Client talks to one Hive server (or, with WithCluster, to whichever
// member of a replica set currently leads).
type Client struct {
	mu   sync.RWMutex
	base string // current target; moves on failover when cluster is set

	cluster []string // seed peers for leader re-resolution; nil disables failover
	hc      *http.Client

	etags *etagCache // nil unless WithETagCache

	// shards caches the deployment's shard count (its shard map — the
	// hash is fixed, so the count is the whole map). 0 until learned
	// from a cluster/healthz response; while 0 or 1 writes carry no
	// shard declaration and the server routes them itself.
	shards atomic.Int64

	requests  atomic.Int64
	cacheHits atomic.Int64
	redirects atomic.Int64

	// lastTrace holds the trace ID stamped on the most recent logical
	// call — one ID per call, replayed verbatim across failover retries
	// and shard redirects, so smoke tests and callers can correlate a
	// call with the server-side access log and debug/traces ring.
	lastTrace atomic.Value // string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithETagCache enables conditional GETs on knowledge endpoints: the
// client remembers each URL's ETag and body, sends If-None-Match, and
// serves 304 revalidations from the cache.
func WithETagCache() Option {
	return func(c *Client) { c.etags = &etagCache{entries: map[string]etagEntry{}} }
}

// WithCluster makes the client cluster-aware: peers seed leader
// re-resolution, and every request gains the failover retry loop
// (follow not_leader hints, re-resolve via GET /cluster when the hint
// is stale or the target is unreachable, capped backoff between
// attempts). The base URL passed to New may be any member — the client
// finds the leader on first rejection.
func WithCluster(peers ...string) Option {
	return func(c *Client) {
		c.cluster = append([]string(nil), peers...)
		if c.cluster == nil {
			c.cluster = []string{} // non-nil enables failover even with zero peers
		}
	}
}

// New builds a client for a server base URL (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: base, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Stats reports how many requests were issued and how many knowledge
// reads were served from the ETag cache via a 304.
func (c *Client) Stats() (requests, cacheHits int64) {
	return c.requests.Load(), c.cacheHits.Load()
}

// Redirects counts leader changes the client followed — not_leader
// hints adopted plus leaders re-resolved via the cluster endpoint.
func (c *Client) Redirects() int64 { return c.redirects.Load() }

// LastTraceID returns the X-Hive-Trace-Id the client minted for its
// most recent logical call ("" before the first). Every retry of that
// call carried the same ID, so it identifies the call end-to-end no
// matter how many nodes it touched.
func (c *Client) LastTraceID() string {
	s, _ := c.lastTrace.Load().(string)
	return s
}

// Base returns the URL the client currently targets. With WithCluster
// it moves as the client follows the leader.
func (c *Client) Base() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base
}

func (c *Client) setBase(u string) {
	c.mu.Lock()
	c.base = u
	c.mu.Unlock()
}

type etagEntry struct {
	tag  string
	body []byte
}

// maxETagEntries bounds the cache: one (tag, body) pair per distinct
// URL would otherwise grow for the client's lifetime (every user,
// query and cursor permutation is its own key).
const maxETagEntries = 1024

type etagCache struct {
	mu      sync.Mutex
	entries map[string]etagEntry
}

func (ec *etagCache) get(key string) (etagEntry, bool) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	e, ok := ec.entries[key]
	return e, ok
}

func (ec *etagCache) put(key string, e etagEntry) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if _, exists := ec.entries[key]; !exists && len(ec.entries) >= maxETagEntries {
		// Evict an arbitrary entry (map order): cheap, and a wrongly
		// evicted URL merely pays one full re-fetch.
		for k := range ec.entries {
			delete(ec.entries, k)
			break
		}
	}
	ec.entries[key] = e
}

// --- Transport core -----------------------------------------------------------

// apiErrorFrom decodes a non-2xx body into *api.Error, synthesizing an
// envelope when the body isn't one (proxies, panics mid-stream).
func apiErrorFrom(status int, body []byte) *api.Error {
	var env api.ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		env.Error.HTTPStatus = status
		return env.Error
	}
	return &api.Error{
		Code:       api.CodeInternal,
		Message:    fmt.Sprintf("http %d: %s", status, bytes.TrimSpace(body)),
		HTTPStatus: status,
	}
}

// Failover retry tuning: enough attempts to ride out an election (a
// couple of lease TTLs) without retrying forever, backoff capped low so
// the first post-promotion attempt lands promptly.
const (
	failoverAttempts   = 8
	failoverBackoffMin = 100 * time.Millisecond
	failoverBackoffMax = time.Second
)

// do issues one request and decodes the JSON response into out (may be
// nil). conditional enables the ETag cache for this GET. With
// WithCluster the request is retried across leader changes; the body is
// marshaled once up front so every attempt replays identical bytes.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, in, out any, conditional bool) error {
	return c.doHdr(ctx, method, path, q, nil, in, out, conditional)
}

// doHdr is do with extra request headers (the shard declaration on
// owner-routed writes).
func (c *Client) doHdr(ctx context.Context, method, path string, q url.Values, hdr http.Header, in, out any, conditional bool) error {
	// One trace ID per logical call, minted here so every failover
	// retry and redirect below replays the same ID (doOnce builds each
	// attempt's request from this header set).
	if hdr.Get(api.TraceHeader) == "" {
		h := make(http.Header, len(hdr)+1)
		for k, vs := range hdr {
			h[k] = vs
		}
		h.Set(api.TraceHeader, metrics.NewTraceID())
		hdr = h
	}
	c.lastTrace.Store(hdr.Get(api.TraceHeader))
	var raw []byte
	if in != nil {
		var err error
		if raw, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	if c.cluster == nil {
		return c.doOnce(ctx, method, c.Base(), path, q, hdr, raw, in != nil, out, conditional)
	}

	backoff := failoverBackoffMin
	var lastErr error
	for attempt := 0; attempt < failoverAttempts; attempt++ {
		base := c.Base()
		err := c.doOnce(ctx, method, base, path, q, hdr, raw, in != nil, out, conditional)
		if err == nil {
			return nil
		}
		lastErr = err

		// Decide whether (and where) to retry. Leadership errors and
		// transport failures are failover's business on any method;
		// 503-class transients (server timeout, load shedding) are
		// retried only on idempotent reads — re-issuing a write that may
		// have applied would double it. Everything else — a not_found or
		// invalid_argument, a quorum_unavailable on a write — is the same
		// on every node and on every attempt, so it surfaces immediately
		// as the typed *api.Error for the caller to act on.
		var ae *api.Error
		switch {
		case errors.As(err, &ae) && ae.Code == api.CodeNotLeader:
			if hint, _ := ae.Details["leader"].(string); hint != "" && hint != base {
				c.setBase(hint)
			} else {
				// Hint missing or pointing back at the rejecting node:
				// it is stale. Ask the replica set instead.
				c.resolveLeader(ctx, base)
			}
		case errors.As(err, &ae) && method == http.MethodGet && retriableRead(ae):
			// Transient overload on a read: back off and retry in place
			// (the switch below only skips the backoff when the target
			// moved, which a 503 doesn't cause).
		case errors.As(err, &ae):
			return err // typed API error: not failover's to retry
		default:
			// Transport-level failure (dead node, reset mid-response).
			// The old leader dying looks exactly like this; re-resolve
			// through the peers.
			if ctx.Err() != nil {
				return err
			}
			c.resolveLeader(ctx, base)
		}

		// Retry immediately only when the target actually moved — during
		// an election gap every node still names the old leader, and
		// retrying it hot would burn the attempt budget before the lease
		// even expires.
		if moved := c.Base(); moved != base {
			c.redirects.Add(1)
			continue
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > failoverBackoffMax {
			backoff = failoverBackoffMax
		}
	}
	return lastErr
}

// retriableRead reports whether a typed API error on an idempotent read
// is a transient the retry loop may absorb: the server-side timeout and
// load-shed rejections, plus any other 503 a proxy or middleware
// produced. quorum_unavailable is also a 503 but belongs to the write
// path; a read can never legitimately carry it, so it is excluded to
// keep the contract sharp.
func retriableRead(ae *api.Error) bool {
	if ae.Code == api.CodeQuorumUnavailable {
		return false
	}
	return ae.Code == api.CodeTimeout || ae.Code == api.CodeOverloaded ||
		ae.HTTPStatus == http.StatusServiceUnavailable
}

// resolveLeader asks the replica set who leads: GET /cluster against
// the current target first, then each configured peer. Adopts and
// reports the first answer naming a leader. A node that is itself the
// leader but hasn't published a URL (standalone) counts as the answer.
func (c *Client) resolveLeader(ctx context.Context, current string) bool {
	candidates := make([]string, 0, len(c.cluster)+1)
	candidates = append(candidates, current)
	for _, p := range c.cluster {
		if p != current {
			candidates = append(candidates, p)
		}
	}
	for _, u := range candidates {
		var cs api.ClusterStatus
		if err := c.doOnce(ctx, http.MethodGet, u, "/api/v1/cluster", nil, nil, nil, false, &cs, false); err != nil {
			continue
		}
		leader := cs.LeaderURL
		if leader == "" && cs.Role == api.RoleLeader {
			leader = u // a leader that doesn't advertise a URL: reach it where we did
		}
		if leader == "" {
			continue // election unresolved on this node; ask the next
		}
		c.setBase(leader)
		return true
	}
	return false
}

// doOnce issues one request against an explicit base URL.
func (c *Client) doOnce(ctx context.Context, method, base, path string, q url.Values, hdr http.Header, raw []byte, hasBody bool, out any, conditional bool) error {
	u := base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	var cached etagEntry
	useCache := conditional && c.etags != nil && method == http.MethodGet
	if useCache {
		if e, ok := c.etags.get(u); ok {
			cached = e
			req.Header.Set("If-None-Match", e.tag)
		}
	}

	c.requests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}

	switch {
	case resp.StatusCode == http.StatusNotModified && useCache && cached.tag != "":
		c.cacheHits.Add(1)
		got = cached.body
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if useCache {
			if tag := resp.Header.Get("ETag"); tag != "" {
				c.etags.put(u, etagEntry{tag: tag, body: got})
			}
		}
	default:
		return apiErrorFrom(resp.StatusCode, got)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(got, out); err != nil {
		return fmt.Errorf("client: decode %s %s: %w", method, path, err)
	}
	return nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, http.MethodPost, path, nil, in, out, false)
}

// --- Shard routing -------------------------------------------------------------

// adoptShardCount records a shard count learned from a cluster,
// healthz or wrong_shard response.
func (c *Client) adoptShardCount(n int) {
	if n > 0 {
		c.shards.Store(int64(n))
	}
}

// ShardCount returns the client's cached view of the deployment's
// shard map (0 = not yet learned / unsharded). The map is learned from
// any ClusterStatus or Healthz call — do one of those first to enable
// client-side routing.
func (c *Client) ShardCount() int { return int(c.shards.Load()) }

// shardHeader builds the X-Hive-Shard declaration for an owner-routed
// write, or nil while the shard map is unknown (the server then routes
// the write itself, which is always correct).
func (c *Client) shardHeader(owner string) http.Header {
	n := int(c.shards.Load())
	if n <= 1 || owner == "" {
		return nil
	}
	h := http.Header{}
	h.Set(api.ShardHeader, fmt.Sprint(api.ShardOf(owner, n)))
	return h
}

// postOwned posts an owner-hashed write with its shard declaration. A
// wrong_shard rejection means the cached shard map is stale: the client
// adopts the count the server reported (or re-fetches the cluster
// status) and retries once with corrected placement.
func (c *Client) postOwned(ctx context.Context, path, owner string, in any) error {
	err := c.doHdr(ctx, http.MethodPost, path, nil, c.shardHeader(owner), in, nil, false)
	var ae *api.Error
	if err == nil || !errors.As(err, &ae) || ae.Code != api.CodeWrongShard {
		return err
	}
	if n, ok := ae.Details["shard_count"].(float64); ok {
		c.adoptShardCount(int(n))
	} else if _, rerr := c.ClusterStatus(ctx); rerr != nil {
		return err
	}
	c.redirects.Add(1)
	return c.doHdr(ctx, http.MethodPost, path, nil, c.shardHeader(owner), in, nil, false)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	return c.do(ctx, http.MethodGet, path, q, nil, out, false)
}

// getKnowledge is a conditional GET: revalidated via the ETag cache
// when enabled.
func (c *Client) getKnowledge(ctx context.Context, path string, q url.Values, out any) error {
	return c.do(ctx, http.MethodGet, path, q, nil, out, true)
}

// pageQuery folds cursor/limit into query parameters (zero limit lets
// the server default apply).
func pageQuery(q url.Values, cursor string, limit int) url.Values {
	if q == nil {
		q = url.Values{}
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	return q
}

// --- Health & admin -----------------------------------------------------------

// Healthz reports server liveness and snapshot freshness. On a sharded
// deployment the response carries the shard map, which the client
// adopts for write routing.
func (c *Client) Healthz(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.get(ctx, "/api/v1/healthz", nil, &h)
	if err == nil {
		c.adoptShardCount(h.ShardCount)
	}
	return h, err
}

// Refresh requests a knowledge-snapshot rebuild; wait blocks until the
// new snapshot is live.
func (c *Client) Refresh(ctx context.Context, wait bool) error {
	q := url.Values{}
	if wait {
		q.Set("wait", "true")
	}
	return c.do(ctx, http.MethodPost, "/api/v1/admin/refresh", q, nil, nil, false)
}

// --- Mutations ----------------------------------------------------------------

// CreateUser registers or updates a researcher profile.
func (c *Client) CreateUser(ctx context.Context, u api.User) error {
	return c.post(ctx, "/api/v1/users", u, nil)
}

// CreateConference registers a conference edition.
func (c *Client) CreateConference(ctx context.Context, conf api.Conference) error {
	return c.post(ctx, "/api/v1/conferences", conf, nil)
}

// CreateSession registers a session within a conference.
func (c *Client) CreateSession(ctx context.Context, s api.Session) error {
	return c.post(ctx, "/api/v1/sessions", s, nil)
}

// CreatePaper publishes a paper (owner-routed: the first author's
// shard).
func (c *Client) CreatePaper(ctx context.Context, p api.Paper) error {
	return c.postOwned(ctx, "/api/v1/papers", api.PaperOwner(p), p)
}

// CreatePresentation uploads slide content for a paper.
func (c *Client) CreatePresentation(ctx context.Context, pr api.Presentation) error {
	return c.post(ctx, "/api/v1/presentations", pr, nil)
}

// Connect establishes a mutual connection between two researchers
// (owner-routed: a's shard).
func (c *Client) Connect(ctx context.Context, a, b string) error {
	return c.postOwned(ctx, "/api/v1/connections", a, api.ConnectRequest{A: a, B: b})
}

// Follow subscribes follower to followee's activity (owner-routed: the
// follower's shard).
func (c *Client) Follow(ctx context.Context, follower, followee string) error {
	return c.postOwned(ctx, "/api/v1/follows", follower, api.FollowRequest{Follower: follower, Followee: followee})
}

// CheckIn records session attendance (owner-routed: the attendee's
// shard).
func (c *Client) CheckIn(ctx context.Context, sessionID, userID string) error {
	return c.postOwned(ctx, "/api/v1/checkins", userID, api.CheckinRequest{SessionID: sessionID, UserID: userID})
}

// Ask posts a question about an entity.
func (c *Client) Ask(ctx context.Context, q api.Question) error {
	return c.post(ctx, "/api/v1/questions", q, nil)
}

// Answer posts an answer to a question.
func (c *Client) Answer(ctx context.Context, a api.Answer) error {
	return c.post(ctx, "/api/v1/answers", a, nil)
}

// Comment attaches a comment to an entity.
func (c *Client) Comment(ctx context.Context, cm api.Comment) error {
	return c.post(ctx, "/api/v1/comments", cm, nil)
}

// CreateWorkpad creates or replaces a workpad (owner-routed).
func (c *Client) CreateWorkpad(ctx context.Context, w api.Workpad) error {
	return c.postOwned(ctx, "/api/v1/workpads", w.Owner, w)
}

// AddWorkpadItem drags a resource onto a workpad.
func (c *Client) AddWorkpadItem(ctx context.Context, workpadID string, item api.WorkpadItem) error {
	return c.post(ctx, "/api/v1/workpads/"+url.PathEscape(workpadID)+"/items", item, nil)
}

// ActivateWorkpad selects the user's active context (owner-routed).
func (c *Client) ActivateWorkpad(ctx context.Context, owner, workpadID string) error {
	return c.postOwned(ctx, "/api/v1/workpads/"+url.PathEscape(workpadID)+"/activate",
		owner, api.ActivateWorkpadRequest{Owner: owner})
}

// Batch applies a mixed array of entities in one store pass (one
// snapshot invalidation total). Elements apply in order; failures are
// reported per element in the response.
func (c *Client) Batch(ctx context.Context, entities []api.BatchEntity) (api.BatchResponse, error) {
	var out api.BatchResponse
	err := c.post(ctx, "/api/v1/batch", api.BatchRequest{Entities: entities}, &out)
	return out, err
}

// --- Entity reads -------------------------------------------------------------

// GetUser fetches a user profile.
func (c *Client) GetUser(ctx context.Context, id string) (api.User, error) {
	var u api.User
	err := c.get(ctx, "/api/v1/users/"+url.PathEscape(id), nil, &u)
	return u, err
}

// Users lists user IDs, one page at a time.
func (c *Client) Users(ctx context.Context, cursor string, limit int) (api.Page[string], error) {
	var pg api.Page[string]
	err := c.get(ctx, "/api/v1/users", pageQuery(nil, cursor, limit), &pg)
	return pg, err
}

// Attendees lists the users checked into a session.
func (c *Client) Attendees(ctx context.Context, sessionID, cursor string, limit int) (api.Page[string], error) {
	var pg api.Page[string]
	err := c.get(ctx, "/api/v1/sessions/"+url.PathEscape(sessionID)+"/attendees",
		pageQuery(nil, cursor, limit), &pg)
	return pg, err
}

// ActiveWorkpad returns the user's active workpad.
func (c *Client) ActiveWorkpad(ctx context.Context, owner string) (api.Workpad, error) {
	var w api.Workpad
	err := c.get(ctx, "/api/v1/users/"+url.PathEscape(owner)+"/workpad", nil, &w)
	return w, err
}

// Feed returns the user's real-time update feed.
func (c *Client) Feed(ctx context.Context, userID, cursor string, limit int) (api.Page[api.Event], error) {
	var pg api.Page[api.Event]
	err := c.get(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/feed", pageQuery(nil, cursor, limit), &pg)
	return pg, err
}

// TagEvents returns the hashtag fan-out for a tag ("graphs13" and
// "#graphs13" are equivalent).
func (c *Client) TagEvents(ctx context.Context, tag, cursor string, limit int) (api.Page[api.Event], error) {
	var pg api.Page[api.Event]
	err := c.get(ctx, "/api/v1/tags/"+url.PathEscape(tag)+"/events", pageQuery(nil, cursor, limit), &pg)
	return pg, err
}

// --- Knowledge services (conditional GETs) ------------------------------------

// Relationship explains the relationship between two researchers.
func (c *Client) Relationship(ctx context.Context, a, b string) (api.Explanation, error) {
	var ex api.Explanation
	q := url.Values{"a": {a}, "b": {b}}
	err := c.getKnowledge(ctx, "/api/v1/relationship", q, &ex)
	return ex, err
}

// PeerRecommendations suggests new peers with evidence.
func (c *Client) PeerRecommendations(ctx context.Context, userID, cursor string, limit int) (api.Page[api.PeerRecommendation], error) {
	var pg api.Page[api.PeerRecommendation]
	err := c.getKnowledge(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/recommendations/peers",
		pageQuery(nil, cursor, limit), &pg)
	return pg, err
}

// ResourceRecommendations suggests documents, optionally conditioned on
// the active workpad context.
func (c *Client) ResourceRecommendations(ctx context.Context, userID string, useContext bool, cursor string, limit int) (api.Page[api.ResourceRecommendation], error) {
	var pg api.Page[api.ResourceRecommendation]
	q := pageQuery(nil, cursor, limit)
	if !useContext {
		q.Set("context", "false")
	}
	err := c.getKnowledge(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/recommendations/resources", q, &pg)
	return pg, err
}

// SuggestSessions ranks a conference's sessions for the user.
func (c *Client) SuggestSessions(ctx context.Context, userID, confID, cursor string, limit int) (api.Page[api.SessionSuggestion], error) {
	var pg api.Page[api.SessionSuggestion]
	q := pageQuery(url.Values{"conf": {confID}}, cursor, limit)
	err := c.getKnowledge(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/sessions/suggest", q, &pg)
	return pg, err
}

// Search runs keyword search; a non-empty user makes it context-aware.
func (c *Client) Search(ctx context.Context, query, user, cursor string, limit int) (api.Page[api.SearchResult], error) {
	var pg api.Page[api.SearchResult]
	q := pageQuery(url.Values{"q": {query}}, cursor, limit)
	if user != "" {
		q.Set("user", user)
	}
	err := c.getKnowledge(ctx, "/api/v1/search", q, &pg)
	return pg, err
}

// Preview extracts the k most context-relevant snippets of a document.
func (c *Client) Preview(ctx context.Context, userID, docID string, k int) ([]api.Snippet, error) {
	var out []api.Snippet
	q := url.Values{"user": {userID}, "doc": {docID}}
	if k > 0 {
		q.Set("k", fmt.Sprint(k))
	}
	err := c.getKnowledge(ctx, "/api/v1/preview", q, &out)
	return out, err
}

// Digest produces the size-constrained summary of the user's feed.
func (c *Client) Digest(ctx context.Context, userID string, budget int) (api.Summary, error) {
	var out api.Summary
	q := url.Values{}
	if budget > 0 {
		q.Set("budget", fmt.Sprint(budget))
	}
	err := c.getKnowledge(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/digest", q, &out)
	return out, err
}

// Communities returns the discovered peer communities.
func (c *Client) Communities(ctx context.Context, cursor string, limit int) (api.Page[[]string], error) {
	var pg api.Page[[]string]
	err := c.getKnowledge(ctx, "/api/v1/communities", pageQuery(nil, cursor, limit), &pg)
	return pg, err
}

// History searches the user's personal activity history.
func (c *Client) History(ctx context.Context, userID, query string, useContext bool, cursor string, limit int) (api.Page[api.HistoryEntry], error) {
	var pg api.Page[api.HistoryEntry]
	q := pageQuery(nil, cursor, limit)
	if query != "" {
		q.Set("q", query)
	}
	if useContext {
		q.Set("context", "true")
	}
	err := c.getKnowledge(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/history", q, &pg)
	return pg, err
}

// ResourceRelationship explains the relationship between a user and a
// resource (paper, presentation, session).
func (c *Client) ResourceRelationship(ctx context.Context, userID, entity string) ([]api.ResourceEvidence, error) {
	var out []api.ResourceEvidence
	q := url.Values{"entity": {entity}}
	err := c.getKnowledge(ctx, "/api/v1/users/"+url.PathEscape(userID)+"/resource-relationship", q, &out)
	return out, err
}

// KnowledgePaths returns ranked weighted knowledge-base paths between
// two entities (prefix IDs with "user:", "paper:" or "session:").
func (c *Client) KnowledgePaths(ctx context.Context, a, b string, k int) ([]api.KnowledgePath, error) {
	var out []api.KnowledgePath
	q := url.Values{"a": {a}, "b": {b}}
	if k > 0 {
		q.Set("k", fmt.Sprint(k))
	}
	err := c.getKnowledge(ctx, "/api/v1/knowledge/paths", q, &out)
	return out, err
}

// --- Replication --------------------------------------------------------------

// ReplicationEvents polls the node's change journal for batches after
// sequence `from`. A positive wait long-polls: the server holds the
// request until new events arrive or the wait elapses (bounded
// server-side), so tailing followers see sub-second propagation without
// hammering the endpoint. A `compacted` error (api.CodeCompacted) means
// the range was dropped by retention — re-bootstrap via
// ReplicationSnapshot.
//
// A non-zero epoch asserts the poller's adopted leadership term: a node
// behind it answers `stale_epoch` (it is a deposed leader whose batches
// must not be applied) instead of serving a stale feed.
//
// A non-nil ack piggybacks the poller's progress report on the poll —
// the ack path of quorum writes; nil polls purely as a reader.
func (c *Client) ReplicationEvents(ctx context.Context, from uint64, max int, wait time.Duration, epoch uint64, ack *ReplAck) (api.ReplicationEvents, error) {
	var out api.ReplicationEvents
	q := url.Values{"from": {fmt.Sprint(from)}}
	if max > 0 {
		q.Set("max", fmt.Sprint(max))
	}
	if wait > 0 {
		q.Set("wait_ms", fmt.Sprint(wait.Milliseconds()))
	}
	if epoch > 0 {
		q.Set("epoch", fmt.Sprint(epoch))
	}
	if ack != nil && ack.Self != "" {
		q.Set("self", ack.Self)
		q.Set("applied", fmt.Sprint(ack.Applied))
		q.Set("commit", fmt.Sprint(ack.Commit))
	}
	err := c.get(ctx, "/api/v1/replication/events", q, &out)
	return out, err
}

// ReplAck is the progress report a follower piggybacks on a replication
// poll: which node it is (its advertised URL), the highest change
// sequence it has folded into its store, and the cluster commit index
// it has persisted. On a quorum-writing leader the applied report is
// the write ack — there is no separate ack RPC — and a commit report
// behind the leader's releases the long-poll early so the follower
// adopts the fresh durability watermark promptly.
type ReplAck struct {
	Self    string
	Applied uint64
	Commit  uint64
}

// ReplicationSnapshot fetches the full bootstrap image: the node's
// entire kv state plus the change-sequence watermark to tail from.
func (c *Client) ReplicationSnapshot(ctx context.Context) (api.ReplicationSnapshot, error) {
	var out api.ReplicationSnapshot
	err := c.get(ctx, "/api/v1/replication/snapshot", nil, &out)
	return out, err
}

// ClusterStatus reports the target node's view of the replica set: its
// role and term, the leader it believes in, and a liveness/lag probe of
// each configured peer.
func (c *Client) ClusterStatus(ctx context.Context) (api.ClusterStatus, error) {
	var out api.ClusterStatus
	err := c.get(ctx, "/api/v1/cluster", nil, &out)
	if err == nil {
		c.adoptShardCount(out.ShardCount)
	}
	return out, err
}

// --- Pagination helper --------------------------------------------------------

// Collect walks a paginated endpoint to exhaustion and returns all
// items. fetch is any page-returning method bound to its fixed
// arguments:
//
//	all, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
//	    return c.Users(ctx, cur, 0)
//	})
func Collect[T any](ctx context.Context, fetch func(cursor string) (api.Page[T], error)) ([]T, error) {
	var all []T
	cursor := ""
	for {
		if err := ctx.Err(); err != nil {
			return all, err
		}
		pg, err := fetch(cursor)
		if err != nil {
			return all, err
		}
		all = append(all, pg.Items...)
		if pg.NextCursor == "" {
			return all, nil
		}
		cursor = pg.NextCursor
	}
}
