// Apiclient demonstrates the v1 REST contract end-to-end through the Go
// SDK: it embeds a Hive server in-process, bulk-loads a world with one
// batch-ingest call, walks a cursor-paginated listing, runs knowledge
// reads twice to show ETag/304 revalidation, and handles a typed API
// error by its stable code.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"hive"
	"hive/api"
	"hive/client"
	"hive/internal/server"
)

func main() {
	// An embedded server: the same wiring cmd/hived uses.
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(server.New(p))
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL, client.WithETagCache())

	// 1. Bulk ingest: one POST /api/v1/batch call, one snapshot
	// invalidation on the server, dependencies ordered in-array.
	var ents []api.BatchEntity
	add := func(kind string, v any) {
		ent, err := api.NewBatchEntity(kind, v)
		if err != nil {
			log.Fatal(err)
		}
		ents = append(ents, ent)
	}
	add(api.KindUser, api.User{ID: "zach", Name: "Zach", Affiliation: "ASU", Interests: []string{"graphs"}})
	add(api.KindUser, api.User{ID: "ann", Name: "Ann", Affiliation: "UniTo", Interests: []string{"graphs"}})
	add(api.KindUser, api.User{ID: "aaron", Name: "Aaron", Affiliation: "MPI"})
	add(api.KindConference, api.Conference{ID: "edbt13", Name: "EDBT 2013"})
	add(api.KindSession, api.Session{ID: "s-graphs", ConferenceID: "edbt13",
		Title: "Large Scale Graph Processing", Hashtag: "#edbt13graphs"})
	add(api.KindPaper, api.Paper{ID: "p1", Title: "Community detection in large graphs",
		Abstract: "We detect communities in large social graphs using modularity.",
		Authors:  []string{"ann"}, ConferenceID: "edbt13", SessionID: "s-graphs"})
	add(api.KindConnection, api.ConnectRequest{A: "zach", B: "ann"})
	add(api.KindCheckin, api.CheckinRequest{SessionID: "s-graphs", UserID: "zach"})
	add(api.KindQuestion, api.Question{ID: "q1", Author: "zach", Target: "p1",
		Text: "How does modularity behave on power-law graphs?"})

	br, err := c.Batch(ctx, ents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch ingest: %d applied, %d failed\n", br.Applied, br.Failed)

	// Rebuild the knowledge snapshot eagerly, as a bulk loader would:
	// subsequent knowledge reads then serve a settled generation (and
	// revalidate against it).
	if err := c.Refresh(ctx, true); err != nil {
		log.Fatal(err)
	}

	// 2. Cursor pagination: walk the user listing two IDs at a time.
	fmt.Println("\nusers, paginated (limit=2):")
	cursor := ""
	for pageNo := 1; ; pageNo++ {
		pg, err := c.Users(ctx, cursor, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  page %d: %v (next_cursor=%q)\n", pageNo, pg.Items, pg.NextCursor)
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}

	// 3. Knowledge reads with conditional GETs: the second identical
	// search revalidates via If-None-Match and is served from the 304.
	res, err := c.Search(ctx, "community detection graphs", "", "", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsearch results:")
	for _, h := range res.Items {
		fmt.Printf("  %-12s %.3f\n", h.DocID, h.Score)
	}
	if _, err := c.Search(ctx, "community detection graphs", "", "", 3); err != nil {
		log.Fatal(err)
	}
	requests, hits := c.Stats()
	fmt.Printf("requests=%d etag-304-hits=%d\n", requests, hits)

	// 4. Relationship explanation (Figure 2 of the paper), typed.
	ex, err := c.Relationship(ctx, "zach", "ann")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrelationship zach—ann (score %.3f):\n", ex.Score)
	for _, ev := range ex.Evidences {
		fmt.Printf("  - [%s] %s\n", ev.Kind, ev.Description)
	}

	// 5. Typed errors: stable machine-readable codes, not string matching.
	_, err = c.GetUser(ctx, "nobody")
	var ae *api.Error
	if errors.As(err, &ae) && ae.Code == api.CodeNotFound {
		fmt.Printf("\nmissing user handled by code: %s (HTTP %d)\n", ae.Code, ae.HTTPStatus)
	}
}
