// Package conceptmap implements Hive's concept-map layer (paper §2.1,
// ref [10]): a weighted graph of domain concepts with significance
// scores, bootstrapped semi-automatically from a set of contextually
// relevant documents, plus spreading-activation propagation that turns a
// handful of context concepts into a relevance field over the whole map.
package conceptmap

import (
	"errors"
	"fmt"
	"sort"

	"hive/internal/graph"
	"hive/internal/textindex"
)

// ErrEmpty is returned when bootstrapping from no usable text.
var ErrEmpty = errors.New("conceptmap: no content to bootstrap from")

// Concept is a node of the concept map.
type Concept struct {
	Term         string
	Significance float64
}

// Map is a weighted concept graph. Edge weights encode co-occurrence
// strength between concepts; node significance comes from extraction.
type Map struct {
	g        *graph.Graph
	byTerm   map[string]graph.NodeID
	concepts []Concept
}

// LabelConcept is the node label used in the underlying graph.
const LabelConcept = "concept"

// EdgeRelated is the edge label for concept-concept relations.
const EdgeRelated = "related"

// New returns an empty concept map.
func New() *Map {
	return &Map{g: graph.New(), byTerm: make(map[string]graph.NodeID)}
}

// BootstrapOptions tunes Bootstrap.
type BootstrapOptions struct {
	// MaxConcepts bounds the number of extracted concepts. Defaults 50.
	MaxConcepts int
	// Window is the co-occurrence window (in content words) that creates
	// concept-concept edges. Defaults 6.
	Window int
}

// Bootstrap learns a concept map from documents: concepts are the top
// TextRank keyphrases across the corpus (significance = aggregated
// score), and edges connect concepts co-occurring within a window,
// weighted by count. This is the "learn key concepts to bootstrap concept
// map from a given set of contextually-relevant documents" service of
// Table 1.
func Bootstrap(docs []string, opts BootstrapOptions) (*Map, error) {
	if opts.MaxConcepts == 0 {
		opts.MaxConcepts = 50
	}
	if opts.Window == 0 {
		opts.Window = 6
	}
	// Aggregate keyphrase scores across documents.
	agg := map[string]float64{}
	for _, d := range docs {
		for _, kp := range textindex.ExtractKeyphrases(d, 0) {
			agg[kp.Term] += kp.Score
		}
	}
	if len(agg) == 0 {
		return nil, ErrEmpty
	}
	type ts struct {
		t string
		s float64
	}
	all := make([]ts, 0, len(agg))
	for t, s := range agg {
		all = append(all, ts{t, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].t < all[j].t
	})
	if len(all) > opts.MaxConcepts {
		all = all[:opts.MaxConcepts]
	}

	m := New()
	keep := map[string]bool{}
	for _, c := range all {
		m.AddConcept(c.t, c.s)
		keep[textindex.Stem(c.t)] = true
	}
	// Second pass: co-occurrence edges between kept concepts.
	stemToTerm := map[string]string{}
	for _, c := range all {
		stemToTerm[textindex.Stem(c.t)] = c.t
	}
	for _, d := range docs {
		words := textindex.RawTerms(d)
		for i := range words {
			si := textindex.Stem(words[i])
			if !keep[si] {
				continue
			}
			for j := i + 1; j < len(words) && j <= i+opts.Window; j++ {
				sj := textindex.Stem(words[j])
				if !keep[sj] || si == sj {
					continue
				}
				m.Relate(stemToTerm[si], stemToTerm[sj], 1)
			}
		}
	}
	return m, nil
}

// AddConcept inserts a concept (or raises an existing concept's
// significance to the given value if larger).
func (m *Map) AddConcept(term string, significance float64) {
	if id, ok := m.byTerm[term]; ok {
		if n, err := m.g.Node(id); err == nil && significance > n.Weight {
			_ = m.g.SetNodeWeight(id, significance)
			for i := range m.concepts {
				if m.concepts[i].Term == term {
					m.concepts[i].Significance = significance
				}
			}
		}
		return
	}
	id := m.g.EnsureNode(term, LabelConcept)
	_ = m.g.SetNodeWeight(id, significance)
	m.byTerm[term] = id
	m.concepts = append(m.concepts, Concept{Term: term, Significance: significance})
}

// Relate adds (or strengthens) an undirected relation between two
// concepts; unknown concepts are created with zero significance.
func (m *Map) Relate(a, b string, weight float64) {
	if a == b {
		return
	}
	ia, ok := m.byTerm[a]
	if !ok {
		m.AddConcept(a, 0)
		ia = m.byTerm[a]
	}
	ib, ok := m.byTerm[b]
	if !ok {
		m.AddConcept(b, 0)
		ib = m.byTerm[b]
	}
	_ = m.g.AddUndirected(ia, ib, EdgeRelated, weight)
}

// Len reports the number of concepts.
func (m *Map) Len() int { return len(m.concepts) }

// Concepts returns all concepts sorted by descending significance.
func (m *Map) Concepts() []Concept {
	out := append([]Concept(nil), m.concepts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Significance != out[j].Significance {
			return out[i].Significance > out[j].Significance
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// Has reports whether a concept exists.
func (m *Map) Has(term string) bool {
	_, ok := m.byTerm[term]
	return ok
}

// Significance returns a concept's significance (0 when absent).
func (m *Map) Significance(term string) float64 {
	id, ok := m.byTerm[term]
	if !ok {
		return 0
	}
	n, err := m.g.Node(id)
	if err != nil {
		return 0
	}
	return n.Weight
}

// RelationWeight returns the relation strength between two concepts.
func (m *Map) RelationWeight(a, b string) float64 {
	ia, ok := m.byTerm[a]
	if !ok {
		return 0
	}
	ib, ok := m.byTerm[b]
	if !ok {
		return 0
	}
	if e, ok := m.g.EdgeBetween(ia, ib, EdgeRelated); ok {
		return e.Weight
	}
	return 0
}

// Neighbors returns the related concepts of a term, sorted by relation
// weight.
func (m *Map) Neighbors(term string) []Concept {
	id, ok := m.byTerm[term]
	if !ok {
		return nil
	}
	var out []Concept
	for _, e := range m.g.Out(id) {
		n, err := m.g.Node(e.To)
		if err != nil {
			continue
		}
		out = append(out, Concept{Term: n.Key, Significance: e.Weight})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Significance != out[j].Significance {
			return out[i].Significance > out[j].Significance
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// Activate runs spreading activation from the seed terms: personalized
// PageRank over the concept graph with restart on the seeds. The result
// maps every concept to its contextual relevance — the §2.3 propagation
// of concepts "within the relevant neighborhoods of the knowledge
// network". Unknown seeds are ignored; with no known seed, significance
// is returned as the neutral field.
func (m *Map) Activate(seeds []string) map[string]float64 {
	restart := map[graph.NodeID]float64{}
	for _, s := range seeds {
		if id, ok := m.byTerm[s]; ok {
			restart[id] = 1
		}
	}
	out := make(map[string]float64, len(m.concepts))
	if len(restart) == 0 {
		for _, c := range m.concepts {
			out[c.Term] = c.Significance
		}
		return out
	}
	pr := m.g.PersonalizedPageRank(restart, graph.PageRankOptions{Damping: 0.7})
	for term, id := range m.byTerm {
		out[term] = pr[id]
	}
	return out
}

// ContextVector converts an activation field into a term-weight vector
// usable as a search/recommendation context, stemming terms to match the
// text engine's analysis chain.
func ContextVector(activation map[string]float64) textindex.Vector {
	v := make(textindex.Vector, len(activation))
	for term, w := range activation {
		if w <= 0 {
			continue
		}
		v[textindex.Stem(term)] += w
	}
	return v
}

// String summarizes the map for debugging.
func (m *Map) String() string {
	return fmt.Sprintf("conceptmap(%d concepts, %d relations)", m.Len(), m.g.NumEdges()/2)
}
