package server

// Elected-cluster failover tests: leader-kill promotion convergence and
// deposed-leader fencing. Both run in-process (httptest servers over
// real platforms) so they are -race-clean and deterministic enough for
// make race-nightly; the process-level equivalent lives in
// cmd/apismoke -failover.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hive"
	"hive/api"
	"hive/client"
	"hive/internal/election"
)

// clusterNode is one elected member: a platform plus its HTTP surface.
type clusterNode struct {
	url    string
	ts     *httptest.Server
	p      *hive.Platform
	killed bool
}

// kill simulates a crash: connections die first (in-flight long-polls
// cancel), then the platform closes. A FileLease-backed node leaves its
// lease to expire, exactly like a real crash.
func (n *clusterNode) kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.p.Close()
}

// startClusterNode opens an elected platform on its own data dir and
// serves it on a pre-bound listener (the URL must be known before Open:
// it is the node's advertised identity).
func startClusterNode(t *testing.T, l net.Listener, self string, peers []string, el election.Elector) *clusterNode {
	t.Helper()
	p, err := hive.Open(hive.Options{
		Dir: t.TempDir(),
		Cluster: &hive.ClusterConfig{
			SelfURL:  self,
			Peers:    peers,
			Election: el,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: New(p)}}
	ts.Start()
	n := &clusterNode{url: self, ts: ts, p: p}
	t.Cleanup(n.kill)
	return n
}

// listenLocal binds a loopback listener and returns it with its URL.
func listenLocal(t *testing.T) (net.Listener, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l, "http://" + l.Addr().String()
}

// waitRole blocks until the platform reports the role.
func waitRole(t *testing.T, p *hive.Platform, role string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.Role() == role {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node did not become %s (role %s, epoch %d)", role, p.Role(), p.Epoch())
}

// waitLeaderAmong blocks until exactly one live node leads and returns it.
func waitLeaderAmong(t *testing.T, nodes []*clusterNode, timeout time.Duration) *clusterNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leader *clusterNode
		for _, n := range nodes {
			if !n.killed && n.p.Role() == "leader" {
				leader = n
			}
		}
		if leader != nil {
			return leader
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no node claimed leadership")
	return nil
}

// TestClusterFailoverConvergence is the leader-kill promotion test: a
// three-node FileLease cluster takes writes through the cluster-aware
// SDK, the leader is killed mid-history, a follower promotes at a
// higher epoch, and the SDK's subsequent writes land on the new leader
// without re-targeting by the caller. No acknowledged write is lost and
// the survivors converge to identical state.
func TestClusterFailoverConvergence(t *testing.T) {
	leaseDir := t.TempDir()
	ttl := 500 * time.Millisecond

	var ls [3]net.Listener
	var urls [3]string
	for i := range ls {
		ls[i], urls[i] = listenLocal(t)
	}
	peersOf := func(i int) []string {
		var ps []string
		for j, u := range urls {
			if j != i {
				ps = append(ps, u)
			}
		}
		return ps
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		lease, err := election.NewFileLease(election.LeaseConfig{Dir: leaseDir, Self: urls[i], TTL: ttl})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = startClusterNode(t, ls[i], urls[i], peersOf(i), lease)
	}

	leader1 := waitLeaderAmong(t, nodes, 10*time.Second)
	epoch1 := leader1.p.Epoch()
	if epoch1 == 0 {
		t.Fatalf("elected leader at epoch 0")
	}

	// The SDK targets a follower on purpose: the first write must be
	// redirected by the not_leader hint, not by luck of construction.
	var followerURL string
	for _, n := range nodes {
		if n != leader1 {
			followerURL = n.url
			break
		}
	}
	ctx := context.Background()
	c := client.New(followerURL, client.WithCluster(urls[:]...))

	writeUser := func(id string) error {
		return c.CreateUser(ctx, api.User{ID: id, Name: "User " + id, Interests: []string{"failover"}})
	}
	for i := 0; i < 20; i++ {
		if err := writeUser(fmt.Sprintf("pre%02d", i)); err != nil {
			t.Fatalf("pre-failover write %d: %v", i, err)
		}
	}
	if c.Redirects() == 0 {
		t.Fatal("SDK was never redirected despite targeting a follower")
	}
	for _, n := range nodes {
		if n != leader1 {
			waitConverged(t, leader1.p, n.p, 20*time.Second)
		}
	}

	// Kill the leader. Its lease lapses; a survivor must claim it at a
	// strictly higher epoch.
	leader1.kill()

	// Writes continue through the same client handle. Individual calls
	// may exhaust their retry budget inside the election gap, so the
	// load loop retries until the cluster recovers — what a queue-backed
	// writer would do.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("post%02d", i)
		for {
			err := writeUser(id)
			if err == nil {
				break
			}
			// Inside the gap only two failures are legitimate: a typed
			// not_leader (election unresolved) or a transport error (the
			// dead node). Any other typed API error is a real bug.
			var ae *api.Error
			if errors.As(err, &ae) && ae.Code != api.CodeNotLeader {
				t.Fatalf("post-failover write %s: %v", id, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("post-failover write %s never accepted: %v", id, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	survivors := make([]*clusterNode, 0, 2)
	for _, n := range nodes {
		if !n.killed {
			survivors = append(survivors, n)
		}
	}
	leader2 := waitLeaderAmong(t, survivors, 10*time.Second)
	if epoch2 := leader2.p.Epoch(); epoch2 <= epoch1 {
		t.Fatalf("promotion did not advance the epoch: %d -> %d", epoch1, epoch2)
	}
	if leader2.p.Promotions() == 0 {
		t.Fatal("new leader reports zero promotions")
	}

	// Every write — pre- and post-failover — is on the new leader and on
	// the surviving follower once converged.
	for _, n := range survivors {
		if n != leader2 {
			waitConverged(t, leader2.p, n.p, 30*time.Second)
		}
	}
	for _, n := range survivors {
		for i := 0; i < 20; i++ {
			for _, prefix := range []string{"pre", "post"} {
				id := fmt.Sprintf("%s%02d", prefix, i)
				if _, err := n.p.GetUser(id); err != nil {
					t.Fatalf("node %s missing %s after failover: %v", n.url, id, err)
				}
			}
		}
	}
}

// TestDeposedLeaderFencing builds the split-brain directly with Manual
// electors: node A keeps believing it leads at epoch 1 while the rest
// of the cluster moved to B at epoch 2. A's post-deposition writes are
// journaled under the stale epoch and must be *rejected* by an
// epoch-2 follower — not silently applied, and never adopted via
// resync.
func TestDeposedLeaderFencing(t *testing.T) {
	elA, elB, elF := election.NewManual(), election.NewManual(), election.NewManual()

	lA, urlA := listenLocal(t)
	lB, urlB := listenLocal(t)
	lF, urlF := listenLocal(t)

	elA.Set(election.State{Role: election.Leader, Epoch: 1, Leader: urlA})
	a := startClusterNode(t, lA, urlA, []string{urlB, urlF}, elA)
	waitRole(t, a.p, "leader", 5*time.Second)

	for i := 0; i < 5; i++ {
		if err := a.p.RegisterUser(hive.User{ID: fmt.Sprintf("base%d", i), Name: "Base", Interests: []string{"fencing"}}); err != nil {
			t.Fatal(err)
		}
	}

	elB.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	b := startClusterNode(t, lB, urlB, []string{urlA, urlF}, elB)
	elF.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	f := startClusterNode(t, lF, urlF, []string{urlA, urlB}, elF)
	waitConverged(t, a.p, b.p, 20*time.Second)
	waitConverged(t, a.p, f.p, 20*time.Second)

	// The election moves on without telling A: B leads at epoch 2, F
	// follows B. A is now a deposed leader that still accepts writes.
	elB.Set(election.State{Role: election.Leader, Epoch: 2, Leader: urlB})
	waitRole(t, b.p, "leader", 5*time.Second)
	elF.Set(election.State{Role: election.Follower, Epoch: 2, Leader: urlB})

	for i := 0; i < 3; i++ {
		if err := b.p.RegisterUser(hive.User{ID: fmt.Sprintf("new%d", i), Name: "New", Interests: []string{"epoch2"}}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, b.p, f.p, 20*time.Second)

	// A journals zombie writes under its stale epoch 1.
	for i := 0; i < 2; i++ {
		if err := a.p.RegisterUser(hive.User{ID: fmt.Sprintf("zombie%d", i), Name: "Zombie"}); err != nil {
			t.Fatalf("deposed leader write %d: %v (A must still think it leads)", i, err)
		}
	}
	if a.p.Epoch() != 1 || a.p.Role() != "leader" {
		t.Fatalf("test setup: A = role %s epoch %d, want leader at 1", a.p.Role(), a.p.Epoch())
	}

	// Point F at the deposed leader. Everything A serves is behind F's
	// adopted epoch: the bootstrap snapshot is refused, nothing applies,
	// and F must NOT resync onto A's world. ReplicationApplied resets
	// with the new follower handle, so the no-regression check is on the
	// store's own sequence.
	seqBefore := f.p.Store().ChangeSeq()
	elF.Set(election.State{Role: election.Follower, Epoch: 2, Leader: urlA})

	deadline := time.Now().Add(10 * time.Second)
	for f.p.ReplicationFenced() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never fenced the deposed leader: applied %d, lastErr %v",
				f.p.ReplicationApplied(), f.p.LastReplicationError())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.p.LastReplicationError(); err == nil {
		t.Fatal("fenced follower reports no replication error")
	}
	// Give the tail loop room to do damage if it were going to, then
	// verify none was done: no zombie state, no regression below the
	// epoch-2 history already applied.
	time.Sleep(200 * time.Millisecond)
	if got := f.p.Store().ChangeSeq(); got != seqBefore {
		t.Fatalf("follower store moved from seq %d to %d against a deposed leader", seqBefore, got)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.p.GetUser(fmt.Sprintf("zombie%d", i)); err == nil {
			t.Fatalf("zombie%d from the deposed leader leaked into the follower", i)
		}
	}
	if _, err := f.p.GetUser("new0"); err != nil {
		t.Fatalf("epoch-2 state lost while fenced: %v", err)
	}

	// Re-point F at the real leader: it converges, and the zombies exist
	// nowhere in the epoch-2 world.
	elF.Set(election.State{Role: election.Follower, Epoch: 2, Leader: urlB})
	waitConverged(t, b.p, f.p, 20*time.Second)
	for _, p := range []*hive.Platform{b.p, f.p} {
		for i := 0; i < 5; i++ {
			if _, err := p.GetUser(fmt.Sprintf("base%d", i)); err != nil {
				t.Fatalf("pre-deposition base%d missing: %v", i, err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, err := p.GetUser(fmt.Sprintf("new%d", i)); err != nil {
				t.Fatalf("epoch-2 new%d missing: %v", i, err)
			}
		}
		for i := 0; i < 2; i++ {
			if _, err := p.GetUser(fmt.Sprintf("zombie%d", i)); err == nil {
				t.Fatalf("zombie%d survived in the epoch-2 world", i)
			}
		}
	}
}
