// Package core implements the MiNC engine (paper §2, ref [8]): the
// middleware for network- and context-aware recommendations that powers
// every knowledge service of Hive. It derives the multi-layer context
// network of Figure 3 from the social store, aligns and integrates the
// layers, and provides evidence-based relationship discovery and
// explanation (Figure 2), context-aware search and ranking driven by the
// active workpad (Figure 4), peer and resource recommendation,
// collaborative filtering, community discovery, update digests, and
// activity change monitoring.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hive/internal/align"
	"hive/internal/biblio"
	"hive/internal/community"
	"hive/internal/conceptmap"
	"hive/internal/graph"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/textindex"
)

// ErrUnknownUser is returned when a service references a missing user.
var ErrUnknownUser = errors.New("core: unknown user")

// Document ID prefixes in the text index.
const (
	DocPaper        = "paper/"
	DocPresentation = "pres/"
	DocQuestion     = "question/"
)

// Layer names of the integrated context network.
const (
	LayerConnections = "connections"
	LayerCoauthor    = "coauthor"
	LayerAttendance  = "attendance"
	LayerQA          = "qa"
)

// Engine is the assembled knowledge middleware: an immutable snapshot of
// every derived knowledge structure. A Builder produces it (fanning the
// derivation stages out across workers); after Build returns, nothing
// mutates the Engine, so any number of goroutines can serve queries from
// it while a replacement snapshot is built in the background and swapped
// in atomically (the paper's deployment refreshed knowledge structures
// periodically and offline; hive.Platform does it with zero downtime).
type Engine struct {
	store *social.Store

	index    *textindex.Index
	concepts *conceptmap.Map

	papers []social.Paper
	users  []string

	coauthorNet *graph.Graph
	citationNet *graph.Graph
	litNet      *graph.Graph // bipartite author/paper graph

	// Per-evidence user layers, derived concurrently then integrated.
	connLayer   *graph.Graph
	coauthLayer *graph.Graph
	attendLayer *graph.Graph
	qaLayer     *graph.Graph

	layers     []*align.Layer
	integrated *align.Integrated
	peerGraph  *graph.Graph // alias of integrated.G

	kb *rdf.Store // weighted RDF export of all layers (R2DB)

	communities []community.Community

	builtAt  time.Time
	buildDur time.Duration
}

// Build assembles an engine snapshot from a social store with default
// parallelism. It is shorthand for (&Builder{Store: st}).Build().
func Build(st *social.Store) (*Engine, error) {
	return (&Builder{Store: st}).Build()
}

// BuiltAt reports when this snapshot finished building.
func (e *Engine) BuiltAt() time.Time { return e.builtAt }

// BuildDuration reports how long this snapshot took to build.
func (e *Engine) BuildDuration() time.Duration { return e.buildDur }

// Store exposes the underlying social store.
func (e *Engine) Store() *social.Store { return e.store }

// Index exposes the text index (search services build on it).
func (e *Engine) Index() *textindex.Index { return e.index }

// ConceptMap exposes the bootstrapped concept map.
func (e *Engine) ConceptMap() *conceptmap.Map { return e.concepts }

// KnowledgeBase exposes the weighted RDF export (R2DB layer).
func (e *Engine) KnowledgeBase() *rdf.Store { return e.kb }

// PeerGraph exposes the integrated peer network.
func (e *Engine) PeerGraph() *graph.Graph { return e.peerGraph }

func (e *Engine) buildTextIndex() error {
	for _, p := range e.papers {
		e.index.Add(DocPaper+p.ID, p.Title+". "+p.Abstract)
	}
	for _, u := range e.users {
		for _, prID := range e.store.PresentationsOfUser(u) {
			pr, err := e.store.Presentation(prID)
			if err != nil {
				return err
			}
			e.index.Add(DocPresentation+pr.ID, pr.Title+". "+pr.Text)
		}
		for _, qID := range e.store.QuestionsBy(u) {
			q, err := e.store.Question(qID)
			if err != nil {
				return err
			}
			e.index.Add(DocQuestion+q.ID, q.Text)
		}
	}
	return nil
}

func (e *Engine) buildConceptMap() {
	var docs []string
	for _, p := range e.papers {
		docs = append(docs, p.Title+". "+p.Abstract)
	}
	m, err := conceptmap.Bootstrap(docs, conceptmap.BootstrapOptions{MaxConcepts: 80})
	if err != nil {
		m = conceptmap.New() // empty corpus -> empty map, services degrade gracefully
	}
	e.concepts = m
}

func (e *Engine) buildBibliographicLayers() {
	e.coauthorNet = biblio.CoauthorNetwork(e.papers)
	e.citationNet = biblio.CitationGraph(e.papers)
	e.litNet = biblio.AuthorPaperGraph(e.papers)
}

// Layers exposes the evidence layers (for alignment experiments).
func (e *Engine) Layers() []*align.Layer { return e.layers }

// Integrated exposes the integrated context network.
func (e *Engine) Integrated() *align.Integrated { return e.integrated }

// ownersOf resolves the users responsible for an entity: paper authors,
// presentation owner, session chair, question author.
func (e *Engine) ownersOf(entity string) []string {
	if p, err := e.store.Paper(entity); err == nil {
		return p.Authors
	}
	if pr, err := e.store.Presentation(entity); err == nil {
		return []string{pr.Owner}
	}
	if s, err := e.store.Session(entity); err == nil && s.Chair != "" {
		return []string{s.Chair}
	}
	if q, err := e.store.Question(entity); err == nil {
		return []string{q.Author}
	}
	return nil
}

// exportKnowledgeBase mirrors the layers into the weighted RDF store so
// R2DB-style ranked path queries can explain any relationship.
func (e *Engine) exportKnowledgeBase() {
	for _, p := range e.papers {
		for _, a := range p.Authors {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + a, Predicate: "authored", Object: "paper:" + p.ID, Weight: 1})
		}
		for _, c := range p.Citations {
			_ = e.kb.Add(rdf.Triple{Subject: "paper:" + p.ID, Predicate: "cites", Object: "paper:" + c, Weight: 0.9})
		}
		if p.SessionID != "" {
			_ = e.kb.Add(rdf.Triple{Subject: "paper:" + p.ID, Predicate: "presentedIn", Object: "session:" + p.SessionID, Weight: 1})
		}
	}
	for _, u := range e.users {
		for _, o := range e.store.ConnectionsOf(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "connected", Object: "user:" + o, Weight: 1})
		}
		for _, o := range e.store.Following(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "follows", Object: "user:" + o, Weight: 0.7})
		}
		for _, s := range e.store.SessionsAttendedBy(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "attends", Object: "session:" + s, Weight: 0.8})
		}
	}
}

// Communities returns the discovered peer communities as lists of user
// IDs, largest first (Table 1: "community discovery and tracking").
func (e *Engine) Communities() [][]string {
	var out [][]string
	for _, c := range e.communities {
		var users []string
		for _, id := range c {
			n, err := e.peerGraph.Node(id)
			if err == nil {
				users = append(users, n.Key)
			}
		}
		out = append(out, users)
	}
	return out
}

// CommunityOf returns the community containing the user (nil when the
// user is unknown).
func (e *Engine) CommunityOf(userID string) []string {
	for _, c := range e.Communities() {
		for _, u := range c {
			if u == userID {
				return c
			}
		}
	}
	return nil
}

// entityText renders any entity into text for context building.
func (e *Engine) entityText(kind social.ItemKind, ref string) string {
	switch kind {
	case social.ItemPaper:
		if p, err := e.store.Paper(ref); err == nil {
			return p.Title + ". " + p.Abstract
		}
	case social.ItemPresentation:
		if pr, err := e.store.Presentation(ref); err == nil {
			return pr.Title + ". " + pr.Text
		}
	case social.ItemSession:
		if s, err := e.store.Session(ref); err == nil {
			parts := []string{s.Title, s.Track}
			for _, pid := range e.store.PapersOfSession(ref) {
				if p, err := e.store.Paper(pid); err == nil {
					parts = append(parts, p.Title)
				}
			}
			return strings.Join(parts, ". ")
		}
	case social.ItemUser:
		if u, err := e.store.User(ref); err == nil {
			return u.Name + ". " + strings.Join(u.Interests, ". ") + ". " + u.Bio
		}
	case social.ItemQuestion:
		if q, err := e.store.Question(ref); err == nil {
			return q.Text
		}
	case social.ItemCollection:
		if c, err := e.store.Collection(ref); err == nil {
			var parts []string
			for _, it := range c.Items {
				parts = append(parts, e.entityText(it.Kind, it.Ref))
			}
			return strings.Join(parts, ". ")
		}
	}
	return ""
}

// String summarizes the engine for logs.
func (e *Engine) String() string {
	return fmt.Sprintf("mincengine(users=%d papers=%d peers=%d/%d concepts=%d kb=%d)",
		len(e.store.Users()), len(e.papers),
		e.peerGraph.NumNodes(), e.peerGraph.NumEdges(),
		e.concepts.Len(), e.kb.Len())
}
