// Package server exposes the Hive platform as a versioned JSON REST
// API — the web-facing surface of Figure 1. The paper's deployment used
// JomSocial/Joomla; this server is the stdlib net/http substitute
// offering the same service set (profiles, connections, follows,
// content, check-ins, Q&A, workpads, feeds) plus the knowledge services
// (relationship explanation, recommendations, context-aware search,
// previews, digests).
//
// The contract lives in the hive/api package: /api/v1 routes speak
// typed DTOs, list endpoints return cursor-paginated api.Page envelopes,
// errors use the structured envelope with stable codes, and knowledge
// GETs support conditional requests (ETag keyed on the snapshot
// generation, so an unchanged snapshot revalidates with a 304 instead
// of a recompute+encode). Legacy unversioned /api/* routes remain as
// thin deprecated aliases onto the same handlers for one release.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hive"
	"hive/api"
	"hive/internal/core"
	"hive/internal/journal"
	"hive/internal/metrics"
	"hive/internal/social"
	"hive/internal/textindex"
)

// minRevalidateInterval bounds how often stale reads may trigger a
// background rebuild: under sustained write+read traffic, rebuilds
// would otherwise run back-to-back and pin cores (each write re-dirties
// the snapshot, each read would kick a new refresh).
const minRevalidateInterval = time.Second

// Clamp ceilings for non-pagination integer parameters: how many
// results a single request may ask the engine to compute.
const (
	maxK      = api.MaxPageSize
	maxBudget = 100
)

// mSearchSeconds is the same instrument hive.Platform registers for
// its library-level search calls (registration is idempotent): the
// unsharded HTTP handler reads the engine directly, so it observes
// here to keep the series moving over the wire path too. The sharded
// fan-out reports through hive_scatter_fanout_seconds instead.
var mSearchSeconds = metrics.Default.Histogram(metrics.SearchSeconds,
	"Latency of one platform-level search over the frozen read path.", nil)

// Config tunes the middleware stack. The zero value disables the
// operational limits (no timeout, no in-flight cap, no rate limit, no
// access log) and keeps gzip on — the right default for tests and
// embedded use; cmd/hived wires real limits from flags.
type Config struct {
	// Timeout bounds per-request handling time (0 = unbounded).
	Timeout time.Duration
	// MaxInFlight caps concurrent requests (0 = uncapped); excess gets 503.
	MaxInFlight int
	// QPS rate-limits requests globally (0 = unlimited); excess gets 429.
	QPS float64
	// Burst is the rate limiter's bucket size (defaults to max(1, QPS)).
	Burst int
	// AccessLog, when set, receives one line per request.
	AccessLog *log.Logger
	// ErrorLog receives panic reports (defaults to log.Default()).
	ErrorLog *log.Logger
	// DisableGzip turns off response compression.
	DisableGzip bool
	// DisableMetrics turns off the instrumentation layer: no /metrics
	// exposition, no per-route counters/histograms, no trace recording
	// (inbound X-Hive-Trace-Id headers pass through unused).
	DisableMetrics bool
}

// Server routes HTTP requests to a Platform, or — when built with
// NewSharded — to a set of shard-leader Platforms behind the owner-hash
// router (writes route to the owning shard, reads scatter-gather).
type Server struct {
	p   *hive.Platform
	sh  *hive.Sharded // nil on unsharded servers
	mux *http.ServeMux
	h   http.Handler // mux wrapped in the middleware chain

	// traces is the bounded ring behind GET /api/v1/debug/traces; nil
	// when Config.DisableMetrics.
	traces *metrics.Recorder

	lastReval atomic.Int64 // unix nanos of the last read-triggered refresh kick
}

// New builds a server around a platform with default Config.
func New(p *hive.Platform) *Server { return NewWith(p, Config{}) }

// NewWith builds a server with an explicit middleware configuration.
func NewWith(p *hive.Platform, cfg Config) *Server {
	return newServer(p, nil, cfg)
}

// NewSharded builds a server fronting a sharded platform: every
// mutation routes to the owning user's shard leader, reads fan out
// across the shard engines, and healthz/cluster expose the shard map.
// Replication endpoints and shard-agnostic reads answer from shard 0.
func NewSharded(sh *hive.Sharded, cfg Config) *Server {
	return newServer(sh.Shard(0), sh, cfg)
}

func newServer(p *hive.Platform, sh *hive.Sharded, cfg Config) *Server {
	s := &Server{p: p, sh: sh, mux: http.NewServeMux()}
	if !cfg.DisableMetrics {
		s.traces = metrics.NewRecorder(metrics.DefaultTraceCapacity)
	}
	s.routes()

	errLog := cfg.ErrorLog
	if errLog == nil {
		errLog = log.Default()
	}
	// Outermost first: tag, observe, log, catch panics, then enforce
	// budget and load limits, compressing innermost so limit rejections
	// stay cheap. Observe sits outside the access log so the log line
	// (and every error envelope below it) sees the request's trace.
	mws := []Middleware{RequestID}
	if !cfg.DisableMetrics {
		mws = append(mws, Observe(metrics.Default, s.traces, s.routePattern))
	}
	if cfg.AccessLog != nil {
		mws = append(mws, AccessLog(cfg.AccessLog))
	}
	mws = append(mws, Recover(errLog))
	if cfg.Timeout > 0 {
		mws = append(mws, exceptPaths(Timeout(cfg.Timeout), timeoutExempt))
	}
	// Replication traffic is exempt from the load limits: the events
	// feed parks by design (each connected follower would permanently
	// burn one in-flight slot), and a rate-limited or shed poll
	// inflates replication lag exactly when the leader is busiest. The
	// metrics scrape is exempt for the same reason inverted: shedding
	// the scrape blinds the operator exactly when the server is busiest.
	if cfg.MaxInFlight > 0 {
		mws = append(mws, exceptPaths(MaxInFlight(cfg.MaxInFlight), capExempt))
	}
	if cfg.QPS > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(cfg.QPS)
		}
		mws = append(mws, exceptPaths(RateLimit(cfg.QPS, burst), capExempt))
	}
	if !cfg.DisableGzip {
		mws = append(mws, Gzip)
	}
	s.h = Chain(s.mux, mws...)
	return s
}

// routePattern resolves a request's matched mux pattern for the route
// metric label (a second mux lookup — the middleware runs outside the
// mux, so the pattern the mux stamps on its own request copy is not
// visible here). The method prefix is stripped: the method is its own
// label.
func (s *Server) routePattern(r *http.Request) string {
	_, pattern := s.mux.Handler(r)
	if _, route, ok := strings.Cut(pattern, " "); ok {
		return route
	}
	return pattern
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// timeoutExempt lists routes whose handling time legitimately scales
// with data size: a synchronous snapshot rebuild (?wait=true) or a bulk
// batch on a large deployment can take minutes, and a mid-flight 503
// would be indistinguishable from failure while the work completes
// server-side anyway.
func timeoutExempt(path string) bool {
	switch path {
	case "/api/v1/batch", "/api/v1/admin/refresh", "/api/admin/refresh", "/api/refresh":
		return true
	}
	// The replication feed long-polls by design (a caught-up follower
	// parks here until the leader writes), and the bootstrap snapshot
	// scales with the dataset.
	return replicationPath(path)
}

// replicationPath marks the replication endpoints, which are exempt
// from the per-request operational limits (see NewWith).
func replicationPath(path string) bool {
	switch path {
	case "/api/v1/replication/events", "/api/v1/replication/snapshot":
		return true
	}
	return false
}

// capExempt marks paths exempt from the in-flight and QPS caps: the
// replication endpoints plus the metrics scrape — load shedding must
// never hide the load from the telemetry that reports it.
func capExempt(path string) bool {
	return replicationPath(path) || path == "/metrics"
}

// exceptPaths applies mw to all requests except those whose path the
// exempt predicate accepts.
func exceptPaths(mw Middleware, exempt func(string) bool) Middleware {
	return func(next http.Handler) http.Handler {
		limited := mw(next)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if exempt(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			limited.ServeHTTP(w, r)
		})
	}
}

// engine resolves the serving snapshot without ever blocking reads on a
// rebuild: the current snapshot is served as-is, and when it is stale a
// background refresh is kicked so a later request observes fresh data
// (stale-while-revalidate). Only the very first request — before any
// snapshot exists — builds synchronously.
func (s *Server) engine() (*core.Engine, error) {
	if eng := s.p.Snapshot(); eng != nil {
		if s.stale() {
			s.maybeRevalidate()
		}
		return eng, nil
	}
	return s.p.Engine()
}

// stale/generation/refreshAsync abstract snapshot freshness over the
// one-platform and sharded layouts: sharded, "stale" means any shard
// has unapplied events and the generation is the sum of the shard
// generations (any shard swap changes cross-shard results).
func (s *Server) stale() bool {
	if s.sh != nil {
		return s.sh.Stale()
	}
	return s.p.Stale()
}

func (s *Server) generation() uint64 {
	if s.sh != nil {
		return s.sh.Generation()
	}
	return s.p.Generation()
}

func (s *Server) refreshAsync() {
	if s.sh != nil {
		s.sh.RefreshAsync()
		return
	}
	s.p.RefreshAsync()
}

// maybeRevalidate kicks a background refresh at most once per
// minRevalidateInterval (the CAS makes one winner per window).
func (s *Server) maybeRevalidate() {
	now := time.Now().UnixNano()
	last := s.lastReval.Load()
	if now-last < int64(minRevalidateInterval) {
		return
	}
	if s.lastReval.CompareAndSwap(last, now) {
		s.refreshAsync()
	}
}

// routes registers the v1 surface and the legacy unversioned aliases.
func (s *Server) routes() {
	m := s.mux

	// One handler per mutation, bound once: the v1 route, the legacy
	// alias and the batch dispatch (applyEntity) all share the applier,
	// so semantics cannot drift between the three.
	// Owner-hashed kinds verify a declared X-Hive-Shard header; kinds
	// whose placement the client cannot compute (broadcast reference
	// entities, probe-routed children) use the plain adapter.
	postUser := create(s.applyUser)
	postConference := create(s.applyConference)
	postSession := create(s.applySession)
	postPaper := createOwned(s, api.PaperOwner, s.applyPaper)
	postPresentation := create(s.applyPresentation)
	postConnection := createOwned(s, func(r api.ConnectRequest) string { return r.A }, s.applyConnect)
	postCheckin := createOwned(s, func(r api.CheckinRequest) string { return r.UserID }, s.applyCheckin)
	postQuestion := create(s.applyQuestion)
	postAnswer := create(s.applyAnswer)
	postComment := create(s.applyComment)
	postWorkpad := createOwned(s, func(wp api.Workpad) string { return wp.Owner }, s.applyWorkpad)
	postFollow := createOwned(s, func(r api.FollowRequest) string { return r.Follower }, s.applyFollow)

	// --- /api/v1: mutations ------------------------------------------------
	m.HandleFunc("POST /api/v1/users", postUser)
	m.HandleFunc("POST /api/v1/conferences", postConference)
	m.HandleFunc("POST /api/v1/sessions", postSession)
	m.HandleFunc("POST /api/v1/papers", postPaper)
	m.HandleFunc("POST /api/v1/presentations", postPresentation)
	m.HandleFunc("POST /api/v1/connections", postConnection)
	m.HandleFunc("POST /api/v1/follows", postFollow)
	m.HandleFunc("POST /api/v1/checkins", postCheckin)
	m.HandleFunc("POST /api/v1/questions", postQuestion)
	m.HandleFunc("POST /api/v1/answers", postAnswer)
	m.HandleFunc("POST /api/v1/comments", postComment)
	m.HandleFunc("POST /api/v1/workpads", postWorkpad)
	m.HandleFunc("POST /api/v1/workpads/{id}/items", s.postWorkpadItem)
	m.HandleFunc("POST /api/v1/workpads/{id}/activate", s.postWorkpadActivate)
	m.HandleFunc("POST /api/v1/batch", s.postBatch)
	m.HandleFunc("POST /api/v1/admin/refresh", s.postAdminRefresh)

	// --- /api/v1: replication ------------------------------------------------
	// The journal feed and the bootstrap snapshot. Served by any
	// journaled node (followers can chain); in-memory nodes answer with
	// a typed error. Writes on a follower are rejected by the platform
	// wrappers themselves (NotLeaderError -> not_leader envelope), so
	// every mutation route above is follower-safe without per-route
	// guards; postBatch checks explicitly because it drives the store
	// directly.
	m.HandleFunc("GET /api/v1/replication/events", s.getReplicationEvents)
	m.HandleFunc("GET /api/v1/replication/snapshot", s.getReplicationSnapshot)
	m.HandleFunc("GET /api/v1/cluster", s.getCluster)

	// --- Observability -----------------------------------------------------
	// Prometheus text exposition and the slow-trace ring. Absent (404)
	// when Config.DisableMetrics; /metrics is exempt from the QPS and
	// in-flight caps (capExempt) so shedding never blinds the operator.
	if s.traces != nil {
		m.HandleFunc("GET /metrics", s.getMetrics)
		m.HandleFunc("GET /api/v1/debug/traces", s.getTraces)
	}

	// --- /api/v1: reads ----------------------------------------------------
	m.HandleFunc("GET /api/v1/healthz", s.getHealthz)
	m.HandleFunc("GET /api/v1/users/{id}", s.getUser)
	m.HandleFunc("GET /api/v1/users", page(s.fetchUsers))
	m.HandleFunc("GET /api/v1/sessions/{id}/attendees", page(s.fetchAttendees))
	m.HandleFunc("GET /api/v1/users/{id}/workpad", s.getActiveWorkpad)
	feedV1 := page(s.fetchFeed)
	if s.sh != nil {
		// Sharded feeds page with a per-shard sequence-vector cursor
		// (api.EncodeShardCursor), not the offset cursor page() mints.
		feedV1 = s.getShardedFeed
	}
	m.HandleFunc("GET /api/v1/users/{id}/feed", feedV1)
	m.HandleFunc("GET /api/v1/tags/{tag}/events", page(s.fetchTagEvents))

	// Knowledge services: engine-backed, so their responses are a pure
	// function of the snapshot — conditional GETs revalidate on the
	// snapshot generation.
	m.HandleFunc("GET /api/v1/relationship", s.etag(s.getRelationship))
	m.HandleFunc("GET /api/v1/users/{id}/recommendations/peers", s.etag(page(s.fetchPeerRecs)))
	m.HandleFunc("GET /api/v1/users/{id}/recommendations/resources", s.etag(page(s.fetchResourceRecs)))
	m.HandleFunc("GET /api/v1/users/{id}/sessions/suggest", s.etag(page(s.fetchSessionSuggestions)))
	m.HandleFunc("GET /api/v1/search", s.etag(page(s.fetchSearch)))
	m.HandleFunc("GET /api/v1/preview", s.etag(s.getPreview))
	m.HandleFunc("GET /api/v1/users/{id}/digest", s.etag(s.getDigest))
	m.HandleFunc("GET /api/v1/communities", s.etag(page(s.fetchCommunities)))
	m.HandleFunc("GET /api/v1/users/{id}/history", s.etag(page(s.fetchHistory)))
	m.HandleFunc("GET /api/v1/users/{id}/resource-relationship", s.etag(s.getResourceRelationship))
	m.HandleFunc("GET /api/v1/knowledge/paths", s.etag(s.getKnowledgePaths))

	// --- Legacy unversioned aliases (deprecated, one release) --------------
	// Same handlers; list endpoints keep their historical bare-array
	// shape but are now capped at the v1 page-size ceiling, and error
	// responses use the v1 structured envelope (documented in API.md).
	alias := func(pattern string, h http.HandlerFunc) {
		m.Handle(pattern, Deprecated(h))
	}
	alias("GET /api/healthz", s.getHealthz)
	alias("POST /api/users", postUser)
	alias("GET /api/users/{id}", s.getUser)
	alias("GET /api/users", legacyList(s.fetchUsers, "limit", api.DefaultPageSize))
	alias("POST /api/conferences", postConference)
	alias("POST /api/sessions", postSession)
	alias("POST /api/papers", postPaper)
	alias("POST /api/presentations", postPresentation)
	alias("POST /api/connections", postConnection)
	// The legacy follow body was {"a": follower, "b": followee}.
	alias("POST /api/follows", create(func(r api.ConnectRequest) error {
		return s.applyFollow(api.FollowRequest{Follower: r.A, Followee: r.B})
	}))
	alias("POST /api/checkins", postCheckin)
	alias("GET /api/sessions/{id}/attendees", legacyList(s.fetchAttendees, "limit", api.MaxPageSize))
	alias("POST /api/questions", postQuestion)
	alias("POST /api/answers", postAnswer)
	alias("POST /api/comments", postComment)
	alias("POST /api/workpads", postWorkpad)
	alias("POST /api/workpads/{id}/items", s.postWorkpadItem)
	alias("POST /api/workpads/{id}/activate", s.postWorkpadActivate)
	alias("GET /api/users/{id}/workpad", s.getActiveWorkpad)
	alias("GET /api/users/{id}/feed", s.legacyFeed)
	alias("GET /api/tags/{tag}/events", legacyList(s.fetchTagEvents, "limit", api.MaxPageSize))
	alias("GET /api/relationship", s.getRelationship)
	alias("GET /api/users/{id}/recommendations/peers", legacyList(s.fetchPeerRecs, "k", 5))
	alias("GET /api/users/{id}/recommendations/resources", legacyList(s.fetchResourceRecs, "k", 5))
	alias("GET /api/users/{id}/sessions/suggest", legacyList(s.fetchSessionSuggestions, "k", 5))
	alias("GET /api/search", legacyList(s.fetchSearch, "k", 10))
	alias("GET /api/preview", s.getPreview)
	alias("GET /api/users/{id}/digest", s.getDigest)
	alias("GET /api/communities", legacyList(s.fetchCommunities, "limit", api.MaxPageSize))
	alias("GET /api/users/{id}/history", legacyList(s.fetchHistory, "limit", 50))
	alias("GET /api/users/{id}/resource-relationship", s.getResourceRelationship)
	alias("GET /api/knowledge/paths", s.getKnowledgePaths)
	alias("POST /api/refresh", s.postRefreshSync)
	alias("POST /api/admin/refresh", s.postAdminRefresh)
}

// --- Generic handler adapters ------------------------------------------------

// Request-body size caps: json.Decoder buffers the payload in memory
// before validation, so unbounded bodies are an OOM vector the
// in-flight/QPS limits don't cover.
const (
	maxEntityBody = 1 << 20  // single-entity requests
	maxBatchBody  = 64 << 20 // bulk ingest
)

// decodeBody JSON-decodes a capped request body into v, writing the
// appropriate error envelope (413 over the cap, 400 on bad JSON) and
// returning false on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, r, http.StatusRequestEntityTooLarge, api.CodePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad json: "+err.Error())
		return false
	}
	return true
}

// create adapts a typed JSON mutation handler: decode the DTO, apply,
// answer 201 with the created envelope.
func create[T any](fn func(T) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v T
		if !decodeBody(w, r, &v, maxEntityBody) {
			return
		}
		if err := fn(v); err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusCreated, api.CreatedResponse{Status: "created"})
	}
}

// createOwned adapts an owner-hashed mutation: like create, but the
// declared X-Hive-Shard header (if any) is verified against the owner's
// true shard before the write applies.
func createOwned[T any](s *Server, ownerOf func(T) string, fn func(T) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v T
		if !decodeBody(w, r, &v, maxEntityBody) {
			return
		}
		if err := s.checkShard(r, ownerOf(v)); err != nil {
			writeErr(w, r, err)
			return
		}
		if err := fn(v); err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusCreated, api.CreatedResponse{Status: "created"})
	}
}

// checkShard verifies a write's declared owner shard against this
// deployment's shard map. A request without the header is routed
// server-side and never rejected; a mismatch answers CodeWrongShard
// with the correct placement so the client can refresh its map and
// retry.
func (s *Server) checkShard(r *http.Request, owner string) error {
	if s.sh == nil || owner == "" {
		return nil
	}
	want := s.sh.ShardOf(owner)
	// The resolved shard is part of the request's trace identity — the
	// access log and debug/traces report where the write actually went,
	// header or no header.
	metrics.TraceFrom(r.Context()).SetShard(want)
	h := r.Header.Get(api.ShardHeader)
	if h == "" {
		return nil
	}
	declared, err := strconv.Atoi(h)
	if err != nil {
		return fmt.Errorf("%w: bad %s header: %v", social.ErrInvalid, api.ShardHeader, err)
	}
	if declared == want {
		return nil
	}
	return &api.Error{
		Code:    api.CodeWrongShard,
		Message: fmt.Sprintf("owner %q lives on shard %d of %d, not shard %d: refresh the shard map", owner, want, s.sh.ShardCount(), declared),
		Details: map[string]any{
			"expected_shard": want,
			"shard_count":    s.sh.ShardCount(),
			"owner":          owner,
		},
		HTTPStatus: http.StatusConflict,
	}
}

// fetcher produces up to n items for a list endpoint, reading its
// endpoint-specific parameters from the request. n bounds how many
// items the fetch may compute from position zero; implementations
// backed by cheap full listings may ignore it.
type fetcher[T any] func(r *http.Request, n int) ([]T, error)

// page adapts a fetcher into the v1 cursor-paginated handler. It
// fetches one element past the page end so NextCursor is only set when
// a further page actually exists.
func page[T any](fetch fetcher[T]) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		limit := intParam(r, "limit", api.DefaultPageSize, 1, api.MaxPageSize)
		offset, err := api.DecodeCursor(r.URL.Query().Get("cursor"))
		if err != nil {
			writeErr(w, r, err)
			return
		}
		items, err := fetch(r, offset+limit+1)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, api.Paginate(items, offset, limit))
	}
}

// legacyList adapts a fetcher into the historical bare-array shape,
// bounded by the endpoint's legacy size parameter (clamped — the
// unversioned surface no longer returns unbounded lists).
func legacyList[T any](fetch fetcher[T], param string, def int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := intParam(r, param, def, 1, api.MaxPageSize)
		items, err := fetch(r, n)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, api.Paginate(items, 0, n).Items)
	}
}

// etag adds conditional-GET support keyed on the snapshot generation.
// Knowledge responses are a pure function of (snapshot, URL), so a
// matching If-None-Match for the still-serving generation is answered
// 304 before any engine work. The generation is read *before* the
// handler resolves the snapshot: if a swap races in between, the
// response is tagged one generation old and a client merely revalidates
// once more — never the reverse (a 304 for content it doesn't hold).
func (s *Server) etag(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The 304 fast path must not starve freshness: a revalidating
		// client would otherwise never reach the handler's engine
		// resolution, so a stale snapshot (same generation, new data)
		// would pin it to 304s forever. Kick the background refresh
		// here too.
		if s.stale() {
			s.maybeRevalidate()
		}
		tag := fmt.Sprintf(`"hive-g%d"`, s.generation())
		if match := r.Header.Get("If-None-Match"); match != "" && etagMatch(match, tag) {
			w.Header().Set("ETag", tag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// Stamp the tag only on success: a 404/500 envelope has no
		// representation for the client to cache.
		h(&etagOnSuccess{ResponseWriter: w, tag: tag}, r)
	}
}

// etagOnSuccess injects the ETag header just before a 2xx status is
// committed, leaving error responses untagged.
type etagOnSuccess struct {
	http.ResponseWriter
	tag         string
	wroteHeader bool
}

func (e *etagOnSuccess) WriteHeader(code int) {
	if !e.wroteHeader {
		e.wroteHeader = true
		if code >= 200 && code < 300 {
			e.Header().Set("ETag", e.tag)
		}
	}
	e.ResponseWriter.WriteHeader(code)
}

func (e *etagOnSuccess) Write(b []byte) (int, error) {
	if !e.wroteHeader {
		e.WriteHeader(http.StatusOK)
	}
	return e.ResponseWriter.Write(b)
}

// etagMatch reports whether the If-None-Match header value matches tag,
// honoring lists. The '*' wildcard is deliberately NOT a match: per RFC
// 9110 it matches only when a current representation exists, which is
// unknown before the handler runs — treating it as a miss costs one
// full response instead of risking a 304 for a resource that 404s.
func etagMatch(header, tag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == tag {
			return true
		}
	}
	return false
}

// --- Replication ---------------------------------------------------------------

// maxReplWait bounds the long-poll hold time so a follower's request
// never parks indefinitely on a quiet leader.
const (
	maxReplWait     = 30 * time.Second
	defaultReplMax  = 256
	maxReplBatchReq = 4096
)

// getReplicationEvents serves the change-journal feed: batches after
// ?from=SEQ, up to ?max, long-polling up to ?wait_ms when the caller is
// caught up. 410 gone + code "compacted" means retention dropped the
// range and the follower must re-bootstrap from the snapshot endpoint.
//
// ?epoch=N asserts the poller's adopted leadership term: a request
// ahead of this node's term is answered 409 + code "stale_epoch" — the
// poller has adopted a newer term, so this node is a deposed leader (or
// lagging peer) whose feed must not be applied. The poller re-resolves
// the leader instead of consuming fenced batches. Asserting 0 (or
// omitting the parameter) skips the check, which keeps pre-epoch
// followers working against upgraded leaders.
func (s *Server) getReplicationEvents(w http.ResponseWriter, r *http.Request) {
	from, err := uintParam(r, "from")
	if err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeInvalidArgument, "bad from: "+err.Error())
		return
	}
	reqEpoch, err := uintParam(r, "epoch")
	if err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeInvalidArgument, "bad epoch: "+err.Error())
		return
	}
	if cur := s.p.Epoch(); reqEpoch > cur {
		writeErr(w, r, &hive.StaleEpochError{Requested: reqEpoch, Current: cur})
		return
	}
	// ?self=URL&applied=SEQ&commit=SEQ piggybacks a follower progress
	// report on the poll — the ack path of quorum writes. The ack is
	// recorded before the feed read (and before any long-poll park), so
	// a held write releases as soon as the confirming poll arrives, not
	// when it returns. The reported commit index lets the feed release a
	// parked poll early when this node's durability watermark is ahead;
	// pollers that don't report one never get that early release.
	pollerCommit := ^uint64(0)
	if self := r.URL.Query().Get("self"); self != "" {
		applied, aerr := uintParam(r, "applied")
		if aerr != nil {
			writeError(w, r, http.StatusBadRequest, api.CodeInvalidArgument, "bad applied: "+aerr.Error())
			return
		}
		commit, cerr := uintParam(r, "commit")
		if cerr != nil {
			writeError(w, r, http.StatusBadRequest, api.CodeInvalidArgument, "bad commit: "+cerr.Error())
			return
		}
		pollerCommit = commit
		s.p.RecordFollowerAck(self, applied, reqEpoch)
	}
	max := intParam(r, "max", defaultReplMax, 1, maxReplBatchReq)
	waitMS := intParam(r, "wait_ms", 0, 0, int(maxReplWait.Milliseconds()))
	batches, tail, err := s.p.ReplicationFeed(r.Context(), from, max, time.Duration(waitMS)*time.Millisecond, pollerCommit)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ReplicationEvents{
		Batches: batches,
		Tail:    tail,
		Epoch:   s.p.Epoch(),
		Commit:  s.p.CommitIndex(),
	})
}

// getReplicationSnapshot serves the full bootstrap image. The sequence
// watermark is captured before the state scan, so a follower tailing
// from it can only re-apply batches, never miss one.
func (s *Server) getReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	seq, entries, err := s.p.ReplicationSnapshot()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	out := api.ReplicationSnapshot{Seq: seq, Epoch: s.p.Epoch(), Entries: make([]api.KVEntry, 0, len(entries))}
	for k, v := range entries {
		out.Entries = append(out.Entries, api.KVEntry{Key: k, Value: v})
	}
	writeJSON(w, http.StatusOK, out)
}

// peerProbeTimeout bounds the whole-peers probe fan-out of the cluster
// status endpoint: one slow peer must not stall the topology report
// clients use to re-resolve the leader during failover.
const peerProbeTimeout = 750 * time.Millisecond

// peerProbeClient dials peers for cluster status: one shared client
// over its own pooled transport, so repeated probes of the same peers
// reuse kept-alive connections instead of paying a dial per probe, and
// probe connection state never mingles with the server's other
// outbound traffic (a bare &http.Client{} would silently share
// http.DefaultTransport).
var peerProbeClient = &http.Client{
	Timeout: peerProbeTimeout,
	Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 4,
		IdleConnTimeout:     90 * time.Second,
	},
}

// getCluster serves the node's view of the replica set: its own role,
// term and leader, plus a concurrent liveness/lag probe of every
// configured peer. Followers answer too — during failover this is the
// endpoint a client that lost the leader asks for a new one.
func (s *Server) getCluster(w http.ResponseWriter, r *http.Request) {
	cs := api.ClusterStatus{
		Self:         s.p.ClusterSelf(),
		Role:         s.p.Role(),
		Epoch:        s.p.Epoch(),
		LeaderURL:    s.p.LeaderURL(),
		CommitIndex:  s.p.CommitIndex(),
		QuorumWrites: s.p.QuorumWrites(),
		Peers:        []api.PeerStatus{},
	}
	if s.sh != nil {
		// The shard map: clients derive routing (api.ShardOf over
		// ShardCount) from this response.
		cs.ShardCount = s.sh.ShardCount()
		cs.Shards = s.shardStatuses()
	}
	peers := s.p.ClusterPeers()
	if len(peers) > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), peerProbeTimeout)
		defer cancel()
		cs.Peers = make([]api.PeerStatus, len(peers))
		var wg sync.WaitGroup
		for i, u := range peers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cs.Peers[i] = probePeer(ctx, u)
			}()
		}
		wg.Wait()
	}
	writeJSON(w, http.StatusOK, cs)
}

// probePeer asks one peer for its healthz and condenses the answer into
// a PeerStatus; a dead or unreachable peer reports Alive false with the
// dial error. Every outcome carries the probe's round-trip latency —
// for failures that is the budget burned discovering the peer is gone.
func probePeer(ctx context.Context, url string) (ps api.PeerStatus) {
	ps = api.PeerStatus{URL: url}
	start := time.Now()
	defer func() { ps.ProbeMS = float64(time.Since(start).Microseconds()) / 1e3 }()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/api/v1/healthz", nil)
	if err != nil {
		ps.Error = err.Error()
		return ps
	}
	resp, err := peerProbeClient.Do(req)
	if err != nil {
		ps.Error = err.Error()
		return ps
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		ps.Error = "bad healthz response: " + err.Error()
		return ps
	}
	ps.Alive = true
	ps.Role = h.Replication.Role
	ps.Epoch = h.Replication.Epoch
	ps.JournalTail = h.Replication.JournalTail
	ps.AppliedSeq = h.Replication.AppliedSeq
	ps.LagEvents = h.Replication.LagEvents
	return ps
}

// --- Observability --------------------------------------------------------------

// getMetrics serves the process-wide registry in the Prometheus text
// format. Event-driven instruments (counters, latency histograms) are
// already current; state gauges are collected from the platform
// accessors at scrape time, so one scrape sees one consistent snapshot
// of sizes/watermarks without the hot paths maintaining gauges.
func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request) {
	s.collectStateGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.Default.WriteText(w)
}

// collectStateGauges snapshots per-shard pipeline state into the
// registry's gauges: pending events, overlay size, frozen corpus size,
// commit index, and this node's replication lag.
func (s *Server) collectStateGauges() {
	reg := metrics.Default
	pending := reg.GaugeVec(metrics.PendingEvents, "Change events queued but not yet folded into the serving snapshot.", "shard")
	overlay := reg.GaugeVec(metrics.OverlayDocs, "Documents in the delta overlay (compaction pressure).", "shard")
	corpus := reg.GaugeVec(metrics.ShardDocs, "Frozen-corpus documents indexed.", "shard")
	commit := reg.GaugeVec(metrics.CommitIndex, "Quorum-durable commit watermark.", "shard")
	lag := reg.Gauge(metrics.ReplicationLagEvents, "Journal events this node trails its leader by (0 on leaders).")

	shards := []*hive.Platform{s.p}
	if s.sh != nil {
		shards = s.sh.Shards()
	}
	for _, p := range shards {
		id := strconv.Itoa(p.ShardID())
		pending.With(id).Set(float64(p.PendingEvents()))
		commit.With(id).Set(float64(p.CommitIndex()))
		var overlayDocs, corpusDocs int
		if eng := p.Snapshot(); eng != nil {
			overlayDocs = eng.DeltaStats().OverlayDocs
			if f := eng.Frozen(); f != nil {
				corpusDocs = f.Len()
			}
		}
		overlay.With(id).Set(float64(overlayDocs))
		corpus.With(id).Set(float64(corpusDocs))
	}
	lag.Set(float64(s.p.ReplicationLag()))
}

// getTraces serves the slowest recent request traces (?n=, default 20)
// out of the bounded ring the Observe middleware feeds.
func (s *Server) getTraces(w http.ResponseWriter, r *http.Request) {
	n := intParam(r, "n", 20, 1, metrics.DefaultTraceCapacity)
	views := s.traces.Slowest(n)
	out := api.TraceReport{Traces: make([]api.TraceInfo, len(views)), Capacity: metrics.DefaultTraceCapacity}
	for i, v := range views {
		info := api.TraceInfo{
			TraceID:    v.ID,
			Method:     v.Method,
			Route:      v.Route,
			Status:     v.Status,
			Shard:      v.Shard,
			StartedAt:  v.StartedAt,
			DurationUS: v.DurationUS,
		}
		if len(v.Stages) > 0 {
			info.Stages = make([]api.TraceStage, len(v.Stages))
			for j, st := range v.Stages {
				info.Stages[j] = api.TraceStage{Name: st.Name, DurationUS: st.DurationUS}
			}
		}
		out.Traces[i] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// uintParam parses a required non-negative integer query parameter.
func uintParam(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	return strconv.ParseUint(v, 10, 64)
}

// replicationHealth assembles the role/lag report for healthz.
func (s *Server) replicationHealth() api.ReplicationHealth {
	rh := api.ReplicationHealth{Role: api.RoleLeader, Epoch: s.p.Epoch()}
	st := s.p.Store()
	rh.JournalOldest, rh.JournalTail, rh.JournalSegments = st.JournalStats()
	if err := st.JournalError(); err != nil {
		rh.JournalError = err.Error()
	}
	rh.CommitIndex = s.p.CommitIndex()
	rh.QuorumWrites = s.p.QuorumWrites()
	if acks := s.p.FollowerAcks(); len(acks) > 0 {
		rh.FollowerAcks = make([]api.FollowerAckStatus, len(acks))
		for i, a := range acks {
			rh.FollowerAcks[i] = api.FollowerAckStatus{
				URL:        a.URL,
				AppliedSeq: a.Applied,
				Epoch:      a.Epoch,
				AgeMS:      a.Age.Milliseconds(),
			}
		}
	}
	if s.p.IsFollower() {
		rh.Role = api.RoleFollower
		rh.LeaderURL = s.p.LeaderURL()
		rh.AppliedSeq = s.p.ReplicationApplied()
		rh.LeaderTail = s.p.ReplicationLeaderTail()
		rh.LagEvents = s.p.ReplicationLag()
		if err := s.p.LastReplicationError(); err != nil {
			rh.LastReplicationError = err.Error()
		}
	}
	return rh
}

// --- Health & refresh ---------------------------------------------------------

// deltaHealth assembles the incremental-maintenance report shared by
// healthz and the admin refresh responses.
func (s *Server) deltaHealth() api.DeltaHealth {
	dh := api.DeltaHealth{
		PendingEvents: s.p.PendingEvents(),
		DeltasApplied: s.p.DeltasApplied(),
		Compactions:   s.p.Compactions(),
		LastDeltaUS:   s.p.LastDeltaDuration().Microseconds(),
		CompactionDue: s.p.CompactionDue(),
	}
	if eng := s.p.Snapshot(); eng != nil {
		ds := eng.DeltaStats()
		dh.OverlayDocs = ds.OverlayDocs
		dh.Tombstones = ds.Tombstones
		dh.GraphPending = ds.GraphPending
	}
	return dh
}

// getHealthz reports liveness plus snapshot freshness: the snapshot
// generation, when its base was built, how long the build took, its
// age, whether unapplied change events exist (stale), and the delta
// pipeline's state (overlay size, pending events, delta latency,
// compaction counters). Reads are served from the swapped snapshot, so
// "stale: true" means maintenance is due, not an outage; "built_at"
// and "age_ms" describe the *base* segment — a snapshot with an applied
// overlay is current regardless of base age.
// shardStatuses assembles the per-shard role/epoch/progress rows for
// healthz and the cluster endpoint.
func (s *Server) shardStatuses() []api.ShardStatus {
	shards := s.sh.Shards()
	out := make([]api.ShardStatus, len(shards))
	for i, p := range shards {
		_, tail, _ := p.Store().JournalStats()
		out[i] = api.ShardStatus{
			ID:            p.ShardID(),
			Role:          p.Role(),
			Epoch:         p.Epoch(),
			JournalTail:   tail,
			CommitIndex:   p.CommitIndex(),
			PendingEvents: p.PendingEvents(),
			Generation:    p.Generation(),
		}
	}
	return out
}

func (s *Server) getHealthz(w http.ResponseWriter, r *http.Request) {
	out := api.Health{
		Status:      "ok",
		Generation:  s.p.Generation(),
		Stale:       s.p.Stale(),
		Delta:       s.deltaHealth(),
		Replication: s.replicationHealth(),
	}
	if s.sh != nil {
		out.Generation = s.sh.Generation()
		out.Stale = s.sh.Stale()
		out.ShardCount = s.sh.ShardCount()
		out.Shards = s.shardStatuses()
	}
	if eng := s.p.Snapshot(); eng != nil {
		out.Snapshot = true
		out.BuiltAt = eng.BuiltAt().UTC().Format(time.RFC3339Nano)
		out.BuildMS = eng.BuildDuration().Milliseconds()
		out.AgeMS = time.Since(eng.BuiltAt()).Milliseconds()
		if f := eng.Frozen(); f != nil {
			out.FrozenDocs = f.Len()
		}
	}
	if err := s.p.LastRefreshError(); err != nil {
		out.LastRefreshError = err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// postRefreshSync compacts in the request goroutine and returns when
// the new snapshot is live.
func (s *Server) postRefreshSync(w http.ResponseWriter, r *http.Request) {
	var err error
	if s.sh != nil {
		err = s.sh.Refresh() // all shards compact in parallel
	} else {
		err = s.p.Refresh()
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	dh := s.deltaHealth()
	writeJSON(w, http.StatusOK, api.RefreshResponse{Status: "refreshed", Delta: &dh})
}

// postAdminRefresh triggers a background compaction and returns 202
// immediately; with ?wait=true it blocks until the swap. Reads keep
// being served from the old snapshot either way. The response carries
// the delta pipeline's state so operators see what the compaction is
// (or was) reclaiming.
func (s *Server) postAdminRefresh(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("wait") == "true" {
		s.postRefreshSync(w, r)
		return
	}
	s.refreshAsync()
	dh := s.deltaHealth()
	writeJSON(w, http.StatusAccepted, api.RefreshResponse{Status: "refresh scheduled", Delta: &dh})
}

// --- Batch ingest -------------------------------------------------------------

// postBatch applies a mixed array of entities in one store pass: the
// whole batch costs a single snapshot invalidation instead of one per
// entity — the scale path for bulk loaders. Elements apply in array
// order (put dependencies first) and independently: a failed element is
// reported in the response without aborting the rest.
func (s *Server) postBatch(w http.ResponseWriter, r *http.Request) {
	// The batch applier drives the store directly, bypassing the
	// platform's follower guard — reject here so a follower never forks
	// from its leader.
	if s.p.IsFollower() {
		writeErr(w, r, &hive.NotLeaderError{Leader: s.p.LeaderURL(), Epoch: s.p.Epoch()})
		return
	}
	var req api.BatchRequest
	if !decodeBody(w, r, &req, maxBatchBody) {
		return
	}
	var resp api.BatchResponse
	apply := func() error {
		for i, ent := range req.Entities {
			if err := s.applyEntity(ent); err != nil {
				resp.Failed++
				resp.Errors = append(resp.Errors, api.BatchItemError{
					Index: i, Kind: ent.Kind, Error: apiError(err),
				})
				continue
			}
			resp.Applied++
		}
		return nil
	}
	if s.sh != nil {
		// One coalesced change batch per shard: the shard Batched scopes
		// nest, so each routed element folds into its shard's batch.
		_ = s.sh.Batched(apply)
	} else {
		_ = s.p.Store().Batched(apply)
	}
	writeJSON(w, http.StatusOK, resp)
}

// Mutation appliers: the single definition of each entity mutation,
// shared by the typed routes (via create), the legacy aliases and the
// batch dispatch.

// On a sharded server each applier routes through the owner-hash
// router (broadcast for reference entities, probe-routed for children);
// unsharded it drives the platform directly.

func (s *Server) applyUser(u api.User) error {
	if s.sh != nil {
		return s.sh.RegisterUser(u)
	}
	return s.p.RegisterUser(u)
}

func (s *Server) applyConference(c api.Conference) error {
	if s.sh != nil {
		return s.sh.CreateConference(c)
	}
	return s.p.CreateConference(c)
}

func (s *Server) applySession(ss api.Session) error {
	if s.sh != nil {
		return s.sh.CreateSession(ss)
	}
	return s.p.CreateSession(ss)
}

func (s *Server) applyPaper(pa api.Paper) error {
	if s.sh != nil {
		return s.sh.PublishPaper(pa)
	}
	return s.p.PublishPaper(pa)
}

func (s *Server) applyPresentation(pr api.Presentation) error {
	if s.sh != nil {
		return s.sh.UploadPresentation(pr)
	}
	return s.p.UploadPresentation(pr)
}

func (s *Server) applyConnect(r api.ConnectRequest) error {
	if s.sh != nil {
		return s.sh.Connect(r.A, r.B)
	}
	return s.p.Connect(r.A, r.B)
}

func (s *Server) applyFollow(r api.FollowRequest) error {
	if s.sh != nil {
		return s.sh.Follow(r.Follower, r.Followee)
	}
	return s.p.Follow(r.Follower, r.Followee)
}

func (s *Server) applyCheckin(r api.CheckinRequest) error {
	if s.sh != nil {
		return s.sh.CheckIn(r.SessionID, r.UserID)
	}
	return s.p.CheckIn(r.SessionID, r.UserID)
}

func (s *Server) applyQuestion(q api.Question) error {
	if s.sh != nil {
		return s.sh.Ask(q)
	}
	return s.p.Ask(q)
}

func (s *Server) applyAnswer(a api.Answer) error {
	if s.sh != nil {
		return s.sh.AnswerQuestion(a)
	}
	return s.p.AnswerQuestion(a)
}

func (s *Server) applyComment(c api.Comment) error {
	if s.sh != nil {
		return s.sh.PostComment(c)
	}
	return s.p.PostComment(c)
}

func (s *Server) applyWorkpad(wp api.Workpad) error {
	if s.sh != nil {
		return s.sh.CreateWorkpad(wp)
	}
	return s.p.CreateWorkpad(wp)
}

// applyBatchItem decodes one batch element's data and runs the applier.
func applyBatchItem[T any](ent api.BatchEntity, fn func(T) error) error {
	var v T
	if err := json.Unmarshal(ent.Data, &v); err != nil {
		return fmt.Errorf("%w: %s data: %v", social.ErrInvalid, ent.Kind, err)
	}
	return fn(v)
}

// applyEntity dispatches one batch element to the matching applier.
func (s *Server) applyEntity(ent api.BatchEntity) error {
	switch ent.Kind {
	case api.KindUser:
		return applyBatchItem(ent, s.applyUser)
	case api.KindConference:
		return applyBatchItem(ent, s.applyConference)
	case api.KindSession:
		return applyBatchItem(ent, s.applySession)
	case api.KindPaper:
		return applyBatchItem(ent, s.applyPaper)
	case api.KindPresentation:
		return applyBatchItem(ent, s.applyPresentation)
	case api.KindConnection:
		return applyBatchItem(ent, s.applyConnect)
	case api.KindFollow:
		return applyBatchItem(ent, s.applyFollow)
	case api.KindCheckin:
		return applyBatchItem(ent, s.applyCheckin)
	case api.KindQuestion:
		return applyBatchItem(ent, s.applyQuestion)
	case api.KindAnswer:
		return applyBatchItem(ent, s.applyAnswer)
	case api.KindComment:
		return applyBatchItem(ent, s.applyComment)
	case api.KindWorkpad:
		return applyBatchItem(ent, s.applyWorkpad)
	default:
		return fmt.Errorf("%w: unknown batch kind %q", social.ErrInvalid, ent.Kind)
	}
}

// --- Entity reads & workpad mutations -----------------------------------------

func (s *Server) getUser(w http.ResponseWriter, r *http.Request) {
	u, err := s.p.GetUser(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

func (s *Server) postWorkpadItem(w http.ResponseWriter, r *http.Request) {
	var item api.WorkpadItem
	if !decodeBody(w, r, &item, maxEntityBody) {
		return
	}
	var err error
	if s.sh != nil {
		err = s.sh.AddToWorkpad(r.PathValue("id"), item)
	} else {
		err = s.p.AddToWorkpad(r.PathValue("id"), item)
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.CreatedResponse{Status: "added"})
}

// postWorkpadActivate accepts the owner in the v1 JSON body, falling
// back to the legacy ?owner= query parameter.
func (s *Server) postWorkpadActivate(w http.ResponseWriter, r *http.Request) {
	req := api.ActivateWorkpadRequest{Owner: r.URL.Query().Get("owner")}
	if r.Body != nil && r.ContentLength != 0 {
		if !decodeBody(w, r, &req, maxEntityBody) {
			return
		}
	}
	if err := s.checkShard(r, req.Owner); err != nil {
		writeErr(w, r, err)
		return
	}
	var err error
	if s.sh != nil {
		err = s.sh.ActivateWorkpad(req.Owner, r.PathValue("id"))
	} else {
		err = s.p.ActivateWorkpad(req.Owner, r.PathValue("id"))
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.CreatedResponse{Status: "activated"})
}

func (s *Server) getActiveWorkpad(w http.ResponseWriter, r *http.Request) {
	var wp api.Workpad
	var err error
	if s.sh != nil {
		wp, err = s.sh.ActiveWorkpad(r.PathValue("id"))
	} else {
		wp, err = s.p.ActiveWorkpad(r.PathValue("id"))
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, wp)
}

// --- List fetchers ------------------------------------------------------------

func (s *Server) fetchUsers(_ *http.Request, n int) ([]string, error) {
	return s.p.Store().UsersN(n), nil
}

func (s *Server) fetchAttendees(r *http.Request, _ int) ([]string, error) {
	if s.sh != nil {
		return s.sh.Attendees(r.PathValue("id")), nil
	}
	return s.p.Attendees(r.PathValue("id")), nil
}

// getShardedFeed serves the v1 feed page from the cross-shard merge.
// The envelope matches page()'s, but NextCursor is the opaque per-shard
// sequence-bound vector — stable while other shards keep writing.
func (s *Server) getShardedFeed(w http.ResponseWriter, r *http.Request) {
	limit := intParam(r, "limit", api.DefaultPageSize, 1, api.MaxPageSize)
	metrics.TraceFrom(r.Context()).SetShard(s.sh.ShardOf(r.PathValue("id")))
	items, next, err := s.sh.FeedPage(r.Context(), r.PathValue("id"), r.URL.Query().Get("cursor"), limit)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if items == nil {
		items = []api.Event{}
	}
	writeJSON(w, http.StatusOK, api.Page[api.Event]{Items: items, Limit: limit, NextCursor: next})
}

func (s *Server) fetchFeed(r *http.Request, n int) ([]api.Event, error) {
	// v1 feeds page newest-first. Store.Feed's limit keeps the
	// most-recent suffix in ascending order, so the newest n events
	// reversed are exactly the first n items of the newest-first
	// sequence — the bounded fetch page() expects (passing n straight
	// through without reversing would re-slice a shifted window per
	// cursor: duplicated pages, most of the feed unreachable).
	evs := s.p.Feed(r.PathValue("id"), n)
	slices.Reverse(evs)
	return evs, nil
}

// legacyFeed preserves the historical shape exactly: the most-recent
// window in ascending order, bare array.
func (s *Server) legacyFeed(w http.ResponseWriter, r *http.Request) {
	limit := intParam(r, "limit", 50, 1, api.MaxPageSize)
	if s.sh != nil {
		writeJSON(w, http.StatusOK, s.sh.Feed(r.PathValue("id"), limit))
		return
	}
	writeJSON(w, http.StatusOK, s.p.Feed(r.PathValue("id"), limit))
}

func (s *Server) fetchTagEvents(r *http.Request, _ int) ([]api.Event, error) {
	tag := normalizeTag(r.PathValue("tag"))
	if s.sh != nil {
		return s.sh.EventsByTag(tag), nil
	}
	return s.p.EventsByTag(tag), nil
}

// normalizeTag canonicalizes a path tag to exactly one leading '#':
// clients may pass "graphs13" or an already-hashed "#graphs13" and both
// resolve the same fan-out (previously "#" was prepended untrimmed, so
// hashed input became "##tag" and silently matched nothing).
func normalizeTag(tag string) string {
	return "#" + strings.TrimLeft(tag, "#")
}

// The user-scoped knowledge fetchers answer from the user's home shard
// on a sharded server (its engine holds their partition's evidence);
// search scatter-gathers across every shard engine.

func (s *Server) fetchPeerRecs(r *http.Request, n int) ([]api.PeerRecommendation, error) {
	if s.sh != nil {
		return s.sh.RecommendPeers(r.PathValue("id"), n)
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	return eng.RecommendPeers(r.PathValue("id"), n)
}

func (s *Server) fetchResourceRecs(r *http.Request, n int) ([]api.ResourceRecommendation, error) {
	useCtx := r.URL.Query().Get("context") != "false"
	if s.sh != nil {
		return s.sh.RecommendResources(r.PathValue("id"), n, useCtx)
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	return eng.RecommendResources(r.PathValue("id"), n, useCtx)
}

func (s *Server) fetchSessionSuggestions(r *http.Request, n int) ([]api.SessionSuggestion, error) {
	if s.sh != nil {
		return s.sh.SuggestSessions(r.PathValue("id"), r.URL.Query().Get("conf"), n)
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	return eng.SuggestSessions(r.PathValue("id"), r.URL.Query().Get("conf"), n)
}

func (s *Server) fetchSearch(r *http.Request, n int) ([]api.SearchResult, error) {
	q := r.URL.Query().Get("q")
	user := r.URL.Query().Get("user")
	if s.sh != nil {
		if user != "" {
			return s.sh.SearchWithContext(r.Context(), user, q, n)
		}
		return s.sh.Search(r.Context(), q, n)
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	defer mSearchSeconds.ObserveSince(time.Now())
	if user != "" {
		return eng.SearchWithContext(user, q, n), nil
	}
	return eng.Search(q, n), nil
}

func (s *Server) fetchCommunities(_ *http.Request, _ int) ([][]string, error) {
	if s.sh != nil {
		return s.sh.Communities()
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	return eng.Communities(), nil
}

func (s *Server) fetchHistory(r *http.Request, n int) ([]api.HistoryEntry, error) {
	q := r.URL.Query().Get("q")
	useCtx := r.URL.Query().Get("context") == "true"
	if s.sh != nil {
		return s.sh.SearchHistory(r.PathValue("id"), q, useCtx, n)
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	return eng.SearchHistory(r.PathValue("id"), q, useCtx, n)
}

// --- Scalar knowledge endpoints -----------------------------------------------

func (s *Server) getRelationship(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if s.sh != nil {
		ex, err := s.sh.Explain(a, b)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, ex)
		return
	}
	eng, err := s.engine()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	ex, err := eng.Explain(a, b)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *Server) getPreview(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	doc := r.URL.Query().Get("doc")
	k := intParam(r, "k", 3, 1, maxK)
	var snips []textindex.Snippet
	var err error
	if s.sh != nil {
		snips, err = s.sh.Preview(user, doc, k)
	} else {
		var eng *core.Engine
		if eng, err = s.engine(); err == nil {
			snips, err = eng.Preview(user, doc, k)
		}
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, snips)
}

func (s *Server) getDigest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	budget := intParam(r, "budget", 5, 1, maxBudget)
	if s.sh != nil {
		sum, err := s.sh.UpdateDigest(id, budget)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, sum)
		return
	}
	eng, err := s.engine()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	sum, err := eng.UpdateDigest(id, budget)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) getResourceRelationship(w http.ResponseWriter, r *http.Request) {
	id, entity := r.PathValue("id"), r.URL.Query().Get("entity")
	if s.sh != nil {
		evs, err := s.sh.ExplainResource(id, entity)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, evs)
		return
	}
	eng, err := s.engine()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	evs, err := eng.ExplainResource(id, entity)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, evs)
}

func (s *Server) getKnowledgePaths(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	k := intParam(r, "k", 3, 1, maxK)
	if s.sh != nil {
		paths, err := s.sh.KnowledgePaths(a, b, k)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, paths)
		return
	}
	eng, err := s.engine()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, eng.KnowledgePaths(a, b, k))
}

// --- Plumbing -----------------------------------------------------------------

// intParam parses an integer query parameter. Missing, unparsable or
// below-minimum values (legacy callers used limit=0 for "unbounded" —
// clamping that to 1 would silently return a single item) take the
// default; values above max are clamped. Engine calls therefore never
// see negative or absurd sizes. def must lie within [min, max].
func intParam(r *http.Request, name string, def, min, max int) int {
	n := def
	if v := r.URL.Query().Get(name); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			n = parsed
		}
	}
	if n < min {
		n = def
	}
	if n > max {
		n = max
	}
	return n
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the structured error envelope, stamped with the
// request's trace ID so a failed call is findable in the access log
// and debug/traces.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, api.ErrorResponse{
		Error:   &api.Error{Code: code, Message: msg},
		TraceID: traceID(r),
	})
}

// traceID extracts the request's trace ID ("" outside a traced
// request — metrics disabled, or a response written without one).
func traceID(r *http.Request) string {
	if r == nil {
		return ""
	}
	return metrics.TraceFrom(r.Context()).ID()
}

// apiError maps a domain error to its wire form.
func apiError(err error) *api.Error {
	ae, _ := classify(err)
	return ae
}

// classify maps domain errors to stable (error envelope, HTTP status)
// pairs — the machine-readable half of the v1 contract. Structured
// details ride along where the caller can act on them (the leader URL
// behind a not_leader rejection).
func classify(err error) (*api.Error, int) {
	var nle *hive.NotLeaderError
	var see *hive.StaleEpochError
	var que *hive.QuorumUnavailableError
	var ae *api.Error
	switch {
	case errors.As(err, &ae):
		// Pre-shaped wire errors (e.g. wrong_shard) pass through with
		// their declared status.
		status := ae.HTTPStatus
		if status == 0 {
			status = http.StatusInternalServerError
		}
		return ae, status
	case errors.As(err, &que):
		return &api.Error{
			Code:    api.CodeQuorumUnavailable,
			Message: err.Error(),
			Details: map[string]any{"seq": que.Seq, "acked": que.Acked, "needed": que.Needed},
		}, http.StatusServiceUnavailable
	case errors.As(err, &nle):
		return &api.Error{
			Code:    api.CodeNotLeader,
			Message: err.Error(),
			Details: map[string]any{"leader": nle.Leader, "epoch": nle.Epoch, "shard": nle.Shard},
		}, http.StatusConflict
	case errors.As(err, &see):
		return &api.Error{
			Code:    api.CodeStaleEpoch,
			Message: err.Error(),
			Details: map[string]any{"epoch": see.Current, "requested_epoch": see.Requested},
		}, http.StatusConflict
	case errors.Is(err, social.ErrStaleEpoch):
		return &api.Error{Code: api.CodeStaleEpoch, Message: err.Error()}, http.StatusConflict
	case errors.Is(err, journal.ErrCompacted):
		return &api.Error{Code: api.CodeCompacted, Message: err.Error()}, http.StatusGone
	case errors.Is(err, social.ErrNotFound),
		errors.Is(err, core.ErrUnknownUser),
		errors.Is(err, textindex.ErrDocNotFound):
		return &api.Error{Code: api.CodeNotFound, Message: err.Error()}, http.StatusNotFound
	case errors.Is(err, social.ErrInvalid),
		errors.Is(err, api.ErrBadCursor),
		errors.Is(err, hive.ErrNoJournal):
		return &api.Error{Code: api.CodeInvalidArgument, Message: err.Error()}, http.StatusBadRequest
	default:
		return &api.Error{Code: api.CodeInternal, Message: err.Error()}, http.StatusInternalServerError
	}
}

// writeErr maps a domain error to HTTP status + envelope.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	ae, status := classify(err)
	writeJSON(w, status, api.ErrorResponse{Error: ae, TraceID: traceID(r)})
}
