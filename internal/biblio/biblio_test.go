package biblio

import (
	"testing"

	"hive/internal/graph"
	"hive/internal/social"
)

func samplePapers() []social.Paper {
	return []social.Paper{
		{ID: "p1", Authors: []string{"alice", "bob"}, Citations: []string{"p0", "px"}},
		{ID: "p2", Authors: []string{"alice", "bob"}, Citations: []string{"p0"}},
		{ID: "p3", Authors: []string{"carol"}, Citations: []string{"p1", "p2"}},
		{ID: "p4", Authors: []string{"dave", "carol"}, Citations: []string{"p1", "px"}},
		{ID: "p0", Authors: []string{"erin"}},
	}
}

func TestCoauthorNetworkWeights(t *testing.T) {
	g := CoauthorNetwork(samplePapers())
	a, b := g.Lookup("alice"), g.Lookup("bob")
	if a == graph.Invalid || b == graph.Invalid {
		t.Fatal("authors missing")
	}
	e, ok := g.EdgeBetween(a, b, EdgeCoauthor)
	if !ok || e.Weight != 2 {
		t.Fatalf("alice-bob weight = %+v, %v (want 2 shared papers)", e, ok)
	}
	// Symmetric.
	e2, ok := g.EdgeBetween(b, a, EdgeCoauthor)
	if !ok || e2.Weight != 2 {
		t.Fatalf("reverse edge = %+v, %v", e2, ok)
	}
	// erin has no co-authors.
	if d := g.OutDegree(g.Lookup("erin")); d != 0 {
		t.Fatalf("erin degree = %d", d)
	}
}

func TestCitationGraphMaterializesExternal(t *testing.T) {
	g := CitationGraph(samplePapers())
	// px is cited but not in the corpus: must still exist as a node.
	if g.Lookup("px") == graph.Invalid {
		t.Fatal("external cited paper not materialized")
	}
	p1 := g.Lookup("p1")
	if g.OutDegree(p1) != 2 {
		t.Fatalf("p1 out-degree = %d", g.OutDegree(p1))
	}
}

func TestCoupling(t *testing.T) {
	g := CitationGraph(samplePapers())
	// p1 cites {p0, px}; p2 cites {p0} -> coupling 1.
	if c := Coupling(g, "p1", "p2"); c != 1 {
		t.Fatalf("Coupling(p1,p2) = %d", c)
	}
	// p1 and p4 share px.
	if c := Coupling(g, "p1", "p4"); c != 1 {
		t.Fatalf("Coupling(p1,p4) = %d", c)
	}
	if c := Coupling(g, "p1", "nope"); c != 0 {
		t.Fatalf("Coupling with unknown = %d", c)
	}
}

func TestCoCitation(t *testing.T) {
	g := CitationGraph(samplePapers())
	// p3 cites both p1 and p2; p4 cites p1 only -> co-citation(p1,p2) = 1.
	if c := CoCitation(g, "p1", "p2"); c != 1 {
		t.Fatalf("CoCitation = %d", c)
	}
	if c := CoCitation(g, "p0", "px"); c != 1 { // p1 cites both
		t.Fatalf("CoCitation(p0,px) = %d", c)
	}
}

func TestCitesTransitively(t *testing.T) {
	g := CitationGraph(samplePapers())
	// p3 -> p1 -> p0.
	ok, d := CitesTransitively(g, "p3", "p0", 3)
	if !ok || d != 2 {
		t.Fatalf("transitive = %v, %d", ok, d)
	}
	ok, _ = CitesTransitively(g, "p3", "p0", 1)
	if ok {
		t.Fatal("hop bound ignored")
	}
	ok, _ = CitesTransitively(g, "p0", "p3", 5)
	if ok {
		t.Fatal("citation direction ignored")
	}
	if ok, _ := CitesTransitively(g, "p3", "p3", 5); ok {
		t.Fatal("self should not count at depth 0")
	}
}

func TestAuthorCitesAuthor(t *testing.T) {
	papers := samplePapers()
	// carol's p3 cites p1,p2 (both alice's); p4 cites p1 -> 3 citations.
	if n := AuthorCitesAuthor(papers, "carol", "alice"); n != 3 {
		t.Fatalf("AuthorCitesAuthor = %d", n)
	}
	if n := AuthorCitesAuthor(papers, "alice", "carol"); n != 0 {
		t.Fatalf("reverse = %d", n)
	}
}

func TestSharedReferences(t *testing.T) {
	papers := samplePapers()
	// alice cites {p0, px}; carol (p3,p4) cites {p1,p2,px}.
	shared := SharedReferences(papers, "alice", "carol")
	if len(shared) != 1 || shared[0] != "px" {
		t.Fatalf("SharedReferences = %v", shared)
	}
	if got := SharedReferences(papers, "erin", "alice"); len(got) != 0 {
		t.Fatalf("no-citation author shared = %v", got)
	}
}

func TestCoauthorDistance(t *testing.T) {
	g := CoauthorNetwork(samplePapers())
	if d := CoauthorDistance(g, "alice", "bob", 3); d != 1 {
		t.Fatalf("direct distance = %d", d)
	}
	// alice - (no link) - carol: carol coauthors with dave only.
	if d := CoauthorDistance(g, "alice", "carol", 4); d != -1 {
		t.Fatalf("unconnected distance = %d", d)
	}
	if d := CoauthorDistance(g, "alice", "alice", 3); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if d := CoauthorDistance(g, "alice", "ghost", 3); d != -1 {
		t.Fatalf("unknown author distance = %d", d)
	}
}

func TestAuthorPaperGraph(t *testing.T) {
	g := AuthorPaperGraph(samplePapers())
	alice := g.Lookup("alice")
	p1 := g.Lookup("p1")
	if alice == graph.Invalid || p1 == graph.Invalid {
		t.Fatal("nodes missing")
	}
	if _, ok := g.EdgeBetween(alice, p1, EdgeAuthored); !ok {
		t.Fatal("authored edge missing")
	}
	if _, ok := g.EdgeBetween(p1, alice, EdgeAuthored); !ok {
		t.Fatal("authored edge must be undirected")
	}
	p0 := g.Lookup("p0")
	if _, ok := g.EdgeBetween(p1, p0, EdgeCites); !ok {
		t.Fatal("cites edge missing")
	}
	// A path alice -> p1 -> p0 -> erin must exist (literature explanation).
	erin := g.Lookup("erin")
	if _, err := g.ShortestPath(alice, erin, graph.UnitCost); err != nil {
		t.Fatalf("no literature path alice->erin: %v", err)
	}
}
