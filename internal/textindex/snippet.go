package textindex

import "strings"

// Snippet is an extracted text fragment with its relevance score.
type Snippet struct {
	Text  string
	Score float64
	Start int // sentence offset within the document
}

// ExtractSnippets implements context-aware relevant snippet extraction in
// the spirit of [14] (Li, Candan, Qi, AAAI 2008): the document is split
// into sentences, each sentence is scored by cosine similarity against the
// context vector with a small positional prior (earlier sentences win
// ties, as abstracts lead), and the top k non-overlapping sentences are
// returned in document order.
//
// The context vector usually comes from the user's active workpad, giving
// "generate summary previews and highlights ... based on context"
// (Table 1).
func ExtractSnippets(doc string, context Vector, k int) []Snippet {
	sents := SplitSentences(doc)
	if len(sents) == 0 {
		return nil
	}
	scored := make([]Snippet, len(sents))
	for i, s := range sents {
		v := TermFrequency(s)
		score := v.Cosine(context)
		// Positional prior: tiny boost decaying with position so that,
		// among equally relevant sentences, leading ones surface first.
		score += 0.01 / float64(1+i)
		scored[i] = Snippet{Text: s, Score: score, Start: i}
	}
	// Select top k by score.
	sel := append([]Snippet(nil), scored...)
	for i := 0; i < k && i < len(sel); i++ {
		best := i
		for j := i + 1; j < len(sel); j++ {
			if sel[j].Score > sel[best].Score {
				best = j
			}
		}
		sel[i], sel[best] = sel[best], sel[i]
	}
	if k > len(sel) {
		k = len(sel)
	}
	sel = sel[:k]
	// Restore document order.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].Start < sel[j-1].Start; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	return sel
}

// SplitSentences splits text into sentences on ., ! and ? boundaries,
// trimming whitespace and dropping empties. It is deliberately simple:
// scientific abstracts rarely need abbreviation handling, and failure
// just yields slightly longer snippets.
func SplitSentences(text string) []string {
	var sents []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			sents = append(sents, s)
		}
		b.Reset()
	}
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			flush()
		}
	}
	flush()
	return sents
}
