package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"hive"
	"hive/internal/workload"
)

func newLoadedServer(t *testing.T, users int) (*httptest.Server, *hive.Platform) {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	if err := ds.Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return ts, p
}

// TestRefreshUnderLoad hammers read endpoints from many goroutines
// while the engine is rebuilt in a loop, interleaved with writes that
// keep marking the snapshot stale. Every read must succeed (no 5xx) —
// reads are served from the previous snapshot for the entire rebuild —
// and the serving snapshot must never be nil or half-built. Run under
// -race this also proves the swap is data-race free.
func TestRefreshUnderLoad(t *testing.T) {
	ts, p := newLoadedServer(t, 16)
	uid := p.Users()[0]

	paths := []string{
		"/api/search?q=graph&k=3&user=" + uid,
		"/api/users/" + uid + "/recommendations/peers?k=3",
		"/api/relationship?a=" + p.Users()[0] + "&b=" + p.Users()[1],
		"/api/communities",
		"/api/healthz",
	}

	stop := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + paths[(r+i)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	// Rebuild loop: each iteration writes (marking the snapshot stale)
	// and refreshes, swapping a new snapshot in under the readers.
	for i := 0; i < 4; i++ {
		if err := p.RegisterUser(hive.User{ID: fmt.Sprintf("burst%d", i), Name: "B"}); err != nil {
			t.Fatal(err)
		}
		if p.Snapshot() == nil {
			t.Fatal("nil snapshot while rebuilding")
		}
		if err := p.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads completed during the rebuild loop")
	}
}

// TestAdminRefreshEndpoint covers the async admin trigger and its
// synchronous ?wait=true form.
func TestAdminRefreshEndpoint(t *testing.T) {
	ts, p := newLoadedServer(t, 8)
	gen := p.Generation()

	// Mark stale, then trigger an async rebuild: 202 immediately.
	if err := p.RegisterUser(hive.User{ID: "async", Name: "A"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/admin/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async refresh status = %d, want 202", resp.StatusCode)
	}

	// The synchronous form blocks until the swap is live.
	resp, err = http.Post(ts.URL+"/api/admin/refresh?wait=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync refresh status = %d, want 200", resp.StatusCode)
	}
	if p.Generation() == gen {
		t.Fatal("generation did not advance after admin refresh")
	}
	if p.Stale() {
		t.Fatal("snapshot still stale after sync admin refresh")
	}
}
