package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hive"
	"hive/internal/workload"
)

func newLoadedServer(t *testing.T, users int) (*httptest.Server, *hive.Platform) {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	if err := ds.Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return ts, p
}

// TestRefreshUnderLoad hammers read endpoints from many goroutines
// while the engine is rebuilt in a loop, interleaved with writes that
// keep marking the snapshot stale. Every read must succeed (no 5xx) —
// reads are served from the previous snapshot for the entire rebuild —
// and the serving snapshot must never be nil or half-built. Run under
// -race this also proves the swap is data-race free.
func TestRefreshUnderLoad(t *testing.T) {
	ts, p := newLoadedServer(t, 16)
	uid := p.Users()[0]

	paths := []string{
		"/api/search?q=graph&k=3&user=" + uid,
		"/api/users/" + uid + "/recommendations/peers?k=3",
		"/api/relationship?a=" + p.Users()[0] + "&b=" + p.Users()[1],
		"/api/communities",
		"/api/healthz",
	}

	stop := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + paths[(r+i)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	// Rebuild loop: each iteration writes (marking the snapshot stale)
	// and refreshes, swapping a new snapshot in under the readers.
	for i := 0; i < 4; i++ {
		if err := p.RegisterUser(hive.User{ID: fmt.Sprintf("burst%d", i), Name: "B"}); err != nil {
			t.Fatal(err)
		}
		if p.Snapshot() == nil {
			t.Fatal("nil snapshot while rebuilding")
		}
		if err := p.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads completed during the rebuild loop")
	}
}

// TestAdminRefreshEndpoint covers the async admin trigger and its
// synchronous ?wait=true form.
func TestAdminRefreshEndpoint(t *testing.T) {
	ts, p := newLoadedServer(t, 8)
	gen := p.Generation()

	// Mark stale, then trigger an async rebuild: 202 immediately.
	if err := p.RegisterUser(hive.User{ID: "async", Name: "A"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/admin/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async refresh status = %d, want 202", resp.StatusCode)
	}

	// The synchronous form blocks until the swap is live.
	resp, err = http.Post(ts.URL+"/api/admin/refresh?wait=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync refresh status = %d, want 200", resp.StatusCode)
	}
	if p.Generation() == gen {
		t.Fatal("generation did not advance after admin refresh")
	}
	if p.Stale() {
		t.Fatal("snapshot still stale after sync admin refresh")
	}
}

// TestWriteVisibleWithoutRefresh is the delta pipeline's end-to-end
// contract at the HTTP layer: a POSTed paper is searchable on the very
// next request, with no admin refresh and no auto-refresh loop —
// the mutation's change events fold into the serving snapshot before
// the POST returns.
func TestWriteVisibleWithoutRefresh(t *testing.T) {
	ts, p := newLoadedServer(t, 8)
	uid := p.Users()[0]

	body := fmt.Sprintf(`{"id":"p-live","title":"Zero refresh visibility","abstract":"deltaveritas overlay","authors":[%q]}`, uid)
	resp, err := http.Post(ts.URL+"/api/v1/papers", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create paper: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/api/v1/search?q=deltaveritas&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Items []struct {
			DocID string `json:"DocID"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 1 || page.Items[0].DocID != "paper/p-live" {
		t.Fatalf("write not visible in search: %+v", page.Items)
	}
	if p.Stale() {
		t.Fatal("platform stale right after a delta-applied write")
	}
	if p.DeltasApplied() == 0 {
		t.Fatal("no delta swap recorded for the write")
	}
}

// TestHealthzReportsDeltaState checks the new healthz surface: overlay
// size, pending events, delta latency and compaction counters.
func TestHealthzReportsDeltaState(t *testing.T) {
	ts, p := newLoadedServer(t, 8)
	uid := p.Users()[0]
	if err := p.PublishPaper(hive.Paper{ID: "p-h", Title: "Healthz overlay probe",
		Abstract: "overlay accounting", Authors: []string{uid}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Stale bool `json:"stale"`
		Delta struct {
			OverlayDocs   int    `json:"overlay_docs"`
			PendingEvents int    `json:"pending_events"`
			DeltasApplied uint64 `json:"deltas_applied"`
			Compactions   uint64 `json:"compactions"`
			CompactionDue bool   `json:"compaction_due"`
		} `json:"delta"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Stale {
		t.Fatal("healthz stale after delta apply")
	}
	if h.Delta.OverlayDocs != 1 || h.Delta.DeltasApplied == 0 {
		t.Fatalf("delta health = %+v, want one overlay doc and a recorded delta", h.Delta)
	}
	if h.Delta.Compactions == 0 {
		t.Fatal("initial build not counted as a compaction")
	}

	// An admin compaction folds the overlay away and reports it.
	resp2, err := http.Post(ts.URL+"/api/v1/admin/refresh?wait=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rr struct {
		Status string `json:"status"`
		Delta  *struct {
			OverlayDocs int `json:"overlay_docs"`
		} `json:"delta"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "refreshed" || rr.Delta == nil || rr.Delta.OverlayDocs != 0 {
		t.Fatalf("admin refresh response = %+v", rr)
	}
}
