package social

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBatchedFiresHooksOnce is the contract behind POST /api/v1/batch:
// N writes inside one Batched pass cost exactly one mutation
// notification (one snapshot invalidation) instead of N.
func TestBatchedFiresHooksOnce(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var fires atomic.Int32
	st.OnChange(func([]ChangeEvent) { fires.Add(1) })

	const n = 20
	err = st.Batched(func() error {
		for i := 0; i < n; i++ {
			if err := st.PutUser(User{ID: fmt.Sprintf("u%02d", i), Name: "U"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("hook fired %d times for %d batched writes, want 1", got, n)
	}
	if got := len(st.Users()); got != n {
		t.Fatalf("users = %d, want %d", got, n)
	}

	// Outside a batch, per-write fan-out is unchanged.
	if err := st.PutUser(User{ID: "solo"}); err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("hook fired %d times after solo write, want 2", got)
	}
}

// TestBatchedFiresOnError: a failing batch still notifies once, since
// earlier writes may have persisted.
func TestBatchedFiresOnError(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var fires atomic.Int32
	st.OnChange(func([]ChangeEvent) { fires.Add(1) })

	boom := errors.New("boom")
	err = st.Batched(func() error {
		if err := st.PutUser(User{ID: "persisted"}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("hook fired %d times, want 1", got)
	}
}

// TestBatchedNests: nested batches coalesce into the outermost one.
func TestBatchedNests(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var fires atomic.Int32
	st.OnChange(func([]ChangeEvent) { fires.Add(1) })

	err = st.Batched(func() error {
		if err := st.PutUser(User{ID: "a"}); err != nil {
			return err
		}
		return st.Batched(func() error { return st.PutUser(User{ID: "b"}) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("hook fired %d times, want 1", got)
	}
}

// TestChangeEventsTyped checks the typed change log: each mutator emits
// events naming the entity it touched and the refs a delta repair
// needs, with monotone sequence numbers.
func TestChangeEventsTyped(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var mu sync.Mutex
	var batches [][]ChangeEvent
	st.OnChange(func(evs []ChangeEvent) {
		mu.Lock()
		batches = append(batches, evs)
		mu.Unlock()
	})
	take := func() []ChangeEvent {
		mu.Lock()
		defer mu.Unlock()
		if len(batches) == 0 {
			return nil
		}
		b := batches[len(batches)-1]
		batches = nil
		return b
	}

	if err := st.PutUser(User{ID: "ann", Name: "Ann"}); err != nil {
		t.Fatal(err)
	}
	evs := take()
	if len(evs) != 1 || evs[0].EntityType != EntityUser || evs[0].ID != "ann" || evs[0].Kind != ChangePut {
		t.Fatalf("PutUser events = %+v", evs)
	}
	_ = st.PutUser(User{ID: "bob", Name: "Bob"})
	take()

	if err := st.PutPaper(Paper{ID: "p1", Title: "T", Authors: []string{"ann", "bob"}}); err != nil {
		t.Fatal(err)
	}
	evs = take()
	if len(evs) != 1 || evs[0].EntityType != EntityPaper || len(evs[0].Refs) != 2 || evs[0].Refs[0] != "ann" {
		t.Fatalf("PutPaper events = %+v", evs)
	}

	// A connect is one coalesced batch: the edge plus its activity event.
	if err := st.Connect("ann", "bob"); err != nil {
		t.Fatal(err)
	}
	evs = take()
	if len(evs) != 2 || evs[0].EntityType != EntityConnection || evs[1].EntityType != EntityActivity {
		t.Fatalf("Connect events = %+v", evs)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("sequence not monotone within batch: %d then %d", evs[0].Seq, evs[1].Seq)
	}
	if got := st.ChangeSeq(); got != evs[1].Seq {
		t.Fatalf("ChangeSeq = %d, want %d", got, evs[1].Seq)
	}

	// The activity event's ID resolves back to the stream event.
	seq, err := strconv.ParseUint(evs[1].ID, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	sev, err := st.EventBySeq(seq)
	if err != nil || sev.Verb != "connect" || sev.Actor != "ann" {
		t.Fatalf("EventBySeq(%d) = %+v, %v", seq, sev, err)
	}
}

// TestBatchedCoalescesTypedEvents: a Batched pass delivers exactly one
// batch carrying every write's events, only after the whole batch is
// persisted — the atomicity contract the delta pipeline relies on.
func TestBatchedCoalescesTypedEvents(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var mu sync.Mutex
	var deliveries [][]ChangeEvent
	st.OnChange(func(evs []ChangeEvent) {
		// All of the batch's writes must already be visible when the
		// events are delivered.
		for _, ev := range evs {
			if ev.EntityType == EntityUser && !st.HasUser(ev.ID) {
				t.Errorf("event for %s delivered before the write is visible", ev.ID)
			}
		}
		mu.Lock()
		deliveries = append(deliveries, evs)
		mu.Unlock()
	})

	const n = 5
	err = st.Batched(func() error {
		for i := 0; i < n; i++ {
			if err := st.PutUser(User{ID: fmt.Sprintf("u%d", i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(deliveries) != 1 || len(deliveries[0]) != n {
		t.Fatalf("deliveries = %d batches (first has %d events), want 1 batch of %d",
			len(deliveries), len(deliveries[0]), n)
	}
}
