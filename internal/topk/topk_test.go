package topk

import (
	"math/rand"
	"sort"
	"testing"
)

type item struct {
	id string
	s  float64
}

func better(a, b item) bool {
	if a.s != b.s {
		return a.s > b.s
	}
	return a.id < b.id
}

// TestMatchesFullSort checks the heap selection equals sort-then-truncate
// on random inputs with deliberate score ties.
func TestMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		items := make([]item, n)
		for i := range items {
			// Coarse scores force ties so the tie-break is exercised.
			items[i] = item{id: string(rune('a' + rng.Intn(26))), s: float64(rng.Intn(5))}
		}
		k := rng.Intn(10)
		h := New[item](k, better)
		for _, it := range items {
			h.Push(it)
		}
		got := h.Sorted()

		want := append([]item(nil), items...)
		sort.Slice(want, func(i, j int) bool { return better(want[i], want[j]) })
		if k > 0 && len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: item %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestUnboundedReturnsAllSorted(t *testing.T) {
	h := New[item](0, better)
	for _, it := range []item{{"b", 1}, {"a", 2}, {"c", 1}} {
		h.Push(it)
	}
	got := h.Sorted()
	want := []item{{"a", 2}, {"b", 1}, {"c", 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
