package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(); !errors.Is(err, ErrShape) {
		t.Fatalf("empty shape err = %v", err)
	}
	if _, err := NewSparse(3, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("zero dim err = %v", err)
	}
	ten, err := NewSparse(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ten.Size() != 60 {
		t.Fatalf("Size = %d", ten.Size())
	}
}

func TestSetGetAdd(t *testing.T) {
	ten := MustSparse(4, 4)
	if err := ten.Set(2.5, 1, 2); err != nil {
		t.Fatal(err)
	}
	v, err := ten.At(1, 2)
	if err != nil || v != 2.5 {
		t.Fatalf("At = %v, %v", v, err)
	}
	if err := ten.Add(-2.5, 1, 2); err != nil {
		t.Fatal(err)
	}
	if ten.NNZ() != 0 {
		t.Fatalf("exact cancellation should delete entry, NNZ = %d", ten.NNZ())
	}
	if v, _ := ten.At(3, 3); v != 0 {
		t.Fatalf("absent entry = %v", v)
	}
}

func TestCoordValidation(t *testing.T) {
	ten := MustSparse(2, 2)
	if err := ten.Set(1, 5, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("out of range err = %v", err)
	}
	if err := ten.Set(1, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("wrong arity err = %v", err)
	}
	if _, err := ten.At(-1, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("negative coord err = %v", err)
	}
}

func TestSetZeroDeletes(t *testing.T) {
	ten := MustSparse(2, 2)
	_ = ten.Set(1, 0, 0)
	_ = ten.Set(0, 0, 0)
	if ten.NNZ() != 0 {
		t.Fatalf("NNZ = %d", ten.NNZ())
	}
}

func TestEachAndClone(t *testing.T) {
	ten := MustSparse(3, 3, 3)
	_ = ten.Set(1, 0, 1, 2)
	_ = ten.Set(2, 2, 2, 2)
	seen := 0
	ten.Each(func(coords []int, v float64) {
		seen++
		if len(coords) != 3 {
			t.Fatalf("coords = %v", coords)
		}
	})
	if seen != 2 {
		t.Fatalf("Each visited %d", seen)
	}
	c := ten.Clone()
	_ = c.Set(9, 1, 1, 1)
	if ten.NNZ() != 2 || c.NNZ() != 3 {
		t.Fatal("clone not independent")
	}
}

func TestFrobeniusAndDiff(t *testing.T) {
	a := MustSparse(2, 2)
	_ = a.Set(3, 0, 0)
	_ = a.Set(4, 1, 1)
	if n := a.FrobeniusNorm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("norm = %v", n)
	}
	b := MustSparse(2, 2)
	_ = b.Set(3, 0, 0)
	d, err := a.Diff(b)
	if err != nil || math.Abs(d-4) > 1e-12 {
		t.Fatalf("Diff = %v, %v", d, err)
	}
	// Diff is symmetric.
	d2, _ := b.Diff(a)
	if math.Abs(d-d2) > 1e-12 {
		t.Fatalf("Diff asymmetric: %v vs %v", d, d2)
	}
	c := MustSparse(3, 3)
	if _, err := a.Diff(c); !errors.Is(err, ErrShape) {
		t.Fatalf("shape mismatch err = %v", err)
	}
}

func TestScale(t *testing.T) {
	a := MustSparse(2, 2)
	_ = a.Set(2, 0, 1)
	a.Scale(3)
	if v, _ := a.At(0, 1); v != 6 {
		t.Fatalf("scaled = %v", v)
	}
	a.Scale(0)
	if a.NNZ() != 0 {
		t.Fatal("Scale(0) should clear")
	}
}

func TestSketcherValidation(t *testing.T) {
	if _, err := NewSketcher(0, 1, 4); err == nil {
		t.Fatal("zero ensemble accepted")
	}
	if _, err := NewSketcher(8, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("empty shape err = %v", err)
	}
	sk, _ := NewSketcher(16, 1, 4, 4)
	if sk.M() != 16 {
		t.Fatalf("M = %d", sk.M())
	}
	wrong := MustSparse(3, 3)
	if _, err := sk.Sketch(wrong); !errors.Is(err, ErrShape) {
		t.Fatalf("sketch shape err = %v", err)
	}
}

func TestSketchDeterministic(t *testing.T) {
	sk, _ := NewSketcher(8, 42, 5, 5)
	ten := MustSparse(5, 5)
	_ = ten.Set(1.5, 2, 3)
	d1, err := sk.Sketch(ten)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := sk.Sketch(ten)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("sketch not deterministic")
		}
	}
	sk2, _ := NewSketcher(8, 43, 5, 5)
	d3, _ := sk2.Sketch(ten)
	same := true
	for i := range d1 {
		if d1[i] != d3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sketches")
	}
}

func TestSketchLinearUpdate(t *testing.T) {
	sk, _ := NewSketcher(32, 7, 6, 6)
	ten := MustSparse(6, 6)
	_ = ten.Set(1, 0, 0)
	d, err := sk.Sketch(ten)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental update must equal re-sketching the updated tensor.
	if err := sk.Update(d, 2.5, 3, 4); err != nil {
		t.Fatal(err)
	}
	_ = ten.Add(2.5, 3, 4)
	d2, _ := sk.Sketch(ten)
	for i := range d {
		if math.Abs(d[i]-d2[i]) > 1e-9 {
			t.Fatalf("incremental sketch diverged at %d: %v vs %v", i, d[i], d2[i])
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	sk, _ := NewSketcher(4, 1, 3)
	d := make(Descriptor, 4)
	if err := sk.Update(d, 1, 5); !errors.Is(err, ErrShape) {
		t.Fatalf("out-of-range err = %v", err)
	}
	if err := sk.Update(make(Descriptor, 2), 1, 0); err == nil {
		t.Fatal("descriptor size mismatch accepted")
	}
}

func TestDistanceEstimatesFrobenius(t *testing.T) {
	// With a large ensemble, the sketch distance should approximate the
	// true Frobenius distance within ~15%.
	shape := []int{20, 20}
	sk, _ := NewSketcher(512, 99, shape...)
	rng := rand.New(rand.NewSource(5))
	a := MustSparse(shape...)
	b := MustSparse(shape...)
	for i := 0; i < 60; i++ {
		_ = a.Set(rng.Float64()*2, rng.Intn(20), rng.Intn(20))
		_ = b.Set(rng.Float64()*2, rng.Intn(20), rng.Intn(20))
	}
	da, _ := sk.Sketch(a)
	db, _ := sk.Sketch(b)
	est, err := Distance(da, db)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := a.Diff(b)
	if exact == 0 {
		t.Skip("degenerate sample")
	}
	ratio := est / exact
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("estimate off: est=%v exact=%v ratio=%v", est, exact, ratio)
	}
}

func TestDistanceSizeMismatch(t *testing.T) {
	if _, err := Distance(Descriptor{1}, Descriptor{1, 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDetectorFlagsPlantedChanges(t *testing.T) {
	changeAt := map[int]bool{25: true, 40: true}
	stream := SyntheticStream(11, []int{16, 16, 8}, 50, 200, changeAt)
	sk, _ := NewSketcher(64, 3, 16, 16, 8)
	res, err := MonitorSketched(sk, stream, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	detected := map[int]bool{}
	for _, r := range res {
		if r.Change {
			detected[r.Epoch] = true
		}
	}
	for e := range changeAt {
		if !detected[e] {
			t.Errorf("planted change at epoch %d not detected; detections: %v", e, detected)
		}
	}
	// False positive rate must stay low: at most 3 spurious detections.
	fp := 0
	for e := range detected {
		if !changeAt[e] {
			fp++
		}
	}
	if fp > 3 {
		t.Fatalf("too many false positives: %v", detected)
	}
}

func TestExactMonitorAgreesOnChanges(t *testing.T) {
	changeAt := map[int]bool{30: true}
	stream := SyntheticStream(13, []int{12, 12, 6}, 45, 150, changeAt)
	res, err := MonitorExact(stream, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Change && r.Epoch == 30 {
			found = true
		}
	}
	if !found {
		t.Fatal("exact monitor missed planted change")
	}
}

func TestSketchedMatchesExactDetections(t *testing.T) {
	// The headline SCENT claim: compressed detection finds the same
	// change points as exact recomputation.
	changeAt := map[int]bool{20: true, 35: true}
	stream := SyntheticStream(17, []int{16, 16, 8}, 45, 200, changeAt)
	sk, _ := NewSketcher(128, 5, 16, 16, 8)
	sketched, err := MonitorSketched(sk, stream, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := MonitorExact(stream, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	sketchedSet := map[int]bool{}
	for _, r := range sketched {
		if r.Change {
			sketchedSet[r.Epoch] = true
		}
	}
	for _, r := range exact {
		if r.Change && changeAt[r.Epoch] && !sketchedSet[r.Epoch] {
			t.Fatalf("sketched monitor missed change at %d found by exact", r.Epoch)
		}
	}
}

func TestDetectorFirstObservationNeverSignals(t *testing.T) {
	det := &Detector{}
	ch, dist := det.Observe(Descriptor{1, 2, 3})
	if ch || dist != 0 {
		t.Fatalf("first observation: change=%v dist=%v", ch, dist)
	}
}

func TestPropSketchLinearity(t *testing.T) {
	// sketch(a) + sketch(b) == sketch(a + b) — linearity is what makes
	// descriptors incrementally maintainable.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{8, 8}
		sk, _ := NewSketcher(16, 123, shape...)
		a := MustSparse(shape...)
		b := MustSparse(shape...)
		sum := MustSparse(shape...)
		for i := 0; i < 20; i++ {
			x, y := rng.Intn(8), rng.Intn(8)
			v := rng.Float64()*4 - 2
			_ = a.Add(v, x, y)
			_ = sum.Add(v, x, y)
			x, y = rng.Intn(8), rng.Intn(8)
			v = rng.Float64()*4 - 2
			_ = b.Add(v, x, y)
			_ = sum.Add(v, x, y)
		}
		da, _ := sk.Sketch(a)
		db, _ := sk.Sketch(b)
		ds, _ := sk.Sketch(sum)
		for i := range ds {
			if math.Abs(da[i]+db[i]-ds[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDistanceNonNegativeSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d1 := make(Descriptor, 8)
		d2 := make(Descriptor, 8)
		for i := range d1 {
			d1[i] = rng.Float64()*10 - 5
			d2[i] = rng.Float64()*10 - 5
		}
		a, _ := Distance(d1, d2)
		b, _ := Distance(d2, d1)
		self, _ := Distance(d1, d1)
		return a >= 0 && math.Abs(a-b) < 1e-12 && self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticStreamShapeAndLength(t *testing.T) {
	stream := SyntheticStream(1, []int{4, 4}, 10, 5, nil)
	if len(stream) != 10 {
		t.Fatalf("len = %d", len(stream))
	}
	for _, ten := range stream {
		s := ten.Shape()
		if len(s) != 2 || s[0] != 4 || s[1] != 4 {
			t.Fatalf("shape = %v", s)
		}
	}
}

func TestSyntheticStreamDeltasConsistent(t *testing.T) {
	stream, deltas := SyntheticStreamWithDeltas(31, []int{8, 8}, 12, 40, map[int]bool{6: true})
	if len(stream) != len(deltas) {
		t.Fatalf("lengths differ: %d vs %d", len(stream), len(deltas))
	}
	// Replaying all deltas must reproduce each epoch exactly.
	cur := MustSparse(8, 8)
	for e, ds := range deltas {
		for _, d := range ds {
			if err := cur.Add(d.Value, d.Coords...); err != nil {
				t.Fatal(err)
			}
		}
		diff, err := cur.Diff(stream[e])
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-9 {
			t.Fatalf("epoch %d: replayed tensor diverges by %v", e, diff)
		}
	}
}

func TestMonitorIncrementalMatchesSketched(t *testing.T) {
	changeAt := map[int]bool{20: true}
	stream, deltas := SyntheticStreamWithDeltas(37, []int{16, 16, 8}, 35, 200, changeAt)
	sk, _ := NewSketcher(64, 3, 16, 16, 8)
	full, err := MonitorSketched(sk, stream, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := MonitorIncremental(sk, deltas, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(inc) {
		t.Fatalf("lengths differ")
	}
	// Distances must agree (same descriptors, maintained differently).
	for i := range full {
		if d := full[i].Distance - inc[i].Distance; d > 1e-6 || d < -1e-6 {
			t.Fatalf("epoch %d distance: full=%v inc=%v", i, full[i].Distance, inc[i].Distance)
		}
		if full[i].Change != inc[i].Change {
			t.Fatalf("epoch %d change flag differs", i)
		}
	}
}
