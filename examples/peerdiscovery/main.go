// Peerdiscovery runs Hive's evidence-based peer discovery over a full
// synthetic conference workload: it prints recommended peers with their
// evidence (Figure 2), the discovered research communities, and how
// community membership aligns with the planted research topics.
package main

import (
	"fmt"
	"log"

	"hive"
	"hive/internal/workload"
)

func main() {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	ds := workload.Generate(workload.Config{Seed: 42, Users: 48})
	if err := ds.Load(p.Store()); err != nil {
		log.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		log.Fatal(err)
	}

	// Pick a researcher and discover peers.
	uid := ds.Users[0].ID
	fmt.Printf("Peer discovery for %s (topic: %s)\n\n",
		uid, workload.Topics[ds.TopicOfUser[uid]].Name)
	recs, err := p.RecommendPeers(uid, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range recs {
		fmt.Printf("%d. %-8s score=%.4f topic=%s\n", i+1, r.UserID, r.Score,
			workload.Topics[ds.TopicOfUser[r.UserID]].Name)
		for j, ev := range r.Evidences {
			if j >= 3 {
				fmt.Printf("     ... and %d more evidence classes\n", len(r.Evidences)-3)
				break
			}
			fmt.Printf("     [%s] %s\n", ev.Kind, ev.Description)
		}
		if len(r.LikelySessions) > 0 {
			fmt.Printf("     likely sessions: %v\n", r.LikelySessions)
		}
	}

	// Community discovery over the integrated peer network.
	comms, err := p.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDiscovered %d communities; topic composition of the largest:\n", len(comms))
	for ci, c := range comms {
		if ci >= 3 {
			break
		}
		counts := map[string]int{}
		for _, u := range c {
			counts[workload.Topics[ds.TopicOfUser[u]].Name]++
		}
		fmt.Printf("  community %d (size %d): %v\n", ci, len(c), counts)
	}

	// Full relationship explanation for the top recommendation.
	if len(recs) > 0 {
		ex, err := p.Explain(uid, recs[0].UserID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nWhy %s ↔ %s (score %.3f):\n", uid, recs[0].UserID, ex.Score)
		for _, ev := range ex.Evidences {
			fmt.Printf("  - [%s] %s (%.2f)\n", ev.Kind, ev.Description, ev.Strength)
		}
		for _, path := range ex.Paths {
			fmt.Printf("  path: %v\n", path)
		}
	}
}
