package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hive"
	"hive/api"
)

// TestCapExemptPaths pins which paths bypass the in-flight and QPS
// caps: replication traffic (a parked long-poll would burn a slot
// forever) and the metrics scrape (shedding it blinds the operator
// exactly when the server is busiest). Everything else sheds.
func TestCapExemptPaths(t *testing.T) {
	for path, want := range map[string]bool{
		"/metrics":                     true,
		"/api/v1/replication/events":   true,
		"/api/v1/replication/snapshot": true,
		"/api/v1/users":                false,
		"/api/v1/search":               false,
		"/api/v1/debug/traces":         false,
		"/metricsfoo":                  false,
	} {
		if got := capExempt(path); got != want {
			t.Errorf("capExempt(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestMetricsExemptFromInFlightCap: with the only in-flight slot held
// by a parked request, /metrics and the replication feed still answer
// while ordinary routes shed with 503.
func TestMetricsExemptFromInFlightCap(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/users" && r.URL.Query().Get("park") == "1" {
			close(entered)
			<-release
		}
		w.WriteHeader(http.StatusOK)
	}), exceptPaths(MaxInFlight(1), capExempt))
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/api/v1/users?park=1")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the slot is held
	defer func() { close(release); wg.Wait() }()

	for path, want := range map[string]int{
		"/metrics":                   http.StatusOK,
		"/api/v1/replication/events": http.StatusOK,
		"/api/v1/users":              http.StatusServiceUnavailable,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s under full in-flight cap: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestMetricsExemptFromRateLimit: with the QPS token bucket drained,
// the scrape and the replication feed still answer while ordinary
// routes get 429.
func TestMetricsExemptFromRateLimit(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), exceptPaths(RateLimit(0.001, 1), capExempt))
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/api/v1/users"); got != http.StatusOK {
		t.Fatalf("first request burned no token? status %d", got)
	}
	if got := get("/api/v1/users"); got != http.StatusTooManyRequests {
		t.Fatalf("drained bucket did not shed: status %d", got)
	}
	for _, path := range []string{"/metrics", "/api/v1/replication/events", "/api/v1/replication/snapshot"} {
		if got := get(path); got != http.StatusOK {
			t.Errorf("%s sheds under a drained bucket: status %d", path, got)
		}
	}
}

// TestMetricsEndpoint drives real requests through a full server and
// asserts the exposition covers them: per-route counters and latency
// histograms plus the scrape-time state gauges, in the Prometheus text
// format. The registry is process-wide and other tests (and reruns
// under -count) contribute to the same series, so the counter
// assertions are deltas across a scrape pair, not absolute values.
func TestMetricsEndpoint(t *testing.T) {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.RegisterUser(hive.User{ID: "alice"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(p, Config{}))
	defer ts.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("Content-Type = %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	// sample returns the value of one fully-labeled series (0 when the
	// series has not been resolved yet).
	sample := func(body, series string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, series+" "); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					t.Fatalf("unparsable sample %q", line)
				}
				return v
			}
		}
		return 0
	}

	before := scrape()
	for _, path := range []string{"/api/v1/users/alice", "/api/v1/users/ghost"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	body := scrape()

	const (
		ok2xx = `hive_http_requests_total{route="/api/v1/users/{id}",method="GET",class="2xx"}`
		nf4xx = `hive_http_requests_total{route="/api/v1/users/{id}",method="GET",class="4xx"}`
		inf   = `hive_http_request_seconds_bucket{route="/api/v1/users/{id}",le="+Inf"}`
	)
	for series, want := range map[string]float64{ok2xx: 1, nf4xx: 1, inf: 2} {
		if got := sample(body, series) - sample(before, series); got != want {
			t.Errorf("%s advanced by %g, want %g", series, got, want)
		}
	}
	for _, want := range []string{
		"# TYPE hive_http_request_seconds histogram",
		`hive_pending_events{shard="0"}`,
		`hive_overlay_docs{shard="0"}`,
		`hive_commit_index{shard="0"}`,
		"hive_replication_lag_events",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, body)
		}
	}
}

// TestTraceEndToEnd: an inbound X-Hive-Trace-Id is adopted, echoed on
// the response, stamped into the error envelope, and lands in the
// debug/traces ring with the route it hit.
func TestTraceEndToEnd(t *testing.T) {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(NewWith(p, Config{}))
	defer ts.Close()

	const tid = "cafef00ddeadbeef"
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/users/ghost", nil)
	req.Header.Set(api.TraceHeader, tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(api.TraceHeader); got != tid {
		t.Fatalf("trace not echoed: %q", got)
	}
	var env api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.TraceID != tid {
		t.Fatalf("envelope trace_id = %q, want %q", env.TraceID, tid)
	}

	tresp, err := http.Get(ts.URL + "/api/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var report api.TraceReport
	if err := json.NewDecoder(tresp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range report.Traces {
		if tr.TraceID == tid {
			found = true
			if tr.Route != "/api/v1/users/{id}" || tr.Status != http.StatusNotFound {
				t.Fatalf("recorded trace wrong: %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in debug/traces (%d retained)", tid, len(report.Traces))
	}
}

// TestTraceMintedWhenAbsent: a request without the header gets a
// server-minted ID echoed back.
func TestTraceMintedWhenAbsent(t *testing.T) {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(NewWith(p, Config{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.TraceHeader); len(got) != 16 {
		t.Fatalf("minted trace ID = %q, want 16 hex chars", got)
	}
}

// TestDisableMetrics: DisableMetrics removes the observability
// endpoints entirely.
func TestDisableMetrics(t *testing.T) {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(NewWith(p, Config{DisableMetrics: true}))
	defer ts.Close()

	for _, path := range []string{"/metrics", "/api/v1/debug/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with metrics disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
}
