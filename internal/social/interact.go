package social

import (
	"fmt"
	"sort"
	"strings"

	"hive/internal/kvstore"
)

// Interaction layer: connections, follows, check-ins, Q&A, comments,
// workpads, collections and the activity stream. Every interaction both
// mutates state and appends an Event, which is what the knowledge layers
// (and the Twitter-equivalent hashtag fan-out) consume.

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// --- Connections -------------------------------------------------------------

// Connect establishes a mutual connection between two users (the
// "connection request ... acknowledgement" flow of §1.1, collapsed).
func (s *Store) Connect(a, b string) error {
	if a == b {
		return fmt.Errorf("%w: self-connection", ErrInvalid)
	}
	for _, u := range []string{a, b} {
		if !s.kv.Has(pUser + u) {
			return fmt.Errorf("%w: user %q", ErrNotFound, u)
		}
	}
	return s.scoped(func() error {
		batch := kvstore.NewBatch().
			Put(pConn+pairKey(a, b), nil).
			Put(pConnIdx+a+"/"+b, nil).
			Put(pConnIdx+b+"/"+a, nil)
		if err := s.kv.Apply(batch); err != nil {
			return err
		}
		s.emit(ChangePut, EntityConnection, pairKey(a, b), a, b)
		_, err := s.LogEvent(a, "connect", b, nil)
		return err
	})
}

// Connected reports whether two users are connected.
func (s *Store) Connected(a, b string) bool {
	return s.kv.Has(pConn + pairKey(a, b))
}

// ConnectionsOf returns the connections of a user, sorted.
func (s *Store) ConnectionsOf(u string) []string {
	return s.stripPrefix(pConnIdx + u + "/")
}

// --- Follows -----------------------------------------------------------------

// Follow makes follower receive followee's activity.
func (s *Store) Follow(follower, followee string) error {
	if follower == followee {
		return fmt.Errorf("%w: self-follow", ErrInvalid)
	}
	for _, u := range []string{follower, followee} {
		if !s.kv.Has(pUser + u) {
			return fmt.Errorf("%w: user %q", ErrNotFound, u)
		}
	}
	return s.scoped(func() error {
		batch := kvstore.NewBatch().
			Put(pFollow+follower+"/"+followee, nil).
			Put(pFollower+followee+"/"+follower, nil)
		if err := s.kv.Apply(batch); err != nil {
			return err
		}
		s.emit(ChangePut, EntityFollow, follower+"/"+followee, follower, followee)
		_, err := s.LogEvent(follower, "follow", followee, nil)
		return err
	})
}

// Unfollow removes a follow edge.
func (s *Store) Unfollow(follower, followee string) error {
	batch := kvstore.NewBatch().
		Delete(pFollow + follower + "/" + followee).
		Delete(pFollower + followee + "/" + follower)
	defer s.emit(ChangeDelete, EntityFollow, follower+"/"+followee, follower, followee)
	return s.kv.Apply(batch)
}

// FollowsUser reports whether follower follows followee.
func (s *Store) FollowsUser(follower, followee string) bool {
	return s.kv.Has(pFollow + follower + "/" + followee)
}

// Following returns the users someone follows.
func (s *Store) Following(u string) []string {
	return s.stripPrefix(pFollow + u + "/")
}

// Followers returns a user's followers.
func (s *Store) Followers(u string) []string {
	return s.stripPrefix(pFollower + u + "/")
}

// --- Check-ins ----------------------------------------------------------------

// CheckIn records that a user is attending a session and logs the event
// (tagged with the session hashtag, if any, for the Twitter-equivalent
// broadcast).
func (s *Store) CheckIn(sessionID, userID string) error {
	sess, err := s.Session(sessionID)
	if err != nil {
		return err
	}
	if !s.kv.Has(pUser + userID) {
		return fmt.Errorf("%w: user %q", ErrNotFound, userID)
	}
	return s.scoped(func() error {
		ci := CheckIn{SessionID: sessionID, UserID: userID, At: s.now().Unix()}
		defer s.emit(ChangePut, EntityCheckin, sessionID+"/"+userID, userID, sessionID)
		if err := s.putJSON(pCheckin+sessionID+"/"+userID, ci); err != nil {
			return err
		}
		if err := s.kv.Put(pCheckinU+userID+"/"+sessionID, nil); err != nil {
			return err
		}
		var tags []string
		if sess.Hashtag != "" {
			tags = []string{sess.Hashtag}
		}
		_, err := s.LogEvent(userID, "checkin", sessionID, tags)
		return err
	})
}

// Attendees returns the user IDs checked into a session.
func (s *Store) Attendees(sessionID string) []string {
	return s.stripPrefix(pCheckin + sessionID + "/")
}

// SessionsAttendedBy returns the sessions a user has checked into.
func (s *Store) SessionsAttendedBy(userID string) []string {
	return s.stripPrefix(pCheckinU + userID + "/")
}

// --- Questions, answers, comments ---------------------------------------------

// AskQuestion posts a question about a target entity.
func (s *Store) AskQuestion(q Question) error {
	if q.ID == "" || q.Author == "" || q.Target == "" {
		return fmt.Errorf("%w: question needs id, author and target", ErrInvalid)
	}
	if !s.kv.Has(pUser + q.Author) {
		return fmt.Errorf("%w: user %q", ErrNotFound, q.Author)
	}
	if q.At == 0 {
		q.At = s.now().Unix()
	}
	return s.scoped(func() error {
		defer s.emit(ChangePut, EntityQuestion, q.ID, q.Author, q.Target)
		if err := s.putJSON(pQuestion+q.ID, q); err != nil {
			return err
		}
		b := kvstore.NewBatch().
			Put(pQTarget+q.Target+"/"+q.ID, nil).
			Put(pQAuthor+q.Author+"/"+q.ID, nil)
		if err := s.kv.Apply(b); err != nil {
			return err
		}
		_, err := s.LogEvent(q.Author, "question", q.Target, s.tagsForTarget(q.Target))
		return err
	})
}

// Question fetches a question by ID.
func (s *Store) Question(id string) (Question, error) {
	var q Question
	err := s.getJSON(pQuestion+id, &q)
	return q, err
}

// QuestionsAbout returns question IDs targeting an entity.
func (s *Store) QuestionsAbout(target string) []string {
	return s.stripPrefix(pQTarget + target + "/")
}

// QuestionsBy returns question IDs authored by a user.
func (s *Store) QuestionsBy(author string) []string {
	return s.stripPrefix(pQAuthor + author + "/")
}

// PostAnswer replies to an existing question.
func (s *Store) PostAnswer(a Answer) error {
	if a.ID == "" || a.Author == "" {
		return fmt.Errorf("%w: answer needs id and author", ErrInvalid)
	}
	if !s.kv.Has(pQuestion + a.QuestionID) {
		return fmt.Errorf("%w: question %q", ErrNotFound, a.QuestionID)
	}
	if !s.kv.Has(pUser + a.Author) {
		return fmt.Errorf("%w: user %q", ErrNotFound, a.Author)
	}
	if a.At == 0 {
		a.At = s.now().Unix()
	}
	return s.scoped(func() error {
		defer s.emit(ChangePut, EntityAnswer, a.ID, a.Author, a.QuestionID)
		if err := s.putJSON(pAnswer+a.ID, a); err != nil {
			return err
		}
		if err := s.kv.Put(pAQuestion+a.QuestionID+"/"+a.ID, nil); err != nil {
			return err
		}
		_, err := s.LogEvent(a.Author, "answer", a.QuestionID, nil)
		return err
	})
}

// Answer fetches an answer by ID.
func (s *Store) Answer(id string) (Answer, error) {
	var a Answer
	err := s.getJSON(pAnswer+id, &a)
	return a, err
}

// AnswersTo returns answer IDs for a question.
func (s *Store) AnswersTo(questionID string) []string {
	return s.stripPrefix(pAQuestion + questionID + "/")
}

// PostComment attaches a comment to any entity.
func (s *Store) PostComment(c Comment) error {
	if c.ID == "" || c.Author == "" || c.Target == "" {
		return fmt.Errorf("%w: comment needs id, author and target", ErrInvalid)
	}
	if !s.kv.Has(pUser + c.Author) {
		return fmt.Errorf("%w: user %q", ErrNotFound, c.Author)
	}
	if c.At == 0 {
		c.At = s.now().Unix()
	}
	return s.scoped(func() error {
		defer s.emit(ChangePut, EntityComment, c.ID, c.Author, c.Target)
		if err := s.putJSON(pComment+c.ID, c); err != nil {
			return err
		}
		if err := s.kv.Put(pCTarget+c.Target+"/"+c.ID, nil); err != nil {
			return err
		}
		_, err := s.LogEvent(c.Author, "comment", c.Target, s.tagsForTarget(c.Target))
		return err
	})
}

// Comment fetches a comment by ID.
func (s *Store) Comment(id string) (Comment, error) {
	var c Comment
	err := s.getJSON(pComment+id, &c)
	return c, err
}

// CommentsOn returns comment IDs attached to a target.
func (s *Store) CommentsOn(target string) []string {
	return s.stripPrefix(pCTarget + target + "/")
}

// tagsForTarget resolves the hashtag broadcast for events about a session
// (directly, or via a paper presented in a session).
func (s *Store) tagsForTarget(target string) []string {
	if sess, err := s.Session(target); err == nil && sess.Hashtag != "" {
		return []string{sess.Hashtag}
	}
	if p, err := s.Paper(target); err == nil && p.SessionID != "" {
		if sess, err := s.Session(p.SessionID); err == nil && sess.Hashtag != "" {
			return []string{sess.Hashtag}
		}
	}
	return nil
}

// --- Workpads & collections ----------------------------------------------------

// PutWorkpad creates or updates a workpad.
func (s *Store) PutWorkpad(w Workpad) error {
	if w.ID == "" || w.Owner == "" {
		return fmt.Errorf("%w: workpad needs id and owner", ErrInvalid)
	}
	if !s.kv.Has(pUser + w.Owner) {
		return fmt.Errorf("%w: user %q", ErrNotFound, w.Owner)
	}
	defer s.emit(ChangePut, EntityWorkpad, w.ID, w.Owner)
	if err := s.putJSON(pWorkpad+w.ID, w); err != nil {
		return err
	}
	return s.kv.Put(pWPOwner+w.Owner+"/"+w.ID, nil)
}

// Workpad fetches a workpad by ID.
func (s *Store) Workpad(id string) (Workpad, error) {
	var w Workpad
	err := s.getJSON(pWorkpad+id, &w)
	return w, err
}

// WorkpadsOf returns the workpad IDs of a user.
func (s *Store) WorkpadsOf(owner string) []string {
	return s.stripPrefix(pWPOwner + owner + "/")
}

// AddToWorkpad drags an item into a workpad (idempotent).
func (s *Store) AddToWorkpad(workpadID string, item WorkpadItem) error {
	w, err := s.Workpad(workpadID)
	if err != nil {
		return err
	}
	for _, it := range w.Items {
		if it == item {
			return nil
		}
	}
	w.Items = append(w.Items, item)
	defer s.emit(ChangePut, EntityWorkpad, w.ID, w.Owner)
	return s.putJSON(pWorkpad+w.ID, w)
}

// RemoveFromWorkpad removes an item from a workpad.
func (s *Store) RemoveFromWorkpad(workpadID string, item WorkpadItem) error {
	w, err := s.Workpad(workpadID)
	if err != nil {
		return err
	}
	for i, it := range w.Items {
		if it == item {
			w.Items = append(w.Items[:i], w.Items[i+1:]...)
			defer s.emit(ChangePut, EntityWorkpad, w.ID, w.Owner)
			return s.putJSON(pWorkpad+w.ID, w)
		}
	}
	return nil
}

// SetActiveWorkpad selects the workpad that defines the user's current
// context. The workpad must belong to the user.
func (s *Store) SetActiveWorkpad(owner, workpadID string) error {
	w, err := s.Workpad(workpadID)
	if err != nil {
		return err
	}
	if w.Owner != owner {
		return fmt.Errorf("%w: workpad %q not owned by %q", ErrInvalid, workpadID, owner)
	}
	defer s.emit(ChangePut, EntityActiveWorkpad, owner, workpadID)
	return s.kv.Put(pWPActive+owner, []byte(workpadID))
}

// ActiveWorkpad returns the user's active workpad, or ErrNotFound when no
// workpad is selected.
func (s *Store) ActiveWorkpad(owner string) (Workpad, error) {
	raw, err := s.kv.Get(pWPActive + owner)
	if err != nil {
		return Workpad{}, fmt.Errorf("%w: no active workpad for %q", ErrNotFound, owner)
	}
	return s.Workpad(string(raw))
}

// ExportCollection publishes a workpad as a shareable collection.
func (s *Store) ExportCollection(workpadID, collectionID string) (Collection, error) {
	w, err := s.Workpad(workpadID)
	if err != nil {
		return Collection{}, err
	}
	c := Collection{
		ID:    collectionID,
		Owner: w.Owner,
		Name:  w.Name,
		Items: append([]WorkpadItem(nil), w.Items...),
	}
	defer s.emit(ChangePut, EntityCollection, c.ID, c.Owner)
	if err := s.putJSON(pCollection+c.ID, c); err != nil {
		return Collection{}, err
	}
	return c, nil
}

// Collection fetches a collection by ID.
func (s *Store) Collection(id string) (Collection, error) {
	var c Collection
	err := s.getJSON(pCollection+id, &c)
	return c, err
}

// ImportCollection copies a collection into a new workpad owned by the
// importing user ("import a collection as active work pad", §2).
func (s *Store) ImportCollection(collectionID, owner, workpadID string) (Workpad, error) {
	c, err := s.Collection(collectionID)
	if err != nil {
		return Workpad{}, err
	}
	w := Workpad{
		ID:    workpadID,
		Owner: owner,
		Name:  c.Name,
		Items: append([]WorkpadItem(nil), c.Items...),
	}
	// One logical mutation, one coalesced batch: without the scoped
	// wrapper subscribers would see the imported workpad exist before
	// it becomes active, and pay two incremental engine repairs.
	if err := s.scoped(func() error {
		if err := s.PutWorkpad(w); err != nil {
			return err
		}
		return s.SetActiveWorkpad(owner, workpadID)
	}); err != nil {
		return Workpad{}, err
	}
	return w, nil
}

// --- Activity stream -------------------------------------------------------------

// LogEvent appends an event to the activity stream and its actor/tag
// indexes, returning the assigned sequence number. The change log
// records it as an EntityActivity event whose ID is the activity
// sequence key, so incremental consumers can refetch the Event via
// EventBySeq and fold it into interaction tables exactly once.
func (s *Store) LogEvent(actor, verb, object string, tags []string) (uint64, error) {
	seq, err := s.nextSeq()
	if err != nil {
		return 0, err
	}
	ev := Event{Seq: seq, At: s.now().Unix(), Actor: actor, Verb: verb, Object: object, Tags: tags}
	defer s.emit(ChangePut, EntityActivity, seqKey(seq), actor, object)
	if err := s.putJSON(pEvent+seqKey(seq), ev); err != nil {
		return 0, err
	}
	b := kvstore.NewBatch().Put(pEvActor+actor+"/"+seqKey(seq), nil)
	for _, t := range tags {
		b.Put(pEvTag+strings.ToLower(t)+"/"+seqKey(seq), nil)
	}
	if err := s.kv.Apply(b); err != nil {
		return 0, err
	}
	return seq, nil
}

// EventBySeq fetches one activity-stream event by its sequence number.
func (s *Store) EventBySeq(seq uint64) (Event, error) {
	var ev Event
	err := s.getJSON(pEvent+seqKey(seq), &ev)
	return ev, err
}

// LastEventSeq returns the highest activity-stream sequence assigned so
// far (persisted across reopen, unlike the change-event sequence).
func (s *Store) LastEventSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// EventsSince returns events with Seq > after, oldest first, up to limit
// (0 = no limit).
func (s *Store) EventsSince(after uint64, limit int) []Event {
	var evs []Event
	s.kv.Scan(pEvent, func(k string, raw []byte) bool {
		var ev Event
		if err := unmarshalEvent(raw, &ev); err != nil {
			return true
		}
		if ev.Seq > after {
			evs = append(evs, ev)
		}
		return limit <= 0 || len(evs) < limit
	})
	return evs
}

// EventsByActor returns all events by one user, oldest first.
func (s *Store) EventsByActor(actor string) []Event {
	return s.eventsFromIndex(pEvActor + actor + "/")
}

// EventsByTag returns the hashtag fan-out: all events broadcast under a
// tag, oldest first.
func (s *Store) EventsByTag(tag string) []Event {
	return s.eventsFromIndex(pEvTag + strings.ToLower(tag) + "/")
}

// Feed returns the real-time update feed for a user: events by users they
// follow, oldest first ("provide real-time updates regarding these during
// the conference", §1.1).
func (s *Store) Feed(userID string, limit int) []Event {
	var evs []Event
	for _, followee := range s.Following(userID) {
		evs = append(evs, s.EventsByActor(followee)...)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	return evs
}

func (s *Store) eventsFromIndex(prefix string) []Event {
	var evs []Event
	s.kv.Scan(prefix, func(k string, _ []byte) bool {
		seqStr := k[len(prefix):]
		raw, err := s.kv.Get(pEvent + seqStr)
		if err != nil {
			return true
		}
		var ev Event
		if unmarshalEvent(raw, &ev) == nil {
			evs = append(evs, ev)
		}
		return true
	})
	return evs
}
