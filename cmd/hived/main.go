// Command hived serves the Hive platform over HTTP (the Figure 1
// surface).
//
// Usage:
//
//	hived [-addr :8080] [-data DIR] [-seed users]
//
// With -seed N, a synthetic conference workload of N users is generated
// and loaded at startup so the API has data to serve.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"hive"
	"hive/internal/server"
	"hive/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "storage directory (empty = in-memory)")
	seed := flag.Int("seed", 0, "generate a synthetic workload with this many users")
	flag.Parse()

	p, err := hive.Open(hive.Options{Dir: *data})
	if err != nil {
		log.Fatalf("open platform: %v", err)
	}
	defer p.Close()

	if *seed > 0 {
		ds := workload.Generate(workload.Config{Seed: 42, Users: *seed})
		if err := ds.Load(p.Store()); err != nil {
			log.Fatalf("load workload: %v", err)
		}
		log.Printf("seeded %d users, %d papers, %d sessions",
			len(ds.Users), len(ds.Papers), len(ds.Sessions))
	}
	start := time.Now()
	if err := p.Refresh(); err != nil {
		log.Fatalf("build knowledge engine: %v", err)
	}
	log.Printf("knowledge engine ready in %v", time.Since(start))

	log.Printf("hived listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New(p)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
