package hive

// Quorum-acknowledged writes. With ClusterConfig.QuorumWrites = k > 0,
// a leading platform holds every write response until k followers have
// confirmed the write's change sequence applied at the current epoch.
// There is no extra ack RPC: followers report progress by stamping
// their applied sequence onto the replication long-poll they already
// run (?applied=<seq>&self=<url> on GET /api/v1/replication/events),
// so the ack path is exactly as alive as the data path it vouches for.
//
// The leader folds those reports into a *cluster commit index* — the
// highest sequence at least k followers have acknowledged at the
// current epoch — persisted beside the journal (journal/commit.idx) and
// republished to followers on every poll response, so every member
// carries the durability watermark and a promoted follower starts from
// it. Waiting is bounded: a write that cannot collect its quorum within
// AckTimeout fails with *QuorumUnavailableError (HTTP 503
// quorum_unavailable, details.acked/details.needed) instead of
// hanging; the write itself stays journaled and replicates when the
// followers return — the error reports unproven durability, it does not
// roll anything back.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"hive/internal/election"
)

const (
	// DefaultAckTimeout bounds a quorum write's wait for follower acks
	// when ClusterConfig.AckTimeout is zero.
	DefaultAckTimeout = 5 * time.Second
	// ackRecheck is the waiter's safety-net poll: commit-index advances
	// normally wake waiters through ackCh, and the periodic re-check
	// catches any advance that raced a waiter between its sequence load
	// and its park — the leader-side retry loop of ack collection.
	ackRecheck = 50 * time.Millisecond
	// promoteProbeTimeout bounds each peer probe of the caught-up
	// promotion gate; an unreachable peer cannot stall a promotion.
	promoteProbeTimeout = 750 * time.Millisecond
	// maxPromotionDeferrals bounds how many consecutive elections this
	// node yields to a more caught-up peer that then fails to claim.
	// Past it the node leads anyway: availability beats the optimization.
	maxPromotionDeferrals = 3
)

// followerAck is one follower's most recent progress report.
type followerAck struct {
	applied uint64    // highest change sequence confirmed applied
	epoch   uint64    // the term the follower asserted when reporting
	at      time.Time // when the report arrived (staleness in healthz)
}

// QuorumUnavailableError reports a quorum write that timed out
// collecting follower acks: only Acked of the Needed followers
// confirmed the write's sequence within the ack timeout. The write is
// journaled on the leader and will replicate when followers return —
// the error means durability is unproven, not that state was rolled
// back. The HTTP layer maps it to 503 quorum_unavailable.
type QuorumUnavailableError struct {
	Seq    uint64 // change sequence the write waited on
	Acked  int    // followers that had confirmed Seq at the deadline
	Needed int    // the configured quorum (ClusterConfig.QuorumWrites)
}

func (e *QuorumUnavailableError) Error() string {
	return fmt.Sprintf("hive: quorum unavailable: %d/%d follower acks for seq %d within the ack timeout (write journaled, durability unproven)",
		e.Acked, e.Needed, e.Seq)
}

// RecordFollowerAck folds one follower progress report into the ack
// table and advances the cluster commit index when a quorum forms. The
// server calls it for every replication poll that carries ?applied. A
// report only counts toward quorum when the follower asserted this
// leader's current epoch — an old-term ack may vouch for history the
// current term fenced away.
func (p *Platform) RecordFollowerAck(self string, applied, epoch uint64) {
	if self == "" || self == p.selfURL || p.elector == nil {
		return
	}
	if p.role.Load() != roleLeader {
		return
	}
	p.ackMu.Lock()
	defer p.ackMu.Unlock()
	prev := p.acks[self]
	if applied < prev.applied && epoch <= prev.epoch {
		applied = prev.applied // per-follower progress is monotone within a term
	}
	p.acks[self] = followerAck{applied: applied, epoch: epoch, at: time.Now()}
	if p.quorumK <= 0 {
		return
	}
	// Quorum ack check: the k-th largest sequence confirmed by followers
	// at the current term is, by definition, acknowledged by at least k
	// of them — only that bound may advance the durable commit index.
	quorumSeq := p.kthAckedLocked(p.quorumK, p.store.Epoch())
	if quorumSeq <= p.store.CommitIndex() {
		return
	}
	if err := p.store.SetCommitIndex(quorumSeq); err != nil {
		return // surfaced via JournalError-style health on the next poll
	}
	// Wake quorum waiters: close-and-replace, every parked writer
	// re-checks the new index.
	close(p.ackCh)
	p.ackCh = make(chan struct{})
}

// kthAckedLocked returns the k-th largest applied sequence among
// followers whose latest report asserted epoch (0 when fewer than k
// have). Caller holds ackMu.
func (p *Platform) kthAckedLocked(k int, epoch uint64) uint64 {
	seqs := make([]uint64, 0, len(p.acks))
	for _, a := range p.acks {
		if a.epoch == epoch {
			seqs = append(seqs, a.applied)
		}
	}
	if len(seqs) < k {
		return 0
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs[k-1]
}

// resetAcks clears the ack table across role or term changes: a new
// term's quorum must be proven by new reports, never inherited from
// bookkeeping of a term that may have been fenced. Parked waiters are
// woken so they re-check against the (unchanged) commit index and run
// out their deadline instead of sleeping on a channel nobody closes.
func (p *Platform) resetAcks() {
	p.ackMu.Lock()
	p.acks = map[string]followerAck{}
	if p.ackCh != nil {
		close(p.ackCh)
		p.ackCh = make(chan struct{})
	}
	p.ackMu.Unlock()
}

// waitQuorum holds a just-applied write until the cluster commit index
// covers the store's current change sequence — every event the write
// produced, possibly over-waiting for a concurrent neighbor's, which
// only strengthens the guarantee. Bounded by the ack timeout; on expiry
// the caller gets a typed QuorumUnavailableError carrying the live
// acked/needed counts. No-op in async mode (k = 0) and on followers.
func (p *Platform) waitQuorum() error {
	if p.quorumK <= 0 {
		return nil
	}
	seq := p.store.ChangeSeq()
	defer mQuorumAckWaitSeconds.ObserveSince(time.Now())
	deadline := time.NewTimer(p.ackTimeout)
	defer deadline.Stop()
	recheck := time.NewTicker(ackRecheck)
	defer recheck.Stop()
	for {
		if p.store.CommitIndex() >= seq {
			return nil
		}
		p.ackMu.Lock()
		ch := p.ackCh
		p.ackMu.Unlock()
		if p.store.CommitIndex() >= seq {
			return nil
		}
		select {
		case <-ch:
		case <-recheck.C:
		case <-deadline.C:
			p.ackMu.Lock()
			acked := 0
			epoch := p.store.Epoch()
			for _, a := range p.acks {
				if a.epoch == epoch && a.applied >= seq {
					acked++
				}
			}
			p.ackMu.Unlock()
			return &QuorumUnavailableError{Seq: seq, Acked: acked, Needed: p.quorumK}
		}
	}
}

// CommitIndex returns the cluster commit index: the highest change
// sequence a quorum of followers has acknowledged applying, as
// persisted beside the journal. Zero before any quorum write committed
// (notably: always zero in async mode on a fresh journal).
func (p *Platform) CommitIndex() uint64 { return p.store.CommitIndex() }

// QuorumWrites returns the configured write quorum (0 = async).
func (p *Platform) QuorumWrites() int { return p.quorumK }

// AckTimeout returns the bounded wait applied to quorum writes.
func (p *Platform) AckTimeout() time.Duration { return p.ackTimeout }

// PromotionDeferrals counts elections this node won but yielded because
// a reachable peer held more history.
func (p *Platform) PromotionDeferrals() uint64 { return p.deferrals.Load() }

// FollowerAckInfo is one follower's ack state as reported by healthz:
// which sequence it last confirmed, at which term, and how stale the
// report is — a silently-stalled follower shows up here (age growing,
// applied frozen) before it blocks a quorum.
type FollowerAckInfo struct {
	URL     string
	Applied uint64
	Epoch   uint64
	Age     time.Duration
}

// FollowerAcks returns the ack table, sorted by follower URL. Empty on
// followers and outside cluster mode.
func (p *Platform) FollowerAcks() []FollowerAckInfo {
	p.ackMu.Lock()
	out := make([]FollowerAckInfo, 0, len(p.acks))
	for url, a := range p.acks {
		out = append(out, FollowerAckInfo{URL: url, Applied: a.applied, Epoch: a.epoch, Age: time.Since(a.at)})
	}
	p.ackMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// --- Caught-up promotion gate ---------------------------------------------------

// promoteProbeClient keeps the gate's peer probes on short, pooled
// connections, independent of any request context.
var promoteProbeClient = &http.Client{
	Timeout: promoteProbeTimeout,
	Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 4,
		IdleConnTimeout:     90 * time.Second,
	},
}

// peerProgress is the slice of a peer's healthz the gate reads. The
// hive package cannot import api (api aliases hive's DTO types), so the
// wire names are spelled here; TestPromotionProbeSchema pins them to
// the api package's tags from the server side.
type peerProgress struct {
	Replication struct {
		Epoch       uint64 `json:"epoch"`
		JournalTail uint64 `json:"journal_tail"`
		AppliedSeq  uint64 `json:"applied_seq"`
	} `json:"replication"`
}

// moreCaughtUpPeer probes every peer's healthz in parallel and reports
// the one holding the most history strictly beyond this node's, if any.
// Only peers at or above this node's current term count: a resurrected
// deposed leader may hold a longer journal whose surplus is fenced —
// deferring to it would resurrect exactly the writes fencing dropped.
// Unreachable peers are skipped; the gate is an optimization, never a
// liveness dependency.
func (p *Platform) moreCaughtUpPeer() (url string, seq uint64, found bool) {
	if len(p.peers) == 0 {
		return "", 0, false
	}
	local := p.store.ChangeSeq()
	if _, tail, _ := p.store.JournalStats(); tail > local {
		local = tail
	}
	epoch := p.store.Epoch()

	type probe struct {
		url string
		seq uint64
		ok  bool
	}
	results := make(chan probe, len(p.peers))
	var wg sync.WaitGroup
	for _, peer := range p.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			resp, err := promoteProbeClient.Get(peer + "/api/v1/healthz")
			if err != nil {
				results <- probe{url: peer}
				return
			}
			defer resp.Body.Close()
			var pp peerProgress
			if err := json.NewDecoder(resp.Body).Decode(&pp); err != nil {
				results <- probe{url: peer}
				return
			}
			if pp.Replication.Epoch < epoch {
				results <- probe{url: peer} // fenced history does not count
				return
			}
			peerSeq := pp.Replication.JournalTail
			if pp.Replication.AppliedSeq > peerSeq {
				peerSeq = pp.Replication.AppliedSeq
			}
			results <- probe{url: peer, seq: peerSeq, ok: true}
		}(peer)
	}
	wg.Wait()
	close(results)
	best := probe{}
	for r := range results {
		if r.ok && r.seq > best.seq {
			best = r
		}
	}
	if best.ok && best.seq > local {
		return best.url, best.seq, true
	}
	return "", 0, false
}

// deferPromotion steps aside from a won election in favor of a more
// caught-up peer: yield the lease (when the elector supports it) so the
// peer claims inside the next cycle, and stay a fenced follower. The
// elector's epoch floor already covers the yielded term, so the next
// claim — by anyone — goes strictly above it.
func (p *Platform) deferPromotion() {
	p.deferStreak++
	p.deferrals.Add(1)
	mDeferrals.Inc()
	if y, ok := p.elector.(election.Yielder); ok {
		y.Yield()
	}
}
