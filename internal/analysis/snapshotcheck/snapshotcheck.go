// Package snapshotcheck enforces the platform's snapshot-immutability
// invariant: once an engine snapshot is published through an
// atomic.Pointer swap, nothing may write to it — a single
// post-publication mutation races every reader of the old pointer.
//
// Concretely, fields of textindex.Frozen, textindex.Segmented and
// core.Engine may only be assigned inside the construction paths of
// their own package (everything reachable from Freeze/NewSegmented/
// WithDocs/WithoutDocs for the text index, Builder.Build/
// Builder.ApplyDelta for the engine). Any field write outside the
// defining package, or inside it but outside the construction
// call graph, is reported.
package snapshotcheck

import (
	"go/ast"
	"go/token"

	"hive/internal/analysis"
)

// A protected set names the immutable types of one package and the
// construction entry points whose (syntactic, in-package) call graph is
// allowed to write their fields.
type protectedSet struct {
	pkgSuffix string
	types     map[string]bool
	seeds     []string
}

var protectedSets = []protectedSet{
	{
		pkgSuffix: "internal/textindex",
		types:     map[string]bool{"Frozen": true, "Segmented": true},
		seeds:     []string{"Freeze", "NewSegmented", "WithDocs", "WithoutDocs"},
	},
	{
		pkgSuffix: "internal/core",
		types:     map[string]bool{"Engine": true},
		seeds:     []string{"Build", "ApplyDelta"},
	},
}

var Analyzer = &analysis.Analyzer{
	Name: "snapshotcheck",
	Doc: "flag writes to published snapshot types (textindex.Frozen/Segmented, core.Engine) " +
		"outside their construction whitelist",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// When analyzing the defining package itself, compute the set of
	// top-level declarations reachable from the construction seeds;
	// writes there are the legitimate build phase. Reachability is
	// syntactic over declaration names (calls and bare references, so
	// task tables like `var buildTasks = []buildTask{...}` whose
	// closures run under Build stay whitelisted).
	reachable := map[string]map[string]bool{} // pkgSuffix -> decl name -> reachable
	for _, ps := range protectedSets {
		if analysis.PkgPathHasSuffix(pass.Pkg, ps.pkgSuffix) {
			reachable[ps.pkgSuffix] = reachableDecls(pass.Files, ps.seeds)
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			name, body := declName(decl)
			if body == nil {
				continue
			}
			ast.Inspect(body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						checkWrite(pass, reachable, name, lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, reachable, name, st.X)
				}
				return true
			})
		}
	}
	return nil
}

// declName returns the name and inspectable body of a top-level
// declaration: the function name for funcs/methods, the first bound
// name for package-level var/const declarations (whose initializer
// closures are attributed to that name).
func declName(decl ast.Decl) (string, ast.Node) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Body == nil {
			return d.Name.Name, nil
		}
		return d.Name.Name, d.Body
	case *ast.GenDecl:
		if d.Tok != token.VAR {
			return "", nil
		}
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if ok && len(vs.Names) > 0 && len(vs.Values) > 0 {
				return vs.Names[0].Name, d
			}
		}
	}
	return "", nil
}

// checkWrite reports lhs if it writes (directly, or through index
// expressions over) a field of a protected type from outside the
// construction whitelist.
func checkWrite(pass *analysis.Pass, reachable map[string]map[string]bool, enclosing string, lhs ast.Expr) {
	// Unwrap index chains: ne.ctxOver[u] = v writes field ctxOver.
	for {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ix.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return
	}
	named := analysis.Deref(tv.Type)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return
	}
	for _, ps := range protectedSets {
		if !ps.types[named.Obj().Name()] || !analysis.PkgPathHasSuffix(named.Obj().Pkg(), ps.pkgSuffix) {
			continue
		}
		if r, inDefiningPkg := reachable[ps.pkgSuffix]; inDefiningPkg && r[enclosing] {
			return // construction path
		}
		pass.Reportf(sel.Pos(),
			"write to %s.%s.%s outside the construction whitelist: snapshots are immutable once published",
			ps.pkgSuffix, named.Obj().Name(), sel.Sel.Name)
		return
	}
}

// reachableDecls computes the top-level declarations reachable from the
// seed names by following identifier references (an over-approximation:
// any mention of a declaration's name marks it reachable, which errs
// toward permitting construction helpers rather than crying wolf).
func reachableDecls(files []*ast.File, seeds []string) map[string]bool {
	refs := map[string]map[string]bool{} // decl name -> referenced idents
	for _, file := range files {
		for _, decl := range file.Decls {
			name, body := declName(decl)
			if name == "" || body == nil {
				continue
			}
			set := refs[name]
			if set == nil {
				set = map[string]bool{}
				refs[name] = set
			}
			ast.Inspect(body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					set[id.Name] = true
				}
				return true
			})
		}
	}
	reach := map[string]bool{}
	for _, s := range seeds {
		reach[s] = true
	}
	for changed := true; changed; {
		changed = false
		for name := range refs {
			if reach[name] {
				continue
			}
			for from := range reach {
				if refs[from][name] {
					reach[name] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}
