module snaptest

go 1.23
