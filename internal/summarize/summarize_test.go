package summarize

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sessionHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(map[string]string{
		"s-graphs":   "track-data",
		"s-tensors":  "track-data",
		"s-crowds":   "track-web",
		"s-social":   "track-web",
		"track-data": "edbt13",
		"track-web":  "edbt13",
		"edbt13":     Root,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyBasics(t *testing.T) {
	h := sessionHierarchy(t)
	if h.Parent("s-graphs") != "track-data" {
		t.Fatalf("Parent = %q", h.Parent("s-graphs"))
	}
	if h.Parent(Root) != Root {
		t.Fatal("Root parent must be Root")
	}
	if h.Depth("s-graphs") != 3 || h.Depth("edbt13") != 1 || h.Depth(Root) != 0 {
		t.Fatalf("depths: %d %d %d", h.Depth("s-graphs"), h.Depth("edbt13"), h.Depth(Root))
	}
	if h.MaxDepth() != 3 {
		t.Fatalf("MaxDepth = %d", h.MaxDepth())
	}
	if !h.Contains("track-web") || h.Contains("unknown") {
		t.Fatal("Contains wrong")
	}
}

func TestHierarchyGeneralizeAndAtLevel(t *testing.T) {
	h := sessionHierarchy(t)
	if got := h.Generalize("s-graphs", 2); got != "edbt13" {
		t.Fatalf("Generalize = %q", got)
	}
	if got := h.Generalize("s-graphs", 99); got != Root {
		t.Fatalf("over-generalize = %q", got)
	}
	if got := h.AtLevel("s-graphs", 2); got != "track-data" {
		t.Fatalf("AtLevel = %q", got)
	}
	if got := h.AtLevel("edbt13", 3); got != "edbt13" {
		t.Fatalf("AtLevel above depth should be identity: %q", got)
	}
}

func TestHierarchyLoss(t *testing.T) {
	h := sessionHierarchy(t)
	// 4 leaves total. Leaf loss 0; track covers 2 leaves -> 1/3; root -> 1.
	if l := h.Loss("s-graphs"); l != 0 {
		t.Fatalf("leaf loss = %v", l)
	}
	if l := h.Loss("track-data"); l < 0.33 || l > 0.34 {
		t.Fatalf("track loss = %v", l)
	}
	if l := h.Loss(Root); l != 1 {
		t.Fatalf("root loss = %v", l)
	}
	// Loss must be monotone along the generalization chain.
	if !(h.Loss("s-graphs") < h.Loss("track-data") &&
		h.Loss("track-data") < h.Loss("edbt13") &&
		h.Loss("edbt13") <= h.Loss(Root)) {
		t.Fatal("loss not monotone")
	}
}

func TestHierarchyRejectsCycle(t *testing.T) {
	_, err := NewHierarchy(map[string]string{"a": "b", "b": "a"})
	if !errors.Is(err, ErrHierarchy) {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestHierarchyRejectsRootChild(t *testing.T) {
	_, err := NewHierarchy(map[string]string{Root: "x"})
	if !errors.Is(err, ErrHierarchy) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlatHierarchy(t *testing.T) {
	h := FlatHierarchy([]string{"a", "b", "c"})
	if h.MaxDepth() != 1 {
		t.Fatalf("MaxDepth = %d", h.MaxDepth())
	}
	if h.Loss("a") != 0 || h.Loss(Root) != 1 {
		t.Fatalf("losses: %v %v", h.Loss("a"), h.Loss(Root))
	}
}

func activityTable() *Table {
	return &Table{
		Columns: []string{"user", "session"},
		Rows: [][]string{
			{"zach", "s-graphs"},
			{"zach", "s-tensors"},
			{"ann", "s-graphs"},
			{"ann", "s-crowds"},
			{"aaron", "s-social"},
			{"aaron", "s-crowds"},
			{"maria", "s-tensors"},
			{"maria", "s-graphs"},
		},
	}
}

func TestValidate(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}, Rows: [][]string{{"x"}}}
	if err := tab.Validate(); !errors.Is(err, ErrBadTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, map[string]*Hierarchy{"session": sessionHierarchy(t)})
	for _, budget := range []int{1, 2, 4, 6, 8} {
		sum, err := s.Greedy(tab, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.Rows) > budget {
			t.Fatalf("budget %d: got %d rows", budget, len(sum.Rows))
		}
		total := 0
		for _, r := range sum.Rows {
			total += r.Count
		}
		if total != len(tab.Rows) {
			t.Fatalf("counts sum to %d, want %d", total, len(tab.Rows))
		}
	}
}

func TestGreedyNoGeneralizationWhenUnderBudget(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, map[string]*Hierarchy{"session": sessionHierarchy(t)})
	sum, err := s.Greedy(tab, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Loss != 0 {
		t.Fatalf("loss = %v, want 0 when under budget", sum.Loss)
	}
	if len(sum.Rows) != 8 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, map[string]*Hierarchy{"session": sessionHierarchy(t)})
	for _, budget := range []int{1, 2, 3, 4, 6} {
		g, err := s.Greedy(tab, budget)
		if err != nil {
			t.Fatal(err)
		}
		o, err := s.Optimal(tab, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Rows) > budget {
			t.Fatalf("optimal over budget at %d", budget)
		}
		if o.Loss > g.Loss+1e-9 {
			t.Fatalf("budget %d: optimal loss %v > greedy loss %v", budget, o.Loss, g.Loss)
		}
	}
}

func TestLossDecreasesWithBudget(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, map[string]*Hierarchy{"session": sessionHierarchy(t)})
	prev := 2.0
	for _, budget := range []int{1, 2, 4, 8} {
		sum, err := s.Optimal(tab, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Loss > prev+1e-9 {
			t.Fatalf("loss increased with budget: %v -> %v", prev, sum.Loss)
		}
		prev = sum.Loss
	}
}

func TestBudgetOne(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, nil)
	sum, err := s.Greedy(tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 1 || sum.Rows[0].Count != 8 {
		t.Fatalf("summary = %+v", sum.Rows)
	}
}

func TestBadBudget(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, nil)
	if _, err := s.Greedy(tab, 0); !errors.Is(err, ErrBadTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	s := NewSummarizer(tab.Columns, nil)
	sum, err := s.Greedy(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 0 || sum.Loss != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSummaryRowsSortedByCount(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, map[string]*Hierarchy{"session": sessionHierarchy(t)})
	sum, err := s.Greedy(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sum.Rows); i++ {
		if sum.Rows[i].Count > sum.Rows[i-1].Count {
			t.Fatalf("rows not sorted by count: %+v", sum.Rows)
		}
	}
}

func TestFormat(t *testing.T) {
	tab := activityTable()
	s := NewSummarizer(tab.Columns, nil)
	sum, err := s.Greedy(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := sum.Format()
	if !strings.Contains(out, "user") || !strings.Contains(out, "count") {
		t.Fatalf("Format output missing header: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 1+len(sum.Rows) {
		t.Fatalf("Format line count wrong:\n%s", out)
	}
}

func TestPropBudgetAlwaysRespected(t *testing.T) {
	h, err := NewHierarchy(map[string]string{
		"a1": "A", "a2": "A", "b1": "B", "b2": "B", "A": Root, "B": Root,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaves := []string{"a1", "a2", "b1", "b2"}
	f := func(seed int64, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nRows := 2 + rng.Intn(20)
		tab := &Table{Columns: []string{"v", "u"}}
		for i := 0; i < nRows; i++ {
			tab.Rows = append(tab.Rows, []string{
				leaves[rng.Intn(len(leaves))],
				fmt.Sprintf("u%d", rng.Intn(4)),
			})
		}
		budget := 1 + int(budgetRaw%10)
		s := NewSummarizer(tab.Columns, map[string]*Hierarchy{"v": h})
		g, err := s.Greedy(tab, budget)
		if err != nil || len(g.Rows) > budget {
			return false
		}
		o, err := s.Optimal(tab, budget)
		if err != nil || len(o.Rows) > budget {
			return false
		}
		if o.Loss > g.Loss+1e-9 {
			return false
		}
		// Counts always cover all source rows.
		tg, to := 0, 0
		for _, r := range g.Rows {
			tg += r.Count
		}
		for _, r := range o.Rows {
			to += r.Count
		}
		return tg == nRows && to == nRows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
