package snapshotcheck_test

import (
	"testing"

	"hive/internal/analysis/analysistest"
	"hive/internal/analysis/snapshotcheck"
)

func TestSnapshotCheck(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotcheck.Analyzer)
}
