package graph

import (
	"math"

	"hive/internal/topk"
)

// PageRankOptions configures the power-iteration PageRank solvers.
type PageRankOptions struct {
	// Damping is the probability of following an out-edge rather than
	// teleporting. Defaults to 0.85 when zero.
	Damping float64
	// MaxIter bounds the number of power iterations. Defaults to 100.
	MaxIter int
	// Tolerance is the L1 convergence threshold. Defaults to 1e-9.
	Tolerance float64
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// PPRWorkspace holds the scratch vectors of the power iteration so
// repeated PageRank runs over the same graph allocate nothing but the
// returned rank slice. It also caches the per-node total out-weights,
// which are invariant across runs. A workspace is bound to the graph of
// its first use and re-binds (recomputing the cache) when handed a
// different or resized graph; it assumes the graph is not mutated
// between runs — callers ranking a mutable graph must use a fresh
// workspace after mutations. Not safe for concurrent use.
type PPRWorkspace struct {
	g         *Graph
	outWeight []float64
	restart   []float64
	rank      []float64
	next      []float64
}

// bind points the workspace at g, sizing the scratch vectors and
// recomputing the out-weight cache if the graph changed.
func (ws *PPRWorkspace) bind(g *Graph) {
	n := len(g.nodes)
	if ws.g == g && len(ws.outWeight) == n {
		return
	}
	ws.g = g
	ws.outWeight = resize(ws.outWeight, n)
	ws.restart = resize(ws.restart, n)
	ws.rank = resize(ws.rank, n)
	ws.next = resize(ws.next, n)
	for i := 0; i < n; i++ {
		ws.outWeight[i] = 0
		for _, e := range g.out[i] {
			ws.outWeight[i] += e.Weight
		}
	}
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// PageRank computes the stationary importance of every node under the
// weighted random-surfer model. Edge weights bias the surfer toward
// stronger relationships. The returned slice is indexed by NodeID and sums
// to 1 (for non-empty graphs).
func (g *Graph) PageRank(opts PageRankOptions) []float64 {
	return g.PageRankWith(nil, opts)
}

// PageRankWith is PageRank reusing the given workspace (nil allocates a
// throwaway one).
func (g *Graph) PageRankWith(ws *PPRWorkspace, opts PageRankOptions) []float64 {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	if ws == nil {
		ws = &PPRWorkspace{}
	}
	ws.bind(g)
	for i := range ws.restart {
		ws.restart[i] = 1 / float64(n)
	}
	return g.powerIterate(ws, opts)
}

// PersonalizedPageRank computes PageRank with teleportation restricted to
// the given restart distribution. This is Hive's core context-propagation
// primitive: the restart mass is placed on the nodes of the user's active
// workpad (plus checked-in session), and the stationary distribution
// scores every entity's relevance to that context (paper §2.3, "Hive
// propagates the concepts within the relevant neighborhoods of the
// knowledge network").
//
// restart maps node IDs to non-negative masses; it is normalized
// internally. Nodes outside restart get rank only via graph structure.
func (g *Graph) PersonalizedPageRank(restart map[NodeID]float64, opts PageRankOptions) []float64 {
	return g.PersonalizedPageRankWith(nil, restart, opts)
}

// PersonalizedPageRankWith is PersonalizedPageRank reusing the given
// workspace (nil allocates a throwaway one). The returned rank slice is
// freshly allocated and remains valid after the workspace is reused.
func (g *Graph) PersonalizedPageRankWith(ws *PPRWorkspace, restart map[NodeID]float64, opts PageRankOptions) []float64 {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	if ws == nil {
		ws = &PPRWorkspace{}
	}
	ws.bind(g)
	for i := range ws.restart {
		ws.restart[i] = 0
	}
	var total float64
	for id, m := range restart {
		if g.valid(id) && m > 0 {
			ws.restart[id] = m
			total += m
		}
	}
	if total == 0 {
		return g.PageRankWith(ws, opts)
	}
	for i := range ws.restart {
		ws.restart[i] /= total
	}
	return g.powerIterate(ws, opts)
}

// powerIterate runs the damped power iteration over the workspace's
// restart vector and returns a fresh copy of the converged ranks.
func (g *Graph) powerIterate(ws *PPRWorkspace, opts PageRankOptions) []float64 {
	opts = opts.withDefaults()
	n := len(g.nodes)
	rank, next := ws.rank, ws.next
	copy(rank, ws.restart)

	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		var dangling float64
		for i := 0; i < n; i++ {
			if rank[i] == 0 {
				continue
			}
			if ws.outWeight[i] == 0 {
				dangling += rank[i]
				continue
			}
			share := opts.Damping * rank[i] / ws.outWeight[i]
			for _, e := range g.out[i] {
				next[e.To] += share * e.Weight
			}
		}
		// Dangling mass and teleportation both return to the restart
		// distribution, keeping the chain personalized.
		back := opts.Damping*dangling + (1 - opts.Damping)
		var delta float64
		for i := 0; i < n; i++ {
			next[i] += back * ws.restart[i]
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < opts.Tolerance {
			break
		}
	}
	ws.rank, ws.next = rank, next
	out := make([]float64, n)
	copy(out, rank)
	return out
}

// TopK returns the k highest-scoring node IDs for a score vector indexed
// by NodeID, excluding any IDs in the skip set. Ties break toward lower
// IDs for determinism. Selection is heap-bounded: O(n log k).
func TopK(scores []float64, k int, skip map[NodeID]bool) []NodeID {
	if k <= 0 {
		return nil
	}
	type sc struct {
		id NodeID
		s  float64
	}
	h := topk.New[sc](k, func(a, b sc) bool {
		if a.s != b.s {
			return a.s > b.s
		}
		return a.id < b.id
	})
	for i, s := range scores {
		id := NodeID(i)
		if skip[id] {
			continue
		}
		h.Push(sc{id, s})
	}
	best := h.Sorted()
	ids := make([]NodeID, len(best))
	for i, c := range best {
		ids[i] = c.id
	}
	return ids
}
