// Package faultnet injects deterministic network faults into an HTTP
// round-tripper: probabilistic request drops, fixed-plus-jitter delays,
// duplicate delivery of idempotent requests, and named partitions. It
// exists so the replication and quorum machinery can be tested against
// the failure modes it claims to survive — lost acks, slow followers,
// split links — inside ordinary Go tests, with a seeded generator so a
// failing schedule replays exactly.
//
// The transport wraps whatever the client would otherwise use (the
// replication client in practice) and makes fault decisions per
// request. Injected failures surface as transport errors (wrapped by
// net/http into *url.Error), never as well-formed API envelopes, so the
// caller's transport-vs-typed-error branching is exercised honestly.
package faultnet

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the injected faults. Zero values inject nothing: a
// zero-config Transport is a transparent pass-through.
type Config struct {
	// Seed fixes the fault schedule. The same seed against the same
	// request order reproduces the same drops, delays and duplicates.
	Seed int64
	// DropProb is the probability a request is dropped before reaching
	// the wire (the caller sees a transport error).
	DropProb float64
	// Delay is added to every request, plus a uniform [0, Jitter)
	// component. The delay respects the request context: cancellation
	// during the injected delay returns the context's error.
	Delay  time.Duration
	Jitter time.Duration
	// DupProb is the probability an idempotent (GET or HEAD) request is
	// delivered twice — the first response is discarded, the second
	// returned — modeling at-least-once delivery on the ack path.
	// Non-idempotent requests are never duplicated.
	DupProb float64
}

// Transport is a fault-injecting http.RoundTripper. Safe for concurrent
// use; the seeded generator is serialized so the schedule stays
// deterministic for a deterministic request order.
type Transport struct {
	inner http.RoundTripper
	cfg   Config

	mu                   sync.Mutex
	rng                  *rand.Rand
	cut                  map[string]bool // partitioned hosts (host:port as dialed)
	drops, dups, delayed atomic.Uint64
}

// New wraps inner (nil = http.DefaultTransport) with fault injection.
func New(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cut:   map[string]bool{},
	}
}

// Partition cuts the link to host (the URL's host:port): every request
// to it fails immediately with a transport error until Heal.
func (t *Transport) Partition(host string) {
	t.mu.Lock()
	t.cut[host] = true
	t.mu.Unlock()
}

// Heal restores the link to host.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	delete(t.cut, host)
	t.mu.Unlock()
}

// HealAll restores every partitioned link.
func (t *Transport) HealAll() {
	t.mu.Lock()
	t.cut = map[string]bool{}
	t.mu.Unlock()
}

// Drops reports how many requests the transport has dropped (including
// partition rejections).
func (t *Transport) Drops() uint64 { return t.drops.Load() }

// Dups reports how many requests were delivered twice.
func (t *Transport) Dups() uint64 { return t.dups.Load() }

// Delayed reports how many requests had an injected delay.
func (t *Transport) Delayed() uint64 { return t.delayed.Load() }

// roll draws the per-request fault decisions in one critical section so
// concurrent requests cannot interleave draws and perturb the schedule
// beyond their own ordering.
func (t *Transport) roll(host string, idempotent bool) (cut, drop, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cut[host] {
		return true, false, false, 0
	}
	if t.cfg.DropProb > 0 && t.rng.Float64() < t.cfg.DropProb {
		return false, true, false, 0
	}
	if idempotent && t.cfg.DupProb > 0 && t.rng.Float64() < t.cfg.DupProb {
		dup = true
	}
	delay = t.cfg.Delay
	if t.cfg.Jitter > 0 {
		delay += time.Duration(t.rng.Int63n(int64(t.cfg.Jitter)))
	}
	return false, false, dup, delay
}

// RoundTrip implements http.RoundTripper with the configured faults.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	idempotent := req.Method == http.MethodGet || req.Method == http.MethodHead
	cut, drop, dup, delay := t.roll(req.URL.Host, idempotent)
	switch {
	case cut:
		t.drops.Add(1)
		return nil, fmt.Errorf("faultnet: partitioned from %s", req.URL.Host)
	case drop:
		t.drops.Add(1)
		return nil, fmt.Errorf("faultnet: dropped %s %s", req.Method, req.URL)
	}
	if delay > 0 {
		t.delayed.Add(1)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if dup {
		// At-least-once delivery: the server sees the request twice; the
		// caller sees one response. Only reached for GET/HEAD, whose
		// bodies are empty, so replaying the request is safe.
		t.dups.Add(1)
		if first, err := t.inner.RoundTrip(cloneRequest(req)); err == nil {
			first.Body.Close()
		}
	}
	return t.inner.RoundTrip(req)
}

// cloneRequest shallow-copies req for the duplicate delivery. GET/HEAD
// requests carry no body, so a URL+header copy is a faithful replay.
func cloneRequest(req *http.Request) *http.Request {
	return req.Clone(req.Context())
}
