package server

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hive/api"
)

func envelopeCode(t *testing.T, body io.Reader) string {
	t.Helper()
	var env api.ErrorResponse
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatal("no error in envelope")
	}
	return env.Error.Code
}

func TestRecoverMiddleware(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), Recover(quiet))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if code := envelopeCode(t, rec.Body); code != api.CodeInternal {
		t.Fatalf("code = %q", code)
	}
}

func TestTimeoutMiddleware(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	}), Timeout(20*time.Millisecond))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", rec.Code)
	}
	if code := envelopeCode(t, rec.Body); code != api.CodeTimeout {
		t.Fatalf("code = %q", code)
	}
}

func TestMaxInFlightMiddleware(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}), MaxInFlight(1))
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the slot is held
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d", resp.StatusCode)
	}
	if code := envelopeCode(t, resp.Body); code != api.CodeOverloaded {
		t.Fatalf("code = %q", code)
	}
	close(release)
	wg.Wait()
}

func TestRateLimitMiddleware(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), RateLimit(0.001, 1)) // one token, refills far too slowly to matter
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d", rec.Code)
	}
	if code := envelopeCode(t, rec.Body); code != api.CodeRateLimited {
		t.Fatalf("code = %q", code)
	}
}

func TestGzipMiddleware(t *testing.T) {
	payload := strings.Repeat("compress me please ", 200)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = io.WriteString(w, payload)
	}), Gzip)

	// Client accepts gzip: body arrives compressed.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q", got)
	}
	if rec.Body.Len() >= len(payload) {
		t.Fatalf("body not compressed: %d >= %d", rec.Body.Len(), len(payload))
	}
	gr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gr)
	if err != nil || string(plain) != payload {
		t.Fatalf("roundtrip: %v, %d bytes", err, len(plain))
	}

	// Client without gzip support: passthrough.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Header().Get("Content-Encoding") != "" || rec.Body.String() != payload {
		t.Fatal("non-gzip client got transformed body")
	}

	// Explicit refusal (q=0) must not be read as consent.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Accept-Encoding", "gzip;q=0, identity")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get("Content-Encoding") != "" || rec.Body.String() != payload {
		t.Fatal("gzip;q=0 client got a compressed body")
	}
}

func TestAcceptsGzip(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate", true},
		{"deflate, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0, identity", false},
		{"deflate", false},
		{"x-gzip-like", false},
	} {
		if got := acceptsGzip(tc.header); got != tc.want {
			t.Fatalf("acceptsGzip(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestGzip304StaysEmpty: conditional responses must not grow a gzip
// frame (a 304 with a body would be a protocol violation).
func TestGzip304StaysEmpty(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotModified)
	}), Gzip)
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried %d body bytes", rec.Body.Len())
	}
	if rec.Header().Get("Content-Encoding") == "gzip" {
		t.Fatal("304 claims gzip encoding")
	}
}

// TestRecoverThroughGzipStaysReadable: a panic before any write must
// yield a plain-JSON 500 envelope with no stray Content-Encoding — the
// gzip middleware may only commit the header for responses it actually
// compresses.
func TestRecoverThroughGzipStaysReadable(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), Recover(quiet), Gzip)
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if enc := rec.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("panic response claims Content-Encoding %q", enc)
	}
	if code := envelopeCode(t, rec.Body); code != api.CodeInternal {
		t.Fatalf("code = %q", code)
	}
}

func TestChainOrder(t *testing.T) {
	var trace []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				trace = append(trace, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace = append(trace, "handler")
	}), mk("outer"), mk("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if strings.Join(trace, ",") != "outer,inner,handler" {
		t.Fatalf("trace = %v", trace)
	}
}
