package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/align"
	"hive/internal/biblio"
	"hive/internal/community"
	"hive/internal/graph"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/textindex"
)

// Builder assembles an immutable Engine snapshot from a social store,
// fanning the independent derivation stages out across a bounded worker
// pool. The store is only read during Build, so a Builder can run in the
// background while an older snapshot keeps serving queries; the caller
// publishes the result with an atomic pointer swap (see hive.Platform).
type Builder struct {
	// Store is the social store to derive the snapshot from.
	Store *social.Store
	// Workers bounds the number of concurrently running derivation
	// tasks. Zero or negative means GOMAXPROCS.
	Workers int
}

// derivation stages that are independent of each other once the paper
// corpus and user set are loaded. Each writes a disjoint set of Engine
// fields, so they are safe to run concurrently and join before read.
type buildTask struct {
	name string
	run  func(e *Engine) error
}

var buildTasks = []buildTask{
	{"textindex", func(e *Engine) error { return e.buildTextIndex() }},
	{"conceptmap", func(e *Engine) error { e.buildConceptMap(); return nil }},
	{LayerConnections, func(e *Engine) error { e.connLayer = e.deriveConnectionsLayer(); return nil }},
	{LayerCoauthor, func(e *Engine) error {
		// The coauthor user-layer projects the bibliographic network,
		// so both derive inside one task.
		e.buildBibliographicLayers()
		e.coauthLayer = e.deriveCoauthorLayer()
		return nil
	}},
	{LayerAttendance, func(e *Engine) error { e.attendLayer = e.deriveAttendanceLayer(); return nil }},
	{LayerQA, func(e *Engine) error { e.qaLayer = e.deriveQALayer(); return nil }},
	{"knowledgebase", func(e *Engine) error { e.exportKnowledgeBase(); return nil }},
}

// finishTasks is the second fan-out wave: snapshot-resident read-path
// derivations that consume phase-1 outputs (the frozen text index, the
// concept map, the evidence layers). After these and the table stages
// join, every serving query is a lookup — search, context, evidence and
// recommendation read precomputed structures instead of re-deriving
// them per request.
var finishTasks = []buildTask{
	{"integrate", func(e *Engine) error {
		// Integration needs all four layers; communities need the
		// integrated peer graph.
		if err := e.integrateLayers(); err != nil {
			return err
		}
		e.communities = community.Detect(e.peerGraph, 1)
		return nil
	}},
	{"interactions", func(e *Engine) error { e.buildInteractionTables(); return nil }},
}

// tableTasks are the per-user table stages. Each shards its user loop
// across the full worker budget internally (forUsersParallel), so they
// run one at a time — never nested inside the task fan-out — to keep
// total rebuild parallelism within Builder.Workers (background rebuilds
// must not steal more CPU from the serving path than the operator
// budgeted with -workers).
var tableTasks = []buildTask{
	{"contextvectors", func(e *Engine) error { e.buildContextVectors(); return nil }},
	{"usercontent", func(e *Engine) error { e.buildUserContentVectors(); return nil }},
}

// Build derives the four context-network layers, the text index, the
// concept map and the RDF knowledge base concurrently, then integrates
// the layers and detects communities. The returned Engine is complete
// and immutable: no goroutine mutates it after Build returns.
func (b *Builder) Build() (*Engine, error) {
	start := time.Now()
	st := b.Store
	e := &Engine{store: st, index: textindex.NewIndex(), kb: rdf.NewStore(), buildWorkers: b.workers()}

	// Shared inputs, gathered once up front: several stages iterate the
	// paper corpus and the user set.
	for _, id := range st.Papers() {
		p, err := st.Paper(id)
		if err != nil {
			return nil, err
		}
		e.papers = append(e.papers, p)
	}
	e.users = st.Users()

	if err := runLimited(buildTasks, e, b.workers()); err != nil {
		return nil, err
	}

	// Freeze the text index into its lock-free dense read representation
	// and wrap it in an empty segmented view; the phase-2 tables and all
	// serving queries read through the view, which delegates straight to
	// the frozen fast paths until a delta adds overlay documents. A full
	// Build is therefore also the *compaction* of the delta pipeline: it
	// folds every overlay into a fresh base segment.
	e.frozen = e.index.Freeze()
	e.seg = textindex.NewSegmented(e.frozen)

	if err := runLimited(finishTasks, e, b.workers()); err != nil {
		return nil, err
	}
	for _, t := range tableTasks {
		if err := runTask(t, e); err != nil {
			return nil, err
		}
	}

	// Lazily-filled per-snapshot PageRank memo (bounded; see RecommendPeers).
	e.pprMemo = make(map[string][]float64)

	e.builtAt = time.Now()
	e.buildDur = e.builtAt.Sub(start)
	return e, nil
}

func (b *Builder) workers() int {
	if b.Workers > 0 {
		return b.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runLimited runs the tasks across at most workers goroutines and
// returns the first error (errgroup-style fan-out, stdlib only). A
// panicking task is converted into an error so a background rebuild
// can never take the serving process down.
func runLimited(tasks []buildTask, e *Engine, workers int) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	ch := make(chan buildTask)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if err := runTask(t, e); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// forUsersParallel runs fn(i, user) for every user across the builder's
// worker count. Indices are disjoint, so fn may write into index i of a
// preallocated slice without locking. A panic in any worker is re-raised
// on the calling goroutine, where runTask's recover converts it into a
// build error (rebuilds must never take the serving process down).
func (e *Engine) forUsersParallel(fn func(i int, u string)) {
	workers := e.buildWorkers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(e.users) {
		workers = len(e.users)
	}
	if workers <= 1 {
		for i, u := range e.users {
			fn(i, u)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.users) {
					return
				}
				fn(i, e.users[i])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

func runTask(t buildTask, e *Engine) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: build stage %s panicked: %v", t.name, r)
		}
	}()
	if err := t.run(e); err != nil {
		return fmt.Errorf("core: build stage %s: %w", t.name, err)
	}
	return nil
}

// deriveConnectionsLayer builds the explicit-connection/follow layer.
func (e *Engine) deriveConnectionsLayer() *graph.Graph {
	conn := graph.New()
	for _, u := range e.users {
		conn.EnsureNode(u, "user")
	}
	for _, u := range e.users {
		for _, o := range e.store.ConnectionsOf(u) {
			_ = conn.AddEdge(conn.Lookup(u), conn.EnsureNode(o, "user"), "connected", 1)
		}
		for _, o := range e.store.Following(u) {
			_ = conn.AddEdge(conn.Lookup(u), conn.EnsureNode(o, "user"), "follows", 0.5)
		}
	}
	return conn
}

// deriveCoauthorLayer projects the bibliographic coauthor network onto
// the user layer. Requires e.coauthorNet (buildBibliographicLayers).
func (e *Engine) deriveCoauthorLayer() *graph.Graph {
	coauth := graph.New()
	for _, u := range e.users {
		coauth.EnsureNode(u, "user")
	}
	e.coauthorNet.Nodes(func(n graph.Node) bool {
		from := coauth.EnsureNode(n.Key, "user")
		for _, ed := range e.coauthorNet.Out(n.ID) {
			toNode, err := e.coauthorNet.Node(ed.To)
			if err != nil {
				continue
			}
			_ = coauth.AddEdge(from, coauth.EnsureNode(toNode.Key, "user"), biblio.EdgeCoauthor, ed.Weight)
		}
		return true
	})
	return coauth
}

// deriveAttendanceLayer links users who checked into the same session.
func (e *Engine) deriveAttendanceLayer() *graph.Graph {
	attend := graph.New()
	for _, u := range e.users {
		attend.EnsureNode(u, "user")
	}
	for _, conf := range e.store.Conferences() {
		for _, sess := range e.store.SessionsOf(conf) {
			att := e.store.Attendees(sess)
			for i := 0; i < len(att); i++ {
				for j := i + 1; j < len(att); j++ {
					a := attend.EnsureNode(att[i], "user")
					b := attend.EnsureNode(att[j], "user")
					_ = attend.AddUndirected(a, b, "co-attends", 1)
				}
			}
		}
	}
	return attend
}

// deriveQALayer links question askers with answerers and entity owners.
func (e *Engine) deriveQALayer() *graph.Graph {
	qa := graph.New()
	for _, u := range e.users {
		qa.EnsureNode(u, "user")
	}
	for _, u := range e.users {
		for _, qID := range e.store.QuestionsBy(u) {
			q, err := e.store.Question(qID)
			if err != nil {
				continue
			}
			// Question author relates to the target's owners/authors.
			for _, owner := range e.ownersOf(q.Target) {
				if owner == u {
					continue
				}
				_ = qa.AddUndirected(qa.Lookup(u), qa.EnsureNode(owner, "user"), "qa", 1)
			}
			// Answer authors relate back to the asker.
			for _, aID := range e.store.AnswersTo(qID) {
				a, err := e.store.Answer(aID)
				if err != nil || a.Author == u {
					continue
				}
				_ = qa.AddUndirected(qa.Lookup(u), qa.EnsureNode(a.Author, "user"), "qa", 1)
			}
		}
	}
	return qa
}

// integrateLayers aligns and merges the four evidence layers into the
// integrated context network (paper §2.2). All layers share user IDs as
// node keys, so alignment resolves them exactly; the machinery still
// scores and merges them as in the general imprecise case.
func (e *Engine) integrateLayers() error {
	e.layers = []*align.Layer{
		{Name: LayerConnections, Trust: 1.0, G: e.connLayer},
		{Name: LayerCoauthor, Trust: 0.9, G: e.coauthLayer},
		{Name: LayerAttendance, Trust: 0.6, G: e.attendLayer},
		{Name: LayerQA, Trust: 0.7, G: e.qaLayer},
	}
	in, err := align.Integrate(e.layers, align.Options{})
	if err != nil {
		return err
	}
	e.integrated = in
	e.peerGraph = in.G
	return nil
}
