package community

import (
	"fmt"
	"math/rand"
	"testing"

	"hive/internal/graph"
)

// twoCliques builds two dense cliques of size k joined by one weak edge.
func twoCliques(t *testing.T, k int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < 2*k; i++ {
		if _, err := g.AddNode(fmt.Sprintf("n%d", i), "user"); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				_ = g.AddUndirected(graph.NodeID(base+i), graph.NodeID(base+j), "e", 1)
			}
		}
	}
	_ = g.AddUndirected(graph.NodeID(0), graph.NodeID(k), "e", 0.1)
	return g
}

func TestDetectSeparatesCliques(t *testing.T) {
	g := twoCliques(t, 6)
	comms := Detect(g, 1)
	if len(comms) != 2 {
		t.Fatalf("got %d communities, want 2: %v", len(comms), comms)
	}
	// Each community must be exactly one clique.
	for _, c := range comms {
		if len(c) != 6 {
			t.Fatalf("community size %d, want 6", len(c))
		}
		side := int(c[0]) / 6
		for _, id := range c {
			if int(id)/6 != side {
				t.Fatalf("mixed community: %v", c)
			}
		}
	}
}

func TestDetectEmptyAndSingleton(t *testing.T) {
	g := graph.New()
	if got := Detect(g, 1); got != nil {
		t.Fatalf("empty graph = %v", got)
	}
	_, _ = g.AddNode("solo", "user")
	comms := Detect(g, 1)
	if len(comms) != 1 || len(comms[0]) != 1 {
		t.Fatalf("singleton = %v", comms)
	}
}

func TestDetectDeterministicForSeed(t *testing.T) {
	g := twoCliques(t, 5)
	a := Detect(g, 7)
	b := Detect(g, 7)
	if len(a) != len(b) {
		t.Fatal("non-deterministic community count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("non-deterministic community sizes")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("non-deterministic membership")
			}
		}
	}
}

func TestModularityGoodVsBadPartition(t *testing.T) {
	g := twoCliques(t, 5)
	good := Detect(g, 1)
	qGood := Modularity(g, good)
	// Bad partition: everything in one community.
	var all Community
	g.Nodes(func(n graph.Node) bool {
		all = append(all, n.ID)
		return true
	})
	qBad := Modularity(g, []Community{all})
	if qGood <= qBad {
		t.Fatalf("modularity ordering wrong: good=%v bad=%v", qGood, qBad)
	}
	if qGood <= 0.3 {
		t.Fatalf("clique partition modularity too low: %v", qGood)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.New()
	if q := Modularity(g, nil); q != 0 {
		t.Fatalf("empty modularity = %v", q)
	}
}

func TestGreedyModularityNeverWorseThanLP(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := randomCommunityGraph(seed, 3, 8)
		lp := Detect(g, seed)
		gm := GreedyModularity(g, seed)
		qLP := Modularity(g, lp)
		qGM := Modularity(g, gm)
		if qGM < qLP-1e-9 {
			t.Fatalf("seed %d: greedy %v < LP %v", seed, qGM, qLP)
		}
	}
}

// randomCommunityGraph plants `k` communities of size `size` with dense
// intra-links and sparse inter-links.
func randomCommunityGraph(seed int64, k, size int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	n := k * size
	for i := 0; i < n; i++ {
		g.EnsureNode(fmt.Sprintf("n%d", i), "user")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameComm := i/size == j/size
			p := 0.08
			if sameComm {
				p = 0.7
			}
			if rng.Float64() < p {
				_ = g.AddUndirected(graph.NodeID(i), graph.NodeID(j), "e", 1)
			}
		}
	}
	return g
}

func TestDetectRecoverPlantedPartition(t *testing.T) {
	g := randomCommunityGraph(3, 3, 10)
	comms := GreedyModularity(g, 3)
	if len(comms) < 2 || len(comms) > 6 {
		t.Fatalf("got %d communities for 3 planted", len(comms))
	}
	// The largest community should be dominated by a single planted group.
	largest := comms[0]
	counts := map[int]int{}
	for _, id := range largest {
		counts[int(id)/10]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if float64(best) < 0.7*float64(len(largest)) {
		t.Fatalf("largest community not pure: %v", counts)
	}
}

func TestTrackMatchesStableCommunities(t *testing.T) {
	gPrev := twoCliques(t, 5)
	prev := Detect(gPrev, 1)
	// Next snapshot: same structure, nodes renamed so IDs differ but
	// keys persist.
	gNext := twoCliques(t, 5)
	next := Detect(gNext, 2)

	keyOf := func(g *graph.Graph) func(graph.NodeID) string {
		return func(id graph.NodeID) string {
			n, _ := g.Node(id)
			return n.Key
		}
	}
	matches := Track(prev, next, keyOf(gPrev), keyOf(gNext))
	if len(matches) != len(prev) {
		t.Fatalf("matches = %v", matches)
	}
	for _, m := range matches {
		if m.NextIndex < 0 || m.Jaccard < 0.99 {
			t.Fatalf("stable community not tracked: %+v", m)
		}
	}
}

func TestTrackDissolvedCommunity(t *testing.T) {
	gPrev := twoCliques(t, 4)
	prev := Detect(gPrev, 1)
	keyPrev := func(id graph.NodeID) string {
		n, _ := gPrev.Node(id)
		return n.Key
	}
	// Next snapshot shares no members at all.
	gNext := graph.New()
	for i := 0; i < 4; i++ {
		gNext.EnsureNode(fmt.Sprintf("new%d", i), "user")
	}
	next := Detect(gNext, 1)
	keyNext := func(id graph.NodeID) string {
		n, _ := gNext.Node(id)
		return n.Key
	}
	matches := Track(prev, next, keyPrev, keyNext)
	for _, m := range matches {
		if m.NextIndex != -1 {
			t.Fatalf("dissolved community matched: %+v", m)
		}
	}
}
