package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record framing (little-endian):
//
//	crc32(payload) uint32
//	payloadLen     uint32
//	payload        = op byte | keyLen uvarint | key | val
//
// A torn final record (partial write before crash) fails either the length
// or the CRC check; recovery truncates the log at the last good record.
const (
	opPut    byte = 1
	opDelete byte = 2
)

type walWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func openWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &walWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (w *walWriter) append(op byte, key, val []byte) error {
	var buf bytes.Buffer
	writeRecord(&buf, op, key, val)
	if _, err := w.bw.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	// Flush to the OS on every record: cheap at this scale and it keeps
	// the durability story simple (no group-commit needed for a demo
	// platform's traffic).
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("kvstore: wal flush: %w", err)
	}
	return nil
}

func (w *walWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("kvstore: wal flush on close: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("kvstore: wal close: %w", err)
	}
	return nil
}

func writeRecord(buf *bytes.Buffer, op byte, key, val []byte) {
	var payload bytes.Buffer
	payload.WriteByte(op)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	payload.Write(tmp[:n])
	payload.Write(key)
	payload.Write(val)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload.Bytes()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
}

// replayWAL replays the log at path, truncating any torn tail, and returns
// the number of good records.
func replayWAL(path string, apply func(op byte, key, val []byte)) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("kvstore: read wal: %w", err)
	}
	goodLen, err := replayRecords(data, apply)
	if err != nil {
		return 0, err
	}
	if goodLen.offset < len(data) {
		// Torn tail: truncate so future appends start from a clean state.
		if err := os.Truncate(path, int64(goodLen.offset)); err != nil {
			return 0, fmt.Errorf("kvstore: truncate torn wal: %w", err)
		}
	}
	return goodLen.count, nil
}

type replayResult struct {
	offset int
	count  int
}

// replayRecords decodes records until the data ends or a record fails
// validation, returning how far it got. A corrupt *interior* record means
// everything after it is unreachable, which matches truncate-on-recovery
// semantics.
func replayRecords(data []byte, apply func(op byte, key, val []byte)) (replayResult, error) {
	off := 0
	count := 0
	for off+8 <= len(data) {
		crc := binary.LittleEndian.Uint32(data[off : off+4])
		plen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if off+8+plen > len(data) {
			break // torn record
		}
		payload := data[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record
		}
		op, key, val, err := decodePayload(payload)
		if err != nil {
			break
		}
		apply(op, key, val)
		off += 8 + plen
		count++
	}
	return replayResult{offset: off, count: count}, nil
}

func decodePayload(p []byte) (op byte, key, val []byte, err error) {
	if len(p) < 2 {
		return 0, nil, nil, io.ErrUnexpectedEOF
	}
	op = p[0]
	klen, n := binary.Uvarint(p[1:])
	if n <= 0 || 1+n+int(klen) > len(p) {
		return 0, nil, nil, io.ErrUnexpectedEOF
	}
	key = p[1+n : 1+n+int(klen)]
	val = p[1+n+int(klen):]
	return op, key, val, nil
}
