package hive

import "time"

// Mutation API: thin wrappers over the social store. Snapshot
// maintenance is handled by the store's typed change log (subscribed in
// Open): every write — through these wrappers or directly against
// Store() — emits ChangeEvents that the platform folds into the serving
// snapshot as an incremental delta before the write returns.
//
// On a replication follower every wrapper rejects with a NotLeaderError
// naming the leader (replicated state arrives via the journal tail, not
// these methods). Direct Store() writes bypass the guard — advanced
// callers on a follower would fork it from the leader.
//
// With quorum writes enabled (ClusterConfig.QuorumWrites > 0) every
// wrapper additionally holds its response until the write's change
// sequence is acknowledged by a quorum of followers, bounded by the ack
// timeout — see quorum.go.

// mutate runs one store mutation through the write fence and, when
// quorum writes are enabled, holds the response until the write is
// quorum-acknowledged. Every mutation wrapper funnels through it so the
// durability mode is uniform across the write surface.
func (p *Platform) mutate(fn func() error) error {
	if err := p.writable(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		return err
	}
	return p.waitQuorum()
}

// RegisterUser creates or updates a researcher profile.
func (p *Platform) RegisterUser(u User) error {
	return p.mutate(func() error { return p.store.PutUser(u) })
}

// GetUser fetches a user profile.
func (p *Platform) GetUser(id string) (User, error) { return p.store.User(id) }

// Users lists all user IDs.
func (p *Platform) Users() []string { return p.store.Users() }

// CreateConference registers a conference edition.
func (p *Platform) CreateConference(c Conference) error {
	return p.mutate(func() error { return p.store.PutConference(c) })
}

// CreateSession registers a session within a conference.
func (p *Platform) CreateSession(s Session) error {
	return p.mutate(func() error { return p.store.PutSession(s) })
}

// PublishPaper registers a paper with its authors and citations.
func (p *Platform) PublishPaper(pa Paper) error {
	return p.mutate(func() error { return p.store.PutPaper(pa) })
}

// UploadPresentation attaches slide content to a paper (the §1.1 "uploads
// his presentation slides" step).
func (p *Platform) UploadPresentation(pr Presentation) error {
	return p.mutate(func() error {
		if err := p.store.PutPresentation(pr); err != nil {
			return err
		}
		_, err := p.store.LogEvent(pr.Owner, "upload", pr.ID, nil)
		return err
	})
}

// Connect establishes a mutual connection between two researchers.
func (p *Platform) Connect(a, b string) error {
	return p.mutate(func() error { return p.store.Connect(a, b) })
}

// Connected reports whether two users are connected.
func (p *Platform) Connected(a, b string) bool { return p.store.Connected(a, b) }

// Follow subscribes follower to followee's activity.
func (p *Platform) Follow(follower, followee string) error {
	return p.mutate(func() error { return p.store.Follow(follower, followee) })
}

// Unfollow removes a follow edge.
func (p *Platform) Unfollow(follower, followee string) error {
	return p.mutate(func() error { return p.store.Unfollow(follower, followee) })
}

// CheckIn records session attendance and broadcasts it (with the session
// hashtag when present).
func (p *Platform) CheckIn(sessionID, userID string) error {
	return p.mutate(func() error { return p.store.CheckIn(sessionID, userID) })
}

// Attendees lists the users checked into a session.
func (p *Platform) Attendees(sessionID string) []string { return p.store.Attendees(sessionID) }

// Ask posts a question about a presentation, paper or session.
func (p *Platform) Ask(q Question) error {
	return p.mutate(func() error { return p.store.AskQuestion(q) })
}

// AnswerQuestion posts an answer.
func (p *Platform) AnswerQuestion(a Answer) error {
	return p.mutate(func() error { return p.store.PostAnswer(a) })
}

// PostComment attaches a comment to an entity.
func (p *Platform) PostComment(c Comment) error {
	return p.mutate(func() error { return p.store.PostComment(c) })
}

// QuestionsAbout lists question IDs targeting an entity.
func (p *Platform) QuestionsAbout(target string) []string { return p.store.QuestionsAbout(target) }

// AnswersTo lists answer IDs of a question.
func (p *Platform) AnswersTo(questionID string) []string { return p.store.AnswersTo(questionID) }

// CreateWorkpad creates or replaces a workpad.
func (p *Platform) CreateWorkpad(w Workpad) error {
	return p.mutate(func() error { return p.store.PutWorkpad(w) })
}

// AddToWorkpad drags a resource onto a workpad.
func (p *Platform) AddToWorkpad(workpadID string, item WorkpadItem) error {
	return p.mutate(func() error { return p.store.AddToWorkpad(workpadID, item) })
}

// ActivateWorkpad selects the user's active context.
func (p *Platform) ActivateWorkpad(owner, workpadID string) error {
	return p.mutate(func() error { return p.store.SetActiveWorkpad(owner, workpadID) })
}

// ActiveWorkpad returns the user's active workpad.
func (p *Platform) ActiveWorkpad(owner string) (Workpad, error) {
	return p.store.ActiveWorkpad(owner)
}

// ExportCollection publishes a workpad as a shareable collection.
func (p *Platform) ExportCollection(workpadID, collectionID string) (Collection, error) {
	var col Collection
	err := p.mutate(func() error {
		var err error
		col, err = p.store.ExportCollection(workpadID, collectionID)
		return err
	})
	return col, err
}

// ImportCollection copies a collection into a new active workpad.
func (p *Platform) ImportCollection(collectionID, owner, workpadID string) (Workpad, error) {
	var w Workpad
	err := p.mutate(func() error {
		var err error
		w, err = p.store.ImportCollection(collectionID, owner, workpadID)
		return err
	})
	return w, err
}

// Feed returns the user's real-time update feed (events by followees).
func (p *Platform) Feed(userID string, limit int) []Event { return p.store.Feed(userID, limit) }

// EventsByTag returns the hashtag fan-out for a tag.
func (p *Platform) EventsByTag(tag string) []Event { return p.store.EventsByTag(tag) }

// LogBrowse records a browsing event (used for activity similarity and
// collaborative filtering).
func (p *Platform) LogBrowse(userID, object string) error {
	return p.mutate(func() error {
		_, err := p.store.LogEvent(userID, "browse", object, nil)
		return err
	})
}

// --- Knowledge services (engine-backed) ---------------------------------------

// Explain discovers and explains the relationship between two researchers
// (Figure 2).
func (p *Platform) Explain(a, b string) (Explanation, error) {
	eng, err := p.Engine()
	if err != nil {
		return Explanation{}, err
	}
	return eng.Explain(a, b)
}

// RecommendPeers suggests up to k new peers with evidence and likely
// sessions.
func (p *Platform) RecommendPeers(userID string, k int) ([]PeerRecommendation, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.RecommendPeers(userID, k)
}

// SuggestSessions ranks a conference's sessions for the user.
func (p *Platform) SuggestSessions(userID, confID string, k int) ([]SessionSuggestion, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.SuggestSessions(userID, confID, k)
}

// RecommendResources suggests documents, optionally conditioned on the
// active workpad context.
func (p *Platform) RecommendResources(userID string, k int, useContext bool) ([]ResourceRecommendation, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.RecommendResources(userID, k, useContext)
}

// Search runs keyword search over all content.
func (p *Platform) Search(query string, k int) ([]SearchResult, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	defer mSearchSeconds.ObserveSince(time.Now())
	return eng.Search(query, k), nil
}

// SearchWithContext runs context-aware search conditioned on the user's
// active workpad.
func (p *Platform) SearchWithContext(userID, query string, k int) ([]SearchResult, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	defer mSearchSeconds.ObserveSince(time.Now())
	return eng.SearchWithContext(userID, query, k), nil
}

// Preview extracts the k most context-relevant snippets of a document.
func (p *Platform) Preview(userID, docID string, k int) ([]Snippet, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.Preview(userID, docID, k)
}

// Annotate extracts key concepts of a document for automated annotation.
func (p *Platform) Annotate(docID string, k int) ([]Keyphrase, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.Annotate(docID, k)
}

// UpdateDigest produces the size-constrained summary of the user's feed.
func (p *Platform) UpdateDigest(userID string, budget int) (*Summary, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.UpdateDigest(userID, budget)
}

// Communities returns the discovered peer communities (user ID lists,
// largest first).
func (p *Platform) Communities() ([][]string, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.Communities(), nil
}

// CommunityOf returns the community containing the user.
func (p *Platform) CommunityOf(userID string) ([]string, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.CommunityOf(userID), nil
}

// MonitorActivity runs SCENT change detection over the platform's
// activity stream, one epoch per epochEvents events.
func (p *Platform) MonitorActivity(epochEvents int) ([]ChangeResult, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.MonitorActivity(epochEvents)
}

// DetectOverlap reports content reuse between two indexed documents.
func (p *Platform) DetectOverlap(docA, docB string) (resemblance, containment float64, err error) {
	eng, err := p.Engine()
	if err != nil {
		return 0, 0, err
	}
	return eng.DetectOverlap(docA, docB)
}

// SearchHistory searches the user's personal activity history, optionally
// ranked by the active context (Table 1, "personal activity history
// services").
func (p *Platform) SearchHistory(userID, query string, useContext bool, limit int) ([]HistoryEntry, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.SearchHistory(userID, query, useContext, limit)
}

// ExplainResource explains the relationship between a user and a resource
// (paper, presentation, session).
func (p *Platform) ExplainResource(userID, entity string) ([]ResourceEvidence, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.ExplainResource(userID, entity)
}

// KnowledgePaths returns ranked weighted knowledge-base paths between two
// entities (prefix IDs with "user:", "paper:" or "session:").
func (p *Platform) KnowledgePaths(a, b string, k int) ([]KnowledgePath, error) {
	eng, err := p.Engine()
	if err != nil {
		return nil, err
	}
	return eng.KnowledgePaths(a, b, k), nil
}
