package graph

import "math"

// CommonNeighbors returns the number of distinct nodes that are
// out-neighbors of both a and b.
func (g *Graph) CommonNeighbors(a, b NodeID) int {
	na := g.Neighbors(a)
	nb := g.Neighbors(b)
	return countIntersect(na, nb)
}

// Jaccard returns the Jaccard similarity of the out-neighborhoods of a and
// b: |N(a) ∩ N(b)| / |N(a) ∪ N(b)|. Returns 0 when both neighborhoods are
// empty.
func (g *Graph) Jaccard(a, b NodeID) float64 {
	na := g.Neighbors(a)
	nb := g.Neighbors(b)
	inter := countIntersect(na, nb)
	union := len(na) + len(nb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// AdamicAdar returns the Adamic-Adar index of a and b: the sum over common
// neighbors z of 1/log(deg(z)). Rare shared neighbors (e.g. citing the
// same obscure paper) count more than popular ones — exactly the intuition
// behind Hive's "indirect citation" evidence.
func (g *Graph) AdamicAdar(a, b NodeID) float64 {
	na := g.Neighbors(a)
	nb := g.Neighbors(b)
	var score float64
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] < nb[j]:
			i++
		case na[i] > nb[j]:
			j++
		default:
			deg := g.OutDegree(na[i])
			if deg > 1 {
				score += 1 / math.Log(float64(deg))
			}
			i++
			j++
		}
	}
	return score
}

// CosineNeighborhood returns the cosine similarity of the weighted
// out-neighborhood vectors of a and b.
func (g *Graph) CosineNeighborhood(a, b NodeID) float64 {
	va := g.neighborWeights(a)
	vb := g.neighborWeights(b)
	var dot, na2, nb2 float64
	for id, w := range va {
		na2 += w * w
		if w2, ok := vb[id]; ok {
			dot += w * w2
		}
	}
	for _, w := range vb {
		nb2 += w * w
	}
	if na2 == 0 || nb2 == 0 {
		return 0
	}
	return dot / (math.Sqrt(na2) * math.Sqrt(nb2))
}

func (g *Graph) neighborWeights(id NodeID) map[NodeID]float64 {
	m := make(map[NodeID]float64)
	for _, e := range g.Out(id) {
		m[e.To] += e.Weight
	}
	return m
}

func countIntersect(a, b []NodeID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
