// Changedetect demonstrates SCENT (paper §2.4) on the platform's own
// activity stream: it loads a workload, injects an activity burst (a hot
// session's Q&A traffic exploding mid-conference), and shows the sketch-
// based detector flagging the burst epochs — at a fraction of the cost of
// exact recomputation, which it also runs for comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"hive"
	"hive/internal/tensor"
	"hive/internal/workload"
)

func main() {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	ds := workload.Generate(workload.Config{Seed: 7, Users: 40})
	if err := ds.Load(p.Store()); err != nil {
		log.Fatal(err)
	}

	// Inject a burst: one session suddenly receives a storm of questions
	// (the "presentation raises his curiosity" moment at scale).
	hot := ds.Papers[0]
	for i := 0; i < 120; i++ {
		q := hive.Question{
			ID:     fmt.Sprintf("burst-q%d", i),
			Author: ds.Users[i%len(ds.Users)].ID,
			Target: hot.ID,
			Text:   "Burst question about the hot paper",
		}
		if err := p.Ask(q); err != nil {
			log.Fatal(err)
		}
	}

	// Monitor the stream with SCENT (64-measurement sketch ensemble).
	start := time.Now()
	results, err := p.MonitorActivity(60)
	if err != nil {
		log.Fatal(err)
	}
	sketchTime := time.Since(start)

	fmt.Printf("monitored %d epochs in %v (sketched)\n", len(results), sketchTime)
	for _, r := range results {
		marker := ""
		if r.Change {
			marker = "  <-- structural change"
		}
		fmt.Printf("epoch %2d  distance=%8.3f%s\n", r.Epoch, r.Distance, marker)
	}

	// Exact baseline over the same stream for comparison.
	eng, err := p.Engine()
	if err != nil {
		log.Fatal(err)
	}
	stream, _, err := eng.ActivityTensorStream(60)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	exact, err := tensor.MonitorExact(stream, &tensor.Detector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact recomputation took %v; flagged epochs:", time.Since(start))
	for _, r := range exact {
		if r.Change {
			fmt.Printf(" %d", r.Epoch)
		}
	}
	fmt.Println()
}
