package rdf

import (
	"container/heap"
	"sort"
)

// R2DF ranked path queries [11]: find the k highest-scoring paths between
// two resources, where a path's score is the product of its triple
// weights (weights ≤ 1, so scores only decay with length). The search is
// a best-first expansion over the weighted triple graph; because scores
// are monotonically non-increasing along a path, the frontier's best
// candidate is globally optimal when popped — Dijkstra in the (max, ×)
// semiring.

// PathStep is one traversed triple within a path.
type PathStep struct {
	Triple  Triple
	Forward bool // false when the triple was traversed object->subject
}

// RankedPath is a scored path between two resources.
type RankedPath struct {
	Steps []PathStep
	Score float64
}

// Nodes returns the node sequence of the path, starting at the source.
func (p RankedPath) Nodes() []string {
	if len(p.Steps) == 0 {
		return nil
	}
	nodes := make([]string, 0, len(p.Steps)+1)
	first := p.Steps[0]
	if first.Forward {
		nodes = append(nodes, first.Triple.Subject)
	} else {
		nodes = append(nodes, first.Triple.Object)
	}
	for _, s := range p.Steps {
		if s.Forward {
			nodes = append(nodes, s.Triple.Object)
		} else {
			nodes = append(nodes, s.Triple.Subject)
		}
	}
	return nodes
}

// PathOptions configures RankedPaths.
type PathOptions struct {
	// MaxLength bounds path length in triples. Defaults to 4 when zero —
	// relationship explanations longer than that stop being meaningful to
	// a user.
	MaxLength int
	// Undirected additionally traverses triples object->subject, which
	// Hive needs because evidence like co-authorship is symmetric.
	Undirected bool
	// Predicates restricts traversal to the given predicates (nil = all).
	Predicates []string
}

type frontierItem struct {
	node  string
	score float64
	steps []PathStep
}

type frontierHeap []frontierItem

func (h frontierHeap) Len() int            { return len(h) }
func (h frontierHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h frontierHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frontierHeap) Push(x interface{}) { *h = append(*h, x.(frontierItem)) }
func (h *frontierHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RankedPaths returns up to k highest-score loopless paths from src to
// dst. Results are sorted by descending score.
func (st *Store) RankedPaths(src, dst string, k int, opts PathOptions) []RankedPath {
	if k <= 0 || src == dst {
		return nil
	}
	maxLen := opts.MaxLength
	if maxLen <= 0 {
		maxLen = 4
	}
	allowed := map[string]bool{}
	for _, p := range opts.Predicates {
		allowed[p] = true
	}

	// Per-query adjacency cache: Match sorts its output on every call,
	// and best-first search re-expands nodes up to k times, so caching
	// the (filtered) neighbor lists once per node dominates performance
	// on dense graphs.
	fwdCache := map[string][]Triple{}
	revCache := map[string][]Triple{}
	fwd := func(node string) []Triple {
		ts, ok := fwdCache[node]
		if !ok {
			ts = st.Match(Pattern{Subject: node})
			fwdCache[node] = ts
		}
		return ts
	}
	rev := func(node string) []Triple {
		ts, ok := revCache[node]
		if !ok {
			ts = st.Match(Pattern{Object: node})
			revCache[node] = ts
		}
		return ts
	}

	var results []RankedPath
	pq := &frontierHeap{{node: src, score: 1}}
	// Best-first search over paths. visits caps re-expansion per node to
	// keep the frontier polynomial while still finding k diverse paths.
	visits := map[string]int{}
	for pq.Len() > 0 && len(results) < k {
		cur := heap.Pop(pq).(frontierItem)
		if cur.node == dst {
			results = append(results, RankedPath{Steps: cur.steps, Score: cur.score})
			continue
		}
		if len(cur.steps) >= maxLen {
			continue
		}
		if visits[cur.node] >= k {
			continue
		}
		visits[cur.node]++
		onPath := map[string]bool{src: true}
		for _, s := range cur.steps {
			if s.Forward {
				onPath[s.Triple.Object] = true
			} else {
				onPath[s.Triple.Subject] = true
			}
		}
		expand := func(t Triple, forward bool, next string) {
			if onPath[next] {
				return
			}
			if len(allowed) > 0 && !allowed[t.Predicate] {
				return
			}
			steps := make([]PathStep, len(cur.steps)+1)
			copy(steps, cur.steps)
			steps[len(cur.steps)] = PathStep{Triple: t, Forward: forward}
			heap.Push(pq, frontierItem{node: next, score: cur.score * t.Weight, steps: steps})
		}
		for _, t := range fwd(cur.node) {
			expand(t, true, t.Object)
		}
		if opts.Undirected {
			for _, t := range rev(cur.node) {
				expand(t, false, t.Subject)
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	return results
}

// AllPathsNaive enumerates every loopless path from src to dst up to
// maxLen triples via exhaustive DFS and returns the k best. It exists as
// the baseline for experiment E8 (ranked search vs enumeration); it is
// exponential in maxLen by construction.
func (st *Store) AllPathsNaive(src, dst string, k, maxLen int, undirected bool) []RankedPath {
	if maxLen <= 0 {
		maxLen = 4
	}
	var results []RankedPath
	var steps []PathStep
	onPath := map[string]bool{src: true}
	var dfs func(node string, score float64)
	dfs = func(node string, score float64) {
		if node == dst {
			results = append(results, RankedPath{
				Steps: append([]PathStep(nil), steps...),
				Score: score,
			})
			return
		}
		if len(steps) >= maxLen {
			return
		}
		for _, t := range st.Match(Pattern{Subject: node}) {
			if onPath[t.Object] {
				continue
			}
			onPath[t.Object] = true
			steps = append(steps, PathStep{Triple: t, Forward: true})
			dfs(t.Object, score*t.Weight)
			steps = steps[:len(steps)-1]
			delete(onPath, t.Object)
		}
		if undirected {
			for _, t := range st.Match(Pattern{Object: node}) {
				if onPath[t.Subject] {
					continue
				}
				onPath[t.Subject] = true
				steps = append(steps, PathStep{Triple: t, Forward: false})
				dfs(t.Subject, score*t.Weight)
				steps = steps[:len(steps)-1]
				delete(onPath, t.Subject)
			}
		}
	}
	dfs(src, 1)
	sort.Slice(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}
