// Package social implements Hive's social-platform substrate: the
// JomSocial-equivalent layer of users, connections, follows, conferences,
// sessions, papers, presentations, check-ins, questions/answers/comments,
// the activity stream with hashtag fan-out, and workpads (paper §2,
// Figure 4). Entities persist as JSON values in the embedded kvstore.
package social

import "time"

// User is a researcher profile.
type User struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Affiliation string   `json:"affiliation,omitempty"`
	Interests   []string `json:"interests,omitempty"`
	Groups      []string `json:"groups,omitempty"`
	Bio         string   `json:"bio,omitempty"`
}

// Conference is an event edition (e.g. "edbt13").
type Conference struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Series string `json:"series,omitempty"` // e.g. "edbt"
	Year   int    `json:"year,omitempty"`
	Venue  string `json:"venue,omitempty"`
}

// Session is a technical session within a conference.
type Session struct {
	ID           string `json:"id"`
	ConferenceID string `json:"conference_id"`
	Title        string `json:"title"`
	Track        string `json:"track,omitempty"`
	Chair        string `json:"chair,omitempty"` // user ID
	StartsAt     int64  `json:"starts_at,omitempty"`
	Hashtag      string `json:"hashtag,omitempty"`
}

// Paper is a published (or accepted) paper.
type Paper struct {
	ID           string   `json:"id"`
	Title        string   `json:"title"`
	Abstract     string   `json:"abstract,omitempty"`
	Authors      []string `json:"authors"` // user IDs, in order
	ConferenceID string   `json:"conference_id,omitempty"`
	SessionID    string   `json:"session_id,omitempty"`
	Citations    []string `json:"citations,omitempty"` // cited paper IDs
	Year         int      `json:"year,omitempty"`
}

// Presentation is user-supplied content attached to a paper (slides,
// poster text, supporting material).
type Presentation struct {
	ID      string `json:"id"`
	PaperID string `json:"paper_id"`
	Owner   string `json:"owner"` // user ID
	Title   string `json:"title,omitempty"`
	Text    string `json:"text"` // extracted slide text
	Updated int64  `json:"updated,omitempty"`
}

// CheckIn records a user attending a session.
type CheckIn struct {
	SessionID string `json:"session_id"`
	UserID    string `json:"user_id"`
	At        int64  `json:"at"`
}

// Question is a question posted against a target entity (presentation,
// paper or session).
type Question struct {
	ID     string `json:"id"`
	Author string `json:"author"`
	Target string `json:"target"` // entity ID the question refers to
	Text   string `json:"text"`
	At     int64  `json:"at"`
}

// Answer replies to a question.
type Answer struct {
	ID         string `json:"id"`
	QuestionID string `json:"question_id"`
	Author     string `json:"author"`
	Text       string `json:"text"`
	At         int64  `json:"at"`
}

// Comment is free-form feedback on any entity.
type Comment struct {
	ID     string `json:"id"`
	Author string `json:"author"`
	Target string `json:"target"`
	Text   string `json:"text"`
	At     int64  `json:"at"`
}

// ItemKind classifies a workpad item (paper §2: "the work pads can
// contain many different types of resources").
type ItemKind string

// Workpad item kinds.
const (
	ItemUser         ItemKind = "user"
	ItemPaper        ItemKind = "paper"
	ItemPresentation ItemKind = "presentation"
	ItemSession      ItemKind = "session"
	ItemQuestion     ItemKind = "question"
	ItemCollection   ItemKind = "collection"
)

// WorkpadItem is one dragged-in resource.
type WorkpadItem struct {
	Kind ItemKind `json:"kind"`
	Ref  string   `json:"ref"` // entity ID
}

// Workpad is a named bag of resources that doubles as the user's active
// search/recommendation context (Figure 4).
type Workpad struct {
	ID    string        `json:"id"`
	Owner string        `json:"owner"`
	Name  string        `json:"name"`
	Items []WorkpadItem `json:"items,omitempty"`
}

// Collection is an exported workpad made accessible to other users.
type Collection struct {
	ID    string        `json:"id"`
	Owner string        `json:"owner"`
	Name  string        `json:"name"`
	Items []WorkpadItem `json:"items,omitempty"`
}

// Event is one activity-stream entry. Verbs follow the scenario of §1.1:
// "checkin", "question", "answer", "comment", "upload", "connect",
// "follow".
type Event struct {
	Seq    uint64   `json:"seq"`
	At     int64    `json:"at"`
	Actor  string   `json:"actor"`
	Verb   string   `json:"verb"`
	Object string   `json:"object,omitempty"`
	Tags   []string `json:"tags,omitempty"`
}

// Clock abstracts time for deterministic tests and workload replay.
type Clock func() time.Time

// SystemClock is the default wall-clock.
func SystemClock() time.Time { return time.Now() }
