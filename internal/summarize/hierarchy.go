// Package summarize implements AlphaSum-style size-constrained table
// summarization using value lattices (paper §2.3, ref [13], EDBT'09).
// Hive uses it to compress scheduled update reports: a long table of
// activity records ("who did what in which session") is reduced to at
// most N rows by generalizing cell values along per-column value
// hierarchies (session -> track -> conference; minute -> hour -> day),
// choosing generalizations that preserve maximal information.
package summarize

import (
	"errors"
	"fmt"
)

// ErrHierarchy is returned for malformed hierarchies or unknown values.
var ErrHierarchy = errors.New("summarize: bad hierarchy")

// Root is the implicit top of every hierarchy ("any value").
const Root = "*"

// Hierarchy is a value generalization tree for one column. Every value
// generalizes to its parent, terminating at Root.
type Hierarchy struct {
	parent map[string]string
	leaves map[string]int // value -> number of leaf descendants (for loss)
	depth  map[string]int // value -> distance from Root
}

// NewHierarchy builds a hierarchy from child->parent pairs. Parents that
// never appear as children attach to Root automatically.
func NewHierarchy(parents map[string]string) (*Hierarchy, error) {
	h := &Hierarchy{
		parent: make(map[string]string, len(parents)+1),
		leaves: make(map[string]int),
		depth:  make(map[string]int),
	}
	for c, p := range parents {
		if c == Root {
			return nil, fmt.Errorf("%w: %q cannot have a parent", ErrHierarchy, Root)
		}
		if p == "" {
			p = Root
		}
		h.parent[c] = p
	}
	// Attach orphan parents to Root.
	for _, p := range parents {
		if p == Root || p == "" {
			continue
		}
		if _, ok := h.parent[p]; !ok {
			h.parent[p] = Root
		}
	}
	// Cycle check + depth computation.
	for v := range h.parent {
		seen := map[string]bool{v: true}
		cur := v
		for cur != Root {
			next, ok := h.parent[cur]
			if !ok {
				return nil, fmt.Errorf("%w: %q has no path to root", ErrHierarchy, cur)
			}
			if seen[next] {
				return nil, fmt.Errorf("%w: cycle through %q", ErrHierarchy, next)
			}
			seen[next] = true
			cur = next
		}
	}
	// Leaf counts: a leaf is a value that is nobody's parent.
	isParent := map[string]bool{}
	for _, p := range h.parent {
		isParent[p] = true
	}
	for v := range h.parent {
		if isParent[v] {
			continue
		}
		// Propagate this leaf up its ancestor chain.
		h.leaves[v]++
		for cur := h.parent[v]; ; cur = h.parent[cur] {
			h.leaves[cur]++
			if cur == Root {
				break
			}
		}
	}
	if h.leaves[Root] == 0 {
		h.leaves[Root] = 1 // degenerate but usable empty hierarchy
	}
	for v := range h.parent {
		h.depth[v] = h.computeDepth(v)
	}
	h.depth[Root] = 0
	return h, nil
}

func (h *Hierarchy) computeDepth(v string) int {
	d := 0
	for cur := v; cur != Root; cur = h.parent[cur] {
		d++
	}
	return d
}

// FlatHierarchy returns a trivial hierarchy where every listed value is a
// leaf directly under Root — the fallback for columns with no domain
// knowledge.
func FlatHierarchy(values []string) *Hierarchy {
	parents := make(map[string]string, len(values))
	for _, v := range values {
		parents[v] = Root
	}
	h, err := NewHierarchy(parents)
	if err != nil {
		// Unreachable: flat maps cannot cycle.
		panic(err)
	}
	return h
}

// Parent returns the parent of v (Root's parent is Root). Unknown values
// generalize directly to Root.
func (h *Hierarchy) Parent(v string) string {
	if v == Root {
		return Root
	}
	if p, ok := h.parent[v]; ok {
		return p
	}
	return Root
}

// Contains reports whether v is a known hierarchy value (or Root).
func (h *Hierarchy) Contains(v string) bool {
	if v == Root {
		return true
	}
	_, ok := h.parent[v]
	return ok
}

// Depth returns the distance of v from Root; unknown values report 1.
func (h *Hierarchy) Depth(v string) int {
	if v == Root {
		return 0
	}
	if d, ok := h.depth[v]; ok {
		return d
	}
	return 1
}

// MaxDepth returns the deepest level in the hierarchy.
func (h *Hierarchy) MaxDepth() int {
	max := 0
	for _, d := range h.depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Generalize lifts v by `steps` levels toward Root.
func (h *Hierarchy) Generalize(v string, steps int) string {
	for i := 0; i < steps && v != Root; i++ {
		v = h.Parent(v)
	}
	return v
}

// AtLevel lifts v to the given depth (0 = Root). Values already at or
// above the target depth are returned unchanged.
func (h *Hierarchy) AtLevel(v string, level int) string {
	for h.Depth(v) > level {
		v = h.Parent(v)
	}
	return v
}

// Loss returns the information loss of reporting value v in place of a
// specific leaf: (leaves(v)-1)/(totalLeaves-1), the standard LM
// generalization loss. Leaves lose nothing; Root loses everything.
func (h *Hierarchy) Loss(v string) float64 {
	total := h.leaves[Root]
	if total <= 1 {
		return 0
	}
	n := h.leaves[v]
	if v != Root {
		if c, ok := h.leaves[v]; ok {
			n = c
		} else {
			n = 1 // unknown value treated as a leaf
		}
	}
	return float64(n-1) / float64(total-1)
}
