// Command hivebench regenerates every experiment in EXPERIMENTS.md
// (E1-E12): one table per paper artifact (Figures 1-4, Table 1) and per
// substrate performance claim (SCENT, INI, R2DF, AlphaSum, CF, concept
// bootstrap, snippets). Absolute numbers depend on the host; the *shapes*
// (who wins, by what factor) are the reproduction targets.
//
// Usage:
//
//	hivebench [-run E6] [-users 64]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hive"
	"hive/client"
	"hive/internal/align"
	"hive/internal/conceptmap"
	"hive/internal/core"
	"hive/internal/diffusion"
	"hive/internal/election"
	"hive/internal/graph"
	"hive/internal/rdf"
	"hive/internal/server"
	"hive/internal/summarize"
	"hive/internal/tensor"
	"hive/internal/textindex"
	"hive/internal/workload"
	"hive/internal/workload/httpload"
)

func main() {
	run := flag.String("run", "", "run only this experiment (e.g. E6); empty = all")
	users := flag.Int("users", 64, "workload size for platform experiments")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		fn   func(users int)
	}{
		{"E1", "Figure 1 — platform API latency", e1},
		{"E2", "Figure 2 — relationship discovery & explanation", e2},
		{"E3", "Figure 3 — layer alignment & integration", e3},
		{"E4", "Figure 4 — workpad context vs no context", e4},
		{"E5", "Table 1 — service matrix", e5},
		{"E6", "SCENT — sketched vs exact change detection", e6},
		{"E7", "INI — indexed vs online impact queries", e7},
		{"E8", "R2DF — ranked path search vs naive enumeration", e8},
		{"E9", "AlphaSum — greedy vs optimal summarization", e9},
		{"E10", "CF — collaborative filtering vs popularity", e10},
		{"E11", "Concept-map bootstrapping", e11},
		{"E12", "Context-aware snippet extraction", e12},
		{"E13", "v1 API — batch vs per-entity ingest", e13},
		{"E14", "write visibility — delta apply vs full rebuild", e14},
		{"E15", "replication — follower lag & read scaling", e15},
		{"E16", "failover — detect -> promote -> first accepted write", e16},
		{"E17", "quorum writes — acknowledged-write latency at k=0/1/2", e17},
		{"E18", "sharded write path — throughput scaling & scatter-gather reads", e18},
	}
	for _, ex := range experiments {
		if *run != "" && !strings.EqualFold(*run, ex.id) {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", ex.id, ex.name)
		ex.fn(*users)
	}
}

// buildPlatform loads a synthetic workload and refreshes the engine.
func buildPlatform(users int) *hive.Platform {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	if err := ds.Load(p.Store()); err != nil {
		log.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		log.Fatal(err)
	}
	return p
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// reportServerHistogram scrapes GET /metrics on the server under test
// and prints one latency histogram's (count, mean) per label set — the
// same counters a production scrape would report, so the harness's
// client-side timings can be cross-checked against the server's own
// view. Counts accumulate for the process lifetime (the registry is
// process-wide), so call it right after the experiment's traffic.
func reportServerHistogram(base, name string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sums, counts := map[string]float64{}, map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		series, val, ok := strings.Cut(sc.Text(), " ")
		if !ok || strings.HasPrefix(series, "#") {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		metric, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			metric, labels = series[:i], series[i:]
		}
		switch metric {
		case name + "_sum":
			sums[labels] = v
		case name + "_count":
			counts[labels] = v
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("server-side %s (scraped from /metrics):\n", name)
	for _, k := range keys {
		if counts[k] == 0 {
			continue
		}
		label := k
		if label == "" {
			label = "(all)"
		}
		fmt.Printf("  %-52s %8.0f obs  mean %8.3f ms\n", label, counts[k], sums[k]/counts[k]*1000)
	}
}

// e1: latency of representative v1 REST endpoints over the seeded
// platform, driven through the client SDK. The final row repeats the
// search with the SDK's ETag cache on: an unchanged snapshot
// revalidates with a 304 instead of recompute+encode.
func e1(users int) {
	p := buildPlatform(users)
	defer p.Close()
	ts := httptest.NewServer(server.New(p))
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL)
	cached := client.New(ts.URL, client.WithETagCache())
	ids := p.Users()
	uid := ids[0]

	type row struct {
		name string
		fn   func() error
	}
	endpoints := []row{
		{"profile", func() error { _, err := c.GetUser(ctx, uid); return err }},
		{"feed", func() error { _, err := c.Feed(ctx, uid, "", 20); return err }},
		{"search", func() error { _, err := c.Search(ctx, "graph partitioning", "", "", 10); return err }},
		{"ctx-search", func() error { _, err := c.Search(ctx, "graph partitioning", uid, "", 10); return err }},
		{"peer-recs", func() error { _, err := c.PeerRecommendations(ctx, uid, "", 5); return err }},
		{"digest", func() error { _, err := c.Digest(ctx, uid, 5); return err }},
		{"search-304", func() error { _, err := cached.Search(ctx, "graph partitioning", "", "", 10); return err }},
	}
	if len(ids) > 1 { // relationship needs a second researcher
		other := ids[1]
		endpoints = append(endpoints, row{"relationship", func() error {
			_, err := c.Relationship(ctx, uid, other)
			return err
		}})
	}

	fmt.Printf("%-14s %10s %12s\n", "endpoint", "calls", "mean-latency")
	for _, ep := range endpoints {
		const calls = 50
		d := timeIt(func() {
			for i := 0; i < calls; i++ {
				if err := ep.fn(); err != nil {
					log.Fatal(err)
				}
			}
		})
		fmt.Printf("%-14s %10d %12v\n", ep.name, calls, d/calls)
	}
	if _, hits := cached.Stats(); hits > 0 {
		fmt.Printf("search-304: %d of 50 calls served via ETag revalidation\n", hits)
	}
	reportServerHistogram(ts.URL, "hive_http_request_seconds")
}

// e13: bulk ingest through POST /api/v1/batch (chunked, one snapshot
// invalidation per chunk) vs one typed request per entity — the scale
// path for bulk loaders.
func e13(users int) {
	ctx := context.Background()
	run := func(name string, load func(c *client.Client, ds *workload.Dataset) error) {
		p, err := hive.Open(hive.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		ts := httptest.NewServer(server.New(p))
		defer ts.Close()
		ds := workload.Generate(workload.Config{Seed: 42, Users: users})
		c := client.New(ts.URL)
		d := timeIt(func() {
			if err := load(c, ds); err != nil {
				log.Fatal(err)
			}
		})
		n := len(p.Store().EventsSince(0, 0)) // proxy for applied interactions
		fmt.Printf("%-14s %12v %10d users %8d events\n", name, d, users, n)
	}
	fmt.Printf("%-14s %12s\n", "method", "wall-time")
	run("per-entity", func(c *client.Client, ds *workload.Dataset) error {
		return httpload.PerEntity(ctx, c, ds)
	})
	for _, chunk := range []int{64, 256, 1024} {
		chunk := chunk
		run(fmt.Sprintf("batch-%d", chunk), func(c *client.Client, ds *workload.Dataset) error {
			return httpload.Batch(ctx, c, ds, chunk)
		})
	}
	fmt.Println("shape: batch ingest amortizes round trips and snapshot invalidations; bigger chunks win until payload size dominates")
}

// e14: write visibility — the time from a mutation returning until the
// written entity is observable through the knowledge services. The
// delta arm (the default pipeline) folds the mutation's change events
// into the serving snapshot synchronously; the baseline arm disables
// deltas, so visibility costs a full rebuild. Feed visibility is also
// measured: feeds read the store directly and were always immediate.
func e14(users int) {
	const trials = 20
	measure := func(name string, disable bool) {
		p, err := hive.Open(hive.Options{DisableDeltas: disable})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		ds := workload.Generate(workload.Config{Seed: 42, Users: users})
		if err := p.Store().Batched(func() error { return ds.Load(p.Store()) }); err != nil {
			log.Fatal(err)
		}
		if err := p.Refresh(); err != nil {
			log.Fatal(err)
		}
		uid := p.Users()[0]
		if err := p.RegisterUser(hive.User{ID: "e14-follower", Name: "Watcher"}); err != nil {
			log.Fatal(err)
		}
		if err := p.Follow("e14-follower", uid); err != nil {
			log.Fatal(err)
		}

		var searchVis, feedVis time.Duration
		for i := 0; i < trials; i++ {
			token := fmt.Sprintf("xylophylax%d", i) // unique, unambiguous probe term
			start := time.Now()
			if err := p.PublishPaper(hive.Paper{
				ID: fmt.Sprintf("e14-%d", i), Title: "Visibility probe " + token,
				Abstract: "measuring mutation-to-search latency " + token,
				Authors:  []string{uid},
			}); err != nil {
				log.Fatal(err)
			}
			// Poll through the serving path until the write is searchable;
			// the baseline arm needs the full rebuild an Engine() repair runs.
			for {
				res, err := p.Search(token, 1)
				if err != nil {
					log.Fatal(err)
				}
				if len(res) > 0 {
					break
				}
			}
			searchVis += time.Since(start)

			start = time.Now()
			seq, err := p.Store().LogEvent(uid, "browse", fmt.Sprintf("e14-%d", i), nil)
			if err != nil {
				log.Fatal(err)
			}
			for { // feeds read the store directly: first poll hits
				evs := p.Feed("e14-follower", 1)
				if len(evs) > 0 && evs[0].Seq >= seq {
					break
				}
			}
			feedVis += time.Since(start)
		}
		fmt.Printf("%-22s %14v %14v\n", name, searchVis/trials, feedVis/trials)
	}
	fmt.Printf("%-22s %14s %14s\n", "pipeline", "publish→search", "checkin→feed")
	measure("delta (default)", false)
	measure("full-rebuild base", true)
	fmt.Println("shape: the delta pipeline makes writes searchable in ~milliseconds (one overlay apply);")
	fmt.Println("       the rebuild baseline pays an O(corpus) engine build per visibility repair")
}

// e15: replication — (a) follower lag: wall time from a leader publish
// returning until the paper is searchable on a follower tailing the
// journal; (b) read scaling: aggregate search QPS against the leader
// alone vs round-robin over leader + N followers. All nodes run
// in-process behind httptest listeners; absolute QPS depends on the
// host and on every node sharing its cores, so the *ratio* is the
// reproduction target (it understates what separate machines get).
func e15(users int) {
	const followers = 2
	dir, err := os.MkdirTemp("", "hive-e15-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	leader, err := hive.Open(hive.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer leader.Close()
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	if err := leader.Store().Batched(func() error { return ds.Load(leader.Store()) }); err != nil {
		log.Fatal(err)
	}
	if err := leader.Refresh(); err != nil {
		log.Fatal(err)
	}
	lts := httptest.NewServer(server.New(leader))
	defer lts.Close()

	urls := []string{lts.URL}
	var reps []*hive.Platform
	for i := 0; i < followers; i++ {
		// A Manual elector pinned to the follower role: the benchmark
		// wants a fixed topology, not a live election.
		el := election.NewManual()
		el.Set(election.State{Role: election.Follower, Leader: lts.URL})
		fdir, err := os.MkdirTemp("", "hive-e15-f-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(fdir)
		f, err := hive.Open(hive.Options{
			Dir: fdir,
			Cluster: &hive.ClusterConfig{
				SelfURL:  fmt.Sprintf("http://e15-follower-%d.test", i),
				Election: el,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		fts := httptest.NewServer(server.New(f))
		defer fts.Close()
		reps = append(reps, f)
		urls = append(urls, fts.URL)
	}
	waitConverged := func() {
		for {
			want := leader.Store().ChangeSeq()
			ok := true
			for _, f := range reps {
				if f.ReplicationApplied() < want || f.Stale() {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitConverged()

	// (a) Follower lag: publish on the leader, poll a follower's
	// serving snapshot until searchable.
	const trials = 20
	uid := leader.Users()[0]
	var lag time.Duration
	for i := 0; i < trials; i++ {
		token := fmt.Sprintf("replprobe%d", i)
		start := time.Now()
		if err := leader.PublishPaper(hive.Paper{
			ID: fmt.Sprintf("e15-%d", i), Title: "Replication probe " + token,
			Abstract: "lag measurement " + token, Authors: []string{uid},
		}); err != nil {
			log.Fatal(err)
		}
		for {
			eng := reps[0].Snapshot()
			if eng != nil && len(eng.Search(token, 1)) > 0 {
				break
			}
		}
		lag += time.Since(start)
	}
	fmt.Printf("publish→follower-searchable lag: %v avg over %d trials (bound: < 1s)\n",
		(lag / trials).Round(time.Microsecond), trials)
	waitConverged()

	// (b) Read scaling: concurrent context-aware searches, leader-only
	// vs round-robin across all nodes. In-process the nodes share one
	// CPU budget, so aggregate QPS cannot grow here; the signal is the
	// per-node share — identical total service with the leader handling
	// only 1/(N+1) of the read traffic. On separate machines that share
	// translates into aggregate scaling with node count.
	ids := leader.Users()
	queries := []string{"graph databases", "distributed systems", "social networks", "information retrieval"}
	measure := func(name string, targets []string) {
		const dur = 2 * time.Second
		workers := 4 * len(targets)
		perNode := make([]atomic.Int64, len(targets))
		stop := time.Now().Add(dur)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				node := w % len(targets)
				c := client.New(targets[node])
				ctx := context.Background()
				for i := 0; time.Now().Before(stop); i++ {
					q := queries[(w+i)%len(queries)]
					u := ids[(w*31+i)%len(ids)]
					if _, err := c.Search(ctx, q, u, "", 10); err != nil {
						log.Fatal(err)
					}
					perNode[node].Add(1)
				}
			}(w)
		}
		wg.Wait()
		var total int64
		shares := make([]string, len(targets))
		for i := range perNode {
			total += perNode[i].Load()
		}
		for i := range perNode {
			shares[i] = fmt.Sprintf("%.0f%%", 100*float64(perNode[i].Load())/float64(total))
		}
		fmt.Printf("%-26s %10.0f searches/s  leader share %s (of %s)\n",
			name, float64(total)/dur.Seconds(), shares[0], strings.Join(shares, "/"))
	}
	fmt.Printf("%-26s %10s\n", "topology", "throughput")
	measure("single node (leader)", urls[:1])
	measure(fmt.Sprintf("leader + %d followers", followers), urls)
	fmt.Println("shape: followers answer the full read API from their own snapshots with identical")
	fmt.Println("       results, so read traffic spreads ~evenly and the leader keeps its capacity")
	fmt.Println("       for writes; across real machines aggregate QPS scales with node count")
}

// e16: failover time of the elected cluster — a three-node FileLease
// set loses its leader to a crash-equivalent close (the lease is left
// to expire, like a kill), and the clocks measure detect→promote (a
// survivor holds the lease at a higher epoch) and detect→first accepted
// SDK write (the end-to-end outage a cluster-aware writer sees).
func e16(users int) {
	const (
		trials = 3
		ttl    = 300 * time.Millisecond
	)
	ctx := context.Background()
	var promoteSum, writeSum time.Duration

	for trial := 0; trial < trials; trial++ {
		leaseDir, err := os.MkdirTemp("", "hive-e16-lease-")
		if err != nil {
			log.Fatal(err)
		}

		type node struct {
			url string
			ts  *httptest.Server
			p   *hive.Platform
		}
		const members = 3
		listeners := make([]net.Listener, members)
		urls := make([]string, members)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			listeners[i] = l
			urls[i] = "http://" + l.Addr().String()
		}
		nodes := make([]*node, members)
		dirs := []string{leaseDir}
		for i := range nodes {
			var peers []string
			for j, u := range urls {
				if j != i {
					peers = append(peers, u)
				}
			}
			lease, err := election.NewFileLease(election.LeaseConfig{Dir: leaseDir, Self: urls[i], TTL: ttl})
			if err != nil {
				log.Fatal(err)
			}
			dir, err := os.MkdirTemp("", "hive-e16-node-")
			if err != nil {
				log.Fatal(err)
			}
			dirs = append(dirs, dir)
			p, err := hive.Open(hive.Options{
				Dir:     dir,
				Cluster: &hive.ClusterConfig{SelfURL: urls[i], Peers: peers, Election: lease},
			})
			if err != nil {
				log.Fatal(err)
			}
			ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: server.New(p)}}
			ts.Start()
			nodes[i] = &node{url: urls[i], ts: ts, p: p}
		}
		cleanupDirs := func() {
			for _, d := range dirs {
				os.RemoveAll(d)
			}
		}

		waitLeader := func(pool []*node) *node {
			for {
				for _, n := range pool {
					if n.p.Role() == "leader" {
						return n
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		leader := waitLeader(nodes)
		for i := 0; i < 8; i++ {
			if err := leader.p.RegisterUser(hive.User{
				ID: fmt.Sprintf("e16-u%d", i), Name: "Seed", Interests: []string{"failover"}}); err != nil {
				log.Fatal(err)
			}
		}
		var followerURL string
		for _, n := range nodes {
			if n != leader {
				followerURL = n.url
				break
			}
		}
		c := client.New(followerURL, client.WithCluster(urls...))
		if err := c.CreateUser(ctx, hive.User{ID: "e16-warm", Name: "Warm"}); err != nil {
			log.Fatal(err)
		}

		// Crash the leader: connections die, the platform closes, the
		// lease is left to lapse.
		killAt := time.Now()
		leader.ts.CloseClientConnections()
		leader.ts.Close()
		leader.p.Close()

		var survivors []*node
		for _, n := range nodes {
			if n != leader {
				survivors = append(survivors, n)
			}
		}
		waitLeader(survivors)
		promoteSum += time.Since(killAt)

		for i := 0; ; i++ {
			if err := c.CreateUser(ctx, hive.User{ID: fmt.Sprintf("e16-post-%d-%d", trial, i), Name: "Post"}); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		writeSum += time.Since(killAt)

		for _, n := range survivors {
			n.ts.CloseClientConnections()
			n.ts.Close()
			n.p.Close()
		}
		cleanupDirs()
	}
	fmt.Printf("lease ttl %v, %d-node cluster, %d trials\n", ttl, 3, trials)
	fmt.Printf("detect -> promote:              %v avg\n", (promoteSum / trials).Round(time.Millisecond))
	fmt.Printf("detect -> first accepted write: %v avg\n", (writeSum / trials).Round(time.Millisecond))
	fmt.Println("shape: both clocks are dominated by the lease TTL (detection horizon) plus one")
	fmt.Println("       claim round; the write clock adds the SDK's re-resolution and one retry")
	_ = users
}

// e17: the price of synchronous durability — per-write latency of the
// same three-node cluster at quorum sizes k=0 (async, the PR-7
// behaviour), k=1 (one follower must confirm) and k=2 (every follower
// must confirm). The ack rides the replication long-poll, so the
// expected step from k=0 to k>0 is one poll round trip, not a new
// connection per write.
func e17(users int) {
	const (
		writes = 100
		ttl    = 300 * time.Millisecond
	)
	ctx := context.Background()
	fmt.Printf("3-node cluster, lease ttl %v, %d acknowledged writes per quorum size\n", ttl, writes)

	for _, k := range []int{0, 1, 2} {
		leaseDir, err := os.MkdirTemp("", "hive-e17-lease-")
		if err != nil {
			log.Fatal(err)
		}

		type node struct {
			url string
			ts  *httptest.Server
			p   *hive.Platform
		}
		const members = 3
		listeners := make([]net.Listener, members)
		urls := make([]string, members)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			listeners[i] = l
			urls[i] = "http://" + l.Addr().String()
		}
		nodes := make([]*node, members)
		dirs := []string{leaseDir}
		for i := range nodes {
			var peers []string
			for j, u := range urls {
				if j != i {
					peers = append(peers, u)
				}
			}
			lease, err := election.NewFileLease(election.LeaseConfig{Dir: leaseDir, Self: urls[i], TTL: ttl})
			if err != nil {
				log.Fatal(err)
			}
			dir, err := os.MkdirTemp("", "hive-e17-node-")
			if err != nil {
				log.Fatal(err)
			}
			dirs = append(dirs, dir)
			p, err := hive.Open(hive.Options{
				Dir: dir,
				Cluster: &hive.ClusterConfig{
					SelfURL: urls[i], Peers: peers, Election: lease,
					QuorumWrites: k,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: server.New(p)}}
			ts.Start()
			nodes[i] = &node{url: urls[i], ts: ts, p: p}
		}

		var leader *node
		for leader == nil {
			for _, n := range nodes {
				if n.p.Role() == "leader" {
					leader = n
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		c := client.New(leader.url)
		// Warm until the follower ack flow is live: the first write at
		// k=2 cannot land before both followers are polling.
		for {
			if err := c.CreateUser(ctx, hive.User{ID: fmt.Sprintf("e17-warm-k%d", k), Name: "Warm"}); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}

		lat := make([]time.Duration, 0, writes)
		for i := 0; i < writes; i++ {
			start := time.Now()
			if err := c.CreateUser(ctx, hive.User{
				ID: fmt.Sprintf("e17-k%d-u%d", k, i), Name: "Durable", Interests: []string{"quorum"}}); err != nil {
				log.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		commit := leader.p.CommitIndex()
		fmt.Printf("k=%d: avg %v  p50 %v  p99 %v  (commit index %d)\n",
			k,
			(sum / writes).Round(10*time.Microsecond),
			lat[len(lat)/2].Round(10*time.Microsecond),
			lat[len(lat)*99/100].Round(10*time.Microsecond),
			commit)

		for _, n := range nodes {
			n.ts.CloseClientConnections()
			n.ts.Close()
			n.p.Close()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	fmt.Println("shape: k=0 is the async baseline; k>0 adds roughly one replication poll")
	fmt.Println("       round trip, and k=2 waits for the slower of the two followers")
	_ = users
}

// e18: the PR-9 tentpole — write throughput of the sharded platform at
// 1/2/4 shards, driven over HTTP through the shard-routing client SDK.
// Writers publish papers whose owners follow a Zipf distribution (the
// skew of real scholarly activity), so hot owners concentrate load on
// their shard; the offered load always exceeds capacity (a saturating
// writer pool), so the measured rate is the *sustained* ceiling of the
// write path: routed store mutation + per-shard change journal + the
// synchronous delta fold into that shard's serving snapshot. The read
// phase prices scatter-gather: every search fans out to all shard
// engines, scores under merged global statistics, and k-way-merges —
// results bit-identical to an unsharded node.
func e18(users int) {
	const (
		writers = 16
		window  = 2 * time.Second
		reads   = 300
	)
	ctx := context.Background()
	type row struct {
		shards   int
		wps      float64
		p50, p95 time.Duration
	}
	var rows []row
	for _, n := range []int{1, 2, 4} {
		sh, err := hive.OpenSharded(n, hive.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ds := workload.Generate(workload.Config{Seed: 42, Users: users})
		// Seed the fixture plus a back-catalog of prior papers (~100 per
		// user): a write's delta fold recomputes the author's content
		// vector by scanning their shard's corpus, so an almost-empty
		// store would understate what sharding buys a mid-life
		// deployment. The catalog spreads across shards by author hash.
		catalog := 100 * len(ds.Users)
		err = sh.Batched(func() error {
			if err := ds.LoadRouted(sh); err != nil {
				return err
			}
			for i := 0; i < catalog; i++ {
				if err := sh.PublishPaper(hive.Paper{
					ID:       fmt.Sprintf("e18-catalog-%d", i),
					Title:    "back catalog entry",
					Abstract: "prior work in the corpus before the measured window",
					Authors:  []string{ds.Users[i%len(ds.Users)].ID},
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sh.Refresh(); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(server.NewSharded(sh, server.Config{}))
		c := client.New(ts.URL)
		if _, err := c.ClusterStatus(ctx); err != nil { // learn the shard map
			log.Fatal(err)
		}

		var total atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*n + w)))
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(ds.Users)-1))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					owner := ds.Users[zipf.Uint64()].ID
					if err := c.CreatePaper(ctx, hive.Paper{
						ID:       fmt.Sprintf("e18-%d-%d-%d", n, w, i),
						Title:    "sharded ingest under owner skew",
						Abstract: "write throughput scaling with shard count",
						Authors:  []string{owner},
					}); err != nil {
						log.Fatal(err)
					}
					total.Add(1)
				}
			}(w)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		wps := float64(total.Load()) / window.Seconds()

		lat := make([]time.Duration, 0, reads)
		for i := 0; i < reads; i++ {
			start := time.Now()
			if _, err := c.Search(ctx, "graph partitioning streams", "", "", 10); err != nil {
				log.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		rows = append(rows, row{n, wps, lat[len(lat)/2], lat[len(lat)*95/100]})

		if n == 4 {
			// Cross-check against the server's own instruments (cumulative
			// over all three shard counts — the registry is process-wide).
			reportServerHistogram(ts.URL, "hive_scatter_fanout_seconds")
		}
		ts.Close()
		sh.Close()
	}
	fmt.Printf("%d users + %d-paper back-catalog seeded, %d writers, %v write window, zipf(s=1.2) owner skew\n",
		users, 100*users, writers, window)
	fmt.Printf("%-10s %14s %10s %18s %10s\n", "shards", "writes/s", "speedup", "search p50", "p95")
	for _, r := range rows {
		fmt.Printf("%-10d %14.0f %9.2fx %18v %10v\n",
			r.shards, r.wps, r.wps/rows[0].wps,
			r.p50.Round(10*time.Microsecond), r.p95.Round(10*time.Microsecond))
	}
	fmt.Println("shape: writes/s climbs with shard count (independent journals and delta")
	fmt.Println("       pipelines commit in parallel; the acceptance bar is ≥1.8x at 4 shards)")
	fmt.Println("       while scatter-gather adds a modest per-shard fan-out cost to reads")
}

// e2: relationship discovery latency + evidence histogram + fusion
// ablation.
func e2(users int) {
	p := buildPlatform(users)
	defer p.Close()
	eng, err := p.Engine()
	if err != nil {
		log.Fatal(err)
	}
	ids := p.Users()
	rng := rand.New(rand.NewSource(7))
	const pairs = 200
	hist := map[core.EvidenceKind]int{}
	var wsAgg, mxAgg float64
	d := timeIt(func() {
		for i := 0; i < pairs; i++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			if a == b {
				continue
			}
			ex, err := eng.Explain(a, b)
			if err != nil {
				log.Fatal(err)
			}
			for _, ev := range ex.Evidences {
				hist[ev.Kind]++
			}
			wsAgg += core.FuseWeightedSum(ex.Evidences)
			mxAgg += core.FuseMax(ex.Evidences)
		}
	})
	fmt.Printf("pairs=%d mean-latency=%v\n", pairs, d/pairs)
	fmt.Printf("%-28s %8s\n", "evidence-class", "count")
	for _, k := range []core.EvidenceKind{core.EvCoauthor, core.EvCitation, core.EvQA,
		core.EvSession, core.EvConference, core.EvFollow, core.EvProfile,
		core.EvAffiliation, core.EvContent, core.EvActivity} {
		fmt.Printf("%-28s %8d\n", k, hist[k])
	}
	fmt.Printf("fusion ablation: mean weighted-sum=%.4f mean max=%.4f\n",
		wsAgg/pairs, mxAgg/pairs)
}

// e3: alignment+integration cost vs network size.
func e3(_ int) {
	fmt.Printf("%-8s %10s %10s %14s\n", "users", "nodes", "edges", "integrate-time")
	for _, n := range []int{16, 32, 64, 128} {
		p := buildPlatform(n)
		eng, err := p.Engine()
		if err != nil {
			log.Fatal(err)
		}
		layers := eng.Layers()
		var in *align.Integrated
		d := timeIt(func() {
			var err error
			in, err = align.Integrate(layers, align.Options{})
			if err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-8d %10d %10d %14v  %s\n", n,
			eng.PeerGraph().NumNodes(), eng.PeerGraph().NumEdges(), d, in.String())
		p.Close()
	}
}

// e4: context-aware resource recommendation precision, with vs without
// the active workpad (the Figure 4 claim).
func e4(users int) {
	p := buildPlatform(users)
	defer p.Close()
	eng, err := p.Engine()
	if err != nil {
		log.Fatal(err)
	}
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	prec := func(useCtx bool) float64 {
		var sum float64
		n := 0
		for _, u := range p.Users() {
			recs, err := eng.RecommendResources(u, 5, useCtx)
			if err != nil || len(recs) == 0 {
				continue
			}
			hits := 0
			for _, r := range recs {
				id := strings.TrimPrefix(strings.TrimPrefix(r.DocID, core.DocPaper), core.DocPresentation)
				topic, ok := ds.TopicOfPaper[id]
				if !ok {
					if pr, err := p.Store().Presentation(id); err == nil {
						topic, ok = ds.TopicOfPaper[pr.PaperID], true
					}
				}
				if ok && topic == ds.TopicOfUser[u] {
					hits++
				}
			}
			sum += float64(hits) / float64(len(recs))
			n++
		}
		return sum / float64(maxi(n, 1))
	}
	with := prec(true)
	without := prec(false)
	fmt.Printf("%-22s %12s\n", "arm", "precision@5")
	fmt.Printf("%-22s %12.3f\n", "with workpad context", with)
	fmt.Printf("%-22s %12.3f\n", "without context", without)
	fmt.Printf("improvement: %.2fx\n", with/maxf(without, 1e-9))
}

// e5: every Table 1 service exercised once, with latency.
func e5(users int) {
	p := buildPlatform(users)
	defer p.Close()
	uid := p.Users()[0]
	conf := p.Store().Conferences()[0]
	papers := p.Store().Papers()
	doc := core.DocPaper + papers[0]

	rows := []struct {
		service string
		fn      func() error
	}{
		{"concept-map bootstrap (via refresh)", func() error { return p.Refresh() }},
		{"peer recommendation", func() error { _, err := p.RecommendPeers(uid, 5); return err }},
		{"locate similar peers (explain)", func() error { _, err := p.Explain(uid, p.Users()[1]); return err }},
		{"send request/reply (connect)", func() error {
			a, b := p.Users()[2], p.Users()[3]
			if p.Connected(a, b) {
				return nil
			}
			return p.Connect(a, b)
		}},
		{"context search", func() error { _, err := p.SearchWithContext(uid, "graph partitioning", 5); return err }},
		{"rank resources by context", func() error { _, err := p.RecommendResources(uid, 5, true); return err }},
		{"relationship discovery+explain", func() error { _, err := p.Explain(uid, p.Users()[4]); return err }},
		{"community discovery", func() error { _, err := p.Communities(); return err }},
		{"summary previews (snippets)", func() error { _, err := p.Preview(uid, doc, 2); return err }},
		{"update digest (AlphaSum)", func() error { _, err := p.UpdateDigest(uid, 5); return err }},
		{"activity history search", func() error { _ = p.Store().EventsByActor(uid); return nil }},
		{"session suggestion", func() error { _, err := p.SuggestSessions(uid, conf, 3); return err }},
	}
	fmt.Printf("%-36s %12s %6s\n", "service (Table 1)", "latency", "ok")
	for _, r := range rows {
		var err error
		d := timeIt(func() { err = r.fn() })
		status := "yes"
		if err != nil {
			status = "ERR: " + err.Error()
		}
		fmt.Printf("%-36s %12v %6s\n", r.service, d, status)
	}
}

// e6: SCENT sketched monitoring vs structure recomputation baselines.
// The honest baseline from the SCENT paper is recomputing a tensor
// decomposition per epoch; exact Frobenius diffing is shown too.
func e6(_ int) {
	shape := []int{64, 64, 16}
	changeAt := map[int]bool{20: true, 35: true}
	stream, deltas := tensor.SyntheticStreamWithDeltas(11, shape, 50, 3000, changeAt)

	fmt.Printf("%-12s %14s %10s %10s %10s\n", "method", "time", "detected", "missed", "false+")

	var cpRes []tensor.StreamResult
	cpTime := timeIt(func() {
		var err error
		cpRes, err = tensor.MonitorDecomposition(stream, 5, 10, &tensor.Detector{})
		if err != nil {
			log.Fatal(err)
		}
	})
	det, miss, fp := score(cpRes, changeAt)
	fmt.Printf("%-12s %14v %10d %10d %10d\n", "cp-als(r=5)", cpTime, det, miss, fp)

	var exactRes []tensor.StreamResult
	exactTime := timeIt(func() {
		var err error
		exactRes, err = tensor.MonitorExact(stream, &tensor.Detector{})
		if err != nil {
			log.Fatal(err)
		}
	})
	det, miss, fp = score(exactRes, changeAt)
	fmt.Printf("%-12s %14v %10d %10d %10d\n", "exact-frob", exactTime, det, miss, fp)

	for _, m := range []int{16, 64, 256} {
		sk, err := tensor.NewSketcher(m, 3, shape...)
		if err != nil {
			log.Fatal(err)
		}
		var res []tensor.StreamResult
		d := timeIt(func() {
			res, err = tensor.MonitorSketched(sk, stream, &tensor.Detector{})
			if err != nil {
				log.Fatal(err)
			}
		})
		det, miss, fp := score(res, changeAt)
		fmt.Printf("%-12s %14v %10d %10d %10d\n", fmt.Sprintf("sketch-%d", m), d, det, miss, fp)
	}
	// The streaming fast path: descriptors maintained from deltas only,
	// O(m) per cell update — SCENT's headline complexity.
	for _, m := range []int{16, 64} {
		sk, err := tensor.NewSketcher(m, 3, shape...)
		if err != nil {
			log.Fatal(err)
		}
		var res []tensor.StreamResult
		d := timeIt(func() {
			res, err = tensor.MonitorIncremental(sk, deltas, &tensor.Detector{})
			if err != nil {
				log.Fatal(err)
			}
		})
		det, miss, fp := score(res, changeAt)
		fmt.Printf("%-12s %14v %10d %10d %10d\n", fmt.Sprintf("sketch-inc-%d", m), d, det, miss, fp)
	}
	fmt.Println("shape: incremental sketches detect the planted changes orders of magnitude cheaper than per-epoch structure recomputation")
}

func score(res []tensor.StreamResult, planted map[int]bool) (det, miss, fp int) {
	found := map[int]bool{}
	for _, r := range res {
		if r.Change {
			if planted[r.Epoch] {
				det++
				found[r.Epoch] = true
			} else {
				fp++
			}
		}
	}
	for e := range planted {
		if !found[e] {
			miss++
		}
	}
	return det, miss, fp
}

// e7: INI index vs online diffusion queries.
func e7(_ int) {
	fmt.Printf("%-8s %12s %10s %14s %14s %9s\n",
		"nodes", "build-time", "idx-size", "indexed-q", "online-q", "speedup")
	for _, n := range []int{200, 500, 1000} {
		g := randomDiffGraph(5, n, 6*n)
		var idx *diffusion.Index
		build := timeIt(func() {
			var err error
			idx, err = diffusion.BuildIndex(g, 0.05)
			if err != nil {
				log.Fatal(err)
			}
		})
		const queries = 500
		rng := rand.New(rand.NewSource(9))
		srcs := make([]graph.NodeID, queries)
		for i := range srcs {
			srcs[i] = graph.NodeID(rng.Intn(n))
		}
		tIdx := timeIt(func() {
			for _, s := range srcs {
				idx.TopK(s, 10)
			}
		})
		tOnline := timeIt(func() {
			for _, s := range srcs {
				if _, err := diffusion.TopKOnline(g, s, 10, 0.05); err != nil {
					log.Fatal(err)
				}
			}
		})
		fmt.Printf("%-8d %12v %10d %14v %14v %8.1fx\n",
			n, build, idx.Size(), tIdx/queries, tOnline/queries,
			float64(tOnline)/maxf(float64(tIdx), 1))
	}
	// Ablation (DESIGN.md §5): the truncation threshold trades index
	// size against how much of the diffusion each lookup covers.
	fmt.Printf("\nepsilon sweep (500 nodes):\n%-10s %12s %10s\n", "epsilon", "build-time", "idx-size")
	g := randomDiffGraph(5, 500, 3000)
	for _, eps := range []float64{0.3, 0.1, 0.05, 0.02} {
		var idx *diffusion.Index
		build := timeIt(func() {
			var err error
			idx, err = diffusion.BuildIndex(g, eps)
			if err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-10.2f %12v %10d\n", eps, build, idx.Size())
	}
}

func randomDiffGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.EnsureNode(fmt.Sprintf("n%d", i), "user")
	}
	for i := 0; i < m; i++ {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a != b {
			_ = g.AddEdge(a, b, "e", 0.2+0.7*rng.Float64())
		}
	}
	return g
}

// e8: R2DF best-first ranked paths vs exhaustive enumeration, over both
// graph size (fixed maxLen=4) and path-length bound (fixed 60 nodes).
// Best-first terminates after k results; enumeration is exponential in
// the length bound.
func e8(_ int) {
	runOne := func(n, maxLen, queries int) (tR, tN time.Duration, agree string) {
		st := rdf.NewStore()
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 8*n; i++ {
			s := fmt.Sprintf("n%d", rng.Intn(n))
			o := fmt.Sprintf("n%d", rng.Intn(n))
			if s == o {
				continue
			}
			_ = st.Add(rdf.Triple{Subject: s, Predicate: "rel", Object: o, Weight: 0.1 + 0.9*rng.Float64()})
		}
		var ranked, naive []rdf.RankedPath
		tRanked := timeIt(func() {
			for q := 0; q < queries; q++ {
				ranked = st.RankedPaths("n0", fmt.Sprintf("n%d", n-1), 5, rdf.PathOptions{MaxLength: maxLen})
			}
		})
		tNaive := timeIt(func() {
			for q := 0; q < queries; q++ {
				naive = st.AllPathsNaive("n0", fmt.Sprintf("n%d", n-1), 5, maxLen, false)
			}
		})
		agree = "yes"
		if len(ranked) > 0 && len(naive) > 0 {
			if diff := ranked[0].Score - naive[0].Score; diff > 1e-9 || diff < -1e-9 {
				agree = "NO"
			}
		} else if len(ranked) != len(naive) {
			agree = "NO"
		}
		return tRanked / time.Duration(queries), tNaive / time.Duration(queries), agree
	}

	fmt.Printf("%-8s %8s %14s %14s %9s %10s\n", "nodes", "maxlen", "ranked", "naive", "speedup", "agree")
	for _, n := range []int{30, 60, 120} {
		tR, tN, agree := runOne(n, 4, 20)
		fmt.Printf("%-8d %8d %14v %14v %8.1fx %10s\n", n, 4, tR, tN,
			float64(tN)/maxf(float64(tR), 1), agree)
	}
	for _, maxLen := range []int{5, 6} {
		tR, tN, agree := runOne(60, maxLen, 3)
		fmt.Printf("%-8d %8d %14v %14v %8.1fx %10s\n", 60, maxLen, tR, tN,
			float64(tN)/maxf(float64(tR), 1), agree)
	}
}

// e9: AlphaSum loss/latency across budgets.
func e9(users int) {
	p := buildPlatform(users)
	defer p.Close()
	// Build an activity table from the real event stream.
	tab := &summarize.Table{Columns: []string{"verb", "topic", "affil"}}
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	affil := map[string]string{}
	for _, u := range ds.Users {
		affil[u.ID] = u.Affiliation
	}
	for _, ev := range p.Store().EventsSince(0, 0) {
		topic := "other"
		if t, ok := ds.TopicOfUser[ev.Actor]; ok {
			topic = workload.Topics[t].Name
		}
		tab.Rows = append(tab.Rows, []string{ev.Verb, topic, affil[ev.Actor]})
	}
	s := summarize.NewSummarizer(tab.Columns, benchHierarchies())
	fmt.Printf("rows=%d\n", len(tab.Rows))
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "budget", "greedy-loss", "greedy-time", "opt-loss", "opt-time")
	for _, budget := range []int{2, 4, 8, 16} {
		var gs, os *summarize.Summary
		tg := timeIt(func() {
			var err error
			gs, err = s.Greedy(tab, budget)
			if err != nil {
				log.Fatal(err)
			}
		})
		to := timeIt(func() {
			var err error
			os, err = s.Optimal(tab, budget)
			if err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-8d %12.4f %12v %12.4f %12v\n", budget, gs.Loss, tg, os.Loss, to)
	}
}

// e10: collaborative filtering vs popularity baseline.
func e10(users int) {
	p := buildPlatform(users)
	defer p.Close()
	eng, err := p.Engine()
	if err != nil {
		log.Fatal(err)
	}
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	hit := func(recs []core.CFRecommendation, topic int) float64 {
		if len(recs) == 0 {
			return 0
		}
		hits := 0
		for _, r := range recs {
			id := strings.TrimPrefix(strings.TrimPrefix(r.DocID, core.DocPaper), core.DocPresentation)
			t, ok := ds.TopicOfPaper[id]
			if !ok {
				if pr, err := p.Store().Presentation(id); err == nil {
					t, ok = ds.TopicOfPaper[pr.PaperID], true
				}
			}
			if ok && t == topic {
				hits++
			}
		}
		return float64(hits) / float64(len(recs))
	}
	var cfP, popP float64
	n := 0
	var cfTime time.Duration
	for _, u := range p.Users() {
		start := time.Now()
		cf := eng.RecommendByCF(u, 5)
		cfTime += time.Since(start)
		if len(cf) == 0 {
			continue
		}
		pop := eng.RecommendByPopularity(u, 5)
		cfP += hit(cf, ds.TopicOfUser[u])
		popP += hit(pop, ds.TopicOfUser[u])
		n++
	}
	fmt.Printf("%-14s %14s %14s\n", "method", "precision@5", "mean-latency")
	fmt.Printf("%-14s %14.3f %14v\n", "user-based CF", cfP/float64(n), cfTime/time.Duration(maxi(n, 1)))
	fmt.Printf("%-14s %14.3f %14s\n", "popularity", popP/float64(n), "-")
	fmt.Printf("lift: %.2fx over %d users\n", (cfP/float64(n))/maxf(popP/float64(n), 1e-9), n)
}

// e11: concept-map bootstrapping throughput + planted-topic purity.
func e11(_ int) {
	fmt.Printf("%-8s %12s %10s %10s\n", "docs", "time", "concepts", "purity")
	for _, nd := range []int{40, 80, 160} {
		ds := workload.Generate(workload.Config{Seed: 21, Users: 40,
			SessionsPerConf: 8, PapersPerSess: maxi(nd/32, 1)})
		var docs []string
		for _, p := range ds.Papers {
			docs = append(docs, p.Title+". "+p.Abstract)
		}
		if len(docs) > nd {
			docs = docs[:nd]
		}
		start := time.Now()
		cm, err := conceptmap.Bootstrap(docs, conceptmap.BootstrapOptions{MaxConcepts: 60})
		d := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		// Purity: fraction of top-20 concepts that are planted topic terms.
		vocab := map[string]bool{}
		for _, t := range workload.Topics {
			for _, term := range t.Terms {
				vocab[term] = true
			}
		}
		top := cm.Concepts()
		if len(top) > 20 {
			top = top[:20]
		}
		hits := 0
		for _, c := range top {
			if vocab[c.Term] {
				hits++
			}
		}
		fmt.Printf("%-8d %12v %10d %9.0f%%\n", len(docs), d, cm.Len(),
			100*float64(hits)/maxf(float64(len(top)), 1))
	}
}

// e12: snippet extraction latency + relevance vs random baseline.
func e12(users int) {
	p := buildPlatform(users)
	defer p.Close()
	eng, err := p.Engine()
	if err != nil {
		log.Fatal(err)
	}
	uid := p.Users()[0]
	papers := p.Store().Papers()
	ctx := eng.ContextVector(uid)
	rng := rand.New(rand.NewSource(3))

	var relCtx, relRand float64
	var total time.Duration
	n := 0
	for _, pid := range papers {
		doc := core.DocPaper + pid
		text, err := eng.Index().Text(doc)
		if err != nil {
			continue
		}
		start := time.Now()
		snips, err := eng.Preview(uid, doc, 1)
		total += time.Since(start)
		if err != nil || len(snips) == 0 {
			continue
		}
		relCtx += textindex.TermFrequency(snips[0].Text).Cosine(ctx)
		sents := textindex.SplitSentences(text)
		if len(sents) > 0 {
			relRand += textindex.TermFrequency(sents[rng.Intn(len(sents))]).Cosine(ctx)
		}
		n++
	}
	fmt.Printf("docs=%d mean-latency=%v\n", n, total/time.Duration(maxi(n, 1)))
	fmt.Printf("%-22s %10.4f\n", "context-aware snippet", relCtx/maxf(float64(n), 1))
	fmt.Printf("%-22s %10.4f\n", "random sentence", relRand/maxf(float64(n), 1))
}

// benchHierarchies builds the value lattices for the E9 activity table:
// verbs group into interaction classes, topics into research areas, and
// affiliations into regions — giving the summarizer real generalization
// levels to trade off.
func benchHierarchies() map[string]*summarize.Hierarchy {
	mustH := func(parents map[string]string) *summarize.Hierarchy {
		h, err := summarize.NewHierarchy(parents)
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	verbs := mustH(map[string]string{
		"question": "discussion", "answer": "discussion", "comment": "discussion",
		"checkin": "presence", "connect": "networking", "follow": "networking",
		"upload": "content", "browse": "content",
		"discussion": summarize.Root, "presence": summarize.Root,
		"networking": summarize.Root, "content": summarize.Root,
	})
	topics := mustH(map[string]string{
		"graphs": "analytics", "tensors": "analytics", "mining": "analytics",
		"query": "systems", "storage": "systems",
		"social": "web", "text": "web", "rdf": "web", "other": "web",
		"analytics": summarize.Root, "systems": summarize.Root, "web": summarize.Root,
	})
	affils := mustH(map[string]string{
		"ASU": "americas", "CMU": "americas",
		"UniTo": "europe", "MPI": "europe", "EPFL": "europe",
		"NUS":      "asia",
		"americas": summarize.Root, "europe": summarize.Root, "asia": summarize.Root,
	})
	return map[string]*summarize.Hierarchy{"verb": verbs, "topic": topics, "affil": affils}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
