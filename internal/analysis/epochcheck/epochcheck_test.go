package epochcheck_test

import (
	"testing"

	"hive/internal/analysis/analysistest"
	"hive/internal/analysis/epochcheck"
)

func TestEpochCheck(t *testing.T) {
	analysistest.Run(t, "testdata", epochcheck.Analyzer)
}
