// Sharded write-path and scatter-gather benchmarks (the PR-9 tentpole;
// E18 in cmd/hivebench measures the same paths over real HTTP).
//
//	go test -bench='Sharded|ScatterGather' -benchmem
package hive_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"hive"
	"hive/internal/workload"
)

// benchClockSafe is benchClock for concurrent writers: shards lock
// independently, so the shared clock must be race-free.
func benchClockSafe() func() time.Time {
	base := time.Unix(1363000000, 0)
	var ticks atomic.Int64
	return func() time.Time {
		return base.Add(time.Duration(ticks.Add(1)) * time.Second)
	}
}

// BenchmarkShardedWrite measures aggregate write throughput through the
// routed write path at 1/2/4 shards. Every write publishes a paper —
// store mutation, change events, and the synchronous delta fold into
// the owning shard's serving snapshot — under a Zipf-skewed owner
// distribution, so the win is real pipeline parallelism surviving a
// realistic hot-owner skew, not a uniform best case. ns/op is the
// inverse of throughput: at 4 shards it should be well under half the
// 1-shard figure (the E18 acceptance bar is ≥1.8x).
func BenchmarkShardedWrite(b *testing.B) {
	const owners = 256
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			sh, err := hive.OpenSharded(n, hive.Options{Clock: benchClockSafe()})
			if err != nil {
				b.Fatal(err)
			}
			defer sh.Close()
			for i := 0; i < owners; i++ {
				if err := sh.RegisterUser(hive.User{
					ID: fmt.Sprintf("w%03d", i), Name: "Writer"}); err != nil {
					b.Fatal(err)
				}
			}
			if err := sh.Refresh(); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.Add(1)))
				zipf := rand.NewZipf(rng, 1.2, 1, owners-1)
				for pb.Next() {
					owner := fmt.Sprintf("w%03d", zipf.Uint64())
					id := seq.Add(1)
					if err := sh.PublishPaper(hive.Paper{
						ID:       fmt.Sprintf("bw-%d", id),
						Title:    "sharded write path throughput under owner skew",
						Abstract: "per owner shard leaders fold change events into independent delta pipelines",
						Authors:  []string{owner},
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkScatterGatherSearch measures exact cross-shard search: every
// shard scores its local postings under merged global statistics and a
// k-way merge assembles the final top k, bit-identical to an unsharded
// node (TestShardedParity proves the identity; this prices it).
func BenchmarkScatterGatherSearch(b *testing.B) {
	ds := workload.Generate(workload.Config{Seed: 42, Users: 64})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			sh, err := hive.OpenSharded(n, hive.Options{Clock: benchClockSafe()})
			if err != nil {
				b.Fatal(err)
			}
			defer sh.Close()
			if err := sh.Batched(func() error { return ds.LoadRouted(sh) }); err != nil {
				b.Fatal(err)
			}
			if err := sh.Refresh(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.Search(context.Background(), "graph partitioning streams", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
