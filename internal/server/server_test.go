package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hive"
)

func newTestServer(t *testing.T) (*httptest.Server, *hive.Platform) {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return ts, p
}

func post(t *testing.T, ts *httptest.Server, path string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func expectStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, want, body.String())
	}
}

// seedViaAPI drives the whole scenario through HTTP only.
func seedViaAPI(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, u := range []hive.User{
		{ID: "zach", Name: "Zach", Affiliation: "ASU", Interests: []string{"graphs"}},
		{ID: "ann", Name: "Ann", Affiliation: "UniTo", Interests: []string{"graphs"}},
		{ID: "aaron", Name: "Aaron", Affiliation: "MPI"},
	} {
		expectStatus(t, post(t, ts, "/api/users", u), http.StatusCreated)
	}
	expectStatus(t, post(t, ts, "/api/conferences",
		hive.Conference{ID: "edbt13", Name: "EDBT 2013", Series: "edbt", Year: 2013}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/sessions",
		hive.Session{ID: "s1", ConferenceID: "edbt13", Title: "Graph processing at scale", Hashtag: "#s1"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/papers",
		hive.Paper{ID: "p1", Title: "Graph partitioning", Abstract: "We partition graphs.",
			Authors: []string{"ann"}, ConferenceID: "edbt13", SessionID: "s1"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/presentations",
		hive.Presentation{ID: "pr1", PaperID: "p1", Owner: "ann",
			Text: "Graph partitioning slides. Communication costs matter. Vertex cuts beat edge cuts."}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/connections", map[string]string{"a": "zach", "b": "ann"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/follows", map[string]string{"a": "aaron", "b": "zach"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/checkins", map[string]string{"session_id": "s1", "user_id": "zach"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/questions",
		hive.Question{ID: "q1", Author: "zach", Target: "p1", Text: "How do vertex cuts scale?"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/workpads",
		hive.Workpad{ID: "w1", Owner: "zach", Name: "ctx"}), http.StatusCreated)
}

func TestHealthz(t *testing.T) {
	ts, p := newTestServer(t)
	var out map[string]any
	if code := get(t, ts, "/api/healthz", &out); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("body = %v", out)
	}
	// No snapshot has been built yet: healthz must say so, not block.
	if out["snapshot"] != false || out["stale"] != true {
		t.Fatalf("pre-build healthz = %v", out)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	if code := get(t, ts, "/api/healthz", &out); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if out["snapshot"] != true || out["stale"] != false || out["generation"] != float64(1) {
		t.Fatalf("post-build healthz = %v", out)
	}
	for _, key := range []string{"built_at", "build_ms", "age_ms"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("healthz missing %q: %v", key, out)
		}
	}
}

func TestUserCRUDOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	expectStatus(t, post(t, ts, "/api/users", hive.User{ID: "u1", Name: "One"}), http.StatusCreated)
	var u hive.User
	if code := get(t, ts, "/api/users/u1", &u); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if u.Name != "One" {
		t.Fatalf("user = %+v", u)
	}
	if code := get(t, ts, "/api/users/nope", nil); code != http.StatusNotFound {
		t.Fatalf("missing user code = %d", code)
	}
	var ids []string
	get(t, ts, "/api/users", &ids)
	if len(ids) != 1 || ids[0] != "u1" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestValidationErrorsMapTo4xx(t *testing.T) {
	ts, _ := newTestServer(t)
	// Session without conference -> 404 (missing reference).
	resp := post(t, ts, "/api/sessions", hive.Session{ID: "s1", ConferenceID: "nope"})
	expectStatus(t, resp, http.StatusNotFound)
	// Empty user ID -> 400.
	resp = post(t, ts, "/api/users", hive.User{})
	expectStatus(t, resp, http.StatusBadRequest)
	// Malformed JSON -> 400.
	r, err := http.Post(ts.URL+"/api/users", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	expectStatus(t, r, http.StatusBadRequest)
}

func TestFullScenarioOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)

	// Attendees.
	var att []string
	get(t, ts, "/api/sessions/s1/attendees", &att)
	if len(att) != 1 || att[0] != "zach" {
		t.Fatalf("attendees = %v", att)
	}

	// Feed: aaron follows zach, zach checked in + asked.
	var feed []hive.Event
	get(t, ts, "/api/users/aaron/feed", &feed)
	if len(feed) < 2 {
		t.Fatalf("feed = %+v", feed)
	}

	// Hashtag fan-out: both the check-in and the question about the
	// session's paper broadcast under #s1.
	var tagEvents []hive.Event
	get(t, ts, "/api/tags/s1/events", &tagEvents)
	if len(tagEvents) != 2 || tagEvents[0].Verb != "checkin" || tagEvents[1].Verb != "question" {
		t.Fatalf("tag events = %+v", tagEvents)
	}

	// Relationship explanation.
	var ex hive.Explanation
	if code := get(t, ts, "/api/relationship?a=zach&b=ann", &ex); code != http.StatusOK {
		t.Fatalf("relationship code = %d", code)
	}
	if len(ex.Evidences) == 0 {
		t.Fatalf("no evidences: %+v", ex)
	}

	// Peer recommendations.
	var peers []hive.PeerRecommendation
	get(t, ts, "/api/users/zach/recommendations/peers?k=3", &peers)
	for _, r := range peers {
		if r.UserID == "ann" {
			t.Fatal("recommended existing connection")
		}
	}

	// Search, plain and contextual.
	var res []hive.SearchResult
	get(t, ts, "/api/search?q=graph+partitioning&k=5", &res)
	if len(res) == 0 {
		t.Fatal("no search results")
	}
	get(t, ts, "/api/search?q=graph+partitioning&k=5&user=zach", &res)
	if len(res) == 0 {
		t.Fatal("no contextual search results")
	}

	// Preview.
	var snips []hive.Snippet
	if code := get(t, ts, "/api/preview?user=zach&doc=pres/pr1&k=2", &snips); code != http.StatusOK {
		t.Fatalf("preview code = %d", code)
	}
	if len(snips) == 0 {
		t.Fatal("no snippets")
	}

	// Digest.
	var sum hive.Summary
	get(t, ts, "/api/users/aaron/digest?budget=3", &sum)
	if len(sum.Rows) == 0 {
		t.Fatal("empty digest")
	}

	// Communities.
	var comms [][]string
	get(t, ts, "/api/communities", &comms)
	if len(comms) == 0 {
		t.Fatal("no communities")
	}

	// Workpad item + activation + fetch.
	expectStatus(t, post(t, ts, "/api/workpads/w1/items",
		hive.WorkpadItem{Kind: hive.ItemPaper, Ref: "p1"}), http.StatusCreated)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/workpads/w1/activate?owner=zach", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	expectStatus(t, resp, http.StatusOK)
	var wp hive.Workpad
	get(t, ts, "/api/users/zach/workpad", &wp)
	if wp.ID != "w1" || len(wp.Items) != 1 {
		t.Fatalf("workpad = %+v", wp)
	}

	// Session suggestions (zach attended s1 already -> may be empty, but
	// must not error).
	var sugg []hive.SessionSuggestion
	if code := get(t, ts, "/api/users/aaron/sessions/suggest?conf=edbt13&k=3", &sugg); code != http.StatusOK {
		t.Fatalf("suggest code = %d", code)
	}

	// Refresh endpoint.
	resp = post(t, ts, "/api/refresh", map[string]string{})
	expectStatus(t, resp, http.StatusOK)
}

func TestUnknownUserKnowledgeCalls404(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)
	if code := get(t, ts, "/api/relationship?a=ghost&b=zach", nil); code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
	if code := get(t, ts, "/api/users/ghost/recommendations/peers", nil); code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
	if code := get(t, ts, "/api/preview?user=zach&doc=pres/none", nil); code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
}

func TestConcurrentAPIRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/api/search?q=graph&k=3&user=zach", ts.URL))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHistoryAndResourceRelationshipEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)

	var hits []hive.HistoryEntry
	if code := get(t, ts, "/api/users/zach/history?q=checkin", &hits); code != http.StatusOK {
		t.Fatalf("history code = %d", code)
	}
	if len(hits) == 0 {
		t.Fatal("no history hits")
	}
	if code := get(t, ts, "/api/users/ghost/history", nil); code != http.StatusNotFound {
		t.Fatalf("ghost history code = %d", code)
	}

	var evs []hive.ResourceEvidence
	if code := get(t, ts, "/api/users/ann/resource-relationship?entity=p1", &evs); code != http.StatusOK {
		t.Fatalf("resource-relationship code = %d", code)
	}
	found := false
	for _, ev := range evs {
		if ev.Kind == "authored" {
			found = true
		}
	}
	if !found {
		t.Fatalf("authored evidence missing: %+v", evs)
	}

	var paths []hive.KnowledgePath
	if code := get(t, ts, "/api/knowledge/paths?a=user:ann&b=session:s1&k=2", &paths); code != http.StatusOK {
		t.Fatalf("knowledge paths code = %d", code)
	}
	if len(paths) == 0 {
		t.Fatal("no knowledge paths (ann authored p1 presented in s1)")
	}
}
