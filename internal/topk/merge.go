package topk

import "container/heap"

// MergeTopK merges n ranked lists into the k best items under the same
// strict total order, deterministically. It is the scatter-gather
// counterpart of Heap: each shard produces its local top-k with Heap,
// the coordinator merges the per-shard lists with MergeTopK, and the
// result is byte-identical to ranking the union corpus in one heap —
// including tie-break order, provided better is a strict total order
// over the merged item set.
//
// The merge walks per-list head cursors through a min-heap keyed on
// better, always emitting the globally best remaining head: O(total
// log n) with no allocation beyond the output and the n-entry cursor
// heap. When every input list is sorted best-first (Heap.Sorted output)
// the result is the true global top-k and the walk stops after k pops;
// unsorted inputs still merge correctly relative to their own order
// (each list is consumed front to back), which is what stream
// pagination needs, but only sorted inputs guarantee the global-best
// property. Items that better orders identically break ties toward the
// lower list index, so a caller that fans out shards 0..n-1 gets a
// stable, reproducible interleave. k <= 0 merges everything.
func MergeTopK[T any](lists [][]T, k int, better func(a, b T) bool) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	if k <= 0 || k > total {
		k = total
	}
	h := &cursorHeap[T]{better: better}
	h.cur = make([]cursor[T], 0, len(lists))
	for i, l := range lists {
		if len(l) > 0 {
			h.cur = append(h.cur, cursor[T]{list: i, items: l})
		}
	}
	heap.Init(h)
	out := make([]T, 0, k)
	for len(out) < k && h.Len() > 0 {
		c := &h.cur[0]
		out = append(out, c.items[c.pos])
		c.pos++
		if c.pos == len(c.items) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}

// cursor is one input list's read position.
type cursor[T any] struct {
	list  int // original list index, the deterministic tie-break
	items []T
	pos   int
}

// cursorHeap orders cursors by their head item under better, ties by
// list index. It implements heap.Interface over the cursor slice.
type cursorHeap[T any] struct {
	cur    []cursor[T]
	better func(a, b T) bool
}

func (h *cursorHeap[T]) Len() int { return len(h.cur) }

func (h *cursorHeap[T]) Less(i, j int) bool {
	a, b := h.cur[i].items[h.cur[i].pos], h.cur[j].items[h.cur[j].pos]
	if h.better(a, b) {
		return true
	}
	if h.better(b, a) {
		return false
	}
	return h.cur[i].list < h.cur[j].list
}

func (h *cursorHeap[T]) Swap(i, j int) { h.cur[i], h.cur[j] = h.cur[j], h.cur[i] }

func (h *cursorHeap[T]) Push(x any) { h.cur = append(h.cur, x.(cursor[T])) }

func (h *cursorHeap[T]) Pop() any {
	old := h.cur
	n := len(old)
	x := old[n-1]
	h.cur = old[:n-1]
	return x
}
