package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hive/internal/social"
	"hive/internal/workload"
)

// deltaQueries exercise the merged read path from several angles.
var deltaQueries = []string{
	"graph partitioning", "social media influence", "community detection",
	"diffusion kernel equation", "stream processing", "no such terms here", "",
}

// collectEvents subscribes a recorder to the store's change log.
func collectEvents(st *social.Store) func() []social.ChangeEvent {
	var mu sync.Mutex
	var buf []social.ChangeEvent
	st.OnChange(func(evs []social.ChangeEvent) {
		mu.Lock()
		buf = append(buf, evs...)
		mu.Unlock()
	})
	return func() []social.ChangeEvent {
		mu.Lock()
		defer mu.Unlock()
		out := buf
		buf = nil
		return out
	}
}

// assertSearchParity compares the delta-maintained engine's text read
// path against a from-scratch build, bit for bit.
func assertSearchParity(t *testing.T, label string, delta, fresh *Engine) {
	t.Helper()
	for _, q := range deltaQueries {
		got := delta.Search(q, 10)
		want := fresh.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("%s: Search(%q): delta %d results, fresh %d\ndelta: %v\nfresh: %v",
				label, q, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: Search(%q) rank %d: delta %+v, fresh %+v", label, q, i, got[i], want[i])
			}
		}
	}
	for _, id := range fresh.seg.DocIDs() {
		fv, ferr := fresh.docVector(id)
		dv, derr := delta.docVector(id)
		if (ferr == nil) != (derr == nil) || len(fv) != len(dv) {
			t.Fatalf("%s: docVector(%s): delta %d terms (err %v), fresh %d (err %v)",
				label, id, len(dv), derr, len(fv), ferr)
		}
		for term, w := range fv {
			if dv[term] != w {
				t.Fatalf("%s: docVector(%s) term %q: delta %v, fresh %v", label, id, term, dv[term], w)
			}
		}
	}
}

// assertInteractionParity compares interaction vectors and popularity
// exactly: the delta path folds each activity event in exactly once, so
// the tables must equal a full rebuild's.
func assertInteractionParity(t *testing.T, label string, delta, fresh *Engine) {
	t.Helper()
	for u, want := range fresh.interVecs {
		got := delta.interactionVectorOf(u)
		if len(got) != len(want) {
			t.Fatalf("%s: interaction vector of %s: delta %d entries, fresh %d (%v vs %v)",
				label, u, len(got), len(want), got, want)
		}
		for doc, w := range want {
			if got[doc] != w {
				t.Fatalf("%s: interaction[%s][%s]: delta %v, fresh %v", label, u, doc, got[doc], w)
			}
		}
	}
	for doc, n := range fresh.popularity {
		if delta.popularityOf(doc) != n {
			t.Fatalf("%s: popularity[%s]: delta %d, fresh %d", label, doc, delta.popularityOf(doc), n)
		}
	}
}

// TestApplyDeltaSingleMutation covers the basic write-visibility path:
// one published paper becomes searchable through a delta, with scores
// identical to a full rebuild, without rebuilding anything else.
func TestApplyDeltaSingleMutation(t *testing.T) {
	st, eng := zachWorld(t)
	drain := collectEvents(st)
	drain() // discard fixture-load noise (already in the snapshot)

	p := social.Paper{
		ID: "p-new", Title: "Incremental overlay maintenance for frozen indexes",
		Abstract: "Delta snapshots with segmented overlays and graph partitioning.",
		Authors:  []string{"zach"}, ConferenceID: "edbt13",
	}
	if err := st.PutPaper(p); err != nil {
		t.Fatal(err)
	}
	evs := drain()
	if len(evs) == 0 {
		t.Fatal("no change events emitted")
	}

	b := &Builder{Store: st}
	delta, err := b.ApplyDelta(eng, evs)
	if err != nil {
		t.Fatal(err)
	}
	// The old snapshot is untouched; the new one serves the write.
	if res := eng.Search("incremental overlay maintenance", 5); len(res) != 0 {
		t.Fatalf("old snapshot mutated: %v", res)
	}
	res := delta.Search("incremental overlay maintenance", 5)
	if len(res) == 0 || res[0].DocID != DocPaper+"p-new" {
		t.Fatalf("delta snapshot does not serve the new paper: %v", res)
	}
	// Structural sharing of the untouched heavy structures.
	if delta.peerGraph != eng.peerGraph || delta.kb != eng.kb || delta.concepts != eng.concepts ||
		delta.frozen != eng.frozen {
		t.Fatal("delta snapshot rebuilt structures the events did not touch")
	}
	if delta.DeltaStats().Deltas != 1 || delta.DeltaStats().OverlayDocs != 1 {
		t.Fatalf("delta stats = %+v", delta.DeltaStats())
	}

	fresh, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	assertSearchParity(t, "single mutation", delta, fresh)
	assertInteractionParity(t, "single mutation", delta, fresh)

	// Idempotence: replaying the same batch (e.g. after a compaction
	// race re-pends it) must not change any result.
	again, err := b.ApplyDelta(delta, evs)
	if err != nil {
		t.Fatal(err)
	}
	assertSearchParity(t, "replayed batch", again, fresh)
	assertInteractionParity(t, "replayed batch", again, fresh)
}

// TestApplyDeltaContextAndMemo checks that workpad events repair the
// affected user's context tables and invalidate only that user's
// PageRank memo entry.
func TestApplyDeltaContextAndMemo(t *testing.T) {
	st, eng := zachWorld(t)
	drain := collectEvents(st)
	drain()

	// Prime the memo for two users.
	if _, err := eng.RecommendPeers("zach", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RecommendPeers("ann", 3); err != nil {
		t.Fatal(err)
	}

	if err := st.PutWorkpad(social.Workpad{ID: "wp-ann", Owner: "ann", Name: "ann context",
		Items: []social.WorkpadItem{{Kind: social.ItemPaper, Ref: "p-carl"}, {Kind: social.ItemUser, Ref: "carl"}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.SetActiveWorkpad("ann", "wp-ann"); err != nil {
		t.Fatal(err)
	}

	delta, err := (&Builder{Store: st}).ApplyDelta(eng, drain())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := delta.pprMemo["zach"]; !ok {
		t.Fatal("unaffected user's memo entry was dropped")
	}
	if _, ok := delta.pprMemo["ann"]; ok {
		t.Fatal("affected user's memo entry survived a workpad change")
	}
	if refs := delta.workpadPeerRefs("ann"); len(refs) != 1 || refs[0] != "carl" {
		t.Fatalf("workpad peer refs not repaired: %v", refs)
	}
	// The context vector now reflects the workpad (graph-heavy paper).
	oldCtx, newCtx := eng.ContextVector("ann"), delta.ContextVector("ann")
	if len(newCtx) <= len(oldCtx) {
		t.Fatalf("context vector not enriched: %d -> %d terms", len(oldCtx), len(newCtx))
	}
}

// TestDeltaInterleavingParity is the randomized interleaving property
// test (run under -race): a shuffled stream of mutations applies batch
// by batch through ApplyDelta while concurrent readers hammer the
// snapshots; after every batch the text and interaction read paths must
// match a from-scratch rebuild exactly, and at every compaction point
// the compacted engine must answer Search/Recommend/Explain identically
// to an independent fresh build.
func TestDeltaInterleavingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	st, err := social.Open("", testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ds := workload.Generate(workload.Config{Seed: 42, Users: 24})
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	drain := collectEvents(st)
	drain()

	b := &Builder{Store: st}
	eng, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	users := st.Users()
	sessions := st.SessionsOf(st.Conferences()[0])

	// The shuffled mutation deck: content, interaction and context
	// mutations in random order.
	var muts []func(i int) error
	deck := 8
	if testing.Short() {
		deck = 3
	}
	for n := 0; n < deck; n++ {
		n := n
		muts = append(muts,
			func(i int) error {
				return st.PutPaper(social.Paper{
					ID:       fmt.Sprintf("dp-%d-%d", n, i),
					Title:    fmt.Sprintf("Delta paper %d on graph streams", n),
					Abstract: "Overlay segments, tombstones and merge on read for social graphs.",
					Authors:  []string{users[rng.Intn(len(users))]},
				})
			},
			func(i int) error {
				u := users[rng.Intn(len(users))]
				return st.AskQuestion(social.Question{
					ID: fmt.Sprintf("dq-%d-%d", n, i), Author: u,
					Target: "dp-0-0", Text: "How do tombstones shadow the frozen base postings?",
				})
			},
			func(i int) error {
				_, err := st.LogEvent(users[rng.Intn(len(users))], "browse", "dp-0-0", nil)
				return err
			},
			func(i int) error {
				if len(sessions) == 0 {
					return nil
				}
				return st.CheckIn(sessions[rng.Intn(len(sessions))], users[rng.Intn(len(users))])
			},
		)
	}
	rng.Shuffle(len(muts), func(i, j int) { muts[i], muts[j] = muts[j], muts[i] })

	// Concurrent readers: the snapshot under their feet must always be
	// complete (no torn state); -race checks the memory discipline.
	var cur atomic.Pointer[Engine]
	cur.Store(eng)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := cur.Load()
				e.Search(deltaQueries[rr.Intn(len(deltaQueries))], 5)
				if _, err := e.RecommendPeers(users[rr.Intn(len(users))], 3); err != nil {
					t.Error(err)
					return
				}
				e.RecommendByCF(users[rr.Intn(len(users))], 5)
			}
		}(int64(r))
	}

	const compactEvery = 12
	const verifyEvery = 3 // full rebuilds are the expensive half of the test
	for i, m := range muts {
		if err := m(i); err != nil {
			t.Fatal(err)
		}
		evs := drain()
		next, err := b.ApplyDelta(cur.Load(), evs)
		if err != nil {
			t.Fatal(err)
		}
		cur.Store(next)

		if i%verifyEvery != 0 && (i+1)%compactEvery != 0 {
			continue
		}
		fresh, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("step %d", i)
		assertSearchParity(t, label, next, fresh)
		assertInteractionParity(t, label, next, fresh)

		if (i+1)%compactEvery == 0 {
			// Compaction point: a full build folds the overlay into a new
			// base; everything — including the graph-backed services the
			// deltas deliberately left stale — must now match a fresh
			// independent build.
			compacted, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			cur.Store(compacted)
			label := fmt.Sprintf("compaction after step %d", i)
			assertSearchParity(t, label, compacted, fresh)
			assertInteractionParity(t, label, compacted, fresh)
			u, v := users[0], users[1]
			ex1, err1 := compacted.Explain(u, v)
			ex2, err2 := fresh.Explain(u, v)
			if (err1 == nil) != (err2 == nil) || len(ex1.Evidences) != len(ex2.Evidences) {
				t.Fatalf("%s: Explain diverged: %v/%v vs %v/%v", label, ex1, err1, ex2, err2)
			}
			r1, err1 := compacted.RecommendResources(u, 5, false)
			r2, err2 := fresh.RecommendResources(u, 5, false)
			if (err1 == nil) != (err2 == nil) || len(r1) != len(r2) {
				t.Fatalf("%s: RecommendResources diverged: %v vs %v", label, r1, r2)
			}
			for j := range r1 {
				if r1[j] != r2[j] {
					t.Fatalf("%s: RecommendResources rank %d: %+v vs %+v", label, j, r1[j], r2[j])
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestDeltaNeverObservesTornBatch checks the batch-atomicity contract:
// a delta applied while another writer is mid-Batched must never
// surface a proper subset of that batch, because the store delivers a
// batch's change events only after the outermost Batched returns.
func TestDeltaNeverObservesTornBatch(t *testing.T) {
	st, eng := zachWorld(t)
	b := &Builder{Store: st}

	var cur atomic.Pointer[Engine]
	cur.Store(eng)
	var applyMu sync.Mutex
	st.OnChange(func(evs []social.ChangeEvent) {
		applyMu.Lock()
		defer applyMu.Unlock()
		next, err := b.ApplyDelta(cur.Load(), evs)
		if err != nil {
			t.Error(err)
			return
		}
		cur.Store(next)
	})

	const batchPapers = 8
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := cur.Load().Search("tornbatchtoken", 2*batchPapers)
				if n := len(res); n != 0 && n != batchPapers {
					t.Errorf("torn batch observed: %d of %d papers visible", n, batchPapers)
					return
				}
			}
		}()
	}

	// Concurrent unrelated writer: keeps deltas flowing mid-batch.
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 20; i++ {
			_, _ = st.LogEvent("zach", "browse", "p-zach", nil)
		}
	}()

	err := st.Batched(func() error {
		for i := 0; i < batchPapers; i++ {
			if err := st.PutPaper(social.Paper{
				ID:       fmt.Sprintf("torn-%d", i),
				Title:    "tornbatchtoken paper",
				Abstract: "atomic visibility of batched writes",
				Authors:  []string{"zach"},
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	writers.Wait()
	// Drain any events the batch folded in, then verify the final state.
	applyMu.Lock()
	final := cur.Load()
	applyMu.Unlock()
	if res := final.Search("tornbatchtoken", 2*batchPapers); len(res) != batchPapers {
		t.Fatalf("after batch: %d of %d papers visible", len(res), batchPapers)
	}
	close(stop)
	readers.Wait()
}
