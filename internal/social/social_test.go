package social

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fixedClock returns a deterministic, strictly increasing clock.
func fixedClock() Clock {
	t := time.Unix(1363000000, 0) // around EDBT'13
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open("", fixedClock())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedConference populates a minimal EDBT'13-like world.
func seedConference(t *testing.T, s *Store) {
	t.Helper()
	users := []User{
		{ID: "zach", Name: "Zach", Affiliation: "ASU", Interests: []string{"social media", "graphs"}},
		{ID: "ann", Name: "Ann", Affiliation: "UniTo"},
		{ID: "aaron", Name: "Aaron", Affiliation: "MPI"},
		{ID: "advisor", Name: "The Advisor", Affiliation: "ASU"},
	}
	for _, u := range users {
		if err := s.PutUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutConference(Conference{ID: "edbt13", Name: "EDBT 2013", Series: "edbt", Year: 2013, Venue: "Genoa"}); err != nil {
		t.Fatal(err)
	}
	sessions := []Session{
		{ID: "s-graphs", ConferenceID: "edbt13", Title: "Large Scale Graph Processing", Hashtag: "#edbt13graphs", Chair: "ann"},
		{ID: "s-social", ConferenceID: "edbt13", Title: "Social Media Analysis", Hashtag: "#edbt13social", Chair: "aaron"},
	}
	for _, sess := range sessions {
		if err := s.PutSession(sess); err != nil {
			t.Fatal(err)
		}
	}
	papers := []Paper{
		{ID: "p-zach", Title: "Diffusion in Social Graphs", Authors: []string{"zach", "advisor"},
			ConferenceID: "edbt13", SessionID: "s-social", Citations: []string{"p-ann"}},
		{ID: "p-ann", Title: "Community Detection at Scale", Authors: []string{"ann"},
			ConferenceID: "edbt13", SessionID: "s-graphs"},
	}
	for _, p := range papers {
		if err := s.PutPaper(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUserCRUD(t *testing.T) {
	s := newStore(t)
	if err := s.PutUser(User{ID: "u1", Name: "User One"}); err != nil {
		t.Fatal(err)
	}
	u, err := s.User("u1")
	if err != nil || u.Name != "User One" {
		t.Fatalf("User = %+v, %v", u, err)
	}
	if !s.HasUser("u1") || s.HasUser("u2") {
		t.Fatal("HasUser wrong")
	}
	if _, err := s.User("u2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.PutUser(User{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty ID err = %v", err)
	}
	if got := s.Users(); len(got) != 1 || got[0] != "u1" {
		t.Fatalf("Users = %v", got)
	}
}

func TestSessionRequiresConference(t *testing.T) {
	s := newStore(t)
	err := s.PutSession(Session{ID: "s1", ConferenceID: "missing"})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestConferenceSessionsIndex(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	sessions := s.SessionsOf("edbt13")
	if len(sessions) != 2 {
		t.Fatalf("SessionsOf = %v", sessions)
	}
	sess, err := s.Session("s-graphs")
	if err != nil || sess.Chair != "ann" {
		t.Fatalf("Session = %+v, %v", sess, err)
	}
}

func TestPaperValidationAndIndexes(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.PutPaper(Paper{ID: "bad", Authors: []string{"ghost"}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost author err = %v", err)
	}
	if err := s.PutPaper(Paper{ID: "bad2"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no-author err = %v", err)
	}
	if got := s.PapersOfAuthor("zach"); len(got) != 1 || got[0] != "p-zach" {
		t.Fatalf("PapersOfAuthor = %v", got)
	}
	if got := s.PapersOfSession("s-graphs"); len(got) != 1 || got[0] != "p-ann" {
		t.Fatalf("PapersOfSession = %v", got)
	}
	if got := s.PapersOfConference("edbt13"); len(got) != 2 {
		t.Fatalf("PapersOfConference = %v", got)
	}
}

func TestPresentationUploadFlow(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	pr := Presentation{ID: "pres-zach", PaperID: "p-zach", Owner: "zach", Text: "diffusion graphs slides"}
	if err := s.PutPresentation(pr); err != nil {
		t.Fatal(err)
	}
	got, err := s.Presentation("pres-zach")
	if err != nil || got.Updated == 0 {
		t.Fatalf("Presentation = %+v, %v", got, err)
	}
	if l := s.PresentationsOfPaper("p-zach"); len(l) != 1 {
		t.Fatalf("PresentationsOfPaper = %v", l)
	}
	if l := s.PresentationsOfUser("zach"); len(l) != 1 {
		t.Fatalf("PresentationsOfUser = %v", l)
	}
	if err := s.PutPresentation(Presentation{ID: "x", PaperID: "nope", Owner: "zach"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing paper err = %v", err)
	}
}

func TestConnectLifecycle(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.Connect("zach", "aaron"); err != nil {
		t.Fatal(err)
	}
	if !s.Connected("zach", "aaron") || !s.Connected("aaron", "zach") {
		t.Fatal("connection not symmetric")
	}
	if got := s.ConnectionsOf("zach"); len(got) != 1 || got[0] != "aaron" {
		t.Fatalf("ConnectionsOf = %v", got)
	}
	if err := s.Connect("zach", "zach"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("self-connect err = %v", err)
	}
	if err := s.Connect("zach", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost connect err = %v", err)
	}
}

func TestFollowLifecycle(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.Follow("zach", "ann"); err != nil {
		t.Fatal(err)
	}
	if !s.FollowsUser("zach", "ann") || s.FollowsUser("ann", "zach") {
		t.Fatal("follow should be directed")
	}
	if got := s.Following("zach"); len(got) != 1 || got[0] != "ann" {
		t.Fatalf("Following = %v", got)
	}
	if got := s.Followers("ann"); len(got) != 1 || got[0] != "zach" {
		t.Fatalf("Followers = %v", got)
	}
	if err := s.Unfollow("zach", "ann"); err != nil {
		t.Fatal(err)
	}
	if s.FollowsUser("zach", "ann") {
		t.Fatal("unfollow failed")
	}
	if err := s.Follow("zach", "zach"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("self-follow err = %v", err)
	}
}

func TestCheckInFlow(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.CheckIn("s-graphs", "zach"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckIn("s-graphs", "ann"); err != nil {
		t.Fatal(err)
	}
	att := s.Attendees("s-graphs")
	if len(att) != 2 {
		t.Fatalf("Attendees = %v", att)
	}
	if got := s.SessionsAttendedBy("zach"); len(got) != 1 || got[0] != "s-graphs" {
		t.Fatalf("SessionsAttendedBy = %v", got)
	}
	if err := s.CheckIn("missing", "zach"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing session err = %v", err)
	}
	// Check-in with hashtag must land in the tag fan-out.
	evs := s.EventsByTag("#edbt13graphs")
	if len(evs) != 2 {
		t.Fatalf("EventsByTag = %v", evs)
	}
}

func TestQuestionAnswerFlow(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	q := Question{ID: "q1", Author: "aaron", Target: "p-zach", Text: "Is eq. 3 missing a factor?"}
	if err := s.AskQuestion(q); err != nil {
		t.Fatal(err)
	}
	got, err := s.Question("q1")
	if err != nil || got.At == 0 {
		t.Fatalf("Question = %+v, %v", got, err)
	}
	if l := s.QuestionsAbout("p-zach"); len(l) != 1 {
		t.Fatalf("QuestionsAbout = %v", l)
	}
	if l := s.QuestionsBy("aaron"); len(l) != 1 {
		t.Fatalf("QuestionsBy = %v", l)
	}
	a := Answer{ID: "a1", QuestionID: "q1", Author: "zach", Text: "Yes — fixed, thanks!"}
	if err := s.PostAnswer(a); err != nil {
		t.Fatal(err)
	}
	if l := s.AnswersTo("q1"); len(l) != 1 {
		t.Fatalf("AnswersTo = %v", l)
	}
	if err := s.PostAnswer(Answer{ID: "a2", QuestionID: "missing", Author: "zach"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing question err = %v", err)
	}
	// Question about a paper in a session with a hashtag broadcasts there.
	if evs := s.EventsByTag("#edbt13social"); len(evs) != 1 || evs[0].Verb != "question" {
		t.Fatalf("hashtag broadcast = %v", evs)
	}
}

func TestCommentFlow(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	c := Comment{ID: "c1", Author: "ann", Target: "s-graphs", Text: "Great session"}
	if err := s.PostComment(c); err != nil {
		t.Fatal(err)
	}
	if l := s.CommentsOn("s-graphs"); len(l) != 1 {
		t.Fatalf("CommentsOn = %v", l)
	}
	got, err := s.Comment("c1")
	if err != nil || got.Author != "ann" {
		t.Fatalf("Comment = %+v, %v", got, err)
	}
	if err := s.PostComment(Comment{ID: "c2"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid comment err = %v", err)
	}
}

func TestWorkpadLifecycle(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	w := Workpad{ID: "w1", Owner: "zach", Name: "session"}
	if err := s.PutWorkpad(w); err != nil {
		t.Fatal(err)
	}
	item := WorkpadItem{Kind: ItemUser, Ref: "ann"}
	if err := s.AddToWorkpad("w1", item); err != nil {
		t.Fatal(err)
	}
	// Idempotent add.
	if err := s.AddToWorkpad("w1", item); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Workpad("w1")
	if len(got.Items) != 1 {
		t.Fatalf("Items = %v", got.Items)
	}
	if err := s.SetActiveWorkpad("zach", "w1"); err != nil {
		t.Fatal(err)
	}
	act, err := s.ActiveWorkpad("zach")
	if err != nil || act.ID != "w1" {
		t.Fatalf("ActiveWorkpad = %+v, %v", act, err)
	}
	if err := s.RemoveFromWorkpad("w1", item); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Workpad("w1")
	if len(got.Items) != 0 {
		t.Fatalf("Items after remove = %v", got.Items)
	}
	// Ownership enforced.
	if err := s.SetActiveWorkpad("ann", "w1"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("foreign activate err = %v", err)
	}
	if _, err := s.ActiveWorkpad("aaron"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("no active err = %v", err)
	}
	if got := s.WorkpadsOf("zach"); len(got) != 1 {
		t.Fatalf("WorkpadsOf = %v", got)
	}
}

func TestCollectionExportImport(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	w := Workpad{ID: "w1", Owner: "zach", Name: "to investigate later",
		Items: []WorkpadItem{{Kind: ItemPaper, Ref: "p-ann"}}}
	if err := s.PutWorkpad(w); err != nil {
		t.Fatal(err)
	}
	col, err := s.ExportCollection("w1", "col1")
	if err != nil || col.Owner != "zach" || len(col.Items) != 1 {
		t.Fatalf("ExportCollection = %+v, %v", col, err)
	}
	imported, err := s.ImportCollection("col1", "ann", "w-ann")
	if err != nil || imported.Owner != "ann" || len(imported.Items) != 1 {
		t.Fatalf("ImportCollection = %+v, %v", imported, err)
	}
	// Import activates the new workpad.
	act, err := s.ActiveWorkpad("ann")
	if err != nil || act.ID != "w-ann" {
		t.Fatalf("active after import = %+v, %v", act, err)
	}
}

// TestImportCollectionCoalesced: importing a collection is one logical
// mutation (create the workpad, then activate it), so subscribers must
// see a single coalesced batch carrying both events — never an
// intermediate state where the workpad exists but is not yet active.
func TestImportCollectionCoalesced(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	w := Workpad{ID: "w1", Owner: "zach",
		Items: []WorkpadItem{{Kind: ItemPaper, Ref: "p-ann"}}}
	if err := s.PutWorkpad(w); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExportCollection("w1", "col1"); err != nil {
		t.Fatal(err)
	}

	var batches [][]ChangeEvent
	s.OnChange(func(evs []ChangeEvent) {
		batches = append(batches, append([]ChangeEvent(nil), evs...))
	})
	if _, err := s.ImportCollection("col1", "ann", "w-ann"); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("import delivered %d change batches, want 1 coalesced batch", len(batches))
	}
	var sawPad, sawActive bool
	for _, ev := range batches[0] {
		switch {
		case ev.EntityType == EntityWorkpad && ev.ID == "w-ann":
			sawPad = true
		case ev.EntityType == EntityActiveWorkpad && ev.ID == "ann":
			sawActive = true
		}
	}
	if !sawPad || !sawActive {
		t.Fatalf("coalesced batch %+v is missing the workpad or active-workpad event", batches[0])
	}
}

func TestActivityStreamOrderingAndFeed(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.Follow("advisor", "zach"); err != nil {
		t.Fatal(err)
	}
	_ = s.CheckIn("s-graphs", "zach")
	_ = s.AskQuestion(Question{ID: "q1", Author: "zach", Target: "p-ann", Text: "?"})
	_ = s.CheckIn("s-social", "ann")

	evs := s.EventsSince(0, 0)
	if len(evs) < 4 {
		t.Fatalf("EventsSince = %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	// The advisor follows Zach: the feed must contain Zach's checkin and
	// question but not Ann's checkin.
	feed := s.Feed("advisor", 0)
	if len(feed) != 2 {
		t.Fatalf("Feed = %+v", feed)
	}
	for _, ev := range feed {
		if ev.Actor != "zach" {
			t.Fatalf("feed leaked actor %q", ev.Actor)
		}
	}
}

func TestEventsSinceCursorAndLimit(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	var mid uint64
	for i := 0; i < 5; i++ {
		seq, err := s.LogEvent("zach", "browse", fmt.Sprintf("p%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			mid = seq
		}
	}
	evs := s.EventsSince(mid, 0)
	if len(evs) != 2 {
		t.Fatalf("EventsSince(mid) = %d events", len(evs))
	}
	evs = s.EventsSince(0, 3)
	if len(evs) != 3 {
		t.Fatalf("limit not honored: %d", len(evs))
	}
}

func TestEventsByActor(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	_, _ = s.LogEvent("zach", "browse", "p-ann", nil)
	_, _ = s.LogEvent("ann", "browse", "p-zach", nil)
	evs := s.EventsByActor("zach")
	if len(evs) != 1 || evs[0].Actor != "zach" {
		t.Fatalf("EventsByActor = %+v", evs)
	}
}

func TestSeqSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fixedClock())
	if err != nil {
		t.Fatal(err)
	}
	_ = s.PutUser(User{ID: "u", Name: "U"})
	seq1, _ := s.LogEvent("u", "x", "", nil)
	_ = s.Close()

	s2, err := Open(dir, fixedClock())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seq2, _ := s2.LogEvent("u", "y", "", nil)
	if seq2 <= seq1 {
		t.Fatalf("sequence regressed after reopen: %d then %d", seq1, seq2)
	}
	// Data also survives.
	if !s2.HasUser("u") {
		t.Fatal("user lost")
	}
	if evs := s2.EventsSince(0, 0); len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestDurableFullScenario(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fixedClock())
	if err != nil {
		t.Fatal(err)
	}
	seedConference(t, s)
	_ = s.Connect("zach", "ann")
	_ = s.CheckIn("s-graphs", "zach")
	_ = s.PutWorkpad(Workpad{ID: "w1", Owner: "zach", Name: "ctx",
		Items: []WorkpadItem{{Kind: ItemSession, Ref: "s-graphs"}}})
	_ = s.SetActiveWorkpad("zach", "w1")
	_ = s.Close()

	s2, err := Open(dir, fixedClock())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Connected("zach", "ann") {
		t.Fatal("connection lost")
	}
	if got := s2.Attendees("s-graphs"); len(got) != 1 {
		t.Fatalf("attendees lost: %v", got)
	}
	act, err := s2.ActiveWorkpad("zach")
	if err != nil || len(act.Items) != 1 {
		t.Fatalf("active workpad lost: %+v, %v", act, err)
	}
}

func TestEventsByTagCaseInsensitive(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	_, err := s.LogEvent("zach", "comment", "p-zach", []string{"#EDBT13Graphs"})
	if err != nil {
		t.Fatal(err)
	}
	if evs := s.EventsByTag("#edbt13graphs"); len(evs) != 1 {
		t.Fatalf("case-insensitive tag lookup failed: %v", evs)
	}
	if evs := s.EventsByTag("#EDBT13GRAPHS"); len(evs) != 1 {
		t.Fatalf("upper-case tag lookup failed: %v", evs)
	}
}

func TestFeedLimitKeepsNewest(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.Follow("advisor", "zach"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, _ = s.LogEvent("zach", "browse", fmt.Sprintf("p%d", i), nil)
	}
	feed := s.Feed("advisor", 2)
	if len(feed) != 2 {
		t.Fatalf("limit ignored: %d", len(feed))
	}
	// The newest two events must be kept, not the oldest.
	if feed[1].Object != "p4" || feed[0].Object != "p3" {
		t.Fatalf("feed kept wrong window: %+v", feed)
	}
}

func TestGettersReturnNotFound(t *testing.T) {
	s := newStore(t)
	if _, err := s.Conference("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Conference err = %v", err)
	}
	if _, err := s.Session("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Session err = %v", err)
	}
	if _, err := s.Paper("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Paper err = %v", err)
	}
	if _, err := s.Presentation("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Presentation err = %v", err)
	}
	if _, err := s.Answer("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Answer err = %v", err)
	}
	if _, err := s.Comment("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Comment err = %v", err)
	}
	if _, err := s.Collection("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Collection err = %v", err)
	}
	if _, err := s.Workpad("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Workpad err = %v", err)
	}
}

func TestWorkpadOperationErrors(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.AddToWorkpad("missing", WorkpadItem{Kind: ItemUser, Ref: "x"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddToWorkpad err = %v", err)
	}
	if err := s.RemoveFromWorkpad("missing", WorkpadItem{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("RemoveFromWorkpad err = %v", err)
	}
	if err := s.PutWorkpad(Workpad{ID: "w", Owner: "ghost"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost owner err = %v", err)
	}
	if _, err := s.ImportCollection("missing", "zach", "w"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ImportCollection err = %v", err)
	}
	if _, err := s.ExportCollection("missing", "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ExportCollection err = %v", err)
	}
	// Removing an item that is not on the pad is a no-op.
	_ = s.PutWorkpad(Workpad{ID: "w2", Owner: "zach"})
	if err := s.RemoveFromWorkpad("w2", WorkpadItem{Kind: ItemUser, Ref: "nope"}); err != nil {
		t.Fatalf("no-op remove err = %v", err)
	}
}

func TestAskQuestionValidation(t *testing.T) {
	s := newStore(t)
	seedConference(t, s)
	if err := s.AskQuestion(Question{ID: "q", Target: "x"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no-author err = %v", err)
	}
	if err := s.AskQuestion(Question{ID: "q", Author: "ghost", Target: "x"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost author err = %v", err)
	}
	if err := s.PostAnswer(Answer{QuestionID: "q"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no-id answer err = %v", err)
	}
}
