// Package server exposes the Hive platform as a JSON REST API — the
// web-facing surface of Figure 1. The paper's deployment used
// JomSocial/Joomla; this server is the stdlib net/http substitute
// offering the same service set (profiles, connections, follows, content,
// check-ins, Q&A, workpads, feeds) plus the knowledge services
// (relationship explanation, recommendations, context-aware search,
// previews, digests).
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"hive"
	"hive/internal/core"
	"hive/internal/social"
	"hive/internal/textindex"
)

// minRevalidateInterval bounds how often stale reads may trigger a
// background rebuild: under sustained write+read traffic, rebuilds
// would otherwise run back-to-back and pin cores (each write re-dirties
// the snapshot, each read would kick a new refresh).
const minRevalidateInterval = time.Second

// Server routes HTTP requests to a Platform.
type Server struct {
	p   *hive.Platform
	mux *http.ServeMux

	lastReval atomic.Int64 // unix nanos of the last read-triggered refresh kick
}

// New builds a server around a platform.
func New(p *hive.Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// engine resolves the serving snapshot without ever blocking reads on a
// rebuild: the current snapshot is served as-is, and when it is stale a
// background refresh is kicked so a later request observes fresh data
// (stale-while-revalidate). Only the very first request — before any
// snapshot exists — builds synchronously.
func (s *Server) engine() (*core.Engine, error) {
	if eng := s.p.Snapshot(); eng != nil {
		if s.p.Stale() {
			s.maybeRevalidate()
		}
		return eng, nil
	}
	return s.p.Engine()
}

// maybeRevalidate kicks a background refresh at most once per
// minRevalidateInterval (the CAS makes one winner per window).
func (s *Server) maybeRevalidate() {
	now := time.Now().UnixNano()
	last := s.lastReval.Load()
	if now-last < int64(minRevalidateInterval) {
		return
	}
	if s.lastReval.CompareAndSwap(last, now) {
		s.p.RefreshAsync()
	}
}

func (s *Server) routes() {
	m := s.mux
	m.HandleFunc("GET /api/healthz", s.getHealthz)

	m.HandleFunc("POST /api/users", jsonIn(s.postUser))
	m.HandleFunc("GET /api/users/{id}", s.getUser)
	m.HandleFunc("GET /api/users", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.p.Users())
	})
	m.HandleFunc("POST /api/conferences", jsonIn(s.postConference))
	m.HandleFunc("POST /api/sessions", jsonIn(s.postSession))
	m.HandleFunc("POST /api/papers", jsonIn(s.postPaper))
	m.HandleFunc("POST /api/presentations", jsonIn(s.postPresentation))
	m.HandleFunc("POST /api/connections", jsonIn(s.postConnection))
	m.HandleFunc("POST /api/follows", jsonIn(s.postFollow))
	m.HandleFunc("POST /api/checkins", jsonIn(s.postCheckin))
	m.HandleFunc("GET /api/sessions/{id}/attendees", s.getAttendees)
	m.HandleFunc("POST /api/questions", jsonIn(s.postQuestion))
	m.HandleFunc("POST /api/answers", jsonIn(s.postAnswer))
	m.HandleFunc("POST /api/comments", jsonIn(s.postComment))
	m.HandleFunc("POST /api/workpads", jsonIn(s.postWorkpad))
	m.HandleFunc("POST /api/workpads/{id}/items", s.postWorkpadItem)
	m.HandleFunc("POST /api/workpads/{id}/activate", s.postWorkpadActivate)
	m.HandleFunc("GET /api/users/{id}/workpad", s.getActiveWorkpad)
	m.HandleFunc("GET /api/users/{id}/feed", s.getFeed)
	m.HandleFunc("GET /api/tags/{tag}/events", s.getTagEvents)

	m.HandleFunc("GET /api/relationship", s.getRelationship)
	m.HandleFunc("GET /api/users/{id}/recommendations/peers", s.getPeerRecs)
	m.HandleFunc("GET /api/users/{id}/recommendations/resources", s.getResourceRecs)
	m.HandleFunc("GET /api/users/{id}/sessions/suggest", s.getSessionSuggestions)
	m.HandleFunc("GET /api/search", s.getSearch)
	m.HandleFunc("GET /api/preview", s.getPreview)
	m.HandleFunc("GET /api/users/{id}/digest", s.getDigest)
	m.HandleFunc("GET /api/communities", s.getCommunities)
	m.HandleFunc("GET /api/users/{id}/history", s.getHistory)
	m.HandleFunc("GET /api/users/{id}/resource-relationship", s.getResourceRelationship)
	m.HandleFunc("GET /api/knowledge/paths", s.getKnowledgePaths)
	m.HandleFunc("POST /api/refresh", s.postRefreshSync) // legacy synchronous alias
	m.HandleFunc("POST /api/admin/refresh", s.postAdminRefresh)
}

// getHealthz reports liveness plus snapshot freshness: the snapshot
// generation, when it was built, how long the build took, its age, and
// whether data changed since (stale). Reads are served from the swapped
// snapshot, so "stale: true" means a rebuild is due, not an outage.
func (s *Server) getHealthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"status":     "ok",
		"generation": s.p.Generation(),
		"stale":      s.p.Stale(),
		"snapshot":   false,
	}
	if eng := s.p.Snapshot(); eng != nil {
		out["snapshot"] = true
		out["built_at"] = eng.BuiltAt().UTC().Format(time.RFC3339Nano)
		out["build_ms"] = eng.BuildDuration().Milliseconds()
		out["age_ms"] = time.Since(eng.BuiltAt()).Milliseconds()
	}
	if err := s.p.LastRefreshError(); err != nil {
		out["last_refresh_error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// postRefreshSync rebuilds in the request goroutine and returns when
// the new snapshot is live.
func (s *Server) postRefreshSync(w http.ResponseWriter, r *http.Request) {
	if err := s.p.Refresh(); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "refreshed"})
}

// postAdminRefresh triggers a background rebuild and returns 202
// immediately; with ?wait=true it blocks until the swap like the legacy
// endpoint. Reads keep being served from the old snapshot either way.
func (s *Server) postAdminRefresh(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("wait") == "true" {
		s.postRefreshSync(w, r)
		return
	}
	s.p.RefreshAsync()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "refresh scheduled"})
}

// jsonIn adapts a typed JSON handler.
func jsonIn[T any](fn func(T) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v T
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad json: " + err.Error()})
			return
		}
		if err := fn(v); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
	}
}

func (s *Server) postUser(u hive.User) error                  { return s.p.RegisterUser(u) }
func (s *Server) postConference(c hive.Conference) error      { return s.p.CreateConference(c) }
func (s *Server) postSession(ss hive.Session) error           { return s.p.CreateSession(ss) }
func (s *Server) postPaper(pa hive.Paper) error               { return s.p.PublishPaper(pa) }
func (s *Server) postPresentation(pr hive.Presentation) error { return s.p.UploadPresentation(pr) }
func (s *Server) postQuestion(q hive.Question) error          { return s.p.Ask(q) }
func (s *Server) postAnswer(a hive.Answer) error              { return s.p.AnswerQuestion(a) }
func (s *Server) postComment(c hive.Comment) error            { return s.p.PostComment(c) }
func (s *Server) postWorkpad(w hive.Workpad) error            { return s.p.CreateWorkpad(w) }

type pairReq struct {
	A string `json:"a"`
	B string `json:"b"`
}

func (s *Server) postConnection(r pairReq) error { return s.p.Connect(r.A, r.B) }
func (s *Server) postFollow(r pairReq) error     { return s.p.Follow(r.A, r.B) }

type checkinReq struct {
	SessionID string `json:"session_id"`
	UserID    string `json:"user_id"`
}

func (s *Server) postCheckin(r checkinReq) error { return s.p.CheckIn(r.SessionID, r.UserID) }

func (s *Server) getUser(w http.ResponseWriter, r *http.Request) {
	u, err := s.p.GetUser(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

func (s *Server) getAttendees(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Attendees(r.PathValue("id")))
}

func (s *Server) postWorkpadItem(w http.ResponseWriter, r *http.Request) {
	var item hive.WorkpadItem
	if err := json.NewDecoder(r.Body).Decode(&item); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := s.p.AddToWorkpad(r.PathValue("id"), item); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "added"})
}

func (s *Server) postWorkpadActivate(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	if err := s.p.ActivateWorkpad(owner, r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "activated"})
}

func (s *Server) getActiveWorkpad(w http.ResponseWriter, r *http.Request) {
	wp, err := s.p.ActiveWorkpad(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wp)
}

func (s *Server) getFeed(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Feed(r.PathValue("id"), intParam(r, "limit", 50)))
}

func (s *Server) getTagEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.EventsByTag("#"+r.PathValue("tag")))
}

func (s *Server) getRelationship(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	ex, err := eng.Explain(a, b)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *Server) getPeerRecs(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	recs, err := eng.RecommendPeers(r.PathValue("id"), intParam(r, "k", 5))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) getResourceRecs(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	useCtx := r.URL.Query().Get("context") != "false"
	recs, err := eng.RecommendResources(r.PathValue("id"), intParam(r, "k", 5), useCtx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) getSessionSuggestions(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	conf := r.URL.Query().Get("conf")
	sugg, err := eng.SuggestSessions(r.PathValue("id"), conf, intParam(r, "k", 5))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sugg)
}

func (s *Server) getSearch(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query().Get("q")
	k := intParam(r, "k", 10)
	user := r.URL.Query().Get("user")
	var res []hive.SearchResult
	if user != "" {
		res = eng.SearchWithContext(user, q, k)
	} else {
		res = eng.Search(q, k)
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) getPreview(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	user := r.URL.Query().Get("user")
	doc := r.URL.Query().Get("doc")
	snips, err := eng.Preview(user, doc, intParam(r, "k", 3))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snips)
}

func (s *Server) getDigest(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	sum, err := eng.UpdateDigest(r.PathValue("id"), intParam(r, "budget", 5))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) getCommunities(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, eng.Communities())
}

func (s *Server) getHistory(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query().Get("q")
	useCtx := r.URL.Query().Get("context") == "true"
	hits, err := eng.SearchHistory(r.PathValue("id"), q, useCtx, intParam(r, "limit", 50))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) getResourceRelationship(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	entity := r.URL.Query().Get("entity")
	evs, err := eng.ExplainResource(r.PathValue("id"), entity)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evs)
}

func (s *Server) getKnowledgePaths(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engine()
	if err != nil {
		writeErr(w, err)
		return
	}
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	writeJSON(w, http.StatusOK, eng.KnowledgePaths(a, b, intParam(r, "k", 3)))
}

func intParam(r *http.Request, name string, def int) int {
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps domain errors to HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, social.ErrNotFound),
		errors.Is(err, core.ErrUnknownUser),
		errors.Is(err, textindex.ErrDocNotFound):
		status = http.StatusNotFound
	case errors.Is(err, social.ErrInvalid):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
