// Package analysistest runs an analyzer over a self-contained testdata
// module and checks its diagnostics against `// want` comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest.
//
// A testdata directory is its own Go module (its go.mod keeps the
// parent `go build ./...` from seeing the seeded violations; the go
// tool skips directories named testdata entirely). Stub packages
// inside it mirror the real packages' path suffixes (e.g.
// <module>/internal/social), which is all the checkers match on.
//
// Expectations are regular expressions on the same line as the
// violation:
//
//	s.frozen.ids = nil // want `outside the construction whitelist`
//
// Every diagnostic must match a want on its line and every want must
// be matched, so the tests prove both that each diagnostic fires and
// that //lint:allow suppression works (an allowed violation carries no
// want).
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"hive/internal/analysis"
)

// wantRe matches the backquoted or double-quoted patterns of a want
// comment: `// want "x" "y"` or "// want `x`".
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads every package under dir (a standalone module) and applies
// the analyzer, comparing findings to want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		diags := pkg.MalformedAllows()
		ds, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, ds...)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !consume(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

// collectWants parses every `// want` comment in the package.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					} else {
						// Double-quoted patterns carry simple escapes.
						pat = unquote(pat)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func unquote(s string) string {
	return strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(s)
}

func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
