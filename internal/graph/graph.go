// Package graph implements the weighted, labeled multigraph that underlies
// every knowledge layer in Hive: the social connection layer, the
// co-authorship and citation layers, concept maps, and the integrated
// context network of Figure 3 in the paper.
//
// The graph is directed; undirected relationships (e.g. co-authorship) are
// stored as a pair of arcs. Nodes and edges carry string labels so a single
// graph can hold heterogeneous entities ("user", "paper", "concept", ...)
// and relationships ("coauthor", "cites", "follows", ...).
//
// All mutating methods are safe for a single writer; concurrent readers
// must be coordinated by the caller (the higher layers wrap a Graph in a
// sync.RWMutex, which keeps this package allocation-lean).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are assigned densely from 0
// by AddNode, which lets algorithms use slice-indexed bookkeeping.
type NodeID int32

// Invalid is returned by lookup helpers when no node matches.
const Invalid NodeID = -1

// ErrNodeNotFound is returned when an operation references a node that is
// not present in the graph.
var ErrNodeNotFound = errors.New("graph: node not found")

// ErrDuplicateKey is returned by AddNode when the external key is already
// bound to another node.
var ErrDuplicateKey = errors.New("graph: duplicate node key")

// Node is a vertex in the knowledge graph. Key is the external identifier
// (user ID, paper DOI, concept term); Label classifies the entity.
type Node struct {
	ID    NodeID
	Key   string
	Label string
	// Weight is the node's intrinsic significance (concept significance,
	// user activity level). Algorithms that do not use it leave it at 0.
	Weight float64
}

// Edge is a directed, weighted, labeled arc.
type Edge struct {
	From   NodeID
	To     NodeID
	Label  string
	Weight float64
}

// Graph is a directed, weighted, labeled multigraph.
type Graph struct {
	nodes  []Node
	out    [][]Edge
	in     [][]Edge
	byKey  map[string]NodeID
	nEdges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byKey: make(map[string]NodeID)}
}

// NewWithCapacity returns an empty graph with storage preallocated for n
// nodes. Useful for workload generators that know the final size.
func NewWithCapacity(n int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		out:   make([][]Edge, 0, n),
		in:    make([][]Edge, 0, n),
		byKey: make(map[string]NodeID, n),
	}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return g.nEdges }

// AddNode inserts a node with the given external key and label and returns
// its dense ID. It fails with ErrDuplicateKey if the key is taken.
func (g *Graph) AddNode(key, label string) (NodeID, error) {
	if _, ok := g.byKey[key]; ok {
		return Invalid, fmt.Errorf("%w: %q", ErrDuplicateKey, key)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Key: key, Label: label})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byKey[key] = id
	return id, nil
}

// EnsureNode returns the node bound to key, creating it with the given
// label if absent. The label of an existing node is not changed.
func (g *Graph) EnsureNode(key, label string) NodeID {
	if id, ok := g.byKey[key]; ok {
		return id
	}
	id, _ := g.AddNode(key, label)
	return id
}

// Lookup returns the ID bound to an external key, or Invalid.
func (g *Graph) Lookup(key string) NodeID {
	if id, ok := g.byKey[key]; ok {
		return id
	}
	return Invalid
}

// Node returns a copy of the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if !g.valid(id) {
		return Node{}, fmt.Errorf("%w: id %d", ErrNodeNotFound, id)
	}
	return g.nodes[id], nil
}

// SetNodeWeight updates the intrinsic weight of a node.
func (g *Graph) SetNodeWeight(id NodeID, w float64) error {
	if !g.valid(id) {
		return fmt.Errorf("%w: id %d", ErrNodeNotFound, id)
	}
	g.nodes[id].Weight = w
	return nil
}

// Nodes calls fn for every node; iteration stops if fn returns false.
func (g *Graph) Nodes(fn func(Node) bool) {
	for _, n := range g.nodes {
		if !fn(n) {
			return
		}
	}
}

// NodesByLabel returns the IDs of all nodes carrying the given label, in
// insertion order.
func (g *Graph) NodesByLabel(label string) []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Label == label {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// AddEdge inserts a directed edge. Parallel edges with distinct labels are
// allowed; adding an edge with the same endpoints and label accumulates
// its weight onto the existing edge (the natural semantics for evidence
// layers, where repeated observations reinforce a relationship).
func (g *Graph) AddEdge(from, to NodeID, label string, weight float64) error {
	if !g.valid(from) {
		return fmt.Errorf("%w: from %d", ErrNodeNotFound, from)
	}
	if !g.valid(to) {
		return fmt.Errorf("%w: to %d", ErrNodeNotFound, to)
	}
	for i := range g.out[from] {
		e := &g.out[from][i]
		if e.To == to && e.Label == label {
			e.Weight += weight
			for j := range g.in[to] {
				f := &g.in[to][j]
				if f.From == from && f.Label == label {
					f.Weight += weight
					break
				}
			}
			return nil
		}
	}
	e := Edge{From: from, To: to, Label: label, Weight: weight}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.nEdges++
	return nil
}

// AddUndirected inserts the edge in both directions.
func (g *Graph) AddUndirected(a, b NodeID, label string, weight float64) error {
	if err := g.AddEdge(a, b, label, weight); err != nil {
		return err
	}
	return g.AddEdge(b, a, label, weight)
}

// Out returns the outgoing edges of a node. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Out(id NodeID) []Edge {
	if !g.valid(id) {
		return nil
	}
	return g.out[id]
}

// In returns the incoming edges of a node. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) In(id NodeID) []Edge {
	if !g.valid(id) {
		return nil
	}
	return g.in[id]
}

// EdgeBetween returns the first edge from -> to with the given label, if
// any. An empty label matches any label.
func (g *Graph) EdgeBetween(from, to NodeID, label string) (Edge, bool) {
	if !g.valid(from) {
		return Edge{}, false
	}
	for _, e := range g.out[from] {
		if e.To == to && (label == "" || e.Label == label) {
			return e, true
		}
	}
	return Edge{}, false
}

// OutDegree reports the out-degree of a node.
func (g *Graph) OutDegree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.out[id])
}

// InDegree reports the in-degree of a node.
func (g *Graph) InDegree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.in[id])
}

// Neighbors returns the distinct out-neighbors of a node, sorted by ID.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if !g.valid(id) {
		return nil
	}
	seen := make(map[NodeID]struct{}, len(g.out[id]))
	var ns []NodeID
	for _, e := range g.out[id] {
		if _, ok := seen[e.To]; !ok {
			seen[e.To] = struct{}{}
			ns = append(ns, e.To)
		}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:  append([]Node(nil), g.nodes...),
		out:    make([][]Edge, len(g.out)),
		in:     make([][]Edge, len(g.in)),
		byKey:  make(map[string]NodeID, len(g.byKey)),
		nEdges: g.nEdges,
	}
	for i := range g.out {
		c.out[i] = append([]Edge(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]Edge(nil), g.in[i]...)
	}
	for k, v := range g.byKey {
		c.byKey[k] = v
	}
	return c
}

// TotalOutWeight returns the sum of outgoing edge weights of a node.
func (g *Graph) TotalOutWeight(id NodeID) float64 {
	var s float64
	for _, e := range g.Out(id) {
		s += e.Weight
	}
	return s
}

func (g *Graph) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}
