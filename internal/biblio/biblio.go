// Package biblio derives Hive's bibliographic knowledge layers from paper
// records: the co-authorship network and the citation graph, plus the
// derived indirect-citation evidences the paper lists in §2 — citing the
// same paper (bibliographic coupling), being cited together
// (co-citation), and transitive citation.
package biblio

import (
	"sort"

	"hive/internal/graph"
	"hive/internal/social"
)

// Node labels and edge labels used in the derived graphs.
const (
	LabelAuthor = "author"
	LabelPaper  = "paper"

	EdgeCoauthor = "coauthor"
	EdgeCites    = "cites"
	EdgeAuthored = "authored"
)

// CoauthorNetwork builds the undirected co-authorship graph over users:
// an edge per co-authored paper, weights accumulating one per shared
// paper (so frequent co-authors bind strongly — the "frequent co-author"
// evidence of §1.1).
func CoauthorNetwork(papers []social.Paper) *graph.Graph {
	g := graph.New()
	for _, p := range papers {
		for _, a := range p.Authors {
			g.EnsureNode(a, LabelAuthor)
		}
		for i := 0; i < len(p.Authors); i++ {
			for j := i + 1; j < len(p.Authors); j++ {
				ai := g.Lookup(p.Authors[i])
				aj := g.Lookup(p.Authors[j])
				// AddUndirected accumulates weight on repeats.
				_ = g.AddUndirected(ai, aj, EdgeCoauthor, 1)
			}
		}
	}
	return g
}

// CitationGraph builds the directed paper citation graph. Nodes are
// papers (cited papers outside the corpus are materialized too); edges
// point from citing to cited paper.
func CitationGraph(papers []social.Paper) *graph.Graph {
	g := graph.New()
	for _, p := range papers {
		g.EnsureNode(p.ID, LabelPaper)
	}
	for _, p := range papers {
		from := g.Lookup(p.ID)
		for _, cited := range p.Citations {
			to := g.EnsureNode(cited, LabelPaper)
			_ = g.AddEdge(from, to, EdgeCites, 1)
		}
	}
	return g
}

// AuthorPaperGraph builds the bipartite authored/cites graph over both
// authors and papers — the layer the MiNC engine walks when explaining
// author-to-author relationships through the literature.
func AuthorPaperGraph(papers []social.Paper) *graph.Graph {
	g := graph.New()
	for _, p := range papers {
		pn := g.EnsureNode(p.ID, LabelPaper)
		for _, a := range p.Authors {
			an := g.EnsureNode(a, LabelAuthor)
			_ = g.AddUndirected(an, pn, EdgeAuthored, 1)
		}
		for _, cited := range p.Citations {
			cn := g.EnsureNode(cited, LabelPaper)
			_ = g.AddEdge(pn, cn, EdgeCites, 1)
		}
	}
	return g
}

// Coupling returns the bibliographic coupling strength of two papers in a
// citation graph: the number of papers both cite. "Citing the same paper"
// is one of Hive's explicit evidence classes.
func Coupling(g *graph.Graph, a, b string) int {
	na, nb := g.Lookup(a), g.Lookup(b)
	if na == graph.Invalid || nb == graph.Invalid {
		return 0
	}
	return g.CommonNeighbors(na, nb)
}

// CoCitation returns the number of papers that cite both a and b.
func CoCitation(g *graph.Graph, a, b string) int {
	na, nb := g.Lookup(a), g.Lookup(b)
	if na == graph.Invalid || nb == graph.Invalid {
		return 0
	}
	citersA := map[graph.NodeID]bool{}
	for _, e := range g.In(na) {
		if e.Label == EdgeCites {
			citersA[e.From] = true
		}
	}
	n := 0
	for _, e := range g.In(nb) {
		if e.Label == EdgeCites && citersA[e.From] {
			n++
		}
	}
	return n
}

// CitesTransitively reports whether a reaches b through citation edges in
// at most maxHops steps, and the hop distance (0 when unreachable).
func CitesTransitively(g *graph.Graph, a, b string, maxHops int) (bool, int) {
	na, nb := g.Lookup(a), g.Lookup(b)
	if na == graph.Invalid || nb == graph.Invalid {
		return false, 0
	}
	found := false
	dist := 0
	g.BFS(na, func(id graph.NodeID, depth int) bool {
		if depth > maxHops {
			return false
		}
		if id == nb && depth > 0 {
			found = true
			dist = depth
			return false
		}
		return true
	})
	return found, dist
}

// AuthorCitesAuthor reports how many times any paper of author a cites
// any paper of author b ("direct citation" evidence between people).
func AuthorCitesAuthor(papers []social.Paper, a, b string) int {
	papersBy := map[string]map[string]bool{} // author -> paper set
	for _, p := range papers {
		for _, au := range p.Authors {
			if papersBy[au] == nil {
				papersBy[au] = map[string]bool{}
			}
			papersBy[au][p.ID] = true
		}
	}
	bPapers := papersBy[b]
	n := 0
	for _, p := range papers {
		if !papersBy[a][p.ID] {
			continue
		}
		for _, cited := range p.Citations {
			if bPapers[cited] {
				n++
			}
		}
	}
	return n
}

// SharedReferences returns the IDs of papers cited by papers of both
// authors — the person-level "indirect citation" evidence.
func SharedReferences(papers []social.Paper, a, b string) []string {
	refs := func(author string) map[string]bool {
		out := map[string]bool{}
		for _, p := range papers {
			mine := false
			for _, au := range p.Authors {
				if au == author {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			for _, c := range p.Citations {
				out[c] = true
			}
		}
		return out
	}
	ra, rb := refs(a), refs(b)
	var shared []string
	for id := range ra {
		if rb[id] {
			shared = append(shared, id)
		}
	}
	sort.Strings(shared)
	return shared
}

// CoauthorDistance returns the co-authorship path length between two
// authors (the "was a co-author with his advisor a few years back"
// explanation), or -1 if unconnected within maxHops.
func CoauthorDistance(g *graph.Graph, a, b string, maxHops int) int {
	na, nb := g.Lookup(a), g.Lookup(b)
	if na == graph.Invalid || nb == graph.Invalid {
		return -1
	}
	res := -1
	g.BFS(na, func(id graph.NodeID, depth int) bool {
		if depth > maxHops {
			return false
		}
		if id == nb {
			res = depth
			return false
		}
		return true
	})
	return res
}
