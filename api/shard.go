package api

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
)

// ShardHeader is the request header a shard-aware client stamps on
// writes: the shard ID it computed for the owning user. The server
// verifies it against its own shard map and answers CodeWrongShard on a
// mismatch, so a client with a stale shard count finds out immediately
// instead of silently writing to the wrong partition. Requests without
// the header are routed server-side and never rejected.
const ShardHeader = "X-Hive-Shard"

// TraceHeader carries the end-to-end request trace ID. The client SDK
// mints one per logical call and replays it across failover retries
// and shard redirects; the server adopts an inbound value (minting one
// otherwise), echoes it on the response, threads it through the access
// log and error envelopes, and records it in the debug/traces ring —
// so one ID follows a request across every node it touched.
const TraceHeader = "X-Hive-Trace-Id"

// ShardOf maps an owning user/community ID to a shard. The hash is part
// of the v1 wire contract: server, client SDK and operators tooling all
// compute placement with this exact function, so it never changes for a
// given (owner, count) pair. FNV-1a, 64-bit.
func ShardOf(owner string, count int) int {
	if count <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(owner); i++ {
		h ^= uint64(owner[i])
		h *= prime64
	}
	return int(h % uint64(count))
}

// PaperOwner returns a paper's routing owner: its first author, or the
// paper ID when no authors are declared. Client and server derive the
// owner with this one rule, so a declared X-Hive-Shard and the server's
// verification can never disagree given the same shard map.
func PaperOwner(p Paper) string {
	if len(p.Authors) > 0 {
		return p.Authors[0]
	}
	return p.ID
}

// Sharded feed cursors. An offset cursor assumes one global activity
// sequence; with N shards each keeps its own. A feed page therefore
// resumes from a *vector* of per-shard bounds: entry i is the lowest
// sequence already consumed from shard i (0 = shard untouched). The
// next page reads strictly older events per shard, so pagination stays
// stable while any shard keeps writing.
const shardCursorPrefix = "s1:"

// EncodeShardCursor encodes per-shard resume bounds into an opaque
// cursor token.
func EncodeShardCursor(bounds []uint64) string {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = strconv.FormatUint(b, 10)
	}
	raw := shardCursorPrefix + strings.Join(parts, ",")
	return base64.URLEncoding.EncodeToString([]byte(raw))
}

// DecodeShardCursor decodes a cursor produced by EncodeShardCursor. The
// bound vector must carry exactly one entry per shard; a cursor minted
// at a different shard count fails with ErrBadCursor (shard counts are
// fixed for the life of a data dir, so this only catches corruption or
// cross-deployment reuse).
func DecodeShardCursor(cursor string, shards int) ([]uint64, error) {
	if cursor == "" {
		return make([]uint64, shards), nil
	}
	raw, err := base64.URLEncoding.DecodeString(cursor)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	s := string(raw)
	if !strings.HasPrefix(s, shardCursorPrefix) {
		return nil, fmt.Errorf("%w: unknown version", ErrBadCursor)
	}
	parts := strings.Split(s[len(shardCursorPrefix):], ",")
	if len(parts) != shards {
		return nil, fmt.Errorf("%w: cursor for %d shards, deployment has %d", ErrBadCursor, len(parts), shards)
	}
	bounds := make([]uint64, len(parts))
	for i, p := range parts {
		b, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCursor, err)
		}
		bounds[i] = b
	}
	return bounds, nil
}
