package server

import (
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"hive/api"
	"hive/internal/metrics"
)

// Middleware wraps a handler. The server composes its stack with Chain;
// individual middlewares are exported-in-spirit (package-local) building
// blocks with no coupling to the Platform.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares so the first argument is the outermost.
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// ctxKey namespaces context values.
type ctxKey int

const ctxRequestID ctxKey = iota

// requestIDFrom returns the request ID assigned by the RequestID
// middleware ("" outside it).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// RequestID tags every request with an ID — propagated from the
// client's X-Request-ID when present, generated otherwise — echoed on
// the response and available to downstream handlers via the context.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			var buf [8]byte
			_, _ = rand.Read(buf[:])
			id = hex.EncodeToString(buf[:])
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxRequestID, id)))
	})
}

// statusWriter records the response status and size for logging and
// panic recovery.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// AccessLog writes one line per request: method, path, status, bytes,
// duration, request ID, end-to-end trace ID and the resolved shard
// (-1 when no shard applies — unsharded deployments, scatter reads).
func AccessLog(l *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			tr := metrics.TraceFrom(r.Context())
			trace := tr.ID()
			if trace == "" {
				trace = "-"
			}
			l.Printf("%s %s %d %dB %v rid=%s trace=%s shard=%d",
				r.Method, r.URL.RequestURI(), status, sw.bytes,
				time.Since(start).Round(time.Microsecond), requestIDFrom(r.Context()),
				trace, tr.Shard())
		})
	}
}

// Observe is the instrumentation middleware: it adopts (or mints) the
// request's X-Hive-Trace-Id, echoes it on the response, carries a
// mutable trace through the context for handlers to annotate (resolved
// shard, scatter stage timings), and on completion records the
// per-route request counter, the status class, the latency histogram
// and the finished trace. routeOf maps a request to its bounded-
// cardinality route label (the mux pattern — never the raw URL, which
// would mint a label per user ID).
func Observe(reg *metrics.Registry, rec *metrics.Recorder, routeOf func(*http.Request) string) Middleware {
	reqs := reg.CounterVec(metrics.HTTPRequestsTotal,
		"HTTP requests by route pattern, method and status class.",
		"route", "method", "class")
	lat := reg.HistogramVec(metrics.HTTPRequestSeconds,
		"HTTP request latency in seconds by route pattern.",
		nil, "route")
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(api.TraceHeader)
			if id == "" {
				id = metrics.NewTraceID()
			}
			w.Header().Set(api.TraceHeader, id)
			tr := metrics.NewTrace(id, r.Method)
			r = r.WithContext(metrics.ContextWithTrace(r.Context(), tr))
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			dur := time.Since(start)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			route := routeOf(r)
			if route == "" {
				route = "unmatched"
			}
			reqs.With(route, r.Method, statusClass(status)).Inc()
			lat.With(route).ObserveDuration(dur)
			rec.Record(tr.Finish(route, status))
		})
	}
}

// statusClass buckets an HTTP status into its class label ("2xx"...).
func statusClass(status int) string {
	switch status / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}

// Recover converts handler panics into a 500 error envelope (when no
// response has started) instead of tearing down the connection.
func Recover(l *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				v := recover()
				if v == nil || v == http.ErrAbortHandler {
					if v != nil {
						panic(v)
					}
					return
				}
				if l != nil {
					l.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				}
				if sw.status == 0 {
					writeError(sw, r, http.StatusInternalServerError, api.CodeInternal, "internal error")
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// Timeout bounds a request's handling time; on expiry the client gets a
// 503 with a timeout-coded envelope and the handler's late writes are
// discarded (http.TimeoutHandler semantics).
func Timeout(d time.Duration) Middleware {
	body, _ := json.Marshal(api.ErrorResponse{Error: &api.Error{
		Code:    api.CodeTimeout,
		Message: "request exceeded the server's time budget",
	}})
	return func(next http.Handler) http.Handler {
		return http.TimeoutHandler(next, d, string(body))
	}
}

// MaxInFlight rejects requests beyond n concurrent ones with 503 — the
// load-shedding backstop that keeps a burst from queueing unboundedly.
func MaxInFlight(n int) Middleware {
	sem := make(chan struct{}, n)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next.ServeHTTP(w, r)
			default:
				writeError(w, r, http.StatusServiceUnavailable, api.CodeOverloaded,
					"too many in-flight requests")
			}
		})
	}
}

// RateLimit enforces a global token-bucket request rate: qps sustained,
// burst instantaneous. Excess requests get 429.
func RateLimit(qps float64, burst int) Middleware {
	if burst < 1 {
		burst = 1
	}
	tb := &tokenBucket{tokens: float64(burst), max: float64(burst), rate: qps, last: time.Now()}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !tb.allow(time.Now()) {
				writeError(w, r, http.StatusTooManyRequests, api.CodeRateLimited, "request rate limit exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64
	last   time.Time
}

func (tb *tokenBucket) allow(now time.Time) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.max {
		tb.tokens = tb.max
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Gzip compresses responses for clients that accept it. The
// Content-Encoding header is committed lazily, on the response's own
// WriteHeader/Write: setting it eagerly would poison the shared header
// map for writers that bypass the gzip writer — an outer Recover
// answering a panic with a plain 500 envelope would be advertised as
// gzip and be unreadable. Bodyless statuses (204, 304) pass through
// uncompressed so conditional GETs stay empty.
func Gzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !acceptsGzip(r.Header.Get("Accept-Encoding")) {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipWriter{ResponseWriter: w}
		gw.Header().Add("Vary", "Accept-Encoding")
		defer gw.close()
		next.ServeHTTP(gw, r)
	})
}

// gzPool recycles gzip writers across responses. A fresh gzip.Writer
// allocates its whole deflate state (~hundreds of KB); paying that per
// response made the allocator, not the handler, the throughput ceiling
// under concurrent writes — pooling keeps compression off the write
// path's critical section.
var gzPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

type gzipWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	passthrough bool
	wroteHeader bool
}

func (g *gzipWriter) WriteHeader(code int) {
	if !g.wroteHeader {
		g.wroteHeader = true
		if code == http.StatusNoContent || code == http.StatusNotModified || code < http.StatusOK {
			g.passthrough = true
		} else {
			g.Header().Del("Content-Length")
			g.Header().Set("Content-Encoding", "gzip")
		}
	}
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipWriter) Write(b []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.passthrough {
		return g.ResponseWriter.Write(b)
	}
	if g.gz == nil {
		g.gz = gzPool.Get().(*gzip.Writer)
		g.gz.Reset(g.ResponseWriter)
	}
	return g.gz.Write(b)
}

func (g *gzipWriter) close() {
	if g.gz != nil {
		_ = g.gz.Close()
		gzPool.Put(g.gz)
		g.gz = nil
	}
}

// acceptsGzip parses Accept-Encoding far enough to honor an explicit
// refusal: "gzip;q=0" declares gzip unacceptable, which a bare
// substring test would read as consent.
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		name, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(name) != "gzip" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok && strings.TrimSpace(k) == "q" {
				if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// successorOverrides maps legacy paths whose v1 twin is not the plain
// /api -> /api/v1 rewrite.
var successorOverrides = map[string]string{
	"/api/refresh": "/api/v1/admin/refresh",
}

// Deprecated marks legacy unversioned routes: responses carry a
// Deprecation header and a successor-version link to the /api/v1 twin.
func Deprecated(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		successor := successorOverrides[r.URL.Path]
		if successor == "" {
			if rest, ok := strings.CutPrefix(r.URL.Path, "/api/"); ok {
				successor = "/api/v1/" + rest
			}
		}
		if successor != "" {
			w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		}
		next.ServeHTTP(w, r)
	})
}
