package core

import (
	"fmt"
	"sort"

	"hive/internal/community"
	"hive/internal/graph"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/textindex"
	"hive/internal/topk"
)

// Services completing Table 1: personal activity history search,
// relationship discovery between peers and *other resources*, ranked
// knowledge-base path explanations (R2DF), and community tracking.

// HistoryEntry is one matched activity record.
type HistoryEntry struct {
	Event social.Event
	// Score is the relevance of the event's object to the query (1 for
	// verb/object literal matches).
	Score float64
}

// SearchHistory searches a user's own activity history ("search and
// visualize personal, group, or community activity history based on
// current context"). The query matches event verbs, object IDs, and the
// text of object entities; an empty query returns the full history. When
// useContext is set, results are additionally ranked by similarity to
// the active workpad context.
func (e *Engine) SearchHistory(userID, query string, useContext bool, limit int) ([]HistoryEntry, error) {
	if !e.store.HasUser(userID) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	qv := textindex.TermFrequency(query)
	var ctx textindex.Vector
	if useContext {
		ctx = e.ContextVector(userID)
	}
	h := topk.New[HistoryEntry](limit, func(a, b HistoryEntry) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Event.Seq < b.Event.Seq
	})
	for _, ev := range e.store.EventsByActor(userID) {
		score := 0.0
		if query == "" {
			score = 1
		} else {
			if ev.Verb == query || ev.Object == query {
				score = 1
			} else if ev.Object != "" {
				text := e.entityText(e.itemKindOf(ev.Object), ev.Object)
				score = textindex.TermFrequency(text).Cosine(qv)
			}
		}
		if score <= 0 {
			continue
		}
		if useContext && ev.Object != "" {
			text := e.entityText(e.itemKindOf(ev.Object), ev.Object)
			score += textindex.TermFrequency(text).Cosine(ctx)
		}
		h.Push(HistoryEntry{Event: ev, Score: score})
	}
	return h.Sorted(), nil
}

// itemKindOf classifies an entity ID into a workpad item kind for text
// rendering.
func (e *Engine) itemKindOf(entity string) social.ItemKind {
	switch e.targetKind(entity) {
	case "paper":
		return social.ItemPaper
	case "presentation":
		return social.ItemPresentation
	case "question":
		return social.ItemQuestion
	case "session":
		return social.ItemSession
	case "user":
		return social.ItemUser
	}
	return social.ItemKind("")
}

// ResourceEvidence explains the relationship between a user and a
// resource ("relationship discovery and explanation among peers and
// other resources", Table 1).
type ResourceEvidence struct {
	Kind        EvidenceKind
	Strength    float64
	Description string
}

// Resource-relationship evidence kinds (beyond the user-user classes).
const (
	EvAuthored EvidenceKind = "authored"
	EvCited    EvidenceKind = "cited-by-user"
	EvBrowsed  EvidenceKind = "interacted"
	EvTopical  EvidenceKind = "topical-match"
)

// ExplainResource relates a user to a paper/presentation/session.
func (e *Engine) ExplainResource(userID, entity string) ([]ResourceEvidence, error) {
	if !e.store.HasUser(userID) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	var evs []ResourceEvidence
	add := func(kind EvidenceKind, s float64, desc string) {
		if s > 1 {
			s = 1
		}
		if s > 0 {
			evs = append(evs, ResourceEvidence{Kind: kind, Strength: s, Description: desc})
		}
	}
	// Authorship / ownership.
	for _, o := range e.ownersOf(entity) {
		if o == userID {
			add(EvAuthored, 1, "user authored/owns this resource")
			break
		}
	}
	// Citation from the user's papers to this paper (directly or
	// transitively through the citation graph).
	if _, err := e.store.Paper(entity); err == nil {
		for _, pid := range e.store.PapersOfAuthor(userID) {
			if ok, d := cites(e.citationNet, pid, entity, 3); ok {
				add(EvCited, 1/float64(d), fmt.Sprintf("user's paper %s cites it (distance %d)", pid, d))
				break
			}
		}
	}
	// Interaction history.
	n := 0
	for _, ev := range e.store.EventsByActor(userID) {
		if ev.Object == entity {
			n++
		}
	}
	if n > 0 {
		add(EvBrowsed, 0.3+0.2*float64(n), fmt.Sprintf("%d prior interaction(s)", n))
	}
	// Topical similarity to the user's current context.
	ctx := e.ContextVector(userID)
	text := e.entityText(e.itemKindOf(entity), entity)
	if sim := textindex.TermFrequency(text).Cosine(ctx); sim > 0.05 {
		add(EvTopical, sim, fmt.Sprintf("matches active context (%.2f)", sim))
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Strength != evs[j].Strength {
			return evs[i].Strength > evs[j].Strength
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs, nil
}

// cites reports whether paper a reaches paper b in the citation graph
// within maxHops, and the distance.
func cites(g *graph.Graph, a, b string, maxHops int) (bool, int) {
	na, nb := g.Lookup(a), g.Lookup(b)
	if na == graph.Invalid || nb == graph.Invalid {
		return false, 0
	}
	found, dist := false, 0
	g.BFS(na, func(id graph.NodeID, depth int) bool {
		if depth > maxHops {
			return false
		}
		if id == nb && depth > 0 {
			found, dist = true, depth
			return false
		}
		return true
	})
	return found, dist
}

// KnowledgePaths returns the top-k ranked paths between two entities in
// the weighted RDF knowledge base (R2DF [11]) — the literature-level
// explanations of Figure 2 ("the chair of his session is one of the
// authors whose paper he had cited").
func (e *Engine) KnowledgePaths(a, b string, k int) []rdf.RankedPath {
	return e.kb.RankedPaths(a, b, k, rdf.PathOptions{MaxLength: 4, Undirected: true})
}

// CommunityMatch describes how one of the engine's communities evolved
// relative to a previous engine snapshot.
type CommunityMatch struct {
	PrevIndex int
	NextIndex int // -1 when dissolved
	Jaccard   float64
}

// TrackCommunities matches this engine's communities against a previous
// snapshot's ("community discovery and *tracking*", Table 1) — e.g. the
// same conference series one year later.
func (e *Engine) TrackCommunities(prev *Engine) []CommunityMatch {
	keyOf := func(eng *Engine) func(graph.NodeID) string {
		return func(id graph.NodeID) string {
			n, err := eng.peerGraph.Node(id)
			if err != nil {
				return ""
			}
			return n.Key
		}
	}
	matches := community.Track(prev.communities, e.communities, keyOf(prev), keyOf(e))
	out := make([]CommunityMatch, len(matches))
	for i, m := range matches {
		out[i] = CommunityMatch{PrevIndex: m.PrevIndex, NextIndex: m.NextIndex, Jaccard: m.Jaccard}
	}
	return out
}
