package textindex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hive/internal/topk"
)

// TestSearchStatsScatterParity is the scatter-gather score-parity
// property: partition a random corpus across n disjoint Segmented
// views, gather + merge their CorpusStats, score each shard with
// SearchStats under the merged statistics, k-way merge the per-shard
// top-k — the result must be bit-identical (scores, order, tie-breaks)
// to one unsharded view searching the whole corpus. Half the docs land
// in overlays so the merged-on-read path is exercised on both sides.
func TestSearchStatsScatterParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vocab := []string{"graph", "partition", "social", "network", "stream",
		"index", "quorum", "shard", "journal", "latency", "cache", "replica"}
	randText := func() string {
		n := 3 + rng.Intn(20)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		return strings.Join(words, " ")
	}
	better := func(a, b Result) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.DocID < b.DocID
	}

	for trial := 0; trial < 40; trial++ {
		shards := 1 + rng.Intn(4)
		nDocs := 5 + rng.Intn(60)
		k := 1 + rng.Intn(12)

		type doc struct{ id, text string }
		docs := make([]doc, nDocs)
		for i := range docs {
			docs[i] = doc{id: fmt.Sprintf("doc-%03d", i), text: randText()}
		}

		// Unsharded reference: everything in one view, half via overlay.
		refIx, refOver := NewIndex(), map[string]string{}
		shardIx := make([]*Index, shards)
		shardOver := make([]map[string]string, shards)
		for i := range shardIx {
			shardIx[i] = NewIndex()
			shardOver[i] = map[string]string{}
		}
		for i, d := range docs {
			sh := rng.Intn(shards)
			if i%2 == 0 {
				refIx.Add(d.id, d.text)
				shardIx[sh].Add(d.id, d.text)
			} else {
				refOver[d.id] = d.text
				shardOver[sh][d.id] = d.text
			}
		}
		ref := NewSegmented(refIx.Freeze()).WithDocs(refOver)
		views := make([]*Segmented, shards)
		for i := range views {
			views[i] = NewSegmented(shardIx[i].Freeze()).WithDocs(shardOver[i])
		}

		query := randText()
		want := ref.Search(query, k)

		terms := Terms(query)
		parts := make([]CorpusStats, shards)
		for i, v := range views {
			parts[i] = v.Stats(terms)
		}
		g := MergeStats(parts)
		lists := make([][]Result, shards)
		for i, v := range views {
			lists[i] = v.SearchStats(query, k, g)
		}
		got := topk.MergeTopK(lists, k, better)

		if len(got) != len(want) {
			t.Fatalf("trial %d (shards=%d): got %d results, want %d\ngot:  %v\nwant: %v",
				trial, shards, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (shards=%d) result %d: got %+v, want %+v",
					trial, shards, i, got[i], want[i])
			}
		}
	}
}

// TestMergeStatsExact checks the integer aggregation directly.
func TestMergeStatsExact(t *testing.T) {
	g := MergeStats([]CorpusStats{
		{Docs: 2, TotalLen: 10, DF: map[string]int{"graph": 1, "shard": 2}},
		{Docs: 3, TotalLen: 7, DF: map[string]int{"graph": 3}},
	})
	if g.Docs != 5 || g.TotalLen != 17 || g.DF["graph"] != 4 || g.DF["shard"] != 2 {
		t.Fatalf("bad merge: %+v", g)
	}
}
