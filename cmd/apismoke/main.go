// Command apismoke is the end-to-end contract check behind
// `make api-smoke`: it starts a real hived process, then drives the
// entire /api/v1 surface through the client SDK — typed mutations,
// batch ingest, every knowledge read, cursor pagination, conditional
// GET revalidation, typed errors and the legacy-alias deprecation
// headers — and exits non-zero on the first contract violation.
//
// With -repl (the `make repl-smoke` mode) it instead boots a two-node
// elected cluster (-cluster, shared file lease; the leader node starts
// first so the election is deterministic), then checks the replication
// contract end to end: the follower bootstraps from the leader's
// snapshot, a publish on the leader becomes searchable on the follower
// in under a second, follower writes answer with the not_leader
// envelope naming the leader, and follower healthz reports the
// follower role with zero lag once converged.
//
// With -failover (the `make failover-smoke` mode) it boots a
// *three-node elected cluster* (-cluster, shared file lease), puts the
// cluster-aware SDK under write load, SIGKILLs the leader mid-load and
// checks the failover contract: a follower promotes at a higher epoch,
// the SDK's next write lands without manual re-targeting, the
// resurrected old leader's stale-epoch state is provably rejected
// (stale_epoch on its feed, zombie writes absent everywhere), and the
// old leader rejoins as a follower converging onto the new term.
//
// With -quorum (the `make quorum-smoke` mode) it boots a three-node
// elected cluster with -quorum 1 and checks the synchronous durability
// contract: acknowledged writes advance the cluster commit index,
// killing every follower degrades the next write to a typed
// quorum_unavailable 503 inside the ack timeout (never a hang),
// restarting a follower restores acks without touching the leader, and
// across a leader kill the promoted survivor keeps every acknowledged
// write with a commit index that never regresses.
//
// With -sharded (the `make shard-smoke` mode) it boots one hived
// partitioned into four shards over a durable data dir and checks the
// sharding contract: the shard map on healthz and cluster, owner-routed
// writes readable through cross-shard scatter-gather search, feed
// pagination over per-shard vector cursors, the wrong_shard envelope on
// a mis-declared X-Hive-Shard, the manifest refusing a changed shard
// count, and a same-count restart recovering every shard's journal.
//
// With -metrics (the `make metrics-smoke` mode) it checks the
// observability contract: a four-shard node's GET /metrics exposition
// advances its request counters, scatter-gather fan-out histogram and
// per-shard state gauges as the SDK drives a routed write, a
// cross-shard search and a mis-declared-shard 409, with the SDK-minted
// X-Hive-Trace-Id landing in GET /api/v1/debug/traces carrying its
// per-shard fan-out stages; then a two-node elected cluster proves one
// trace ID survives a not_leader failover, recorded on the rejecting
// follower and on the leader that finally served the write.
//
// Usage:
//
//	apismoke [-hived bin/hived] [-addr 127.0.0.1:18080] [-seed 24] [-repl | -failover | -quorum | -sharded | -metrics]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"hive/api"
	"hive/client"
)

func main() {
	hived := flag.String("hived", "bin/hived", "path to the hived binary")
	addr := flag.String("addr", "127.0.0.1:18080", "address to run hived on")
	seed := flag.Int("seed", 24, "synthetic workload size")
	repl := flag.Bool("repl", false, "run the two-node elected replication scenario instead")
	failover := flag.Bool("failover", false, "run the three-node election failover scenario instead")
	quorum := flag.Bool("quorum", false, "run the three-node quorum-write durability scenario instead")
	sharded := flag.Bool("sharded", false, "run the four-shard partitioned-write scenario instead")
	metricsMode := flag.Bool("metrics", false, "run the observability (metrics + tracing) scenario instead")
	flag.Parse()

	name, fn := "api-smoke", run
	if *repl {
		name, fn = "repl-smoke", runRepl
	}
	if *failover {
		name, fn = "failover-smoke", runFailover
	}
	if *quorum {
		name, fn = "quorum-smoke", runQuorum
	}
	if *sharded {
		name, fn = "shard-smoke", runSharded
	}
	if *metricsMode {
		name, fn = "metrics-smoke", runMetrics
	}
	if err := fn(*hived, *addr, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "%s: FAIL: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: OK\n", name)
}

// startHived launches one hived with extra flags and returns a cleanup.
func startHived(hived string, args ...string) (func(), error) {
	cmd := exec.Command(hived, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start hived: %w", err)
	}
	return func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}, nil
}

func run(hived, addr string, seed int) error {
	stop, err := startHived(hived,
		"-addr", addr,
		"-seed", fmt.Sprint(seed),
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := "http://" + addr
	c := client.New(base, client.WithETagCache())

	// Wait for the server to come up with a built snapshot.
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}

	steps := []struct {
		name string
		fn   func(context.Context, *client.Client, string) error
	}{
		{"typed mutations", stepMutations},
		{"batch ingest", stepBatch},
		{"entity reads + feeds", stepReads},
		{"knowledge services", stepKnowledge},
		{"cursor pagination", stepPagination},
		{"conditional GETs (ETag/304)", stepConditional},
		{"typed errors", stepErrors},
		{"legacy alias deprecation", stepLegacy},
	}
	for _, s := range steps {
		if err := s.fn(ctx, c, base); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("api-smoke: %-30s ok\n", s.name)
	}
	return nil
}

func waitHealthy(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		h, err := c.Healthz(ctx)
		if err == nil && h.Status == "ok" && h.Snapshot {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("hived did not become healthy in 30s")
}

func stepMutations(ctx context.Context, c *client.Client, _ string) error {
	if err := c.CreateUser(ctx, api.User{ID: "smoke", Name: "Smoke", Interests: []string{"graphs"}}); err != nil {
		return err
	}
	if err := c.CreateConference(ctx, api.Conference{ID: "smokeconf", Name: "SmokeConf"}); err != nil {
		return err
	}
	if err := c.CreateSession(ctx, api.Session{ID: "smoke-s1", ConferenceID: "smokeconf",
		Title: "Smoke session", Hashtag: "#smoke"}); err != nil {
		return err
	}
	if err := c.CreatePaper(ctx, api.Paper{ID: "smoke-p1", Title: "Smoke testing at scale",
		Abstract: "We smoke-test APIs.", Authors: []string{"smoke"},
		ConferenceID: "smokeconf", SessionID: "smoke-s1"}); err != nil {
		return err
	}
	if err := c.CreatePresentation(ctx, api.Presentation{ID: "smoke-pr1", PaperID: "smoke-p1",
		Owner: "smoke", Text: "Smoke slides with enough text for snippets."}); err != nil {
		return err
	}
	if err := c.CheckIn(ctx, "smoke-s1", "smoke"); err != nil {
		return err
	}
	if err := c.Ask(ctx, api.Question{ID: "smoke-q1", Author: "smoke", Target: "smoke-p1", Text: "Works?"}); err != nil {
		return err
	}
	if err := c.Answer(ctx, api.Answer{ID: "smoke-a1", QuestionID: "smoke-q1", Author: "smoke", Text: "Yes."}); err != nil {
		return err
	}
	if err := c.Comment(ctx, api.Comment{ID: "smoke-c1", Author: "smoke", Target: "smoke-p1", Text: "Nice."}); err != nil {
		return err
	}
	if err := c.CreateWorkpad(ctx, api.Workpad{ID: "smoke-w1", Owner: "smoke", Name: "smoke ctx"}); err != nil {
		return err
	}
	if err := c.AddWorkpadItem(ctx, "smoke-w1", api.WorkpadItem{Kind: "paper", Ref: "smoke-p1"}); err != nil {
		return err
	}
	if err := c.ActivateWorkpad(ctx, "smoke", "smoke-w1"); err != nil {
		return err
	}
	return c.Refresh(ctx, true)
}

func stepBatch(ctx context.Context, c *client.Client, _ string) error {
	var ents []api.BatchEntity
	for i := 0; i < 5; i++ {
		ent, err := api.NewBatchEntity(api.KindUser, api.User{
			ID: fmt.Sprintf("smoke-b%d", i), Name: "Batcher", Interests: []string{"graphs"}})
		if err != nil {
			return err
		}
		ents = append(ents, ent)
	}
	conn, err := api.NewBatchEntity(api.KindConnection, api.ConnectRequest{A: "smoke-b0", B: "smoke-b1"})
	if err != nil {
		return err
	}
	ents = append(ents, conn)
	br, err := c.Batch(ctx, ents)
	if err != nil {
		return err
	}
	if br.Applied != len(ents) || br.Failed != 0 {
		return fmt.Errorf("batch response %+v", br)
	}
	return nil
}

func stepReads(ctx context.Context, c *client.Client, _ string) error {
	u, err := c.GetUser(ctx, "smoke")
	if err != nil || u.Name != "Smoke" {
		return fmt.Errorf("GetUser = %+v, %v", u, err)
	}
	att, err := c.Attendees(ctx, "smoke-s1", "", 0)
	if err != nil || len(att.Items) != 1 {
		return fmt.Errorf("attendees = %+v, %v", att, err)
	}
	wp, err := c.ActiveWorkpad(ctx, "smoke")
	if err != nil || wp.ID != "smoke-w1" {
		return fmt.Errorf("workpad = %+v, %v", wp, err)
	}
	evs, err := c.TagEvents(ctx, "#smoke", "", 0)
	if err != nil || len(evs.Items) == 0 {
		return fmt.Errorf("tag events = %+v, %v", evs, err)
	}
	if _, err := c.Feed(ctx, "smoke", "", 10); err != nil {
		return err
	}
	return nil
}

func stepKnowledge(ctx context.Context, c *client.Client, _ string) error {
	if _, err := c.Search(ctx, "smoke testing", "", "", 5); err != nil {
		return err
	}
	if _, err := c.Search(ctx, "smoke testing", "smoke", "", 5); err != nil {
		return err
	}
	if _, err := c.PeerRecommendations(ctx, "smoke", "", 5); err != nil {
		return err
	}
	if _, err := c.ResourceRecommendations(ctx, "smoke", true, "", 5); err != nil {
		return err
	}
	if _, err := c.SuggestSessions(ctx, "smoke", "smokeconf", "", 3); err != nil {
		return err
	}
	snips, err := c.Preview(ctx, "smoke", "pres/smoke-pr1", 2)
	if err != nil || len(snips) == 0 {
		return fmt.Errorf("preview = %v, %v", snips, err)
	}
	if _, err := c.Digest(ctx, "smoke", 4); err != nil {
		return err
	}
	comms, err := c.Communities(ctx, "", 0)
	if err != nil || len(comms.Items) == 0 {
		return fmt.Errorf("communities = %+v, %v", comms, err)
	}
	if _, err := c.History(ctx, "smoke", "checkin", false, "", 0); err != nil {
		return err
	}
	if _, err := c.ResourceRelationship(ctx, "smoke", "smoke-p1"); err != nil {
		return err
	}
	if _, err := c.KnowledgePaths(ctx, "user:smoke", "session:smoke-s1", 2); err != nil {
		return err
	}
	ex, err := c.Relationship(ctx, "smoke-b0", "smoke-b1")
	if err != nil || len(ex.Evidences) == 0 {
		return fmt.Errorf("relationship = %+v, %v", ex, err)
	}
	return nil
}

func stepPagination(ctx context.Context, c *client.Client, _ string) error {
	pg, err := c.Users(ctx, "", 5)
	if err != nil {
		return err
	}
	if len(pg.Items) != 5 || pg.NextCursor == "" {
		return fmt.Errorf("first page = %d items, cursor %q", len(pg.Items), pg.NextCursor)
	}
	all, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
		return c.Users(ctx, cur, 7)
	})
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, id := range all {
		if seen[id] {
			return fmt.Errorf("duplicate id %q across pages", id)
		}
		seen[id] = true
	}
	if !seen["smoke"] || !seen["smoke-b4"] {
		return fmt.Errorf("page walk missed seeded users (%d total)", len(all))
	}
	return nil
}

func stepConditional(ctx context.Context, c *client.Client, _ string) error {
	// Settle the snapshot, then read the same knowledge URL twice: the
	// second must revalidate from the ETag cache.
	if err := c.Refresh(ctx, true); err != nil {
		return err
	}
	if _, err := c.Search(ctx, "smoke conditional", "", "", 5); err != nil {
		return err
	}
	_, before := c.Stats()
	if _, err := c.Search(ctx, "smoke conditional", "", "", 5); err != nil {
		return err
	}
	if _, after := c.Stats(); after != before+1 {
		return fmt.Errorf("expected one 304 revalidation, cache hits %d -> %d", before, after)
	}
	return nil
}

func stepErrors(ctx context.Context, c *client.Client, _ string) error {
	_, err := c.GetUser(ctx, "ghost-user")
	if !api.IsCode(err, api.CodeNotFound) {
		return fmt.Errorf("missing user err = %v, want code %s", err, api.CodeNotFound)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusNotFound {
		return fmt.Errorf("err = %v, want HTTP 404", err)
	}
	if err := c.CreateUser(ctx, api.User{}); !api.IsCode(err, api.CodeInvalidArgument) {
		return fmt.Errorf("invalid user err = %v", err)
	}
	return nil
}

// --- Replication scenario (`make repl-smoke`) ----------------------------------

// runRepl boots a two-node elected cluster — the leader node first, so
// the election is deterministic — seeds the leader over the batch API
// and drives the replication contract end to end.
func runRepl(hived, addr string, seed int) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("bad -addr port: %w", err)
	}
	leaderAddr := addr
	followerAddr := net.JoinHostPort(host, fmt.Sprint(p+1))
	leaderBase := "http://" + leaderAddr
	followerBase := "http://" + followerAddr

	dirs := make([]string, 2)
	for i := range dirs {
		if dirs[i], err = os.MkdirTemp("", fmt.Sprintf("hive-repl-n%d-", i)); err != nil {
			return err
		}
		defer os.RemoveAll(dirs[i])
	}
	leaseDir, err := os.MkdirTemp("", "hive-repl-lease-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(leaseDir)
	clusterFlag := func(self, peer string) string {
		return fmt.Sprintf("self=%s,peers=%s,lease=%s,ttl=1s", self, peer, leaseDir)
	}

	stopLeader, err := startHived(hived,
		"-addr", leaderAddr,
		"-data", dirs[0],
		"-cluster", clusterFlag(leaderBase, followerBase),
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stopLeader()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	lc := client.New(leaderBase)
	if err := waitRole(ctx, lc, api.RoleLeader, 30*time.Second); err != nil {
		return fmt.Errorf("leader: %w", err)
	}
	// Cluster nodes ignore -seed (state replicates from the elected
	// leader), so the corpus arrives the way production data would:
	// one bulk ingest through the batch API.
	if err := seedOverAPI(ctx, lc, seed); err != nil {
		return fmt.Errorf("seed leader: %w", err)
	}

	// The second node finds the lease taken and joins as a follower,
	// bootstrapping from the leader's snapshot.
	stopFollower, err := startHived(hived,
		"-addr", followerAddr,
		"-data", dirs[1],
		"-cluster", clusterFlag(followerBase, leaderBase),
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stopFollower()
	fc := client.New(followerBase)
	if err := waitRole(ctx, fc, api.RoleFollower, 30*time.Second); err != nil {
		return fmt.Errorf("follower: %w", err)
	}

	steps := []struct {
		name string
		fn   func() error
	}{
		{"roles reported in healthz", func() error { return stepReplRoles(ctx, lc, fc, leaderBase) }},
		{"bootstrap converged reads", func() error { return stepReplBootstrap(ctx, lc, fc) }},
		{"leader write -> follower read", func() error { return stepReplPropagation(ctx, lc, fc) }},
		{"follower rejects writes", func() error { return stepReplNotLeader(ctx, fc, leaderBase) }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("repl-smoke: %-30s ok\n", s.name)
	}
	return nil
}

// waitRole polls healthz until the node serves a snapshot and reports
// the wanted replication role, or times out.
func waitRole(ctx context.Context, c *client.Client, role string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		h, err := c.Healthz(ctx)
		if err == nil && h.Status == "ok" && h.Snapshot && h.Replication.Role == role {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("node did not reach role %q in %v", role, timeout)
}

// seedOverAPI loads a small synthetic corpus (seed users, seed/2 papers
// authored by them) through one POST /api/v1/batch ingest.
func seedOverAPI(ctx context.Context, c *client.Client, seed int) error {
	ents := make([]api.BatchEntity, 0, seed+seed/2)
	for i := 0; i < seed; i++ {
		ent, err := api.NewBatchEntity(api.KindUser, api.User{
			ID:        fmt.Sprintf("seed-u%03d", i),
			Name:      fmt.Sprintf("Seed User %d", i),
			Interests: []string{"replication", "graphs"},
		})
		if err != nil {
			return err
		}
		ents = append(ents, ent)
	}
	for i := 0; i < seed/2; i++ {
		ent, err := api.NewBatchEntity(api.KindPaper, api.Paper{
			ID:       fmt.Sprintf("seed-p%03d", i),
			Title:    fmt.Sprintf("Seed paper %d", i),
			Abstract: "Synthetic corpus for the replication smoke.",
			Authors:  []string{fmt.Sprintf("seed-u%03d", i)},
		})
		if err != nil {
			return err
		}
		ents = append(ents, ent)
	}
	_, err := c.Batch(ctx, ents)
	return err
}

func stepReplRoles(ctx context.Context, lc, fc *client.Client, leaderBase string) error {
	lh, err := lc.Healthz(ctx)
	if err != nil {
		return err
	}
	if lh.Replication.Role != api.RoleLeader || lh.Replication.JournalTail == 0 {
		return fmt.Errorf("leader healthz replication = %+v", lh.Replication)
	}
	fh, err := fc.Healthz(ctx)
	if err != nil {
		return err
	}
	if fh.Replication.Role != api.RoleFollower || fh.Replication.LeaderURL != leaderBase {
		return fmt.Errorf("follower healthz replication = %+v", fh.Replication)
	}
	return nil
}

// stepReplBootstrap: the seeded corpus must already be readable on the
// follower, identically to the leader.
func stepReplBootstrap(ctx context.Context, lc, fc *client.Client) error {
	lu, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
		return lc.Users(ctx, cur, 0)
	})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		fu, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
			return fc.Users(ctx, cur, 0)
		})
		if err != nil {
			return err
		}
		if len(fu) == len(lu) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower has %d users, leader %d", len(fu), len(lu))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// stepReplPropagation: a publish on the leader becomes searchable on
// the follower in under a second.
func stepReplPropagation(ctx context.Context, lc, fc *client.Client) error {
	if err := lc.CreateUser(ctx, api.User{ID: "repl-author", Name: "Repl", Interests: []string{"replication"}}); err != nil {
		return err
	}
	if err := lc.CreatePaper(ctx, api.Paper{
		ID: "repl-p1", Title: "Replicated publish propagation",
		Abstract: "Searchable on the follower within one second.",
		Authors:  []string{"repl-author"},
	}); err != nil {
		return err
	}
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		pg, err := fc.Search(ctx, "replicated publish propagation", "", "", 5)
		if err != nil {
			return err
		}
		if len(pg.Items) > 0 {
			d := time.Since(start)
			fmt.Printf("repl-smoke: propagation latency %v\n", d.Round(time.Millisecond))
			if d > time.Second {
				return fmt.Errorf("propagation took %v, want < 1s", d)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leader publish never became searchable on follower")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func stepReplNotLeader(ctx context.Context, fc *client.Client, leaderBase string) error {
	err := fc.CreateUser(ctx, api.User{ID: "rejected", Name: "R"})
	if !api.IsCode(err, api.CodeNotLeader) {
		return fmt.Errorf("follower write err = %v, want code %s", err, api.CodeNotLeader)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusConflict {
		return fmt.Errorf("follower write err = %v, want HTTP 409", err)
	}
	if got := ae.Details["leader"]; got != leaderBase {
		return fmt.Errorf("details.leader = %v, want %q", got, leaderBase)
	}
	// Batch writes hit the store directly and are guarded separately.
	ent, err := api.NewBatchEntity(api.KindUser, api.User{ID: "rejected2", Name: "R"})
	if err != nil {
		return err
	}
	if _, err := fc.Batch(ctx, []api.BatchEntity{ent}); !api.IsCode(err, api.CodeNotLeader) {
		return fmt.Errorf("follower batch err = %v, want code %s", err, api.CodeNotLeader)
	}
	return nil
}

// --- Failover scenario (`make failover-smoke`) ----------------------------------

// runFailover boots a three-node elected cluster and drives the
// failover contract: promotion at a higher epoch after a SIGKILL,
// SDK writes surviving the transition unassisted, and epoch fencing of
// the resurrected old leader.
func runFailover(hived, addr string, seed int) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	basePort, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("bad -addr port: %w", err)
	}

	const nodes = 3
	addrs := make([]string, nodes)
	urls := make([]string, nodes)
	dirs := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		addrs[i] = net.JoinHostPort(host, fmt.Sprint(basePort+i))
		urls[i] = "http://" + addrs[i]
		if dirs[i], err = os.MkdirTemp("", fmt.Sprintf("hive-failover-n%d-", i)); err != nil {
			return err
		}
		defer os.RemoveAll(dirs[i])
	}
	leaseDir, err := os.MkdirTemp("", "hive-failover-lease-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(leaseDir)

	clusterFlag := func(i int) string {
		peers := ""
		for j := 0; j < nodes; j++ {
			if j == i {
				continue
			}
			if peers != "" {
				peers += ";"
			}
			peers += urls[j]
		}
		return fmt.Sprintf("self=%s,peers=%s,lease=%s,ttl=1s", urls[i], peers, leaseDir)
	}
	startNode := func(i int) (func(), error) {
		return startHived(hived,
			"-addr", addrs[i],
			"-data", dirs[i],
			"-cluster", clusterFlag(i),
			"-compact-interval", "1s",
			"-quiet",
		)
	}

	stops := make([]func(), nodes)
	for i := 0; i < nodes; i++ {
		if stops[i], err = startNode(i); err != nil {
			return err
		}
		defer func(i int) {
			if stops[i] != nil {
				stops[i]()
			}
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	perNode := make([]*client.Client, nodes)
	for i := range perNode {
		perNode[i] = client.New(urls[i])
	}

	// An elected leader must emerge and every node must agree on it.
	leaderIdx, epoch1, err := waitClusterLeader(ctx, perNode, urls, 30*time.Second)
	if err != nil {
		return err
	}
	if epoch1 == 0 {
		return fmt.Errorf("leader elected at epoch 0")
	}
	fmt.Printf("failover-smoke: leader %s at epoch %d\n", urls[leaderIdx], epoch1)

	// The cluster-aware SDK deliberately targets a follower: the first
	// write must arrive at the leader via the not_leader hint alone.
	followerIdx := (leaderIdx + 1) % nodes
	c := client.New(urls[followerIdx], client.WithCluster(urls...))
	for i := 0; i < 10; i++ {
		if err := c.CreateUser(ctx, api.User{
			ID: fmt.Sprintf("chk%02d", i), Name: "Checkpoint", Interests: []string{"failover"}}); err != nil {
			return fmt.Errorf("checkpoint write %d: %w", i, err)
		}
	}
	if c.Redirects() == 0 {
		return fmt.Errorf("SDK was never redirected despite targeting follower %s", urls[followerIdx])
	}
	fmt.Printf("failover-smoke: %-30s ok\n", "SDK auto-follows leader hint")

	// Let the checkpoint replicate before the crash: replication is
	// asynchronous, so only converged writes are guaranteed to survive a
	// leader loss (the durability contract is the journal, and the dead
	// leader's journal leaves with it).
	lh, err := perNode[leaderIdx].Healthz(ctx)
	if err != nil {
		return fmt.Errorf("leader healthz: %w", err)
	}
	tail := lh.Replication.JournalTail
	convergeDeadline := time.Now().Add(30 * time.Second)
	for i := 0; i < nodes; i++ {
		if i == leaderIdx {
			continue
		}
		for {
			fh, err := perNode[i].Healthz(ctx)
			if err == nil && fh.Replication.AppliedSeq >= tail {
				break
			}
			if time.Now().After(convergeDeadline) {
				return fmt.Errorf("follower %s never caught up to checkpoint (tail %d): %+v, %v",
					urls[i], tail, fh.Replication, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// SIGKILL the leader mid-write-load, then keep writing through the
	// same client handle: the next accepted write measures the full
	// detect -> promote -> redirect pipeline.
	killAt := time.Now()
	stops[leaderIdx]()
	stops[leaderIdx] = nil

	accepted := -1
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; accepted < 0; i++ {
		id := fmt.Sprintf("post%02d", i)
		if err := c.CreateUser(ctx, api.User{ID: id, Name: "Post", Interests: []string{"failover"}}); err == nil {
			accepted = i
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no write accepted within 30s of killing the leader")
		}
		time.Sleep(100 * time.Millisecond)
	}
	failoverTime := time.Since(killAt)
	fmt.Printf("failover-smoke: first accepted write %v after leader kill\n", failoverTime.Round(time.Millisecond))

	// A survivor must now lead at a strictly higher epoch.
	survivors := make([]*client.Client, 0, nodes-1)
	survivorURLs := make([]string, 0, nodes-1)
	for i := 0; i < nodes; i++ {
		if i != leaderIdx {
			survivors = append(survivors, perNode[i])
			survivorURLs = append(survivorURLs, urls[i])
		}
	}
	newIdx, epoch2, err := waitClusterLeader(ctx, survivors, survivorURLs, 30*time.Second)
	if err != nil {
		return err
	}
	if epoch2 <= epoch1 {
		return fmt.Errorf("promotion did not advance the epoch: %d -> %d", epoch1, epoch2)
	}
	newLeader := survivors[newIdx]
	fmt.Printf("failover-smoke: promoted %s at epoch %d\n", survivorURLs[newIdx], epoch2)

	// Fill the post-promotion history to a round count.
	for i := accepted + 1; i < 10; i++ {
		if err := c.CreateUser(ctx, api.User{
			ID: fmt.Sprintf("post%02d", i), Name: "Post", Interests: []string{"failover"}}); err != nil {
			return fmt.Errorf("post-promotion write %d: %w", i, err)
		}
	}

	// Endpoint fencing: a poll asserting a term beyond the node's own
	// answers stale_epoch — the signal a deposed leader gives a fenced
	// follower.
	if _, err := newLeader.ReplicationEvents(ctx, 0, 1, 0, epoch2+1, nil); !api.IsCode(err, api.CodeStaleEpoch) {
		return fmt.Errorf("events poll asserting epoch %d = %v, want code %s", epoch2+1, err, api.CodeStaleEpoch)
	}
	fmt.Printf("failover-smoke: %-30s ok\n", "stale_epoch on ahead-of-term poll")

	// Resurrect the old leader *outside* the cluster (plain -data, no
	// election): it recovers its journal — stuck at the old epoch — and
	// being standalone it accepts writes. That is exactly the deposed
	// leader whose batches must never propagate.
	oldIdx := leaderIdx
	stopZombie, err := startHived(hived,
		"-addr", addrs[oldIdx],
		"-data", dirs[oldIdx],
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	zc := perNode[oldIdx]
	if err := waitHealthy(ctx, zc); err != nil {
		stopZombie()
		return fmt.Errorf("resurrected old leader: %w", err)
	}
	if err := zc.CreateUser(ctx, api.User{ID: "zombie", Name: "Zombie"}); err != nil {
		stopZombie()
		return fmt.Errorf("zombie write on deposed leader: %w", err)
	}
	// Polling it at the cluster's term is refused wholesale: stale_epoch,
	// nothing served, nothing to apply.
	if _, err := zc.ReplicationEvents(ctx, 0, 16, 0, epoch2, nil); !api.IsCode(err, api.CodeStaleEpoch) {
		stopZombie()
		return fmt.Errorf("deposed leader poll at epoch %d = %v, want code %s", epoch2, err, api.CodeStaleEpoch)
	}
	stopZombie()
	fmt.Printf("failover-smoke: %-30s ok\n", "deposed leader feed fenced")

	// Rejoin the old node properly: under the elected cluster it comes
	// back as a follower, re-bootstraps onto the epoch-2 world, and the
	// zombie write is gone — on it and everywhere else.
	if stops[oldIdx], err = startNode(oldIdx); err != nil {
		return err
	}
	wantUsers := make([]string, 0, 20)
	for i := 0; i < 10; i++ {
		wantUsers = append(wantUsers, fmt.Sprintf("chk%02d", i), fmt.Sprintf("post%02d", i))
	}
	verify := func(nc *client.Client, who string) error {
		for _, id := range wantUsers {
			if _, err := nc.GetUser(ctx, id); err != nil {
				return fmt.Errorf("%s missing %s: %w", who, id, err)
			}
		}
		if _, err := nc.GetUser(ctx, "zombie"); !api.IsCode(err, api.CodeNotFound) {
			return fmt.Errorf("%s: zombie user = %v, want %s", who, err, api.CodeNotFound)
		}
		return nil
	}
	rejoinDeadline := time.Now().Add(60 * time.Second)
	for {
		err := verify(zc, "rejoined node")
		if err == nil {
			break
		}
		if time.Now().After(rejoinDeadline) {
			return fmt.Errorf("rejoined node never converged: %w", err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	for i, nc := range survivors {
		if err := verify(nc, survivorURLs[i]); err != nil {
			return err
		}
	}
	fmt.Printf("failover-smoke: %-30s ok\n", "rejoin converges, zombie absent")
	return nil
}

// runQuorum exercises the synchronous durability mode end to end on
// real hived processes: a three-node cluster with -quorum 1 accepts
// writes only once a follower confirms them, degrades to a typed
// quorum_unavailable 503 inside the ack timeout when every follower is
// gone, recovers as soon as one returns, and carries the cluster
// commit index forward — never backward — across a leader kill.
func runQuorum(hived, addr string, seed int) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	basePort, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("bad -addr port: %w", err)
	}

	const nodes = 3
	const ackTimeout = 2 * time.Second
	addrs := make([]string, nodes)
	urls := make([]string, nodes)
	dirs := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		addrs[i] = net.JoinHostPort(host, fmt.Sprint(basePort+i))
		urls[i] = "http://" + addrs[i]
		if dirs[i], err = os.MkdirTemp("", fmt.Sprintf("hive-quorum-n%d-", i)); err != nil {
			return err
		}
		defer os.RemoveAll(dirs[i])
	}
	leaseDir, err := os.MkdirTemp("", "hive-quorum-lease-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(leaseDir)

	clusterFlag := func(i int) string {
		peers := ""
		for j := 0; j < nodes; j++ {
			if j == i {
				continue
			}
			if peers != "" {
				peers += ";"
			}
			peers += urls[j]
		}
		return fmt.Sprintf("self=%s,peers=%s,lease=%s,ttl=1s", urls[i], peers, leaseDir)
	}
	startNode := func(i int) (func(), error) {
		return startHived(hived,
			"-addr", addrs[i],
			"-data", dirs[i],
			"-cluster", clusterFlag(i),
			"-quorum", "1",
			"-ack-timeout", ackTimeout.String(),
			"-compact-interval", "1s",
			"-quiet",
		)
	}

	stops := make([]func(), nodes)
	for i := 0; i < nodes; i++ {
		if stops[i], err = startNode(i); err != nil {
			return err
		}
		defer func(i int) {
			if stops[i] != nil {
				stops[i]()
			}
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	perNode := make([]*client.Client, nodes)
	for i := range perNode {
		perNode[i] = client.New(urls[i])
	}

	leaderIdx, epoch1, err := waitClusterLeader(ctx, perNode, urls, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("quorum-smoke: leader %s at epoch %d, k=1\n", urls[leaderIdx], epoch1)

	// Quorum-acknowledged writes succeed while a follower is polling, and
	// the cluster commit index covers everything accepted.
	c := client.New(urls[leaderIdx], client.WithCluster(urls...))
	for i := 0; i < 8; i++ {
		if err := c.CreateUser(ctx, api.User{
			ID: fmt.Sprintf("dur%02d", i), Name: "Durable", Interests: []string{"quorum"}}); err != nil {
			return fmt.Errorf("quorum write %d: %w", i, err)
		}
	}
	lh, err := perNode[leaderIdx].Healthz(ctx)
	if err != nil {
		return fmt.Errorf("leader healthz: %w", err)
	}
	if lh.Replication.QuorumWrites != 1 {
		return fmt.Errorf("leader quorum_writes = %d, want 1", lh.Replication.QuorumWrites)
	}
	if lh.Replication.CommitIndex < lh.Replication.JournalTail {
		return fmt.Errorf("commit index %d below journal tail %d after acknowledged writes",
			lh.Replication.CommitIndex, lh.Replication.JournalTail)
	}
	if len(lh.Replication.FollowerAcks) == 0 {
		return fmt.Errorf("leader healthz reports no follower acks")
	}
	fmt.Printf("quorum-smoke: %-34s ok\n", "k=1 writes acknowledged, commit index covers tail")

	// Kill every follower: the next write cannot reach a quorum, so the
	// leader must degrade with the typed quorum_unavailable answer inside
	// the ack timeout instead of hanging or succeeding.
	for i := 0; i < nodes; i++ {
		if i != leaderIdx {
			stops[i]()
			stops[i] = nil
		}
	}
	lc := perNode[leaderIdx]
	degradeDeadline := time.Now().Add(30 * time.Second)
	var degradeErr error
	for {
		start := time.Now()
		degradeErr = lc.CreateUser(ctx, api.User{ID: "unproven", Name: "Unproven"})
		elapsed := time.Since(start)
		if degradeErr != nil {
			if !api.IsCode(degradeErr, api.CodeQuorumUnavailable) {
				return fmt.Errorf("degraded write error = %v, want code %s", degradeErr, api.CodeQuorumUnavailable)
			}
			if elapsed > ackTimeout+3*time.Second {
				return fmt.Errorf("degraded write took %v, want bounded near the %v ack timeout", elapsed, ackTimeout)
			}
			break
		}
		// A write may still slip through while a follower's final poll is
		// in flight; retry until the ack sources are really gone.
		if time.Now().After(degradeDeadline) {
			return fmt.Errorf("writes kept succeeding with every follower dead")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("quorum-smoke: %-34s ok\n", "typed quorum_unavailable, bounded wait")

	// Restart the followers: the first confirming poll restores the ack
	// flow and writes succeed again without restarting the leader.
	for i := 0; i < nodes; i++ {
		if i != leaderIdx {
			if stops[i], err = startNode(i); err != nil {
				return err
			}
		}
	}
	recoverDeadline := time.Now().Add(30 * time.Second)
	for {
		if err = lc.CreateUser(ctx, api.User{ID: "recovered", Name: "Recovered"}); err == nil {
			break
		}
		if time.Now().After(recoverDeadline) {
			return fmt.Errorf("writes never recovered after follower restart: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Printf("quorum-smoke: %-34s ok\n", "follower restart restores acks")

	// Snapshot the followers' commit indices, then kill the leader: the
	// promoted survivor must carry the watermark forward, never backward —
	// the commit index is a durability promise already given out.
	preKill := make(map[int]uint64)
	snapDeadline := time.Now().Add(30 * time.Second)
	for i := 0; i < nodes; i++ {
		if i == leaderIdx {
			continue
		}
		for {
			fh, err := perNode[i].Healthz(ctx)
			if err == nil && fh.Replication.CommitIndex > 0 {
				preKill[i] = fh.Replication.CommitIndex
				break
			}
			if time.Now().After(snapDeadline) {
				return fmt.Errorf("follower %s never published a commit index: %+v, %v", urls[i], fh, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	stops[leaderIdx]()
	stops[leaderIdx] = nil

	survivors := make([]*client.Client, 0, nodes-1)
	survivorURLs := make([]string, 0, nodes-1)
	survivorIdx := make([]int, 0, nodes-1)
	for i := 0; i < nodes; i++ {
		if i != leaderIdx {
			survivors = append(survivors, perNode[i])
			survivorURLs = append(survivorURLs, urls[i])
			survivorIdx = append(survivorIdx, i)
		}
	}
	newIdx, epoch2, err := waitClusterLeader(ctx, survivors, survivorURLs, 30*time.Second)
	if err != nil {
		return err
	}
	if epoch2 <= epoch1 {
		return fmt.Errorf("promotion did not advance the epoch: %d -> %d", epoch1, epoch2)
	}
	nh, err := survivors[newIdx].Healthz(ctx)
	if err != nil {
		return fmt.Errorf("new leader healthz: %w", err)
	}
	if want := preKill[survivorIdx[newIdx]]; nh.Replication.CommitIndex < want {
		return fmt.Errorf("commit index regressed across leader kill: %d -> %d",
			want, nh.Replication.CommitIndex)
	}
	// Every acknowledged write must be on the promoted leader: that is
	// what the quorum bought.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("dur%02d", i)
		if _, err := survivors[newIdx].GetUser(ctx, id); err != nil {
			return fmt.Errorf("acknowledged write %s lost after leader kill: %w", id, err)
		}
	}
	if _, err := survivors[newIdx].GetUser(ctx, "recovered"); err != nil {
		return fmt.Errorf("acknowledged write recovered lost after leader kill: %w", err)
	}
	fmt.Printf("quorum-smoke: promoted %s at epoch %d, commit index %d (was %d)\n",
		survivorURLs[newIdx], epoch2, nh.Replication.CommitIndex, preKill[survivorIdx[newIdx]])
	fmt.Printf("quorum-smoke: %-34s ok\n", "commit index monotone across leader kill")
	return nil
}

// waitClusterLeader polls the nodes' cluster endpoints until one
// reports itself leader, returning its index and epoch.
func waitClusterLeader(ctx context.Context, cs []*client.Client, urls []string, timeout time.Duration) (int, uint64, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		for i, c := range cs {
			st, err := c.ClusterStatus(ctx)
			if err != nil {
				continue
			}
			if st.Role == api.RoleLeader && st.Epoch > 0 {
				return i, st.Epoch, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return 0, 0, fmt.Errorf("no leader elected within %v (urls %v)", timeout, urls)
}

func stepLegacy(ctx context.Context, _ *client.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy healthz = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		return fmt.Errorf("legacy route missing Deprecation header")
	}
	return nil
}

// --- Sharded scenario (`make shard-smoke`) --------------------------------------

// runSharded boots one hived partitioned into four shards over a
// durable data dir and drives the sharding contract end to end: the
// shard map on healthz and cluster, owner-routed writes that stay
// readable through cross-shard scatter-gather search, feed pagination
// across per-shard cursors, the wrong_shard error envelope on a
// mis-declared X-Hive-Shard, and the manifest pin — reopening the data
// dir at a different shard count must refuse to boot, while the same
// count recovers every shard from its own journal.
func runSharded(hived, addr string, seed int) error {
	dir, err := os.MkdirTemp("", "hive-shard-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const shards = 4
	stop, err := startHived(hived,
		"-addr", addr,
		"-shards", fmt.Sprint(shards),
		"-data", dir,
		"-seed", fmt.Sprint(seed),
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := "http://" + addr
	c := client.New(base)
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}

	authors := shardAuthors(shards)
	steps := []struct {
		name string
		fn   func() error
	}{
		{"shard map on healthz + cluster", func() error { return shardStepMap(ctx, c, shards) }},
		{"routed writes, scatter-gather search", func() error { return shardStepWrites(ctx, c, authors) }},
		{"cross-shard feed pagination", func() error { return shardStepFeed(ctx, c, authors) }},
		{"wrong_shard contract", func() error { return shardStepWrongShard(ctx, c, base, shards) }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("shard-smoke: %-36s ok\n", s.name)
	}

	// The shard count is fixed for the life of a data dir: reopening at
	// a different count must refuse to boot.
	stop()
	refuseCtx, refuseCancel := context.WithTimeout(ctx, 15*time.Second)
	defer refuseCancel()
	refuse := exec.CommandContext(refuseCtx, hived,
		"-addr", addr, "-shards", "3", "-data", dir, "-quiet")
	refuse.Stdout = os.Stdout
	refuse.Stderr = os.Stderr
	err = refuse.Run()
	if refuseCtx.Err() != nil {
		return fmt.Errorf("hived did not refuse a changed shard count within 15s")
	}
	if err == nil {
		return fmt.Errorf("hived accepted -shards 3 over a 4-shard data dir")
	}
	fmt.Printf("shard-smoke: %-36s ok\n", "manifest pins the shard count")

	// Same count reboots cleanly, every shard recovering from its own
	// journal: the routed writes from before the restart must still be
	// there.
	stop2, err := startHived(hived,
		"-addr", addr, "-shards", fmt.Sprint(shards), "-data", dir, "-quiet")
	if err != nil {
		return err
	}
	defer stop2()
	c2 := client.New(base)
	if err := waitHealthy(ctx, c2); err != nil {
		return err
	}
	u, err := c2.GetUser(ctx, authors[0])
	if err != nil || u.ID != authors[0] {
		return fmt.Errorf("restart recovery: GetUser(%s) = %+v, %v", authors[0], u, err)
	}
	res, err := c2.Search(ctx, "quasiconformal sharding", "", "", 10)
	if err != nil || len(res.Items) < len(authors) {
		return fmt.Errorf("restart recovery: search = %d items, %v", len(res.Items), err)
	}
	fmt.Printf("shard-smoke: %-36s ok\n", "restart recovers all shards")
	return nil
}

// shardAuthors returns one user ID per shard (probing candidate IDs
// through the wire-contract hash), so the smoke provably exercises
// every shard.
func shardAuthors(shards int) []string {
	authors := make([]string, shards)
	for i, found := 0, 0; found < shards && i < 100000; i++ {
		id := fmt.Sprintf("shard-author-%d", i)
		if s := api.ShardOf(id, shards); authors[s] == "" {
			authors[s] = id
			found++
		}
	}
	return authors
}

func shardStepMap(ctx context.Context, c *client.Client, shards int) error {
	h, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	if h.ShardCount != shards || len(h.Shards) != shards {
		return fmt.Errorf("healthz shard map = count %d, %d shards", h.ShardCount, len(h.Shards))
	}
	cs, err := c.ClusterStatus(ctx)
	if err != nil {
		return err
	}
	if cs.ShardCount != shards || len(cs.Shards) != shards {
		return fmt.Errorf("cluster shard map = count %d, %d shards", cs.ShardCount, len(cs.Shards))
	}
	for i, s := range cs.Shards {
		if s.ID != i || s.Role != api.RoleLeader {
			return fmt.Errorf("shard %d reports id %d role %q", i, s.ID, s.Role)
		}
	}
	if got := c.ShardCount(); got != shards {
		return fmt.Errorf("client adopted shard count %d, want %d", got, shards)
	}
	return nil
}

func shardStepWrites(ctx context.Context, c *client.Client, authors []string) error {
	for i, id := range authors {
		if err := c.CreateUser(ctx, api.User{ID: id, Name: "Sharder", Interests: []string{"sharding"}}); err != nil {
			return err
		}
		if err := c.CreatePaper(ctx, api.Paper{
			ID:       fmt.Sprintf("shard-p%d", i),
			Title:    fmt.Sprintf("Quasiconformal sharding volume %d", i),
			Abstract: "Per-owner shard leaders with parallel delta pipelines.",
			Authors:  []string{id},
		}); err != nil {
			return err
		}
	}
	if err := c.Refresh(ctx, true); err != nil {
		return err
	}
	// Scatter-gather: one query must surface the papers that live on
	// four different shards, in one globally-scored ranking.
	res, err := c.Search(ctx, "quasiconformal sharding", "", "", 10)
	if err != nil {
		return err
	}
	got := map[string]bool{}
	for _, r := range res.Items {
		got[r.DocID] = true
	}
	for i := range authors {
		if doc := fmt.Sprintf("paper/shard-p%d", i); !got[doc] {
			return fmt.Errorf("search missed %s (results %v)", doc, res.Items)
		}
	}
	return nil
}

func shardStepFeed(ctx context.Context, c *client.Client, authors []string) error {
	const reader = "shard-reader"
	if err := c.CreateUser(ctx, api.User{ID: reader, Name: "Reader"}); err != nil {
		return err
	}
	for _, id := range authors {
		if err := c.Follow(ctx, reader, id); err != nil {
			return err
		}
	}
	// Three feed events per author, written through the routed path.
	// Each question targets a different author's paper, so the events
	// land on the *paper's* shard (questions colocate with their
	// target) — the feed gather must find an actor's events on shards
	// other than the actor's own.
	for i, id := range authors {
		for j := 0; j < 3; j++ {
			if err := c.Ask(ctx, api.Question{
				ID:     fmt.Sprintf("shard-q%d-%d", i, j),
				Author: id,
				Target: fmt.Sprintf("shard-p%d", (i+j)%len(authors)),
				Text:   "Cross-shard feed event?",
			}); err != nil {
				return err
			}
		}
	}
	// Page through with a small limit: the vector cursor must visit all
	// 12 events exactly once, newest-first within each page.
	seen := map[string]bool{}
	actors := map[string]bool{}
	cursor := ""
	for page := 0; ; page++ {
		if page > 20 {
			return fmt.Errorf("feed pagination did not terminate")
		}
		pg, err := c.Feed(ctx, reader, cursor, 5)
		if err != nil {
			return err
		}
		for _, ev := range pg.Items {
			key := ev.Actor + "|" + ev.Verb + "|" + ev.Object + "|" + fmt.Sprint(ev.At)
			if seen[key] {
				return fmt.Errorf("event %s repeated across pages", key)
			}
			seen[key] = true
			actors[ev.Actor] = true
		}
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}
	if len(seen) < 3*len(authors) {
		return fmt.Errorf("feed saw %d events, want >= %d", len(seen), 3*len(authors))
	}
	for _, id := range authors {
		if !actors[id] {
			return fmt.Errorf("feed missed events from %s (their shard was not gathered)", id)
		}
	}
	return nil
}

// shardStepWrongShard checks the wrong_shard contract over the raw
// wire: declaring the wrong shard on a write answers 409 with the
// typed envelope naming the owner's real shard, and the SDK's owner
// hashing (which learned the count from the cluster endpoint) lands
// the same write cleanly.
func shardStepWrongShard(ctx context.Context, c *client.Client, base string, shards int) error {
	owner := "shard-author-0"
	wrong := (api.ShardOf(owner, shards) + 1) % shards
	body := fmt.Sprintf(`{"id":"shard-wrong","title":"Misrouted","authors":[%q]}`, owner)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/v1/papers", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ShardHeader, strconv.Itoa(wrong))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("mis-declared shard answered %d, want 409", resp.StatusCode)
	}
	var envelope struct {
		Error *api.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
		return fmt.Errorf("decode wrong_shard envelope: %v", err)
	}
	if envelope.Error.Code != api.CodeWrongShard {
		return fmt.Errorf("error code = %q, want %q", envelope.Error.Code, api.CodeWrongShard)
	}
	expected, _ := envelope.Error.Details["expected_shard"].(float64)
	count, _ := envelope.Error.Details["shard_count"].(float64)
	if int(expected) != api.ShardOf(owner, shards) || int(count) != shards {
		return fmt.Errorf("details = %v, want expected_shard %d shard_count %d",
			envelope.Error.Details, api.ShardOf(owner, shards), shards)
	}
	// The SDK computes the right shard from the adopted map and the
	// same write goes through first try.
	if err := c.CreatePaper(ctx, api.Paper{
		ID: "shard-right", Title: "Routed", Authors: []string{owner}}); err != nil {
		return err
	}
	return nil
}

// --- Metrics scenario (`make metrics-smoke`) ------------------------------------

// runMetrics checks the observability contract end to end: phase one
// drives a four-shard node and reads its own traffic back out of
// GET /metrics and GET /api/v1/debug/traces; phase two proves a trace
// ID survives a not_leader redirect across a two-node elected cluster.
func runMetrics(hived, addr string, seed int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := metricsShardedPhase(ctx, hived, addr, seed); err != nil {
		return fmt.Errorf("sharded phase: %w", err)
	}
	if err := metricsFailoverPhase(ctx, hived, addr); err != nil {
		return fmt.Errorf("failover phase: %w", err)
	}
	return nil
}

// scrapeMetrics fetches one Prometheus text exposition.
func scrapeMetrics(ctx context.Context, base string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return "", fmt.Errorf("GET /metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// metricValue finds the sample line `<sample> <value>` in an
// exposition. sample must be the full series name including any label
// set, e.g. `hive_http_requests_total{route="/api/v1/papers",...}`.
func metricValue(body, sample string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// findTrace pulls a node's debug/traces ring and returns the recorded
// entry for one trace ID.
func findTrace(ctx context.Context, base, tid string) (api.TraceInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/debug/traces?n=256", nil)
	if err != nil {
		return api.TraceInfo{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return api.TraceInfo{}, err
	}
	defer resp.Body.Close()
	var report api.TraceReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		return api.TraceInfo{}, fmt.Errorf("decode debug/traces: %w", err)
	}
	for _, tr := range report.Traces {
		if tr.TraceID == tid {
			return tr, nil
		}
	}
	return api.TraceInfo{}, fmt.Errorf("trace %s not in %s/api/v1/debug/traces (%d retained)", tid, base, len(report.Traces))
}

// metricsShardedPhase boots a four-shard node and asserts the
// exposition moves with the traffic: per-shard gauges at baseline, the
// POST counter across routed writes, the fan-out histogram and the
// SDK's trace (with per-shard stages) across a scatter-gather search,
// and the 4xx counter plus envelope trace_id on a wrong_shard 409.
func metricsShardedPhase(ctx context.Context, hived, addr string, seed int) error {
	dir, err := os.MkdirTemp("", "hive-metrics-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const shards = 4
	stop, err := startHived(hived,
		"-addr", addr,
		"-shards", fmt.Sprint(shards),
		"-data", dir,
		"-seed", fmt.Sprint(seed),
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stop()

	base := "http://" + addr
	c := client.New(base)
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}

	before, err := scrapeMetrics(ctx, base)
	if err != nil {
		return err
	}
	for s := 0; s < shards; s++ {
		for _, g := range []string{"hive_shard_docs", "hive_pending_events", "hive_overlay_docs", "hive_commit_index"} {
			if _, ok := metricValue(before, fmt.Sprintf(`%s{shard="%d"}`, g, s)); !ok {
				return fmt.Errorf("baseline exposition missing %s for shard %d", g, s)
			}
		}
	}
	fmt.Printf("metrics-smoke: %-38s ok\n", "per-shard gauges exposed")

	// Routed writes: one author and paper per shard; the POST counter
	// must advance by at least what we sent.
	const paperPost = `hive_http_requests_total{route="/api/v1/papers",method="POST",class="2xx"}`
	papersBefore, _ := metricValue(before, paperPost)
	authors := shardAuthors(shards)
	for i, id := range authors {
		if err := c.CreateUser(ctx, api.User{ID: id, Name: "Observer"}); err != nil {
			return err
		}
		if err := c.CreatePaper(ctx, api.Paper{
			ID:       fmt.Sprintf("metrics-p%d", i),
			Title:    fmt.Sprintf("Observable sharding volume %d", i),
			Abstract: "Counters advance with the routed write path.",
			Authors:  []string{id},
		}); err != nil {
			return err
		}
	}
	if err := c.Refresh(ctx, true); err != nil {
		return err
	}
	mid, err := scrapeMetrics(ctx, base)
	if err != nil {
		return err
	}
	papersAfter, ok := metricValue(mid, paperPost)
	if !ok || papersAfter < papersBefore+float64(len(authors)) {
		return fmt.Errorf("%s = %v after %d routed writes (was %v)", paperPost, papersAfter, len(authors), papersBefore)
	}
	fmt.Printf("metrics-smoke: %-38s ok\n", "routed-write counters advance")

	// Scatter-gather search: the fan-out histogram and the search route
	// counter advance, and the trace the SDK minted lands in the debug
	// ring carrying its per-shard fan-out stages.
	const fanout = `hive_scatter_fanout_seconds_count{op="search"}`
	const searchGet = `hive_http_requests_total{route="/api/v1/search",method="GET",class="2xx"}`
	fanBefore, _ := metricValue(mid, fanout)
	searchBefore, _ := metricValue(mid, searchGet)
	if _, err := c.Search(ctx, "observable sharding", "", "", 10); err != nil {
		return err
	}
	tid := c.LastTraceID()
	if len(tid) != 16 {
		return fmt.Errorf("client minted trace ID %q, want 16 hex chars", tid)
	}
	after, err := scrapeMetrics(ctx, base)
	if err != nil {
		return err
	}
	if fanAfter, ok := metricValue(after, fanout); !ok || fanAfter < fanBefore+1 {
		return fmt.Errorf("%s = %v after a scatter search (was %v)", fanout, fanAfter, fanBefore)
	}
	if searchAfter, ok := metricValue(after, searchGet); !ok || searchAfter < searchBefore+1 {
		return fmt.Errorf("%s = %v after a search (was %v)", searchGet, searchAfter, searchBefore)
	}
	info, err := findTrace(ctx, base, tid)
	if err != nil {
		return err
	}
	if info.Route != "/api/v1/search" {
		return fmt.Errorf("trace %s recorded route %q, want /api/v1/search", tid, info.Route)
	}
	hasStage := false
	for _, st := range info.Stages {
		if strings.HasPrefix(st.Name, "search_shard") {
			hasStage = true
		}
	}
	if !hasStage {
		return fmt.Errorf("trace %s has no search_shard* fan-out stages: %+v", tid, info.Stages)
	}
	fmt.Printf("metrics-smoke: %-38s ok\n", "scatter trace + fan-out histogram")

	// A mis-declared shard: the 409 echoes our trace ID in the envelope
	// and counts into the 4xx class of the same route.
	const paper4xx = `hive_http_requests_total{route="/api/v1/papers",method="POST",class="4xx"}`
	wrongBefore, _ := metricValue(after, paper4xx)
	const wrongTID = "feedfacecafebeef"
	owner := authors[0]
	wrong := (api.ShardOf(owner, shards) + 1) % shards
	body := fmt.Sprintf(`{"id":"metrics-wrong","title":"Misrouted","authors":[%q]}`, owner)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/v1/papers", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ShardHeader, strconv.Itoa(wrong))
	req.Header.Set(api.TraceHeader, wrongTID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var env api.ErrorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || decodeErr != nil || env.Error == nil {
		return fmt.Errorf("mis-declared shard: status %d, decode err %v", resp.StatusCode, decodeErr)
	}
	if env.TraceID != wrongTID {
		return fmt.Errorf("wrong_shard envelope trace_id = %q, want %q", env.TraceID, wrongTID)
	}
	final, err := scrapeMetrics(ctx, base)
	if err != nil {
		return err
	}
	if wrongAfter, ok := metricValue(final, paper4xx); !ok || wrongAfter < wrongBefore+1 {
		return fmt.Errorf("%s = %v after a wrong_shard 409 (was %v)", paper4xx, wrongAfter, wrongBefore)
	}
	fmt.Printf("metrics-smoke: %-38s ok\n", "wrong_shard 409 traced + counted")
	return nil
}

// metricsFailoverPhase boots a two-node elected cluster and proves the
// trace the SDK minted for one write survives the not_leader redirect:
// the same ID is recorded with a 409 on the rejecting follower and
// with the success status on the leader that served the replay. It
// also spot-checks the election and replication instruments.
func metricsFailoverPhase(ctx context.Context, hived, addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("bad -addr port: %w", err)
	}
	leaderAddr := net.JoinHostPort(host, fmt.Sprint(p+1))
	followerAddr := net.JoinHostPort(host, fmt.Sprint(p+2))
	leaderBase := "http://" + leaderAddr
	followerBase := "http://" + followerAddr

	dirs := make([]string, 2)
	for i := range dirs {
		if dirs[i], err = os.MkdirTemp("", fmt.Sprintf("hive-metrics-n%d-", i)); err != nil {
			return err
		}
		defer os.RemoveAll(dirs[i])
	}
	leaseDir, err := os.MkdirTemp("", "hive-metrics-lease-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(leaseDir)
	clusterFlag := func(self, peer string) string {
		return fmt.Sprintf("self=%s,peers=%s,lease=%s,ttl=1s", self, peer, leaseDir)
	}

	stopLeader, err := startHived(hived,
		"-addr", leaderAddr,
		"-data", dirs[0],
		"-cluster", clusterFlag(leaderBase, followerBase),
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stopLeader()
	lc := client.New(leaderBase)
	if err := waitRole(ctx, lc, api.RoleLeader, 30*time.Second); err != nil {
		return fmt.Errorf("leader: %w", err)
	}

	stopFollower, err := startHived(hived,
		"-addr", followerAddr,
		"-data", dirs[1],
		"-cluster", clusterFlag(followerBase, leaderBase),
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stopFollower()
	fc := client.New(followerBase)
	if err := waitRole(ctx, fc, api.RoleFollower, 30*time.Second); err != nil {
		return fmt.Errorf("follower: %w", err)
	}

	// A cluster-aware client aimed at the follower: the write bounces
	// with not_leader, and the SDK replays the *same* trace ID against
	// the hinted leader.
	cc := client.New(followerBase, client.WithCluster(leaderBase))
	if err := cc.CreateUser(ctx, api.User{ID: "traced-across-failover", Name: "T"}); err != nil {
		return fmt.Errorf("redirected write: %w", err)
	}
	if cc.Redirects() < 1 {
		return fmt.Errorf("write landed without a redirect (follower answered a write?)")
	}
	tid := cc.LastTraceID()
	if len(tid) != 16 {
		return fmt.Errorf("redirected write trace ID = %q, want 16 hex chars", tid)
	}
	fInfo, err := findTrace(ctx, followerBase, tid)
	if err != nil {
		return fmt.Errorf("trace on rejecting follower: %w", err)
	}
	if fInfo.Status != http.StatusConflict {
		return fmt.Errorf("follower recorded status %d for %s, want 409", fInfo.Status, tid)
	}
	lInfo, err := findTrace(ctx, leaderBase, tid)
	if err != nil {
		return fmt.Errorf("trace on serving leader: %w", err)
	}
	if lInfo.Status < 200 || lInfo.Status >= 300 {
		return fmt.Errorf("leader recorded status %d for %s, want 2xx", lInfo.Status, tid)
	}
	fmt.Printf("metrics-smoke: %-38s ok\n", "trace survives not_leader failover")

	// The election and replication layers report through the same
	// registry: the leader minted a term (lease claim survived the
	// settle window), and the follower's poll loop both times its
	// rounds and exposes its lag.
	lm, err := scrapeMetrics(ctx, leaderBase)
	if err != nil {
		return err
	}
	if v, ok := metricValue(lm, "hive_election_lease_acquisitions_total"); !ok || v < 1 {
		return fmt.Errorf("leader hive_election_lease_acquisitions_total = %v, want >= 1", v)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		fm, err := scrapeMetrics(ctx, followerBase)
		if err != nil {
			return err
		}
		if _, ok := metricValue(fm, "hive_replication_lag_events"); !ok {
			return fmt.Errorf("follower exposition missing hive_replication_lag_events")
		}
		if v, ok := metricValue(fm, "hive_replication_poll_seconds_count"); ok && v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower hive_replication_poll_seconds_count never reached 1")
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Printf("metrics-smoke: %-38s ok\n", "election + replication instruments")
	return nil
}
