package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGet(t *testing.T) {
	s := openTemp(t)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v" {
		t.Fatalf("Get = %q", v)
	}
}

func TestGetMissing(t *testing.T) {
	s := openTemp(t)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := openTemp(t)
	_ = s.Put("k", []byte("a"))
	_ = s.Put("k", []byte("b"))
	v, _ := s.Get("k")
	if string(v) != "b" {
		t.Fatalf("Get = %q, want b", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := openTemp(t)
	_ = s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Fatal("key still present after delete")
	}
	// Deleting an absent key is a no-op.
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := openTemp(t)
	_ = s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatalf("internal value mutated: %q", v2)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := openTemp(t)
	buf := []byte("abc")
	_ = s.Put("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", v)
	}
}

func TestScanPrefixOrder(t *testing.T) {
	s := openTemp(t)
	for _, k := range []string{"user/3", "user/1", "paper/9", "user/2"} {
		_ = s.Put(k, []byte(k))
	}
	var got []string
	s.Scan("user/", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"user/1", "user/2", "user/3"}
	if len(got) != len(want) {
		t.Fatalf("Scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := openTemp(t)
	for i := 0; i < 5; i++ {
		_ = s.Put(fmt.Sprintf("k%d", i), nil)
	}
	count := 0
	s.Scan("k", func(string, []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d, want 2", count)
	}
}

func TestKeys(t *testing.T) {
	s := openTemp(t)
	_ = s.Put("a/1", nil)
	_ = s.Put("b/1", nil)
	keys := s.Keys("a/")
	if len(keys) != 1 || keys[0] != "a/1" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Put("a", []byte("1"))
	_ = s.Put("b", []byte("2"))
	_ = s.Delete("a")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Has("a") {
		t.Fatal("deleted key resurrected")
	}
	v, err := s2.Get("b")
	if err != nil || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Put("good", []byte("1"))
	_ = s.Close()

	// Simulate a crash mid-append: write garbage half-record at the tail.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if !s2.Has("good") {
		t.Fatal("good record lost")
	}
	// And the store must accept new writes that survive another cycle.
	_ = s2.Put("after", []byte("x"))
	_ = s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Has("after") || !s3.Has("good") {
		t.Fatal("data lost after torn-tail recovery")
	}
}

func TestRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	_ = s.Put("a", []byte("1"))
	_ = s.Put("b", []byte("2"))
	_ = s.Close()

	// Flip a byte inside the second record's payload.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has("a") {
		t.Fatal("first record should survive")
	}
	if s2.Has("b") {
		t.Fatal("corrupt record should be dropped")
	}
}

func TestCompactPreservesDataAndShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 100; i++ {
		_ = s.Put("k", []byte(fmt.Sprintf("v%d", i))) // 100 versions of one key
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("wal size after compact = %d, want 0", st.Size())
	}
	_ = s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("k")
	if err != nil || string(v) != "v99" {
		t.Fatalf("Get after compact = %q, %v", v, err)
	}
}

func TestWritesAfterCompactSurvive(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	_ = s.Put("old", []byte("1"))
	_ = s.Compact()
	_ = s.Put("new", []byte("2"))
	_ = s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has("old") || !s2.Has("new") {
		t.Fatal("data lost across compact+reopen")
	}
}

func TestMaybeCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	defer s.Close()
	for i := 0; i < 10; i++ {
		_ = s.Put(fmt.Sprintf("k%d", i), nil)
	}
	if err := s.MaybeCompact(100); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(filepath.Join(dir, "wal.log"))
	if st.Size() == 0 {
		t.Fatal("compacted below threshold")
	}
	if err := s.MaybeCompact(5); err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(filepath.Join(dir, "wal.log"))
	if st.Size() != 0 {
		t.Fatal("did not compact above threshold")
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	s := openTemp(t)
	_ = s.Put("del", []byte("x"))
	b := NewBatch().Put("a", []byte("1")).Put("b", []byte("2")).Delete("del")
	if b.Len() != 3 {
		t.Fatalf("Batch.Len = %d", b.Len())
	}
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if !s.Has("a") || !s.Has("b") || s.Has("del") {
		t.Fatal("batch not applied fully")
	}
}

func TestBatchPutThenDeleteSameKey(t *testing.T) {
	b := NewBatch().Put("k", []byte("v")).Delete("k")
	if len(b.puts) != 0 || len(b.deletes) != 1 {
		t.Fatalf("delete should supersede put: %v %v", b.puts, b.deletes)
	}
	b2 := NewBatch().Delete("k").Put("k", []byte("v"))
	if len(b2.puts) != 1 || len(b2.deletes) != 0 {
		t.Fatalf("put should supersede delete: %v %v", b2.puts, b2.deletes)
	}
}

func TestBatchDurable(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	_ = s.Apply(NewBatch().Put("a", []byte("1")))
	_ = s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has("a") {
		t.Fatal("batch write lost")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := Open(t.TempDir())
	_ = s.Close()
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put err = %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get err = %v", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete err = %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close err = %v", err)
	}
}

func TestInMemoryMode(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_ = s.Put("k", []byte("v"))
	if !s.Has("k") {
		t.Fatal("in-memory put failed")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("in-memory compact should be a no-op: %v", err)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	_ = s.Put("empty", nil)
	_ = s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	v, err := s2.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("v = %q", v)
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := string([]byte{0, 1, 2, 255})
	val := []byte{255, 0, 128, 7}
	_ = s.Put(key, val)
	_ = s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	v, err := s2.Get(key)
	if err != nil || !bytes.Equal(v, val) {
		t.Fatalf("binary round-trip failed: %v %v", v, err)
	}
}

// Property: after an arbitrary sequence of puts and deletes followed by a
// reopen, the store contents equal a plain map subjected to the same ops.
func TestPropWALMatchesModel(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		dir, err := os.MkdirTemp("", "kvprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(dir)
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%16)
			if o.Del {
				if s.Delete(k) != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", o.Val)
				if s.Put(k, []byte(v)) != nil {
					return false
				}
				model[k] = v
			}
		}
		if s.Close() != nil {
			return false
		}
		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := s2.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	s := openTemp(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = s.Put(fmt.Sprintf("k%d", i%10), []byte(fmt.Sprintf("v%d", i)))
		}
	}()
	for i := 0; i < 500; i++ {
		s.Scan("k", func(string, []byte) bool { return true })
		_, _ = s.Get("k1")
		s.Has("k2")
	}
	<-done
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	_ = s.Put("k", []byte("v"))
	_ = s.Compact()
	_ = s.Close()

	// Truncate the snapshot mid-record; the loader tolerates a torn tail
	// (treats it as the end), so the store must still open and keep the
	// prefix that validated.
	snap := filepath.Join(dir, "snapshot.db")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn snapshot: %v", err)
	}
	defer s2.Close()
	if s2.Has("k") {
		t.Fatal("torn record should have been dropped")
	}
}

func TestScanEmptyPrefixListsAll(t *testing.T) {
	s := openTemp(t)
	for _, k := range []string{"a", "b", "c"} {
		_ = s.Put(k, nil)
	}
	if got := s.Keys(""); len(got) != 3 {
		t.Fatalf("Keys(\"\") = %v", got)
	}
}

func TestCompactEmptyStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	defer s.Close()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}
