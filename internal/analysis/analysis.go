// Package analysis is a self-contained, dependency-free skeleton of
// golang.org/x/tools/go/analysis, just big enough to host hivelint's
// invariant checkers. The repo builds offline with a bare module cache,
// so the framework runs on the standard library alone: packages are
// discovered with `go list -json`, parsed with go/parser, and
// type-checked with go/types using the source importer.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. Findings can be suppressed at the site with a narrow,
// greppable comment:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare allow is itself reported — so every suppression
// documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run inspects a package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run applies the analyzer to pkg and returns its findings with
// //lint:allow suppressions already applied. Malformed allow comments
// (missing analyzer name or reason) surface as diagnostics themselves.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return pkg.suppress(diags), nil
}

// --- Type helpers shared by the checkers -------------------------------------

// Deref unwraps pointers and aliases down to the underlying named type,
// or nil if t is not (a pointer to) a named type.
func Deref(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// PkgPathHasSuffix reports whether pkg's import path is suffix itself
// or ends in "/"+suffix. Matching by suffix lets the checkers treat a
// testdata stub (e.g. hookchecktest/internal/social) exactly like the
// real package.
func PkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsNamed reports whether t is (a pointer to) the named type name
// declared in a package whose path ends in pkgSuffix. An empty
// pkgSuffix matches any package.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	n := Deref(t)
	if n == nil || n.Obj() == nil || n.Obj().Name() != name {
		return false
	}
	if pkgSuffix == "" {
		return n.Obj().Pkg() != nil
	}
	return PkgPathHasSuffix(n.Obj().Pkg(), pkgSuffix)
}

// ReceiverNamed resolves a method receiver expression (ident or
// *ident) to its named type, or nil.
func ReceiverNamed(info *types.Info, recv *ast.FieldList) *types.Named {
	if recv == nil || len(recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[recv.List[0].Type]
	if !ok {
		return nil
	}
	return Deref(tv.Type)
}

// CalleeName returns the bare name a call resolves to syntactically:
// "f" for f(...) and "m" for x.m(...). Empty for indirect calls.
func CalleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
