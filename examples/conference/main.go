// Conference walks through the full Zach scenario of paper §1.1: upload
// slides before the event, follow researchers, check in to sessions, get
// live session suggestions from followed users' check-ins, exchange
// questions and answers under the session hashtag, manage workpads, and
// finally review the trip with the advisor via the update digest.
package main

import (
	"fmt"
	"log"

	"hive"
)

func main() {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	seedWorld(p)

	fmt.Println("== Before the conference ==")
	// Zach uploads his slides.
	must(p.UploadPresentation(hive.Presentation{
		ID: "pres-zach", PaperID: "p-zach", Owner: "zach", Title: "Diffusion slides",
		Text: "Influence diffusion in social media graphs. Equation three defines the diffusion kernel. Communities shape spreading.",
	}))
	// He follows researchers he met last year.
	must(p.Follow("zach", "ann"))
	must(p.Follow("zach", "carl"))
	// Hive proposes researchers to connect with, each with likely sessions.
	recs, err := p.RecommendPeers("zach", 3)
	must(err)
	for _, r := range recs {
		fmt.Printf("suggested peer: %-8s (sessions: %v)\n", r.UserID, r.LikelySessions)
	}

	fmt.Println("\n== At the conference ==")
	// Followed researchers check into the graph session; Hive surfaces it.
	must(p.CheckIn("s-graphs", "ann"))
	must(p.CheckIn("s-graphs", "carl"))
	sugg, err := p.SuggestSessions("zach", "edbt13", 2)
	must(err)
	for _, s := range sugg {
		fmt.Printf("suggested session: %-10s score=%.2f followed attendees=%v\n",
			s.SessionID, s.Score, s.FollowedAttendees)
	}
	// Zach attends and posts a question; the exchange is broadcast under
	// the session hashtag (the paper's Twitter bridge).
	must(p.CheckIn("s-graphs", "zach"))
	must(p.Ask(hive.Question{ID: "q-zach", Author: "zach", Target: "p-carl",
		Text: "How does the partitioning interact with diffusion?"}))
	must(p.AnswerQuestion(hive.Answer{ID: "ans-carl", QuestionID: "q-zach", Author: "carl",
		Text: "Partition boundaries dampen spread; see section 4."}))
	fmt.Println("hashtag feed #graphs13:")
	for _, ev := range p.EventsByTag("#graphs13") {
		fmt.Printf("  %s %s %s\n", ev.Actor, ev.Verb, ev.Object)
	}

	// Aaron questions an equation on Zach's slides; Zach thanks him and
	// they connect.
	must(p.Ask(hive.Question{ID: "q-aaron", Author: "aaron", Target: "pres-zach",
		Text: "Is there a typo in equation three of the diffusion kernel?"}))
	must(p.AnswerQuestion(hive.Answer{ID: "ans-zach", QuestionID: "q-aaron", Author: "zach",
		Text: "Good catch — fixed, thanks!"}))
	must(p.Connect("zach", "aaron"))

	// Zach drags Ann's avatar and the session into his workpad; it now
	// contextualizes his searches.
	must(p.CreateWorkpad(hive.Workpad{ID: "w-investigate", Owner: "zach", Name: "to investigate later"}))
	must(p.AddToWorkpad("w-investigate", hive.WorkpadItem{Kind: hive.ItemUser, Ref: "ann"}))
	must(p.AddToWorkpad("w-investigate", hive.WorkpadItem{Kind: hive.ItemPaper, Ref: "p-carl"}))
	must(p.AddToWorkpad("w-investigate", hive.WorkpadItem{Kind: hive.ItemSession, Ref: "s-graphs"}))
	must(p.ActivateWorkpad("zach", "w-investigate"))

	hits, err := p.SearchWithContext("zach", "scalable processing", 3)
	must(err)
	fmt.Println("context-aware search for 'scalable processing':")
	for _, h := range hits {
		fmt.Printf("  %-14s %.3f\n", h.DocID, h.Score)
	}

	// A preview of Carl's paper, driven by the active workpad.
	snips, err := p.Preview("zach", hive.DocPaper+"p-carl", 1)
	must(err)
	if len(snips) > 0 {
		fmt.Printf("preview: %q\n", snips[0].Text)
	}

	fmt.Println("\n== Back at the university ==")
	// The advisor (who missed the trip) reviews Zach's activity digest.
	must(p.Follow("advisor", "zach"))
	digest, err := p.UpdateDigest("advisor", 4)
	must(err)
	fmt.Println("advisor's digest of zach's conference activity:")
	fmt.Print(digest.Format())

	// And the relationship ledger shows the new connection's evidence.
	ex, err := p.Explain("zach", "aaron")
	must(err)
	fmt.Printf("zach—aaron evidence (%d classes, score %.3f)\n", len(ex.Evidences), ex.Score)
}

func seedWorld(p *hive.Platform) {
	users := []hive.User{
		{ID: "zach", Name: "Zach", Affiliation: "ASU", Interests: []string{"social media", "graphs"}},
		{ID: "advisor", Name: "Advisor", Affiliation: "ASU", Interests: []string{"graphs"}},
		{ID: "ann", Name: "Ann", Affiliation: "UniTo", Interests: []string{"community detection"}},
		{ID: "aaron", Name: "Aaron", Affiliation: "MPI", Interests: []string{"social media"}},
		{ID: "carl", Name: "Carl", Affiliation: "NUS", Interests: []string{"graphs"}},
	}
	for _, u := range users {
		must(p.RegisterUser(u))
	}
	must(p.CreateConference(hive.Conference{ID: "edbt13", Name: "EDBT 2013", Series: "edbt", Year: 2013}))
	must(p.CreateSession(hive.Session{ID: "s-graphs", ConferenceID: "edbt13",
		Title: "Large scale graph processing", Track: "graphs", Chair: "ann", Hashtag: "#graphs13"}))
	must(p.CreateSession(hive.Session{ID: "s-social", ConferenceID: "edbt13",
		Title: "Social media analysis", Track: "social", Chair: "aaron"}))
	must(p.PublishPaper(hive.Paper{ID: "p-ann10", Title: "Community detection in evolving networks",
		Abstract: "Detecting communities in evolving social networks.", Authors: []string{"ann"}, Year: 2010}))
	must(p.PublishPaper(hive.Paper{ID: "p-zach", Title: "Diffusion of influence in social media graphs",
		Abstract:     "Influence diffusion in social media interaction graphs.",
		Authors:      []string{"zach", "advisor"},
		ConferenceID: "edbt13", SessionID: "s-social", Citations: []string{"p-ann10"}}))
	must(p.PublishPaper(hive.Paper{ID: "p-carl", Title: "Scalable graph traversal on clusters",
		Abstract:     "Traversal of massive graphs with partitioning and communication optimizations.",
		Authors:      []string{"carl"},
		ConferenceID: "edbt13", SessionID: "s-graphs", Citations: []string{"p-ann10"}}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
