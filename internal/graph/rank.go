package graph

import "math"

// PageRankOptions configures the power-iteration PageRank solvers.
type PageRankOptions struct {
	// Damping is the probability of following an out-edge rather than
	// teleporting. Defaults to 0.85 when zero.
	Damping float64
	// MaxIter bounds the number of power iterations. Defaults to 100.
	MaxIter int
	// Tolerance is the L1 convergence threshold. Defaults to 1e-9.
	Tolerance float64
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// PageRank computes the stationary importance of every node under the
// weighted random-surfer model. Edge weights bias the surfer toward
// stronger relationships. The returned slice is indexed by NodeID and sums
// to 1 (for non-empty graphs).
func (g *Graph) PageRank(opts PageRankOptions) []float64 {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 / float64(n)
	}
	return g.personalizedPageRank(uniform, opts)
}

// PersonalizedPageRank computes PageRank with teleportation restricted to
// the given restart distribution. This is Hive's core context-propagation
// primitive: the restart mass is placed on the nodes of the user's active
// workpad (plus checked-in session), and the stationary distribution
// scores every entity's relevance to that context (paper §2.3, "Hive
// propagates the concepts within the relevant neighborhoods of the
// knowledge network").
//
// restart maps node IDs to non-negative masses; it is normalized
// internally. Nodes outside restart get rank only via graph structure.
func (g *Graph) PersonalizedPageRank(restart map[NodeID]float64, opts PageRankOptions) []float64 {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	r := make([]float64, n)
	var total float64
	for id, m := range restart {
		if g.valid(id) && m > 0 {
			r[id] = m
			total += m
		}
	}
	if total == 0 {
		return g.PageRank(opts)
	}
	for i := range r {
		r[i] /= total
	}
	return g.personalizedPageRank(r, opts)
}

func (g *Graph) personalizedPageRank(restart []float64, opts PageRankOptions) []float64 {
	opts = opts.withDefaults()
	n := len(g.nodes)
	rank := append([]float64(nil), restart...)
	next := make([]float64, n)

	outWeight := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, e := range g.out[i] {
			outWeight[i] += e.Weight
		}
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		var dangling float64
		for i := 0; i < n; i++ {
			if rank[i] == 0 {
				continue
			}
			if outWeight[i] == 0 {
				dangling += rank[i]
				continue
			}
			share := opts.Damping * rank[i] / outWeight[i]
			for _, e := range g.out[i] {
				next[e.To] += share * e.Weight
			}
		}
		// Dangling mass and teleportation both return to the restart
		// distribution, keeping the chain personalized.
		back := opts.Damping*dangling + (1 - opts.Damping)
		var delta float64
		for i := 0; i < n; i++ {
			next[i] += back * restart[i]
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < opts.Tolerance {
			break
		}
	}
	return rank
}

// TopK returns the k highest-scoring node IDs for a score vector indexed
// by NodeID, excluding any IDs in the skip set. Ties break toward lower
// IDs for determinism.
func TopK(scores []float64, k int, skip map[NodeID]bool) []NodeID {
	type sc struct {
		id NodeID
		s  float64
	}
	var all []sc
	for i, s := range scores {
		id := NodeID(i)
		if skip[id] {
			continue
		}
		all = append(all, sc{id, s})
	}
	// Partial selection sort: k is small in practice (top-5 peers etc.).
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[best].s || (all[j].s == all[best].s && all[j].id < all[best].id) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	ids := make([]NodeID, 0, k)
	for i := 0; i < k; i++ {
		ids = append(ids, all[i].id)
	}
	return ids
}
