// Package rdf implements R2DB, the weighted RDF data management system
// Hive relies on for its knowledge layers (paper §2.2, refs [11][12]).
// Triples carry a weight in (0, 1] expressing the strength or certainty of
// the statement — the "imprecise alignment" results of §2.2 are stored
// exactly this way. The store maintains SPO, POS and OSP permutation
// indexes for pattern matching, supports multi-pattern join queries, and
// answers R2DF-style top-k ranked path queries where a path's score is the
// product of its triple weights.
package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrBadTriple is returned for malformed triples or serialized lines.
var ErrBadTriple = errors.New("rdf: malformed triple")

// Triple is a weighted RDF statement.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
	// Weight in (0, 1]; 1 means a certain statement.
	Weight float64
}

// Pattern matches triples; empty fields are wildcards.
type Pattern struct {
	Subject   string
	Predicate string
	Object    string
	// MinWeight filters out weaker triples; 0 matches all.
	MinWeight float64
}

type key struct{ s, p, o string }

// Store is a weighted triple store. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	weights map[key]float64
	spo     map[string]map[string]map[string]struct{}
	pos     map[string]map[string]map[string]struct{}
	osp     map[string]map[string]map[string]struct{}
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		weights: make(map[key]float64),
		spo:     make(map[string]map[string]map[string]struct{}),
		pos:     make(map[string]map[string]map[string]struct{}),
		osp:     make(map[string]map[string]map[string]struct{}),
	}
}

// Add inserts or updates a triple. Weights of repeated assertions keep the
// maximum (observing the same fact again cannot weaken it). Weights are
// clamped to (0, 1]; non-positive weights are rejected.
func (st *Store) Add(t Triple) error {
	if t.Subject == "" || t.Predicate == "" || t.Object == "" {
		return fmt.Errorf("%w: empty field in %+v", ErrBadTriple, t)
	}
	if t.Weight <= 0 {
		return fmt.Errorf("%w: non-positive weight %v", ErrBadTriple, t.Weight)
	}
	if t.Weight > 1 {
		t.Weight = 1
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	k := key{t.Subject, t.Predicate, t.Object}
	if w, ok := st.weights[k]; ok {
		if t.Weight > w {
			st.weights[k] = t.Weight
		}
		return nil
	}
	st.weights[k] = t.Weight
	insert3(st.spo, t.Subject, t.Predicate, t.Object)
	insert3(st.pos, t.Predicate, t.Object, t.Subject)
	insert3(st.osp, t.Object, t.Subject, t.Predicate)
	return nil
}

// Remove deletes a triple; removing an absent triple is a no-op.
func (st *Store) Remove(s, p, o string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := key{s, p, o}
	if _, ok := st.weights[k]; !ok {
		return
	}
	delete(st.weights, k)
	delete3(st.spo, s, p, o)
	delete3(st.pos, p, o, s)
	delete3(st.osp, o, s, p)
}

// Len reports the number of stored triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.weights)
}

// Weight returns the weight of a triple and whether it exists.
func (st *Store) Weight(s, p, o string) (float64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	w, ok := st.weights[key{s, p, o}]
	return w, ok
}

// Match returns all triples matching the pattern, sorted by descending
// weight then lexicographically (deterministic output for ranked
// consumers).
func (st *Store) Match(p Pattern) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Triple
	emit := func(s, pr, o string) {
		w := st.weights[key{s, pr, o}]
		if w >= p.MinWeight {
			out = append(out, Triple{s, pr, o, w})
		}
	}
	switch {
	case p.Subject != "" && p.Predicate != "" && p.Object != "":
		if w, ok := st.weights[key{p.Subject, p.Predicate, p.Object}]; ok && w >= p.MinWeight {
			out = append(out, Triple{p.Subject, p.Predicate, p.Object, w})
		}
	case p.Subject != "" && p.Predicate != "":
		for o := range st.spo[p.Subject][p.Predicate] {
			emit(p.Subject, p.Predicate, o)
		}
	case p.Subject != "" && p.Object != "":
		for pr := range st.osp[p.Object][p.Subject] {
			emit(p.Subject, pr, p.Object)
		}
	case p.Predicate != "" && p.Object != "":
		for s := range st.pos[p.Predicate][p.Object] {
			emit(s, p.Predicate, p.Object)
		}
	case p.Subject != "":
		for pr, objs := range st.spo[p.Subject] {
			for o := range objs {
				emit(p.Subject, pr, o)
			}
		}
	case p.Predicate != "":
		for o, subs := range st.pos[p.Predicate] {
			for s := range subs {
				emit(s, p.Predicate, o)
			}
		}
	case p.Object != "":
		for s, preds := range st.osp[p.Object] {
			for pr := range preds {
				emit(s, pr, p.Object)
			}
		}
	default:
		for k, w := range st.weights {
			if w >= p.MinWeight {
				out = append(out, Triple{k.s, k.p, k.o, w})
			}
		}
	}
	sortTriples(out)
	return out
}

// Subjects returns the distinct subjects of triples with the given
// predicate, sorted.
func (st *Store) Subjects(predicate string) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := map[string]struct{}{}
	for _, subs := range st.pos[predicate] {
		for s := range subs {
			seen[s] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Weight != ts[j].Weight {
			return ts[i].Weight > ts[j].Weight
		}
		if ts[i].Subject != ts[j].Subject {
			return ts[i].Subject < ts[j].Subject
		}
		if ts[i].Predicate != ts[j].Predicate {
			return ts[i].Predicate < ts[j].Predicate
		}
		return ts[i].Object < ts[j].Object
	})
}

func insert3(m map[string]map[string]map[string]struct{}, a, b, c string) {
	mb, ok := m[a]
	if !ok {
		mb = make(map[string]map[string]struct{})
		m[a] = mb
	}
	mc, ok := mb[b]
	if !ok {
		mc = make(map[string]struct{})
		mb[b] = mc
	}
	mc[c] = struct{}{}
}

func delete3(m map[string]map[string]map[string]struct{}, a, b, c string) {
	mb, ok := m[a]
	if !ok {
		return
	}
	mc, ok := mb[b]
	if !ok {
		return
	}
	delete(mc, c)
	if len(mc) == 0 {
		delete(mb, b)
	}
	if len(mb) == 0 {
		delete(m, a)
	}
}

// WriteTo serializes the store in a line-oriented N-Triples-like format:
// subject, predicate, object and weight separated by tabs, one triple per
// line, sorted for determinism.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	all := st.Match(Pattern{})
	bw := bufio.NewWriter(w)
	var n int64
	for _, t := range all {
		m, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n",
			escape(t.Subject), escape(t.Predicate), escape(t.Object),
			strconv.FormatFloat(t.Weight, 'g', -1, 64))
		n += int64(m)
		if err != nil {
			return n, fmt.Errorf("rdf: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("rdf: flush: %w", err)
	}
	return n, nil
}

// ReadFrom loads triples from the WriteTo format, adding them to the
// store.
func (st *Store) ReadFrom(r io.Reader) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var n int64
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		n += int64(len(text)) + 1
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return n, fmt.Errorf("%w: line %d: %q", ErrBadTriple, line, text)
		}
		w, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return n, fmt.Errorf("%w: line %d: bad weight: %v", ErrBadTriple, line, err)
		}
		t := Triple{unescape(parts[0]), unescape(parts[1]), unescape(parts[2]), w}
		if err := st.Add(t); err != nil {
			return n, fmt.Errorf("rdf: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("rdf: read: %w", err)
	}
	return n, nil
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\t", "\\t")
	s = strings.ReplaceAll(s, "\n", "\\n")
	return s
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, "\\n", "\n")
	s = strings.ReplaceAll(s, "\\t", "\t")
	s = strings.ReplaceAll(s, "\\\\", "\\")
	return s
}
