package api

import (
	"errors"
	"reflect"
	"testing"
)

// ShardOf is part of the wire contract: server, SDK and tooling must
// compute identical placement forever. These golden values pin the
// hash — if this test fails, the change breaks every existing data
// dir's shard map, not just this build.
func TestShardOfGolden(t *testing.T) {
	cases := []struct {
		owner string
		count int
		want  int
	}{
		{"alice", 2, 1}, {"alice", 4, 3}, {"alice", 7, 1},
		{"bob", 2, 0}, {"bob", 4, 0}, {"bob", 7, 2},
		{"carol", 2, 0}, {"carol", 4, 2}, {"carol", 7, 6},
		{"u0042", 2, 0}, {"u0042", 4, 2}, {"u0042", 7, 0},
		{"conf-chair", 2, 1}, {"conf-chair", 4, 3}, {"conf-chair", 7, 6},
		{"马伟", 2, 0}, {"马伟", 4, 2}, {"马伟", 7, 0},
		{"", 2, 1}, {"", 4, 1}, {"", 7, 2},
	}
	for _, c := range cases {
		if got := ShardOf(c.owner, c.count); got != c.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d — the placement hash is frozen by the wire contract",
				c.owner, c.count, got, c.want)
		}
	}
	for _, count := range []int{0, 1, -3} {
		if got := ShardOf("anyone", count); got != 0 {
			t.Errorf("ShardOf(anyone, %d) = %d, want 0 for degenerate counts", count, got)
		}
	}
}

func TestPaperOwner(t *testing.T) {
	if got := PaperOwner(Paper{ID: "p1", Authors: []string{"ada", "bob"}}); got != "ada" {
		t.Errorf("PaperOwner with authors = %q, want first author", got)
	}
	if got := PaperOwner(Paper{ID: "p1"}); got != "p1" {
		t.Errorf("PaperOwner without authors = %q, want paper ID", got)
	}
}

func TestShardCursorRoundTrip(t *testing.T) {
	bounds := []uint64{0, 17, 3, 900719925474099}
	cur := EncodeShardCursor(bounds)
	got, err := DecodeShardCursor(cur, len(bounds))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, bounds) {
		t.Fatalf("round trip: got %v, want %v", got, bounds)
	}

	empty, err := DecodeShardCursor("", 3)
	if err != nil || !reflect.DeepEqual(empty, []uint64{0, 0, 0}) {
		t.Fatalf("empty cursor: got %v, %v; want zero vector", empty, err)
	}
}

func TestShardCursorRejectsMismatchAndGarbage(t *testing.T) {
	cur := EncodeShardCursor([]uint64{1, 2, 3})
	if _, err := DecodeShardCursor(cur, 4); !errors.Is(err, ErrBadCursor) {
		t.Errorf("wrong shard count: err = %v, want ErrBadCursor", err)
	}
	for _, bad := range []string{"not-base64!!", "djE6NTA", EncodeShardCursor(nil)[:4]} {
		if _, err := DecodeShardCursor(bad, 2); !errors.Is(err, ErrBadCursor) {
			t.Errorf("garbage %q: err = %v, want ErrBadCursor", bad, err)
		}
	}
}
