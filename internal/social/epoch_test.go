package social

import (
	"errors"
	"testing"
)

func epochBatch(first, last, epoch uint64) ReplicationBatch {
	evs := make([]ChangeEvent, 0, last-first+1)
	for seq := first; seq <= last; seq++ {
		evs = append(evs, ChangeEvent{Seq: seq, Kind: ChangePut, EntityType: EntityUser, ID: "u"})
	}
	return ReplicationBatch{
		First:  first,
		Last:   last,
		Epoch:  epoch,
		Events: evs,
		Puts:   map[string][]byte{"user/u": []byte(`{"id":"u"}`)},
	}
}

func TestApplyReplicaEpochFencing(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetEpoch(3)

	// Stale term: a deposed leader's batch must be fenced, not applied.
	err = st.ApplyReplica(epochBatch(1, 1, 2))
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("epoch 2 batch at store epoch 3: err = %v, want ErrStaleEpoch", err)
	}
	if st.ChangeSeq() != 0 {
		t.Fatalf("fenced batch advanced ChangeSeq to %d", st.ChangeSeq())
	}

	// Newer term: the caller must re-bootstrap, not apply in place.
	err = st.ApplyReplica(epochBatch(1, 1, 4))
	if !errors.Is(err, ErrEpochAhead) {
		t.Fatalf("epoch 4 batch at store epoch 3: err = %v, want ErrEpochAhead", err)
	}

	// Same term applies.
	if err := st.ApplyReplica(epochBatch(1, 2, 3)); err != nil {
		t.Fatalf("same-epoch batch: %v", err)
	}
	if st.ChangeSeq() != 2 {
		t.Fatalf("ChangeSeq = %d after same-epoch apply, want 2", st.ChangeSeq())
	}

	// Epoch-0 batches (pre-epoch journals, unmanaged leaders) always
	// apply: the fence never breaks old wire data.
	if err := st.ApplyReplica(epochBatch(3, 3, 0)); err != nil {
		t.Fatalf("legacy epoch-0 batch: %v", err)
	}
}

func TestApplyReplicaAdoptsEpoch(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.ApplyReplica(epochBatch(1, 1, 7)); err != nil {
		t.Fatalf("epoch 7 batch on unmanaged store: %v", err)
	}
	if got := st.Epoch(); got != 7 {
		t.Fatalf("store epoch = %d after applying epoch-7 batch, want 7", got)
	}
	// Once adopted, older terms are fenced.
	if err := st.ApplyReplica(epochBatch(2, 2, 6)); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("epoch 6 batch after adopting 7: err = %v, want ErrStaleEpoch", err)
	}
}

func TestSetEpochMonotonic(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetEpoch(5)
	st.SetEpoch(3) // regression attempts are ignored
	if got := st.Epoch(); got != 5 {
		t.Fatalf("epoch = %d after SetEpoch(5) then SetEpoch(3), want 5", got)
	}
}

func TestEpochRecoveredFromJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.SetEpoch(9)
	if err := st.PutUser(User{ID: "u", Name: "U"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Epoch(); got != 9 {
		t.Fatalf("epoch = %d after reopen, want 9 (recovered from journal tail)", got)
	}
}
