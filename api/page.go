package api

import (
	"encoding/base64"
	"errors"
	"strconv"
	"strings"
)

// Page size bounds. Every v1 list endpoint returns at most MaxPageSize
// items per response regardless of the requested limit; a missing or
// invalid limit falls back to DefaultPageSize.
const (
	DefaultPageSize = 50
	MaxPageSize     = 200
)

// Page is the envelope of every v1 list response. NextCursor is an
// opaque token: pass it back as ?cursor= to fetch the next page; it is
// empty on the last page.
type Page[T any] struct {
	Items      []T    `json:"items"`
	Limit      int    `json:"limit"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// ErrBadCursor is returned when a cursor token cannot be decoded.
var ErrBadCursor = errors.New("api: malformed cursor")

// MaxCursorOffset bounds the position a cursor may encode. Cursors are
// opaque but client-supplied: without a ceiling, a crafted offset near
// MaxInt64 would overflow the server's offset+limit arithmetic into a
// negative bound that engines treat as "compute everything".
const MaxCursorOffset = 1 << 30

// cursorPrefix versions the token format so a future cursor scheme can
// reject (rather than misread) old tokens.
const cursorPrefix = "v1:"

// EncodeCursor builds the opaque continuation token for a position.
func EncodeCursor(offset int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(offset)))
}

// DecodeCursor parses a continuation token produced by EncodeCursor.
// The empty token is position zero.
func DecodeCursor(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, ErrBadCursor
	}
	body, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, ErrBadCursor
	}
	n, err := strconv.Atoi(body)
	if err != nil || n < 0 || n > MaxCursorOffset {
		return 0, ErrBadCursor
	}
	return n, nil
}

// ClampLimit normalizes a requested page size into [1, MaxPageSize],
// substituting DefaultPageSize for zero or negative values.
func ClampLimit(limit int) int {
	if limit <= 0 {
		return DefaultPageSize
	}
	if limit > MaxPageSize {
		return MaxPageSize
	}
	return limit
}

// Paginate slices items into the page starting at offset. Items always
// serializes as a JSON array (never null), and NextCursor is set only
// when elements remain beyond the page — callers that fetch a bounded
// prefix should therefore fetch offset+limit+1 elements so a full next
// page is distinguishable from exhaustion.
func Paginate[T any](items []T, offset, limit int) Page[T] {
	limit = ClampLimit(limit)
	if offset < 0 {
		offset = 0
	}
	if offset > len(items) {
		offset = len(items)
	}
	end := offset + limit
	if end > len(items) {
		end = len(items)
	}
	p := Page[T]{Items: items[offset:end], Limit: limit}
	if p.Items == nil {
		p.Items = []T{}
	}
	if end < len(items) {
		p.NextCursor = EncodeCursor(end)
	}
	return p
}
