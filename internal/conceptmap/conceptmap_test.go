package conceptmap

import (
	"errors"
	"strings"
	"testing"
)

var graphDocs = []string{
	"Graph partitioning determines communication cost in distributed graph processing systems.",
	"We study partitioning heuristics for large graphs and their processing throughput.",
	"Tensor decomposition complements graph methods for multi-relational data.",
}

func TestBootstrapExtractsDominantConcepts(t *testing.T) {
	m, err := Bootstrap(graphDocs, BootstrapOptions{MaxConcepts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() == 0 || m.Len() > 10 {
		t.Fatalf("Len = %d", m.Len())
	}
	top := m.Concepts()[0].Term
	if !strings.Contains(top, "graph") && !strings.Contains(top, "partition") && !strings.Contains(top, "process") {
		t.Fatalf("top concept = %q, want a dominant corpus term (all: %v)", top, m.Concepts())
	}
}

func TestBootstrapEmpty(t *testing.T) {
	if _, err := Bootstrap(nil, BootstrapOptions{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Bootstrap([]string{"the of and"}, BootstrapOptions{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("stopword-only err = %v", err)
	}
}

func TestBootstrapCreatesRelations(t *testing.T) {
	m, err := Bootstrap(graphDocs, BootstrapOptions{MaxConcepts: 15})
	if err != nil {
		t.Fatal(err)
	}
	// "graph" and "partitioning" co-occur within the window repeatedly;
	// some surface forms may differ, so check that at least one pair of
	// top concepts is related.
	cs := m.Concepts()
	related := false
	for i := 0; i < len(cs) && !related; i++ {
		for j := i + 1; j < len(cs); j++ {
			if m.RelationWeight(cs[i].Term, cs[j].Term) > 0 {
				related = true
				break
			}
		}
	}
	if !related {
		t.Fatal("no concept relations created")
	}
}

func TestAddConceptRaisesSignificance(t *testing.T) {
	m := New()
	m.AddConcept("graphs", 0.2)
	m.AddConcept("graphs", 0.5)
	m.AddConcept("graphs", 0.1) // lower must not overwrite
	if s := m.Significance("graphs"); s != 0.5 {
		t.Fatalf("Significance = %v", s)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestRelateAccumulates(t *testing.T) {
	m := New()
	m.Relate("a", "b", 1)
	m.Relate("a", "b", 2)
	if w := m.RelationWeight("a", "b"); w != 3 {
		t.Fatalf("RelationWeight = %v", w)
	}
	if w := m.RelationWeight("b", "a"); w != 3 {
		t.Fatalf("relation not symmetric: %v", w)
	}
	m.Relate("a", "a", 1) // self-relation ignored
	if w := m.RelationWeight("a", "a"); w != 0 {
		t.Fatalf("self relation = %v", w)
	}
}

func TestNeighborsSorted(t *testing.T) {
	m := New()
	m.Relate("center", "weak", 1)
	m.Relate("center", "strong", 5)
	ns := m.Neighbors("center")
	if len(ns) != 2 || ns[0].Term != "strong" {
		t.Fatalf("Neighbors = %v", ns)
	}
	if got := m.Neighbors("missing"); got != nil {
		t.Fatalf("missing term neighbors = %v", got)
	}
}

func TestActivateConcentratesNearSeeds(t *testing.T) {
	m := New()
	// Chain: a - b - c - d; seed at a.
	m.Relate("a", "b", 1)
	m.Relate("b", "c", 1)
	m.Relate("c", "d", 1)
	act := m.Activate([]string{"a"})
	if act["a"] <= act["c"] {
		t.Fatalf("seed should dominate: a=%v c=%v", act["a"], act["c"])
	}
	if act["b"] <= act["d"] {
		t.Fatalf("activation should decay: b=%v d=%v", act["b"], act["d"])
	}
}

func TestActivateUnknownSeedsFallBack(t *testing.T) {
	m := New()
	m.AddConcept("x", 0.7)
	act := m.Activate([]string{"unknown"})
	if act["x"] != 0.7 {
		t.Fatalf("fallback should return significances: %v", act)
	}
}

func TestActivateMultipleSeeds(t *testing.T) {
	m := New()
	m.Relate("a", "mid", 1)
	m.Relate("b", "mid", 1)
	m.Relate("mid", "far", 0.1)
	act := m.Activate([]string{"a", "b"})
	if act["mid"] <= act["far"] {
		t.Fatalf("mid should beat far: %v", act)
	}
}

func TestContextVectorStemsAndFilters(t *testing.T) {
	v := ContextVector(map[string]float64{"graphs": 0.5, "processing": 0.3, "zero": 0})
	if len(v) != 2 {
		t.Fatalf("vector = %v", v)
	}
	if _, ok := v["graph"]; !ok {
		t.Fatalf("stemmed key missing: %v", v)
	}
}

func TestStringSummary(t *testing.T) {
	m := New()
	m.Relate("a", "b", 1)
	if s := m.String(); !strings.Contains(s, "2 concepts") || !strings.Contains(s, "1 relations") {
		t.Fatalf("String = %q", s)
	}
}
