// Package journal is a stub mirroring the durable change journal.
package journal

type Record struct {
	First, Last uint64
	Data        []byte
}

type Journal struct{}

func (j *Journal) Append(r Record) error { return nil }
