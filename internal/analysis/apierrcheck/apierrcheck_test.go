package apierrcheck_test

import (
	"testing"

	"hive/internal/analysis/analysistest"
	"hive/internal/analysis/apierrcheck"
)

func TestAPIErrCheck(t *testing.T) {
	analysistest.Run(t, "testdata", apierrcheck.Analyzer)
}
