package social

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/kvstore"
)

// Sentinel errors.
var (
	// ErrNotFound is returned when a referenced entity does not exist.
	ErrNotFound = errors.New("social: not found")
	// ErrInvalid is returned for malformed entities (empty IDs, dangling
	// references).
	ErrInvalid = errors.New("social: invalid entity")
)

// Key prefixes. Secondary-index keys hold empty values; the primary key
// holds the JSON entity.
const (
	pUser       = "user/"
	pConf       = "conf/"
	pSession    = "session/"
	pSessConf   = "sessconf/" // conference -> session
	pPaper      = "paper/"
	pPaperConf  = "paperconf/" // conference -> paper
	pPaperSess  = "papersess/" // session -> paper
	pPaperAuth  = "paperauth/" // author -> paper
	pPres       = "pres/"
	pPresPaper  = "prespaper/" // paper -> presentation
	pPresOwner  = "presowner/" // owner -> presentation
	pConn       = "conn/"      // sorted pair
	pConnIdx    = "connidx/"   // user -> other
	pFollow     = "follow/"    // follower -> followee
	pFollower   = "followr/"   // followee -> follower
	pCheckin    = "checkin/"   // session -> user
	pCheckinU   = "checkinu/"  // user -> session
	pQuestion   = "question/"
	pQTarget    = "qtarget/" // target -> question
	pQAuthor    = "qauthor/" // author -> question
	pAnswer     = "answer/"
	pAQuestion  = "aq/" // question -> answer
	pComment    = "comment/"
	pCTarget    = "ctarget/" // target -> comment
	pWorkpad    = "workpad/"
	pWPOwner    = "wpowner/"  // owner -> workpad
	pWPActive   = "wpactive/" // owner -> active workpad id
	pCollection = "collection/"
	pEvent      = "event/"
	pEvActor    = "evactor/"
	pEvTag      = "evtag/"
	kSeq        = "meta/seq"
)

// Store is the persistent social graph and content store. All methods are
// safe for concurrent use.
type Store struct {
	kv    *kvstore.Store
	clock Clock

	mu  sync.Mutex // guards seq allocation
	seq uint64

	hookMu sync.RWMutex // guards hooks
	hooks  []func()

	// batching suppresses per-write hook fan-out inside Batched; the
	// hooks fire once when the outermost batch finishes.
	batching atomic.Int32
}

// OnMutate registers a hook invoked after every successful mutation.
// The platform uses it for dirty tracking: any write — including one
// that bypasses the Platform wrappers and hits the store directly —
// marks the knowledge-engine snapshot stale. Hooks must be fast and
// must not call back into the store.
func (s *Store) OnMutate(fn func()) {
	s.hookMu.Lock()
	s.hooks = append(s.hooks, fn)
	s.hookMu.Unlock()
}

// touch notifies the registered mutation hooks. Inside a Batched pass
// the notification is deferred: the batch fires the hooks exactly once
// on completion, so N batched writes cost one snapshot invalidation.
func (s *Store) touch() {
	if s.batching.Load() > 0 {
		return
	}
	s.fireHooks()
}

func (s *Store) fireHooks() {
	s.hookMu.RLock()
	hooks := s.hooks
	s.hookMu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Batched runs fn with mutation-hook fan-out suppressed and fires the
// hooks exactly once when fn returns — the bulk-ingest path: loading N
// entities marks the knowledge-engine snapshot stale once instead of N
// times. Hooks fire even when fn errors, mirroring done: earlier writes
// in the batch may have persisted. Nested Batched calls coalesce into
// the outermost one. Concurrent non-batched writers may also have their
// notification folded into the batch's final fire, which is harmless
// for staleness tracking (the mark still lands after their write).
func (s *Store) Batched(fn func() error) error {
	s.batching.Add(1)
	defer func() {
		if s.batching.Add(-1) == 0 {
			s.fireHooks()
		}
	}()
	return fn()
}

// done marks a mutation attempt complete and passes the error through.
// Hooks fire even on error: multi-step mutators may have persisted
// earlier writes before a later step failed, and a spurious dirty mark
// only costs one extra rebuild, whereas a missed one hides persisted
// data from the knowledge services indefinitely.
func (s *Store) done(err error) error {
	s.touch()
	return err
}

// NewStore wraps a kvstore. A nil clock uses the system clock.
func NewStore(kv *kvstore.Store, clock Clock) *Store {
	if clock == nil {
		clock = SystemClock
	}
	s := &Store{kv: kv, clock: clock}
	// Recover the sequence counter from storage.
	if raw, err := kv.Get(kSeq); err == nil {
		var seq uint64
		if json.Unmarshal(raw, &seq) == nil {
			s.seq = seq
		}
	}
	return s
}

// Open opens a social store at dir ("" = in-memory).
func Open(dir string, clock Clock) (*Store, error) {
	kv, err := kvstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return NewStore(kv, clock), nil
}

// Close releases the underlying storage.
func (s *Store) Close() error { return s.kv.Close() }

func (s *Store) now() time.Time { return s.clock() }

func (s *Store) putJSON(key string, v interface{}) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("social: marshal %s: %w", key, err)
	}
	return s.kv.Put(key, raw)
}

func (s *Store) getJSON(key string, v interface{}) error {
	raw, err := s.kv.Get(key)
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("social: unmarshal %s: %w", key, err)
	}
	return nil
}

// nextSeq allocates a monotone sequence number and persists the counter.
func (s *Store) nextSeq() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	raw, _ := json.Marshal(s.seq)
	if err := s.kv.Put(kSeq, raw); err != nil {
		return 0, err
	}
	return s.seq, nil
}

func seqKey(seq uint64) string { return fmt.Sprintf("%016x", seq) }

// --- Users -----------------------------------------------------------------

// PutUser creates or updates a user profile.
func (s *Store) PutUser(u User) error {
	if u.ID == "" {
		return fmt.Errorf("%w: user ID empty", ErrInvalid)
	}
	return s.done(s.putJSON(pUser+u.ID, u))
}

// User fetches a user by ID.
func (s *Store) User(id string) (User, error) {
	var u User
	err := s.getJSON(pUser+id, &u)
	return u, err
}

// HasUser reports whether the user exists.
func (s *Store) HasUser(id string) bool { return s.kv.Has(pUser + id) }

// Users returns all user IDs in sorted order.
func (s *Store) Users() []string { return s.stripPrefix(pUser) }

// UsersN returns up to n user IDs in sorted order (n <= 0 means all) —
// the paginated read path, which stops scanning at the page bound
// instead of materializing the whole table.
func (s *Store) UsersN(n int) []string { return s.stripPrefixN(pUser, n) }

// --- Conferences & sessions --------------------------------------------------

// PutConference creates or updates a conference.
func (s *Store) PutConference(c Conference) error {
	if c.ID == "" {
		return fmt.Errorf("%w: conference ID empty", ErrInvalid)
	}
	return s.done(s.putJSON(pConf+c.ID, c))
}

// Conference fetches a conference by ID.
func (s *Store) Conference(id string) (Conference, error) {
	var c Conference
	err := s.getJSON(pConf+id, &c)
	return c, err
}

// Conferences returns all conference IDs.
func (s *Store) Conferences() []string { return s.stripPrefix(pConf) }

// PutSession creates or updates a session. Its conference must exist.
func (s *Store) PutSession(sess Session) error {
	if sess.ID == "" {
		return fmt.Errorf("%w: session ID empty", ErrInvalid)
	}
	if !s.kv.Has(pConf + sess.ConferenceID) {
		return fmt.Errorf("%w: conference %q", ErrNotFound, sess.ConferenceID)
	}
	if err := s.putJSON(pSession+sess.ID, sess); err != nil {
		return s.done(err)
	}
	return s.done(s.kv.Put(pSessConf+sess.ConferenceID+"/"+sess.ID, nil))
}

// Session fetches a session by ID.
func (s *Store) Session(id string) (Session, error) {
	var sess Session
	err := s.getJSON(pSession+id, &sess)
	return sess, err
}

// SessionsOf returns the session IDs of a conference.
func (s *Store) SessionsOf(confID string) []string {
	return s.stripPrefix(pSessConf + confID + "/")
}

// --- Papers & presentations --------------------------------------------------

// PutPaper creates or updates a paper. Authors must exist as users.
func (s *Store) PutPaper(p Paper) error {
	if p.ID == "" {
		return fmt.Errorf("%w: paper ID empty", ErrInvalid)
	}
	if len(p.Authors) == 0 {
		return fmt.Errorf("%w: paper %q has no authors", ErrInvalid, p.ID)
	}
	for _, a := range p.Authors {
		if !s.kv.Has(pUser + a) {
			return fmt.Errorf("%w: author %q", ErrNotFound, a)
		}
	}
	if err := s.putJSON(pPaper+p.ID, p); err != nil {
		return s.done(err)
	}
	b := kvstore.NewBatch()
	if p.ConferenceID != "" {
		b.Put(pPaperConf+p.ConferenceID+"/"+p.ID, nil)
	}
	if p.SessionID != "" {
		b.Put(pPaperSess+p.SessionID+"/"+p.ID, nil)
	}
	for _, a := range p.Authors {
		b.Put(pPaperAuth+a+"/"+p.ID, nil)
	}
	return s.done(s.kv.Apply(b))
}

// Paper fetches a paper by ID.
func (s *Store) Paper(id string) (Paper, error) {
	var p Paper
	err := s.getJSON(pPaper+id, &p)
	return p, err
}

// Papers returns all paper IDs.
func (s *Store) Papers() []string { return s.stripPrefix(pPaper) }

// PapersOfConference returns the paper IDs published at a conference.
func (s *Store) PapersOfConference(confID string) []string {
	return s.stripPrefix(pPaperConf + confID + "/")
}

// PapersOfSession returns the paper IDs presented in a session.
func (s *Store) PapersOfSession(sessID string) []string {
	return s.stripPrefix(pPaperSess + sessID + "/")
}

// PapersOfAuthor returns the paper IDs authored by a user.
func (s *Store) PapersOfAuthor(userID string) []string {
	return s.stripPrefix(pPaperAuth + userID + "/")
}

// PutPresentation uploads or updates presentation content. Its paper and
// owner must exist.
func (s *Store) PutPresentation(pr Presentation) error {
	if pr.ID == "" {
		return fmt.Errorf("%w: presentation ID empty", ErrInvalid)
	}
	if !s.kv.Has(pPaper + pr.PaperID) {
		return fmt.Errorf("%w: paper %q", ErrNotFound, pr.PaperID)
	}
	if !s.kv.Has(pUser + pr.Owner) {
		return fmt.Errorf("%w: user %q", ErrNotFound, pr.Owner)
	}
	if pr.Updated == 0 {
		pr.Updated = s.now().Unix()
	}
	if err := s.putJSON(pPres+pr.ID, pr); err != nil {
		return s.done(err)
	}
	b := kvstore.NewBatch().
		Put(pPresPaper+pr.PaperID+"/"+pr.ID, nil).
		Put(pPresOwner+pr.Owner+"/"+pr.ID, nil)
	return s.done(s.kv.Apply(b))
}

// Presentation fetches presentation content by ID.
func (s *Store) Presentation(id string) (Presentation, error) {
	var pr Presentation
	err := s.getJSON(pPres+id, &pr)
	return pr, err
}

// PresentationsOfPaper returns presentation IDs attached to a paper.
func (s *Store) PresentationsOfPaper(paperID string) []string {
	return s.stripPrefix(pPresPaper + paperID + "/")
}

// PresentationsOfUser returns presentation IDs uploaded by a user.
func (s *Store) PresentationsOfUser(userID string) []string {
	return s.stripPrefix(pPresOwner + userID + "/")
}

func unmarshalEvent(raw []byte, ev *Event) error { return json.Unmarshal(raw, ev) }

// stripPrefix lists keys under prefix with the prefix removed.
func (s *Store) stripPrefix(prefix string) []string {
	return s.stripPrefixN(prefix, 0)
}

// stripPrefixN lists up to n keys under prefix with the prefix removed
// (n <= 0 means all), ending the scan once n is reached.
func (s *Store) stripPrefixN(prefix string, n int) []string {
	var ids []string
	s.kv.Scan(prefix, func(k string, _ []byte) bool {
		ids = append(ids, k[len(prefix):])
		return n <= 0 || len(ids) < n
	})
	return ids
}
