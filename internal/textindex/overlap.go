package textindex

import "hash/fnv"

// Overlap detection implements the content-reuse service of [9] (Kim,
// Candan, Tatemura, WWW'09): documents are reduced to sets of hashed
// word k-shingles and compared by resemblance (Jaccard over shingle
// sets). Hive uses it to relate user-supplied content (slides vs paper,
// repeated question text) without full pairwise text comparison.

// ShingleSet is a set of hashed k-shingles of a document.
type ShingleSet map[uint64]struct{}

// Shingles computes the hashed word k-shingle set of text using the
// canonical analysis chain. k must be >= 1; documents shorter than k
// words yield a single shingle of all their words (or an empty set for
// empty documents).
func Shingles(text string, k int) ShingleSet {
	if k < 1 {
		k = 1
	}
	terms := Terms(text)
	set := make(ShingleSet)
	if len(terms) == 0 {
		return set
	}
	if len(terms) < k {
		set[hashShingle(terms)] = struct{}{}
		return set
	}
	for i := 0; i+k <= len(terms); i++ {
		set[hashShingle(terms[i:i+k])] = struct{}{}
	}
	return set
}

func hashShingle(terms []string) uint64 {
	h := fnv.New64a()
	for _, t := range terms {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Resemblance returns the Jaccard similarity of two shingle sets.
func Resemblance(a, b ShingleSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for s := range small {
		if _, ok := large[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Containment returns |a ∩ b| / |a|: how much of a is reused inside b.
// Asymmetric by design — a slide deck is largely contained in its paper
// but not vice versa.
func Containment(a, b ShingleSet) float64 {
	if len(a) == 0 {
		return 0
	}
	inter := 0
	for s := range a {
		if _, ok := b[s]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}
