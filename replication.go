package hive

// Leader/follower replication: the follower side.
//
// A durable platform journals every change batch (typed events + the
// raw kv write image) through internal/journal; the server exposes that
// journal as GET /api/v1/replication/events plus a full-state snapshot
// endpoint. An elected follower (Options.Cluster) bootstraps from the
// snapshot, then tails the journal: each batch's kv image applies verbatim — the follower's
// store converges byte-for-byte with the leader's — and the batch's
// events flow through the ordinary onChange → ApplyDelta path, so the
// follower's serving snapshot is maintained by exactly the machinery a
// leader uses for its own writes. Followers serve the full read API
// with bounded, observable lag and reject writes with a typed
// NotLeaderError naming the leader and its term.
//
// Epoch fencing: every poll asserts the follower's adopted term, so a
// deposed leader (stuck at an older term) answers stale_epoch instead
// of feeding doomed batches — and if one slips through anyway the store
// fences it (social.ErrStaleEpoch). Fenced batches never trigger a
// re-sync: bootstrapping from a deposed leader would silently regress
// the follower, so the loop backs off and waits for the elector to
// retarget it at the real leader.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"hive/api"
	"hive/client"
	"hive/internal/social"
)

// NotLeaderError is returned by mutation methods on a follower: writes
// must go to the leader it names. The HTTP layer maps it to the stable
// not_leader error code with the leader URL and the current term in the
// error details; cluster-aware clients follow the hint automatically.
type NotLeaderError struct {
	// Leader is the leader's base URL ("" while an election is
	// unresolved — retry after re-resolving via the cluster endpoint).
	Leader string
	// Epoch is the term this node has adopted; a client seeing a hint
	// at a lower term than one it already followed is looking at a
	// stale node.
	Epoch uint64
	// Shard identifies which shard leader rejected the write on a
	// sharded deployment (0 on unsharded platforms).
	Shard int
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "hive: not the leader and no leader is known (election unresolved); retry"
	}
	return fmt.Sprintf("hive: not the leader; send writes to %s", e.Leader)
}

// Follower tuning. The long-poll wait keeps propagation sub-second
// without hot-polling; the batch cap bounds per-iteration memory.
const (
	followPollWait  = 20 * time.Second
	followBatchMax  = 256
	followBackoffLo = 100 * time.Millisecond
	followBackoffHi = 5 * time.Second
)

// follower holds the tail-loop state of a following platform. Each
// leader change builds a fresh follower; observability reads go through
// Platform.followP.
type follower struct {
	url    string
	c      *client.Client
	cancel context.CancelFunc
	ctx    context.Context
	stop   chan struct{}
	done   chan struct{}

	// booted flips once the initial bootstrap succeeded; until then
	// the loop retries bootstrap instead of tailing. The bootstrap
	// always re-syncs from the leader's snapshot even when local state
	// exists: a node rejoining after a leader change may hold journal
	// batches from a fenced term.
	booted bool

	applied    atomic.Uint64 // last leader sequence folded into the local store
	leaderTail atomic.Uint64 // leader journal tail at the most recent poll
	lastErr    atomic.Pointer[replErr]
	bootstraps atomic.Uint64 // snapshot bootstraps since Open (re-syncs after compaction/holes)
	fenced     atomic.Uint64 // stale-epoch batches/feeds rejected (deposed-leader writes)
}

// replErr boxes a tail-loop outcome for atomic storage.
type replErr struct{ err error }

func (p *Platform) newFollower(url string) *follower {
	ctx, cancel := context.WithCancel(context.Background())
	var opts []client.Option
	if p.replTransport != nil {
		// The fault-injection seam: tests wrap the replication client in
		// an internal/faultnet transport to drop, delay or partition the
		// follower's traffic without touching the network stack.
		opts = append(opts, client.WithHTTPClient(&http.Client{Transport: p.replTransport}))
	}
	return &follower{
		url:    url,
		c:      client.New(url, opts...),
		cancel: cancel,
		ctx:    ctx,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// startFollowerAsync enters (or re-enters) follower mode without
// blocking: the tail loop owns the bootstrap, retrying with backoff
// until it succeeds or the follower is stopped. Cluster transitions
// need the non-blocking form because the new leader may itself still
// be promoting.
func (p *Platform) startFollowerAsync(url string) {
	f := p.newFollower(url)
	p.followP.Store(f)
	go p.followLoop(f)
}

// stopFollowing cancels the tail loop, waits for it to exit and clears
// the follower slot.
func (p *Platform) stopFollowing() {
	f := p.followP.Load()
	if f == nil {
		return
	}
	select {
	case <-f.stop:
	default:
		close(f.stop)
		f.cancel()
	}
	<-f.done
	p.followP.CompareAndSwap(f, nil)
}

// bootstrapFollower replaces the local store with the leader's full
// snapshot and positions the tail at its watermark. A snapshot from a
// stale term is refused: importing it would regress the follower to a
// deposed leader's world — the exact rewrite fencing exists to prevent.
func (p *Platform) bootstrapFollower(f *follower) error {
	snap, err := f.c.ReplicationSnapshot(f.ctx)
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	if cur := p.store.Epoch(); snap.Epoch != 0 && snap.Epoch < cur {
		f.fenced.Add(1)
		return fmt.Errorf("refusing snapshot from %s at stale epoch %d (ours is %d): %w", f.url, snap.Epoch, cur, social.ErrStaleEpoch)
	}
	entries := make(map[string][]byte, len(snap.Entries))
	for _, e := range snap.Entries {
		entries[e.Key] = e.Value
	}
	if err := p.store.ImportReplicaSnapshot(snap.Seq, entries); err != nil {
		return fmt.Errorf("import snapshot: %w", err)
	}
	p.store.SetEpoch(snap.Epoch)
	f.applied.Store(p.store.ChangeSeq())
	f.bootstraps.Add(1)
	return nil
}

// followLoop tails the leader's journal until stopped, reconnecting
// with exponential backoff and re-bootstrapping from the snapshot when
// the leader compacted past our position, regressed, or moved to a
// newer term (or a journal hole is detected). Stale-term feeds are
// fenced, never re-synced from.
func (p *Platform) followLoop(f *follower) {
	defer close(f.done)
	failures := 0
	wait := func() bool {
		if failures == 0 {
			return true
		}
		select {
		case <-time.After(backoffDelay(failures)):
			return true
		case <-f.stop:
			return false
		}
	}

	for !f.booted {
		select {
		case <-f.stop:
			return
		default:
		}
		if !wait() {
			return
		}
		if err := p.resyncFollower(f); err != nil {
			if f.ctx.Err() != nil {
				return
			}
			f.lastErr.Store(&replErr{fmt.Errorf("bootstrap from %s: %w", f.url, err)})
			failures++
			continue
		}
		f.booted = true
		f.lastErr.Store(&replErr{})
		failures = 0
	}

	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if !wait() {
			return
		}

		// The poll doubles as the ack channel: the piggybacked report says
		// how far this follower has folded the leader's journal (what a
		// quorum-writing leader counts before releasing held responses)
		// and which commit index it has persisted (so the leader releases
		// the long-poll early when the watermark moved).
		from := f.applied.Load()
		ack := &client.ReplAck{Self: p.selfURL, Applied: from, Commit: p.store.CommitIndex()}
		pollStart := time.Now()
		ev, err := f.c.ReplicationEvents(f.ctx, from, followBatchMax, followPollWait, p.store.Epoch(), ack)
		mReplicationPollSeconds.ObserveSince(pollStart)
		switch {
		case err == nil:
		case api.IsCode(err, api.CodeCompacted):
			// Fell behind the leader's retention horizon: tailing can
			// never catch up, re-sync from the full snapshot.
			if berr := p.resyncFollower(f); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap after compaction: %w", berr)})
				failures++
				continue
			}
			f.lastErr.Store(&replErr{})
			failures = 0
			continue
		case api.IsCode(err, api.CodeStaleEpoch):
			// The polled node's term is behind ours: it is a deposed
			// leader (or a lagging peer). Nothing it serves is safe to
			// apply or bootstrap from — back off and wait for the
			// elector to retarget us at the real leader.
			f.fenced.Add(1)
			f.lastErr.Store(&replErr{fmt.Errorf("fenced: %s is behind our epoch %d (deposed leader?): %w", f.url, p.store.Epoch(), err)})
			failures++
			continue
		default:
			if f.ctx.Err() != nil {
				return
			}
			f.lastErr.Store(&replErr{fmt.Errorf("poll leader: %w", err)})
			failures++
			continue
		}

		if ev.Epoch > p.store.Epoch() {
			// The leader moved to a newer term than we adopted. Per the
			// compatibility rule (accept N, re-bootstrap on N+1) the
			// tail is not trustworthy across terms: re-sync from the
			// snapshot, which adopts the new term.
			if berr := p.resyncFollower(f); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap onto epoch %d: %w", ev.Epoch, berr)})
				failures++
				continue
			}
			f.lastErr.Store(&replErr{})
			failures = 0
			continue
		}

		// A leader whose journal tail is *behind* our applied sequence
		// is not the leader we replicated from (repurposed data dir,
		// restored backup, misconfigured peer set): tailing would silently
		// serve unrelated state while reporting zero lag. Re-sync from
		// its snapshot instead.
		if ev.Tail < from {
			f.leaderTail.Store(ev.Tail)
			if berr := p.resyncFollower(f); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap after leader regression (tail %d < applied %d): %w", ev.Tail, from, berr)})
				failures++
				continue
			}
			f.lastErr.Store(&replErr{})
			failures = 0
			continue
		}
		f.leaderTail.Store(ev.Tail)
		hole, fencedBatch := false, false
		for _, rb := range ev.Batches {
			applied := f.applied.Load()
			if rb.Last <= applied {
				continue // overlap from a record spanning the resume point
			}
			if rb.First > applied+1 {
				// A hole in the feed (journal gap): events between were
				// lost; only a snapshot restores the missing data.
				hole = true
				break
			}
			if aerr := p.store.ApplyReplica(rb); aerr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("apply batch [%d,%d]: %w", rb.First, rb.Last, aerr)})
				if errors.Is(aerr, social.ErrStaleEpoch) {
					// Deposed-leader writes: drop them, and do NOT
					// re-sync — this node's snapshot is just as stale.
					f.fenced.Add(1)
					fencedBatch = true
					break
				}
				hole = true // re-sync rather than skip acknowledged data
				break
			}
			f.applied.Store(rb.Last)
		}
		if fencedBatch {
			failures++
			continue
		}
		if hole {
			if berr := p.resyncFollower(f); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap after feed hole: %w", berr)})
				failures++
				continue
			}
		}
		if c := ev.Commit; c > 0 {
			// Adopt the leader-published commit index, capped at our own
			// applied point: sequences beyond it are quorum-acknowledged
			// cluster-wide but not yet held here, and a commit index must
			// never vouch for data its node doesn't have. Regressions are
			// ignored by the store, so a stale poll can't move it back.
			if applied := f.applied.Load(); c > applied {
				c = applied
			}
			//lint:allow epochcheck the quorum ack check ran on the leader; followers adopt its published commit index verbatim
			_ = p.store.SetCommitIndex(c)
		}
		f.lastErr.Store(&replErr{})
		failures = 0
	}
}

// resyncFollower re-bootstraps from the snapshot and rebuilds the
// serving snapshot (imported state has no event trail to delta from).
func (p *Platform) resyncFollower(f *follower) error {
	if err := p.bootstrapFollower(f); err != nil {
		return err
	}
	// Drop any queued events from before the import: the full rebuild
	// below covers everything the imported image contains.
	p.pendMu.Lock()
	p.pending = nil
	p.overflow = false
	p.pendingCount.Store(0)
	p.pendMu.Unlock()
	return p.Refresh()
}

// backoffDelay is the reconnect schedule: 100ms doubling to a 5s cap.
func backoffDelay(failures int) time.Duration {
	d := followBackoffLo << uint(failures-1)
	if d > followBackoffHi || d <= 0 {
		return followBackoffHi
	}
	return d
}

// writable gates every mutation wrapper: followers reject writes with a
// typed error naming the leader and term, so clients can redirect.
func (p *Platform) writable() error {
	if p.role.Load() != roleLeader {
		return &NotLeaderError{Leader: p.leaderHint(), Epoch: p.store.Epoch(), Shard: p.shardID}
	}
	return nil
}

// --- Replication observability --------------------------------------------------

// IsFollower reports whether the platform currently holds the follower
// role (in cluster mode this can change live).
func (p *Platform) IsFollower() bool { return p.role.Load() == roleFollower }

// LeaderURL returns the current leader's base URL: the followed leader
// on a follower, the node's own advertised URL on an elected leader,
// "" on a standalone leader or while an election is unresolved.
func (p *Platform) LeaderURL() string {
	if p.role.Load() == roleLeader {
		return p.leaderHint()
	}
	if f := p.followP.Load(); f != nil {
		return f.url
	}
	return p.leaderHint()
}

// ReplicationApplied returns the last leader sequence folded into the
// local store (0 on a leader).
func (p *Platform) ReplicationApplied() uint64 {
	if f := p.followP.Load(); f != nil {
		return f.applied.Load()
	}
	return 0
}

// ReplicationLeaderTail returns the leader's journal tail observed at
// the most recent poll (0 before the first successful poll).
func (p *Platform) ReplicationLeaderTail() uint64 {
	if f := p.followP.Load(); f != nil {
		return f.leaderTail.Load()
	}
	return 0
}

// ReplicationLag returns how many journaled leader events this follower
// has not yet applied, per the most recent poll — the "bounded,
// observable lag" healthz reports. 0 on a leader and on a caught-up
// follower; while disconnected it is a lower bound (the leader keeps
// writing but the observed tail freezes).
func (p *Platform) ReplicationLag() uint64 {
	f := p.followP.Load()
	if f == nil {
		return 0
	}
	tail, applied := f.leaderTail.Load(), f.applied.Load()
	if tail <= applied {
		return 0
	}
	return tail - applied
}

// ReplicationBootstraps counts snapshot bootstraps since Open (1 for a
// fresh follower; more after retention or feed holes forced re-syncs).
func (p *Platform) ReplicationBootstraps() uint64 {
	if f := p.followP.Load(); f != nil {
		return f.bootstraps.Load()
	}
	return 0
}

// ReplicationFenced counts stale-epoch rejections — batches, feeds or
// snapshots from a deposed leader this follower refused to apply.
func (p *Platform) ReplicationFenced() uint64 {
	if f := p.followP.Load(); f != nil {
		return f.fenced.Load()
	}
	return 0
}

// LastReplicationError returns the tail loop's most recent failure, or
// nil when the loop is healthy (or the platform is a leader).
func (p *Platform) LastReplicationError() error {
	f := p.followP.Load()
	if f == nil {
		return nil
	}
	if box := f.lastErr.Load(); box != nil {
		return box.err
	}
	return nil
}

// --- Leader-side feed ------------------------------------------------------------

// ErrNoJournal is returned by ReplicationFeed on in-memory platforms:
// without a durable change journal there is nothing for followers to
// tail.
var ErrNoJournal = errors.New("hive: platform has no change journal (in-memory store); followers need -data")

// ReplicationFeed reads up to max journaled change batches after
// sequence `from`, long-polling up to wait for new data when the caller
// is caught up. It returns the batches plus the current journal tail.
// journal.ErrCompacted (mapped to the compacted API code by the server)
// means the range was dropped by retention. Served on any journaled
// node, so followers can chain.
//
// pollerCommit is the caller's persisted cluster commit index: a parked
// long-poll is released early when this node's commit index advances
// past it, so followers adopt a fresh durability watermark within a
// round-trip of the quorum forming instead of a full poll period later.
// Callers that don't track a commit index pass ^uint64(0) to opt out.
func (p *Platform) ReplicationFeed(ctx context.Context, from uint64, max int, wait time.Duration, pollerCommit uint64) ([]social.ReplicationBatch, uint64, error) {
	if !p.store.Journaled() {
		return nil, 0, ErrNoJournal
	}
	batches, err := p.store.ChangesSince(from, max)
	if err != nil {
		return nil, 0, err
	}
	_, tail, _ := p.store.JournalStats()
	// Long-poll only when genuinely caught up (tail == from). A tail
	// *behind* from means the caller replicated from someone else — it
	// needs that signal immediately (its regression detector triggers a
	// re-bootstrap), not after the wait expires.
	if len(batches) == 0 && wait > 0 && tail >= from {
		waitCtx, cancel := context.WithTimeout(ctx, wait)
		if p.quorumK > 0 && p.store.CommitIndex() > pollerCommit {
			cancel() // the poller's watermark is already behind: answer now
		} else if p.quorumK > 0 {
			// Watch for a quorum forming while the poll is parked: the
			// commit-index advance is news the poller must carry even when
			// no new batches follow it (the batch that committed was
			// delivered on a previous poll).
			go func() {
				for {
					p.ackMu.Lock()
					ch := p.ackCh
					p.ackMu.Unlock()
					if p.store.CommitIndex() > pollerCommit {
						cancel()
						return
					}
					select {
					case <-ch:
					case <-waitCtx.Done():
						return
					}
				}
			}()
		}
		if p.store.WaitChanges(waitCtx.Done(), from) {
			batches, err = p.store.ChangesSince(from, max)
		}
		cancel()
		if err != nil {
			return nil, 0, err
		}
		_, tail, _ = p.store.JournalStats()
	}
	return batches, tail, nil
}

// ReplicationSnapshot captures the full bootstrap image: the store's
// entire kv state and the change-sequence watermark it covers.
func (p *Platform) ReplicationSnapshot() (seq uint64, entries map[string][]byte, err error) {
	if !p.store.Journaled() {
		return 0, nil, ErrNoJournal
	}
	seq, entries = p.store.SnapshotForReplication()
	return seq, entries, nil
}
