// Package kvstore is a stub of the backing key-value store.
package kvstore

type KV struct{}

func (k *KV) Put(key string, v []byte) error           { return nil }
func (k *KV) Delete(key string) error                  { return nil }
func (k *KV) Apply(b any) error                        { return nil }
func (k *KV) ApplyQuiet(b any) error                   { return nil }
func (k *KV) ImportSnapshot(m map[string][]byte) error { return nil }
func (k *KV) Get(key string) ([]byte, error)           { return nil, nil }
