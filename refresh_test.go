package hive_test

import (
	"sync"
	"testing"
	"time"

	"hive"
	"hive/internal/workload"
)

func refreshPlatform(t *testing.T, users int, opts ...func(*hive.Options)) *hive.Platform {
	t.Helper()
	o := hive.Options{}
	for _, fn := range opts {
		fn(&o)
	}
	p, err := hive.Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	if err := ds.Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	return p
}

func noDeltas(o *hive.Options) { o.DisableDeltas = true }

// TestSnapshotLifecycle covers the delta-world snapshot lifecycle: a
// write through the raw store is folded into the serving snapshot
// synchronously (one delta swap), so the platform is *current* right
// after the write — only unapplied events would make it stale.
func TestSnapshotLifecycle(t *testing.T) {
	p := refreshPlatform(t, 12)
	if p.Snapshot() != nil {
		t.Fatal("snapshot before first build")
	}
	if !p.Stale() || p.Generation() != 0 {
		t.Fatalf("pre-build state: stale=%v gen=%d", p.Stale(), p.Generation())
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	first := p.Snapshot()
	if first == nil || p.Stale() || p.Generation() != 1 {
		t.Fatalf("post-build state: snap=%v stale=%v gen=%d", first, p.Stale(), p.Generation())
	}
	if err := p.LastRefreshError(); err != nil {
		t.Fatalf("LastRefreshError after success = %v", err)
	}
	if c := p.Compactions(); c != 1 {
		t.Fatalf("compactions = %d, want 1", c)
	}

	// A write through the raw store — bypassing the Platform wrappers —
	// feeds the typed change log and applies as a synchronous delta: by
	// the time the write returns, a *new* snapshot serves it and the
	// platform is current, not stale.
	if err := p.Store().PutPaper(hive.Paper{
		ID: "p-delta", Title: "Freshly published delta paper",
		Abstract: "Visible without a rebuild.", Authors: []string{p.Users()[0]},
	}); err != nil {
		t.Fatal(err)
	}
	if p.Stale() {
		t.Fatal("snapshot stale after the delta applied (applied overlay means current)")
	}
	second := p.Snapshot()
	if second == first {
		t.Fatal("write did not swap in a delta snapshot")
	}
	if p.DeltasApplied() == 0 {
		t.Fatal("no delta recorded")
	}
	if res := second.Search("freshly published delta paper", 5); len(res) == 0 {
		t.Fatal("write not visible in search through the delta snapshot")
	}
	// The old snapshot still serves, without the write (readers holding
	// it mid-request are unaffected by the swap).
	if res := first.Search("freshly published delta paper", 5); len(res) != 0 {
		t.Fatal("previous snapshot mutated by the delta")
	}

	// Engine() is read-your-writes but needs no rebuild: the delta
	// already applied.
	gen := p.Generation()
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if eng != second || p.Generation() != gen {
		t.Fatalf("Engine() rebuilt a current snapshot: gen %d -> %d", gen, p.Generation())
	}

	// Refresh stays available as explicit compaction: it folds the
	// overlay into a fresh base and clears the delta counters.
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ds := p.Snapshot().DeltaStats(); ds.Deltas != 0 || ds.OverlayDocs != 0 {
		t.Fatalf("compaction left delta state: %+v", ds)
	}
}

// TestSnapshotLifecycleNoDeltas pins the pre-delta behavior behind
// Options.DisableDeltas: writes only mark the snapshot stale and
// Engine() repairs with a full rebuild.
func TestSnapshotLifecycleNoDeltas(t *testing.T) {
	p := refreshPlatform(t, 12, noDeltas)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	first := p.Snapshot()
	if err := p.Store().PutUser(hive.User{ID: "newbie", Name: "New"}); err != nil {
		t.Fatal(err)
	}
	if !p.Stale() {
		t.Fatal("store write did not mark snapshot stale")
	}
	if p.Snapshot() != first {
		t.Fatal("snapshot changed without a refresh")
	}
	eng, err := p.Engine() // read-your-writes: rebuilds because stale
	if err != nil {
		t.Fatal(err)
	}
	if eng == first {
		t.Fatal("Engine() returned the stale snapshot")
	}
	if p.Stale() {
		t.Fatalf("still stale after Engine(): gen=%d", p.Generation())
	}
}

// TestPendingOverflowFallsBackToCompaction floods the event queue while
// no snapshot exists: the queue overflows, staleness persists, and the
// next refresh recovers everything with one full build.
func TestPendingOverflowFallsBackToCompaction(t *testing.T) {
	p := refreshPlatform(t, 8) // loader queues thousands of events pre-build
	if !p.Stale() {
		t.Fatal("want stale before the first build")
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	if p.Stale() {
		t.Fatal("stale after compaction")
	}
	// Everything the flood wrote is served.
	eng := p.Snapshot()
	if eng == nil || len(p.Users()) < 8 {
		t.Fatalf("snapshot incomplete after overflow compaction")
	}
}

// TestRefreshSingleFlight asserts that concurrent Refresh calls
// coalesce into far fewer rebuilds than callers.
func TestRefreshSingleFlight(t *testing.T) {
	p := refreshPlatform(t, 24)
	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := p.Refresh(); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if g := p.Generation(); g == 0 || g >= callers {
		t.Fatalf("generation = %d after %d concurrent Refresh calls, want coalescing", g, callers)
	}
}

// TestReadsServeOldSnapshotDuringRebuild hammers Snapshot/knowledge
// reads while rebuilds run in a loop: readers must always observe a
// fully built snapshot, never nil and never an error.
func TestReadsServeOldSnapshotDuringRebuild(t *testing.T) {
	p := refreshPlatform(t, 16)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	uid := p.Users()[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng := p.Snapshot()
				if eng == nil {
					t.Error("nil snapshot during rebuild")
					return
				}
				if _, err := eng.RecommendPeers(uid, 3); err != nil {
					t.Errorf("read during rebuild: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		// Mutate so each refresh really rebuilds, then swap.
		if err := p.RegisterUser(hive.User{ID: "loadgen", Name: "L", Bio: time.Now().String()}); err != nil {
			t.Fatal(err)
		}
		if err := p.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAutoRefresh(t *testing.T) {
	// Deltas off: staleness persists until the auto loop compacts, which
	// is exactly what this test observes.
	p := refreshPlatform(t, 8, noDeltas)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	gen := p.Generation()
	p.AutoRefresh(10 * time.Millisecond)
	defer p.StopAutoRefresh()

	// No writes -> no rebuilds, the loop must not churn.
	time.Sleep(50 * time.Millisecond)
	if g := p.Generation(); g != gen {
		t.Fatalf("auto-refresh rebuilt a clean snapshot: gen %d -> %d", gen, g)
	}

	if err := p.RegisterUser(hive.User{ID: "late", Name: "Late"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Generation() == gen {
		if time.Now().After(deadline) {
			t.Fatal("auto-refresh did not pick up the write")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.Stale() {
		t.Fatal("still stale after auto-refresh")
	}
}
