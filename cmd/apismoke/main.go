// Command apismoke is the end-to-end contract check behind
// `make api-smoke`: it starts a real hived process, then drives the
// entire /api/v1 surface through the client SDK — typed mutations,
// batch ingest, every knowledge read, cursor pagination, conditional
// GET revalidation, typed errors and the legacy-alias deprecation
// headers — and exits non-zero on the first contract violation.
//
// With -follow (the `make repl-smoke` mode) it instead boots a durable
// *leader* and a *follower* tailing it, then checks the replication
// contract end to end: the follower bootstraps from the leader's
// snapshot, a publish on the leader becomes searchable on the follower
// in under a second, follower writes answer with the not_leader
// envelope naming the leader, and follower healthz reports the
// follower role with zero lag once converged.
//
// Usage:
//
//	apismoke [-hived bin/hived] [-addr 127.0.0.1:18080] [-seed 24] [-follow]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"time"

	"hive/api"
	"hive/client"
)

func main() {
	hived := flag.String("hived", "bin/hived", "path to the hived binary")
	addr := flag.String("addr", "127.0.0.1:18080", "address to run hived on")
	seed := flag.Int("seed", 24, "synthetic workload size")
	follow := flag.Bool("follow", false, "run the leader+follower replication scenario instead")
	flag.Parse()

	name, fn := "api-smoke", run
	if *follow {
		name, fn = "repl-smoke", runRepl
	}
	if err := fn(*hived, *addr, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "%s: FAIL: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: OK\n", name)
}

// startHived launches one hived with extra flags and returns a cleanup.
func startHived(hived string, args ...string) (func(), error) {
	cmd := exec.Command(hived, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start hived: %w", err)
	}
	return func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}, nil
}

func run(hived, addr string, seed int) error {
	stop, err := startHived(hived,
		"-addr", addr,
		"-seed", fmt.Sprint(seed),
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := "http://" + addr
	c := client.New(base, client.WithETagCache())

	// Wait for the server to come up with a built snapshot.
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}

	steps := []struct {
		name string
		fn   func(context.Context, *client.Client, string) error
	}{
		{"typed mutations", stepMutations},
		{"batch ingest", stepBatch},
		{"entity reads + feeds", stepReads},
		{"knowledge services", stepKnowledge},
		{"cursor pagination", stepPagination},
		{"conditional GETs (ETag/304)", stepConditional},
		{"typed errors", stepErrors},
		{"legacy alias deprecation", stepLegacy},
	}
	for _, s := range steps {
		if err := s.fn(ctx, c, base); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("api-smoke: %-30s ok\n", s.name)
	}
	return nil
}

func waitHealthy(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		h, err := c.Healthz(ctx)
		if err == nil && h.Status == "ok" && h.Snapshot {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("hived did not become healthy in 30s")
}

func stepMutations(ctx context.Context, c *client.Client, _ string) error {
	if err := c.CreateUser(ctx, api.User{ID: "smoke", Name: "Smoke", Interests: []string{"graphs"}}); err != nil {
		return err
	}
	if err := c.CreateConference(ctx, api.Conference{ID: "smokeconf", Name: "SmokeConf"}); err != nil {
		return err
	}
	if err := c.CreateSession(ctx, api.Session{ID: "smoke-s1", ConferenceID: "smokeconf",
		Title: "Smoke session", Hashtag: "#smoke"}); err != nil {
		return err
	}
	if err := c.CreatePaper(ctx, api.Paper{ID: "smoke-p1", Title: "Smoke testing at scale",
		Abstract: "We smoke-test APIs.", Authors: []string{"smoke"},
		ConferenceID: "smokeconf", SessionID: "smoke-s1"}); err != nil {
		return err
	}
	if err := c.CreatePresentation(ctx, api.Presentation{ID: "smoke-pr1", PaperID: "smoke-p1",
		Owner: "smoke", Text: "Smoke slides with enough text for snippets."}); err != nil {
		return err
	}
	if err := c.CheckIn(ctx, "smoke-s1", "smoke"); err != nil {
		return err
	}
	if err := c.Ask(ctx, api.Question{ID: "smoke-q1", Author: "smoke", Target: "smoke-p1", Text: "Works?"}); err != nil {
		return err
	}
	if err := c.Answer(ctx, api.Answer{ID: "smoke-a1", QuestionID: "smoke-q1", Author: "smoke", Text: "Yes."}); err != nil {
		return err
	}
	if err := c.Comment(ctx, api.Comment{ID: "smoke-c1", Author: "smoke", Target: "smoke-p1", Text: "Nice."}); err != nil {
		return err
	}
	if err := c.CreateWorkpad(ctx, api.Workpad{ID: "smoke-w1", Owner: "smoke", Name: "smoke ctx"}); err != nil {
		return err
	}
	if err := c.AddWorkpadItem(ctx, "smoke-w1", api.WorkpadItem{Kind: "paper", Ref: "smoke-p1"}); err != nil {
		return err
	}
	if err := c.ActivateWorkpad(ctx, "smoke", "smoke-w1"); err != nil {
		return err
	}
	return c.Refresh(ctx, true)
}

func stepBatch(ctx context.Context, c *client.Client, _ string) error {
	var ents []api.BatchEntity
	for i := 0; i < 5; i++ {
		ent, err := api.NewBatchEntity(api.KindUser, api.User{
			ID: fmt.Sprintf("smoke-b%d", i), Name: "Batcher", Interests: []string{"graphs"}})
		if err != nil {
			return err
		}
		ents = append(ents, ent)
	}
	conn, err := api.NewBatchEntity(api.KindConnection, api.ConnectRequest{A: "smoke-b0", B: "smoke-b1"})
	if err != nil {
		return err
	}
	ents = append(ents, conn)
	br, err := c.Batch(ctx, ents)
	if err != nil {
		return err
	}
	if br.Applied != len(ents) || br.Failed != 0 {
		return fmt.Errorf("batch response %+v", br)
	}
	return nil
}

func stepReads(ctx context.Context, c *client.Client, _ string) error {
	u, err := c.GetUser(ctx, "smoke")
	if err != nil || u.Name != "Smoke" {
		return fmt.Errorf("GetUser = %+v, %v", u, err)
	}
	att, err := c.Attendees(ctx, "smoke-s1", "", 0)
	if err != nil || len(att.Items) != 1 {
		return fmt.Errorf("attendees = %+v, %v", att, err)
	}
	wp, err := c.ActiveWorkpad(ctx, "smoke")
	if err != nil || wp.ID != "smoke-w1" {
		return fmt.Errorf("workpad = %+v, %v", wp, err)
	}
	evs, err := c.TagEvents(ctx, "#smoke", "", 0)
	if err != nil || len(evs.Items) == 0 {
		return fmt.Errorf("tag events = %+v, %v", evs, err)
	}
	if _, err := c.Feed(ctx, "smoke", "", 10); err != nil {
		return err
	}
	return nil
}

func stepKnowledge(ctx context.Context, c *client.Client, _ string) error {
	if _, err := c.Search(ctx, "smoke testing", "", "", 5); err != nil {
		return err
	}
	if _, err := c.Search(ctx, "smoke testing", "smoke", "", 5); err != nil {
		return err
	}
	if _, err := c.PeerRecommendations(ctx, "smoke", "", 5); err != nil {
		return err
	}
	if _, err := c.ResourceRecommendations(ctx, "smoke", true, "", 5); err != nil {
		return err
	}
	if _, err := c.SuggestSessions(ctx, "smoke", "smokeconf", "", 3); err != nil {
		return err
	}
	snips, err := c.Preview(ctx, "smoke", "pres/smoke-pr1", 2)
	if err != nil || len(snips) == 0 {
		return fmt.Errorf("preview = %v, %v", snips, err)
	}
	if _, err := c.Digest(ctx, "smoke", 4); err != nil {
		return err
	}
	comms, err := c.Communities(ctx, "", 0)
	if err != nil || len(comms.Items) == 0 {
		return fmt.Errorf("communities = %+v, %v", comms, err)
	}
	if _, err := c.History(ctx, "smoke", "checkin", false, "", 0); err != nil {
		return err
	}
	if _, err := c.ResourceRelationship(ctx, "smoke", "smoke-p1"); err != nil {
		return err
	}
	if _, err := c.KnowledgePaths(ctx, "user:smoke", "session:smoke-s1", 2); err != nil {
		return err
	}
	ex, err := c.Relationship(ctx, "smoke-b0", "smoke-b1")
	if err != nil || len(ex.Evidences) == 0 {
		return fmt.Errorf("relationship = %+v, %v", ex, err)
	}
	return nil
}

func stepPagination(ctx context.Context, c *client.Client, _ string) error {
	pg, err := c.Users(ctx, "", 5)
	if err != nil {
		return err
	}
	if len(pg.Items) != 5 || pg.NextCursor == "" {
		return fmt.Errorf("first page = %d items, cursor %q", len(pg.Items), pg.NextCursor)
	}
	all, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
		return c.Users(ctx, cur, 7)
	})
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, id := range all {
		if seen[id] {
			return fmt.Errorf("duplicate id %q across pages", id)
		}
		seen[id] = true
	}
	if !seen["smoke"] || !seen["smoke-b4"] {
		return fmt.Errorf("page walk missed seeded users (%d total)", len(all))
	}
	return nil
}

func stepConditional(ctx context.Context, c *client.Client, _ string) error {
	// Settle the snapshot, then read the same knowledge URL twice: the
	// second must revalidate from the ETag cache.
	if err := c.Refresh(ctx, true); err != nil {
		return err
	}
	if _, err := c.Search(ctx, "smoke conditional", "", "", 5); err != nil {
		return err
	}
	_, before := c.Stats()
	if _, err := c.Search(ctx, "smoke conditional", "", "", 5); err != nil {
		return err
	}
	if _, after := c.Stats(); after != before+1 {
		return fmt.Errorf("expected one 304 revalidation, cache hits %d -> %d", before, after)
	}
	return nil
}

func stepErrors(ctx context.Context, c *client.Client, _ string) error {
	_, err := c.GetUser(ctx, "ghost-user")
	if !api.IsCode(err, api.CodeNotFound) {
		return fmt.Errorf("missing user err = %v, want code %s", err, api.CodeNotFound)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusNotFound {
		return fmt.Errorf("err = %v, want HTTP 404", err)
	}
	if err := c.CreateUser(ctx, api.User{}); !api.IsCode(err, api.CodeInvalidArgument) {
		return fmt.Errorf("invalid user err = %v", err)
	}
	return nil
}

// --- Replication scenario (`make repl-smoke`) ----------------------------------

// runRepl boots a durable leader plus a follower tailing it and drives
// the replication contract end to end.
func runRepl(hived, addr string, seed int) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("bad -addr port: %w", err)
	}
	leaderAddr := addr
	followerAddr := net.JoinHostPort(host, fmt.Sprint(p+1))

	dir, err := os.MkdirTemp("", "hive-repl-leader-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	stopLeader, err := startHived(hived,
		"-addr", leaderAddr,
		"-data", dir,
		"-seed", fmt.Sprint(seed),
		"-compact-interval", "1s",
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stopLeader()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	leaderBase := "http://" + leaderAddr
	lc := client.New(leaderBase)
	if err := waitHealthy(ctx, lc); err != nil {
		return fmt.Errorf("leader: %w", err)
	}

	// The follower bootstraps from the leader's snapshot during boot:
	// a healthy follower has already imported and built.
	stopFollower, err := startHived(hived,
		"-addr", followerAddr,
		"-follow", leaderBase,
		"-quiet",
	)
	if err != nil {
		return err
	}
	defer stopFollower()
	fc := client.New("http://" + followerAddr)
	if err := waitHealthy(ctx, fc); err != nil {
		return fmt.Errorf("follower: %w", err)
	}

	steps := []struct {
		name string
		fn   func() error
	}{
		{"roles reported in healthz", func() error { return stepReplRoles(ctx, lc, fc, leaderBase) }},
		{"bootstrap converged reads", func() error { return stepReplBootstrap(ctx, lc, fc) }},
		{"leader write -> follower read", func() error { return stepReplPropagation(ctx, lc, fc) }},
		{"follower rejects writes", func() error { return stepReplNotLeader(ctx, fc, leaderBase) }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("repl-smoke: %-30s ok\n", s.name)
	}
	return nil
}

func stepReplRoles(ctx context.Context, lc, fc *client.Client, leaderBase string) error {
	lh, err := lc.Healthz(ctx)
	if err != nil {
		return err
	}
	if lh.Replication.Role != api.RoleLeader || lh.Replication.JournalTail == 0 {
		return fmt.Errorf("leader healthz replication = %+v", lh.Replication)
	}
	fh, err := fc.Healthz(ctx)
	if err != nil {
		return err
	}
	if fh.Replication.Role != api.RoleFollower || fh.Replication.LeaderURL != leaderBase {
		return fmt.Errorf("follower healthz replication = %+v", fh.Replication)
	}
	return nil
}

// stepReplBootstrap: the seeded corpus must already be readable on the
// follower, identically to the leader.
func stepReplBootstrap(ctx context.Context, lc, fc *client.Client) error {
	lu, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
		return lc.Users(ctx, cur, 0)
	})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		fu, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
			return fc.Users(ctx, cur, 0)
		})
		if err != nil {
			return err
		}
		if len(fu) == len(lu) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower has %d users, leader %d", len(fu), len(lu))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// stepReplPropagation: a publish on the leader becomes searchable on
// the follower in under a second.
func stepReplPropagation(ctx context.Context, lc, fc *client.Client) error {
	if err := lc.CreateUser(ctx, api.User{ID: "repl-author", Name: "Repl", Interests: []string{"replication"}}); err != nil {
		return err
	}
	if err := lc.CreatePaper(ctx, api.Paper{
		ID: "repl-p1", Title: "Replicated publish propagation",
		Abstract: "Searchable on the follower within one second.",
		Authors:  []string{"repl-author"},
	}); err != nil {
		return err
	}
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		pg, err := fc.Search(ctx, "replicated publish propagation", "", "", 5)
		if err != nil {
			return err
		}
		if len(pg.Items) > 0 {
			d := time.Since(start)
			fmt.Printf("repl-smoke: propagation latency %v\n", d.Round(time.Millisecond))
			if d > time.Second {
				return fmt.Errorf("propagation took %v, want < 1s", d)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leader publish never became searchable on follower")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func stepReplNotLeader(ctx context.Context, fc *client.Client, leaderBase string) error {
	err := fc.CreateUser(ctx, api.User{ID: "rejected", Name: "R"})
	if !api.IsCode(err, api.CodeNotLeader) {
		return fmt.Errorf("follower write err = %v, want code %s", err, api.CodeNotLeader)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusConflict {
		return fmt.Errorf("follower write err = %v, want HTTP 409", err)
	}
	if got := ae.Details["leader"]; got != leaderBase {
		return fmt.Errorf("details.leader = %v, want %q", got, leaderBase)
	}
	// Batch writes hit the store directly and are guarded separately.
	ent, err := api.NewBatchEntity(api.KindUser, api.User{ID: "rejected2", Name: "R"})
	if err != nil {
		return err
	}
	if _, err := fc.Batch(ctx, []api.BatchEntity{ent}); !api.IsCode(err, api.CodeNotLeader) {
		return fmt.Errorf("follower batch err = %v, want code %s", err, api.CodeNotLeader)
	}
	return nil
}

func stepLegacy(ctx context.Context, _ *client.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy healthz = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		return fmt.Errorf("legacy route missing Deprecation header")
	}
	return nil
}
