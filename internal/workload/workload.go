// Package workload generates deterministic synthetic conference data for
// Hive. The paper's deployments (ACM MM'11, SIGMOD'12) ran on live user
// data we cannot obtain; this generator is the documented substitution
// (DESIGN.md §2): it produces conference series with sessions, papers
// with topical text and citations, researchers with interests and
// affiliations, and interaction traces (check-ins, questions, answers,
// comments, follows, connections, workpads) with Zipf-distributed
// popularity, which is the structural regime of real scholarly data.
package workload

import (
	"fmt"
	"math/rand"

	"hive/internal/social"
)

// Topics is the fixed topic vocabulary; each topic contributes terms to
// titles, abstracts and interests.
var Topics = []struct {
	Name  string
	Terms []string
}{
	{"graphs", []string{"graph", "partitioning", "traversal", "vertex", "edge", "distributed", "processing", "pregel", "connectivity", "pagerank"}},
	{"social", []string{"social", "network", "community", "influence", "diffusion", "friendship", "twitter", "recommendation", "peer", "collaboration"}},
	{"tensors", []string{"tensor", "decomposition", "factorization", "stream", "sketch", "compressed", "sensing", "multilinear", "rank", "monitoring"}},
	{"query", []string{"query", "optimization", "join", "index", "selectivity", "cardinality", "plan", "cost", "execution", "relational"}},
	{"text", []string{"text", "retrieval", "ranking", "snippet", "summarization", "keyword", "document", "corpus", "relevance", "annotation"}},
	{"rdf", []string{"rdf", "semantic", "triple", "sparql", "ontology", "linked", "knowledge", "reasoning", "path", "weighted"}},
	{"storage", []string{"storage", "log", "transaction", "recovery", "durability", "buffer", "checkpoint", "compaction", "write", "ahead"}},
	{"mining", []string{"mining", "pattern", "clustering", "classification", "anomaly", "detection", "frequent", "itemset", "outlier", "temporal"}},
}

// Config parameterizes generation. Zero fields take defaults.
type Config struct {
	Seed            int64
	Users           int // default 60
	Series          int // conference series, default 2
	YearsPerSeries  int // editions per series, default 2
	SessionsPerConf int // default 6
	PapersPerSess   int // default 3
	CitationsMean   int // mean citations per paper, default 4
	// Interaction volume.
	CheckinsPerUser  int // default 3
	QuestionsPerUser int // default 2
	FollowsPerUser   int // default 3
	ConnectsPerUser  int // default 2
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Users, 60)
	def(&c.Series, 2)
	def(&c.YearsPerSeries, 2)
	def(&c.SessionsPerConf, 6)
	def(&c.PapersPerSess, 3)
	def(&c.CitationsMean, 4)
	def(&c.CheckinsPerUser, 3)
	def(&c.QuestionsPerUser, 2)
	def(&c.FollowsPerUser, 3)
	def(&c.ConnectsPerUser, 2)
	return c
}

// Dataset is the generated world plus its interaction trace, in a form
// that can be loaded into a social.Store or inspected directly.
type Dataset struct {
	Users         []social.User
	Conferences   []social.Conference
	Sessions      []social.Session
	Papers        []social.Paper
	Presentations []social.Presentation

	// Interactions, in application order.
	Connections [][2]string // user pairs
	Follows     [][2]string // follower, followee
	CheckIns    [][2]string // session, user
	Questions   []social.Question
	Answers     []social.Answer
	Comments    []social.Comment
	Workpads    []social.Workpad

	// TopicOfUser records each user's dominant topic index — the planted
	// ground truth that recommendation-quality experiments score against.
	TopicOfUser map[string]int
	// TopicOfPaper records each paper's topic index.
	TopicOfPaper map[string]int
}

// Generate builds a dataset from the config, deterministically for a
// given seed.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{TopicOfUser: map[string]int{}, TopicOfPaper: map[string]int{}}

	affils := []string{"ASU", "UniTo", "MPI", "NUS", "EPFL", "CMU"}
	// Users with a dominant topic and 1-2 secondary interests.
	for i := 0; i < cfg.Users; i++ {
		id := fmt.Sprintf("u%03d", i)
		topic := i % len(Topics)
		ds.TopicOfUser[id] = topic
		interests := []string{Topics[topic].Name}
		if rng.Float64() < 0.5 {
			interests = append(interests, Topics[rng.Intn(len(Topics))].Name)
		}
		ds.Users = append(ds.Users, social.User{
			ID:          id,
			Name:        fmt.Sprintf("Researcher %03d", i),
			Affiliation: affils[i%len(affils)],
			Interests:   interests,
		})
	}

	// Conferences: series x years.
	seriesNames := []string{"edbt", "sigmod", "vldb", "cikm", "icde", "kdd"}
	for s := 0; s < cfg.Series; s++ {
		for y := 0; y < cfg.YearsPerSeries; y++ {
			year := 2011 + y
			name := seriesNames[s%len(seriesNames)]
			ds.Conferences = append(ds.Conferences, social.Conference{
				ID:     fmt.Sprintf("%s%02d", name, year-2000),
				Name:   fmt.Sprintf("%s %d", name, year),
				Series: name,
				Year:   year,
			})
		}
	}

	// Sessions per conference, each themed on a topic.
	for _, conf := range ds.Conferences {
		for si := 0; si < cfg.SessionsPerConf; si++ {
			topic := si % len(Topics)
			sess := social.Session{
				ID:           fmt.Sprintf("%s-s%02d", conf.ID, si),
				ConferenceID: conf.ID,
				Title:        titleFor(rng, topic),
				Track:        Topics[topic].Name,
				Hashtag:      fmt.Sprintf("#%s%s", conf.ID, Topics[topic].Name),
			}
			// Chair: a user from the same topic.
			sess.Chair = ds.userForTopic(rng, topic)
			ds.Sessions = append(ds.Sessions, sess)
		}
	}

	// Papers: authored by topic-matched users, cited with preferential
	// attachment (Zipf-like in-degree).
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(maxInt(1, cfg.Users-1)))
	var allPapers []string
	for _, sess := range ds.Sessions {
		topic := topicIndex(sess.Track)
		for pi := 0; pi < cfg.PapersPerSess; pi++ {
			id := fmt.Sprintf("p-%s-%d", sess.ID, pi)
			nAuthors := 1 + rng.Intn(3)
			authors := make([]string, 0, nAuthors)
			seen := map[string]bool{}
			// Bounded draws: small user pools may not hold nAuthors
			// distinct same-topic users, so accept fewer after enough
			// attempts rather than spinning.
			for attempt := 0; len(authors) < nAuthors && attempt < 8*nAuthors; attempt++ {
				a := ds.userForTopic(rng, topic)
				if !seen[a] {
					seen[a] = true
					authors = append(authors, a)
				}
			}
			p := social.Paper{
				ID:           id,
				Title:        titleFor(rng, topic),
				Abstract:     abstractFor(rng, topic),
				Authors:      authors,
				ConferenceID: sess.ConferenceID,
				SessionID:    sess.ID,
				Year:         2011,
			}
			// Citations: preferential attachment over earlier papers.
			nCites := poissonish(rng, cfg.CitationsMean)
			for c := 0; c < nCites && len(allPapers) > 0; c++ {
				idx := int(zipf.Uint64()) % len(allPapers)
				cited := allPapers[idx]
				if cited != id && !contains(p.Citations, cited) {
					p.Citations = append(p.Citations, cited)
				}
			}
			ds.TopicOfPaper[id] = topic
			ds.Papers = append(ds.Papers, p)
			allPapers = append(allPapers, id)

			// First author uploads slides for ~60% of papers.
			if rng.Float64() < 0.6 {
				ds.Presentations = append(ds.Presentations, social.Presentation{
					ID:      "pres-" + id,
					PaperID: id,
					Owner:   authors[0],
					Title:   p.Title + " (slides)",
					Text:    abstractFor(rng, topic),
				})
			}
		}
	}

	// Interactions. Topic homophily: users mostly interact within topic.
	for _, u := range ds.Users {
		topic := ds.TopicOfUser[u.ID]
		// Check-ins: prefer sessions of own topic.
		for c := 0; c < cfg.CheckinsPerUser; c++ {
			sess := ds.sessionForTopic(rng, pickTopic(rng, topic))
			if sess != "" {
				ds.CheckIns = append(ds.CheckIns, [2]string{sess, u.ID})
			}
		}
		// Follows and connections: prefer same-topic users.
		for f := 0; f < cfg.FollowsPerUser; f++ {
			o := ds.userForTopic(rng, pickTopic(rng, topic))
			if o != u.ID {
				ds.Follows = append(ds.Follows, [2]string{u.ID, o})
			}
		}
		for f := 0; f < cfg.ConnectsPerUser; f++ {
			o := ds.userForTopic(rng, pickTopic(rng, topic))
			if o != u.ID {
				ds.Connections = append(ds.Connections, [2]string{u.ID, o})
			}
		}
	}
	// Questions target topic-matched papers; answers come from authors.
	qi := 0
	for _, u := range ds.Users {
		topic := ds.TopicOfUser[u.ID]
		for q := 0; q < cfg.QuestionsPerUser; q++ {
			paper := ds.paperForTopic(rng, pickTopic(rng, topic))
			if paper == nil {
				continue
			}
			question := social.Question{
				ID:     fmt.Sprintf("q%04d", qi),
				Author: u.ID,
				Target: paper.ID,
				Text:   questionFor(rng, ds.TopicOfPaper[paper.ID]),
			}
			ds.Questions = append(ds.Questions, question)
			if rng.Float64() < 0.7 {
				ds.Answers = append(ds.Answers, social.Answer{
					ID:         fmt.Sprintf("a%04d", qi),
					QuestionID: question.ID,
					Author:     paper.Authors[rng.Intn(len(paper.Authors))],
					Text:       "Thanks — " + questionFor(rng, ds.TopicOfPaper[paper.ID]),
				})
			}
			if rng.Float64() < 0.3 {
				ds.Comments = append(ds.Comments, social.Comment{
					ID:     fmt.Sprintf("c%04d", qi),
					Author: ds.userForTopic(rng, ds.TopicOfPaper[paper.ID]),
					Target: paper.ID,
					Text:   "Interesting result on " + Topics[ds.TopicOfPaper[paper.ID]].Name,
				})
			}
			qi++
		}
	}
	// Workpads: each user gets one workpad seeded with same-topic items.
	for _, u := range ds.Users {
		topic := ds.TopicOfUser[u.ID]
		w := social.Workpad{
			ID:    "w-" + u.ID,
			Owner: u.ID,
			Name:  Topics[topic].Name + " context",
		}
		if p := ds.paperForTopic(rng, topic); p != nil {
			w.Items = append(w.Items, social.WorkpadItem{Kind: social.ItemPaper, Ref: p.ID})
		}
		if s := ds.sessionForTopic(rng, topic); s != "" {
			w.Items = append(w.Items, social.WorkpadItem{Kind: social.ItemSession, Ref: s})
		}
		if o := ds.userForTopic(rng, topic); o != u.ID {
			w.Items = append(w.Items, social.WorkpadItem{Kind: social.ItemUser, Ref: o})
		}
		ds.Workpads = append(ds.Workpads, w)
	}
	return ds
}

// Router is the routed write surface LoadRouted drives: the platform
// mutation methods a sharded deployment uses to place every entity on
// its owning shard. *hive.Sharded satisfies it.
type Router interface {
	RegisterUser(social.User) error
	CreateConference(social.Conference) error
	CreateSession(social.Session) error
	PublishPaper(social.Paper) error
	UploadPresentation(social.Presentation) error
	Connect(a, b string) error
	Connected(a, b string) bool
	Follow(follower, followee string) error
	CheckIn(sessionID, userID string) error
	Ask(social.Question) error
	AnswerQuestion(social.Answer) error
	PostComment(social.Comment) error
	CreateWorkpad(social.Workpad) error
	ActivateWorkpad(owner, workpadID string) error
}

// LoadRouted applies the dataset through a routed mutation surface in
// referential order — the sharded counterpart of Load, where the router
// decides which shard owns each entity. Callers that want the load to
// be one snapshot invalidation per shard wrap the call in the sharded
// platform's Batched.
func (ds *Dataset) LoadRouted(r Router) error {
	for _, u := range ds.Users {
		if err := r.RegisterUser(u); err != nil {
			return err
		}
	}
	for _, c := range ds.Conferences {
		if err := r.CreateConference(c); err != nil {
			return err
		}
	}
	for _, s := range ds.Sessions {
		if err := r.CreateSession(s); err != nil {
			return err
		}
	}
	for _, p := range ds.Papers {
		if err := r.PublishPaper(p); err != nil {
			return err
		}
	}
	for _, pr := range ds.Presentations {
		if err := r.UploadPresentation(pr); err != nil {
			return err
		}
	}
	for _, c := range ds.Connections {
		if c[0] == c[1] || r.Connected(c[0], c[1]) {
			continue
		}
		if err := r.Connect(c[0], c[1]); err != nil {
			return err
		}
	}
	seenFollows := make(map[[2]string]bool, len(ds.Follows))
	for _, f := range ds.Follows {
		if f[0] == f[1] || seenFollows[f] {
			continue
		}
		seenFollows[f] = true
		if err := r.Follow(f[0], f[1]); err != nil {
			return err
		}
	}
	for _, ci := range ds.CheckIns {
		if err := r.CheckIn(ci[0], ci[1]); err != nil {
			return err
		}
	}
	for _, q := range ds.Questions {
		if err := r.Ask(q); err != nil {
			return err
		}
	}
	for _, a := range ds.Answers {
		if err := r.AnswerQuestion(a); err != nil {
			return err
		}
	}
	for _, c := range ds.Comments {
		if err := r.PostComment(c); err != nil {
			return err
		}
	}
	for _, w := range ds.Workpads {
		if err := r.CreateWorkpad(w); err != nil {
			return err
		}
		if err := r.ActivateWorkpad(w.Owner, w.ID); err != nil {
			return err
		}
	}
	return nil
}

// Load applies the dataset to a social store in referential order.
func (ds *Dataset) Load(st *social.Store) error {
	for _, u := range ds.Users {
		if err := st.PutUser(u); err != nil {
			return err
		}
	}
	for _, c := range ds.Conferences {
		if err := st.PutConference(c); err != nil {
			return err
		}
	}
	for _, s := range ds.Sessions {
		if err := st.PutSession(s); err != nil {
			return err
		}
	}
	for _, p := range ds.Papers {
		if err := st.PutPaper(p); err != nil {
			return err
		}
	}
	for _, pr := range ds.Presentations {
		if err := st.PutPresentation(pr); err != nil {
			return err
		}
	}
	for _, c := range ds.Connections {
		if c[0] == c[1] || st.Connected(c[0], c[1]) {
			continue
		}
		if err := st.Connect(c[0], c[1]); err != nil {
			return err
		}
	}
	for _, f := range ds.Follows {
		if f[0] == f[1] || st.FollowsUser(f[0], f[1]) {
			continue
		}
		if err := st.Follow(f[0], f[1]); err != nil {
			return err
		}
	}
	for _, ci := range ds.CheckIns {
		if err := st.CheckIn(ci[0], ci[1]); err != nil {
			return err
		}
	}
	for _, q := range ds.Questions {
		if err := st.AskQuestion(q); err != nil {
			return err
		}
	}
	for _, a := range ds.Answers {
		if err := st.PostAnswer(a); err != nil {
			return err
		}
	}
	for _, c := range ds.Comments {
		if err := st.PostComment(c); err != nil {
			return err
		}
	}
	for _, w := range ds.Workpads {
		if err := st.PutWorkpad(w); err != nil {
			return err
		}
		if err := st.SetActiveWorkpad(w.Owner, w.ID); err != nil {
			return err
		}
	}
	return nil
}

// --- helpers -----------------------------------------------------------------

func (ds *Dataset) userForTopic(rng *rand.Rand, topic int) string {
	// Users are assigned topics round-robin, so topic t lives at indices
	// t, t+|Topics|, ...
	n := len(ds.Users)
	if n == 0 {
		return ""
	}
	first := topic % len(Topics)
	if first >= n {
		// Pools smaller than the topic vocabulary have no user on this
		// topic (Go's truncated division would still yield count 1 below
		// and index past the slice); fall back to any user.
		return ds.Users[rng.Intn(n)].ID
	}
	count := (n-1-first)/len(Topics) + 1
	idx := first + rng.Intn(count)*len(Topics)
	return ds.Users[idx].ID
}

func (ds *Dataset) sessionForTopic(rng *rand.Rand, topic int) string {
	var matches []string
	for _, s := range ds.Sessions {
		if s.Track == Topics[topic%len(Topics)].Name {
			matches = append(matches, s.ID)
		}
	}
	if len(matches) == 0 {
		if len(ds.Sessions) == 0 {
			return ""
		}
		return ds.Sessions[rng.Intn(len(ds.Sessions))].ID
	}
	return matches[rng.Intn(len(matches))]
}

func (ds *Dataset) paperForTopic(rng *rand.Rand, topic int) *social.Paper {
	var matches []int
	for i, p := range ds.Papers {
		if ds.TopicOfPaper[p.ID] == topic%len(Topics) {
			matches = append(matches, i)
		}
	}
	if len(matches) == 0 {
		if len(ds.Papers) == 0 {
			return nil
		}
		return &ds.Papers[rng.Intn(len(ds.Papers))]
	}
	return &ds.Papers[matches[rng.Intn(len(matches))]]
}

// pickTopic returns the user's own topic 80% of the time, a random one
// otherwise — homophily with exploration.
func pickTopic(rng *rand.Rand, own int) int {
	if rng.Float64() < 0.8 {
		return own
	}
	return rng.Intn(len(Topics))
}

func topicIndex(name string) int {
	for i, t := range Topics {
		if t.Name == name {
			return i
		}
	}
	return 0
}

func titleFor(rng *rand.Rand, topic int) string {
	t := Topics[topic%len(Topics)].Terms
	return fmt.Sprintf("%s %s for scalable %s %s",
		capitalize(t[rng.Intn(len(t))]), t[rng.Intn(len(t))],
		t[rng.Intn(len(t))], t[rng.Intn(len(t))])
}

func abstractFor(rng *rand.Rand, topic int) string {
	t := Topics[topic%len(Topics)].Terms
	var out string
	for s := 0; s < 4; s++ {
		out += fmt.Sprintf("We study %s %s with %s %s on large %s workloads. ",
			t[rng.Intn(len(t))], t[rng.Intn(len(t))], t[rng.Intn(len(t))],
			t[rng.Intn(len(t))], t[rng.Intn(len(t))])
	}
	return out
}

func questionFor(rng *rand.Rand, topic int) string {
	t := Topics[topic%len(Topics)].Terms
	return fmt.Sprintf("How does the %s %s interact with %s?",
		t[rng.Intn(len(t))], t[rng.Intn(len(t))], t[rng.Intn(len(t))])
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func poissonish(rng *rand.Rand, mean int) int {
	// Cheap integer approximation: uniform in [0, 2*mean].
	if mean <= 0 {
		return 0
	}
	return rng.Intn(2*mean + 1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
