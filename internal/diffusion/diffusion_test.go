package diffusion

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hive/internal/graph"
)

func buildChain(t *testing.T, weights ...float64) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i <= len(weights); i++ {
		if _, err := g.AddNode(fmt.Sprintf("n%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range weights {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), "e", w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestComputeImpactsChainDecay(t *testing.T) {
	g := buildChain(t, 0.5, 0.5, 0.5)
	imp, err := ComputeImpacts(g, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 3 {
		t.Fatalf("impacts = %v", imp)
	}
	want := []float64{0.5, 0.25, 0.125}
	for i, im := range imp {
		if diff := im.Strength - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("impact[%d] = %v, want %v", i, im.Strength, want[i])
		}
	}
}

func TestComputeImpactsEpsilonTruncation(t *testing.T) {
	g := buildChain(t, 0.5, 0.5, 0.5)
	imp, err := ComputeImpacts(g, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 2 {
		t.Fatalf("truncation failed: %v", imp)
	}
}

func TestComputeImpactsTakesBestPath(t *testing.T) {
	g := graph.New()
	for _, k := range []string{"s", "a", "t"} {
		if _, err := g.AddNode(k, "x"); err != nil {
			t.Fatal(err)
		}
	}
	s, a, tt := graph.NodeID(0), graph.NodeID(1), graph.NodeID(2)
	_ = g.AddEdge(s, tt, "e", 0.3) // direct weak
	_ = g.AddEdge(s, a, "e", 0.9)  // two strong hops: 0.81
	_ = g.AddEdge(a, tt, "e", 0.9)
	imp, err := ComputeImpacts(g, s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range imp {
		if im.Node == tt {
			if diff := im.Strength - 0.81; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("impact on t = %v, want 0.81 (max path)", im.Strength)
			}
			return
		}
	}
	t.Fatal("target not impacted")
}

func TestComputeImpactsCycleTerminates(t *testing.T) {
	g := graph.New()
	_, _ = g.AddNode("a", "x")
	_, _ = g.AddNode("b", "x")
	_ = g.AddEdge(0, 1, "e", 0.9)
	_ = g.AddEdge(1, 0, "e", 0.9)
	imp, err := ComputeImpacts(g, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 1 || imp[0].Node != 1 {
		t.Fatalf("cycle impacts = %v", imp)
	}
}

func TestComputeImpactsValidation(t *testing.T) {
	g := buildChain(t, 0.5)
	if _, err := ComputeImpacts(g, 0, 0); !errors.Is(err, ErrBadParam) {
		t.Fatalf("epsilon 0 err = %v", err)
	}
	if _, err := ComputeImpacts(g, 0, 1.5); !errors.Is(err, ErrBadParam) {
		t.Fatalf("epsilon > 1 err = %v", err)
	}
	if _, err := ComputeImpacts(g, 99, 0.5); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("missing node err = %v", err)
	}
}

func TestComputeImpactsClampsOverweight(t *testing.T) {
	g := buildChain(t, 5.0, 5.0) // weights clamp to 1
	imp, err := ComputeImpacts(g, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range imp {
		if im.Strength > 1 {
			t.Fatalf("impact exceeded 1: %v", im)
		}
	}
}

func randomDiffusionGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(fmt.Sprintf("n%d", i), "x")
	}
	for i := 0; i < m; i++ {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		_ = g.AddEdge(a, b, "e", 0.2+0.8*rng.Float64())
	}
	return g
}

func TestIndexMatchesOnline(t *testing.T) {
	g := randomDiffusionGraph(7, 30, 90)
	const eps = 0.1
	idx, err := BuildIndex(g, eps)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		src := graph.NodeID(s)
		online, err := TopKOnline(g, src, 5, eps)
		if err != nil {
			t.Fatal(err)
		}
		indexed := idx.TopK(src, 5)
		if len(online) != len(indexed) {
			t.Fatalf("src %d: online %d vs indexed %d results", s, len(online), len(indexed))
		}
		for i := range online {
			if online[i].Node != indexed[i].Node ||
				online[i].Strength != indexed[i].Strength {
				t.Fatalf("src %d result %d: online %+v vs indexed %+v",
					s, i, online[i], indexed[i])
			}
		}
	}
}

func TestIndexImpactLookup(t *testing.T) {
	g := buildChain(t, 0.5, 0.5)
	idx, err := BuildIndex(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Impact(0, 2); got != 0.25 {
		t.Fatalf("Impact(0,2) = %v", got)
	}
	if got := idx.Impact(2, 0); got != 0 {
		t.Fatalf("Impact(2,0) = %v, want 0 (no reverse edges)", got)
	}
	if idx.Epsilon() != 0.1 {
		t.Fatalf("Epsilon = %v", idx.Epsilon())
	}
}

func TestIndexReverse(t *testing.T) {
	g := buildChain(t, 0.9, 0.9)
	idx, err := BuildIndex(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rev := idx.Reverse(2)
	if len(rev) != 2 {
		t.Fatalf("Reverse = %v", rev)
	}
	// Node 1 impacts node 2 more strongly (0.9) than node 0 does (0.81).
	if rev[0].Node != 1 || rev[1].Node != 0 {
		t.Fatalf("Reverse order = %v", rev)
	}
}

func TestIndexSize(t *testing.T) {
	g := buildChain(t, 0.9, 0.9)
	idx, _ := BuildIndex(g, 0.1)
	// n0 reaches {1,2}, n1 reaches {2}, n2 reaches {} => 3 pairs.
	if idx.Size() != 3 {
		t.Fatalf("Size = %d, want 3", idx.Size())
	}
}

func TestBuildIndexValidation(t *testing.T) {
	g := buildChain(t, 0.5)
	if _, err := BuildIndex(g, 0); !errors.Is(err, ErrBadParam) {
		t.Fatalf("err = %v", err)
	}
}

func TestPropImpactsBoundedSortedTruncated(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDiffusionGraph(seed, 20, 50)
		const eps = 0.15
		imp, err := ComputeImpacts(g, 0, eps)
		if err != nil {
			return false
		}
		for i, im := range imp {
			if im.Strength < eps || im.Strength > 1 {
				return false
			}
			if i > 0 && im.Strength > imp[i-1].Strength {
				return false
			}
			if im.Node == 0 {
				return false // source never in its own neighborhood
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSmallerEpsilonNeverShrinksNeighborhood(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDiffusionGraph(seed, 15, 40)
		hi, err := ComputeImpacts(g, 0, 0.3)
		if err != nil {
			return false
		}
		lo, err := ComputeImpacts(g, 0, 0.05)
		if err != nil {
			return false
		}
		if len(lo) < len(hi) {
			return false
		}
		// Every high-threshold impact must appear identically at the
		// lower threshold.
		strength := map[graph.NodeID]float64{}
		for _, im := range lo {
			strength[im.Node] = im.Strength
		}
		for _, im := range hi {
			if strength[im.Node] != im.Strength {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
