package social

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestBatchedFiresHooksOnce is the contract behind POST /api/v1/batch:
// N writes inside one Batched pass cost exactly one mutation
// notification (one snapshot invalidation) instead of N.
func TestBatchedFiresHooksOnce(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var fires atomic.Int32
	st.OnMutate(func() { fires.Add(1) })

	const n = 20
	err = st.Batched(func() error {
		for i := 0; i < n; i++ {
			if err := st.PutUser(User{ID: fmt.Sprintf("u%02d", i), Name: "U"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("hook fired %d times for %d batched writes, want 1", got, n)
	}
	if got := len(st.Users()); got != n {
		t.Fatalf("users = %d, want %d", got, n)
	}

	// Outside a batch, per-write fan-out is unchanged.
	if err := st.PutUser(User{ID: "solo"}); err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("hook fired %d times after solo write, want 2", got)
	}
}

// TestBatchedFiresOnError: a failing batch still notifies once, since
// earlier writes may have persisted.
func TestBatchedFiresOnError(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var fires atomic.Int32
	st.OnMutate(func() { fires.Add(1) })

	boom := errors.New("boom")
	err = st.Batched(func() error {
		if err := st.PutUser(User{ID: "persisted"}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("hook fired %d times, want 1", got)
	}
}

// TestBatchedNests: nested batches coalesce into the outermost one.
func TestBatchedNests(t *testing.T) {
	st, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var fires atomic.Int32
	st.OnMutate(func() { fires.Add(1) })

	err = st.Batched(func() error {
		if err := st.PutUser(User{ID: "a"}); err != nil {
			return err
		}
		return st.Batched(func() error { return st.PutUser(User{ID: "b"}) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("hook fired %d times, want 1", got)
	}
}
