// Command hived serves the Hive platform over HTTP (the Figure 1
// surface).
//
// Usage:
//
//	hived [-addr :8080] [-data DIR] [-seed users] [-compact-interval 30s]
//	      [-shards N] [-no-deltas] [-workers N] [-timeout 30s]
//	      [-max-inflight N] [-qps N] [-quiet] [-access-log] [-metrics]
//	      [-pprof ADDR]
//	      [-cluster "self=URL,peers=URL;URL,lease=DIR[,ttl=2s]"]
//	      [-quorum K] [-ack-timeout 5s] [-journal-retention N]
//
// The API is served under /api/v1 (typed DTOs, cursor pagination,
// structured errors, conditional knowledge GETs, POST /api/v1/batch
// bulk ingest — see API.md); the unversioned /api/* routes remain as
// deprecated aliases for one release.
//
// With -seed N, a synthetic conference workload of N users is generated
// and loaded at startup so the API has data to serve. Writes become
// visible to the knowledge services immediately: each mutation's change
// events fold into the serving snapshot as an incremental delta before
// the request returns. With -compact-interval D, a background loop runs
// a full rebuild — the *compaction* that folds the delta overlay into a
// fresh base and refreshes the evidence graphs — every D while one is
// due; rebuilds fan the derivation stages out across -workers goroutines
// and swap the snapshot atomically, so requests keep being served from
// the previous snapshot for the whole rebuild. A compaction can also be
// requested over HTTP: POST /api/v1/admin/refresh (async; add ?wait=true
// to block until the swap), and GET /api/v1/healthz reports the serving
// snapshot's generation, age, staleness, overlay size, pending events,
// delta latency, and the node's replication role and lag.
//
// Replication: a durable node (-data) journals every change batch and
// serves it at GET /api/v1/replication/events.
//
// -cluster joins an elected replica set: the node holds a lease in the
// shared lease directory, the holder leads (accepts writes, stamps its
// leadership epoch into every journaled batch), everyone else follows
// it, and when the leader dies its lease lapses and a peer promotes
// itself — replaying its local journal tail before accepting writes.
// The flag value is comma-separated key=value pairs:
//
//	self=URL    this node's advertised base URL (required)
//	peers=U;V   the other members' base URLs, ';'-separated
//	lease=DIR   shared lease directory all members can reach (required)
//	ttl=2s      lease time-to-live (failover detection horizon)
//
// Cluster mode requires -data (an elected node must be able to lead,
// and leading requires a journal). GET /api/v1/cluster reports the
// node's view of the set.
//
// Durability: by default a write is acknowledged once journaled on the
// leader (async replication). -quorum K holds every write response until
// K followers confirm the write applied at the current epoch — acks
// piggyback on the replication long-poll, and the resulting cluster
// commit index (the highest sequence a quorum acknowledged) is persisted
// beside the journal and reported by /api/v1/healthz and
// /api/v1/cluster. A write that cannot collect its quorum within
// -ack-timeout fails with 503 quorum_unavailable (the write stays
// journaled and replicates when followers return). Keep -timeout above
// -ack-timeout or the blunt middleware timeout fires first.
//
// A follower serves the full read API with observable lag and rejects
// writes with the not_leader error envelope naming the leader.
// -journal-retention bounds how many closed journal segments the node
// keeps (default 8 × 4MiB): followers that fall further behind
// re-bootstrap from the snapshot automatically. (The static -follow
// flag from the pre-election era was removed after its deprecation
// release; a two-node -cluster replaces it.)
//
// -shards N partitions the write path: the process runs N independent
// shards (own store, journal, change stream and delta pipeline), routes
// every write to the shard owning the responsible user (FNV-1a of the
// owner ID), and answers reads by scatter-gather with exact k-way
// merging — search results are bit-identical to an unsharded node over
// the same data. The shard count is fixed for the life of a data dir
// (recorded in DIR/shards.json; reopening with a different -shards
// fails). GET /api/v1/cluster and /api/v1/healthz report the shard map.
// -shards and -cluster are mutually exclusive for now: per-shard
// replication is a follow-up.
//
// -no-deltas restores the pre-delta behavior (writes mark the snapshot
// stale; only full rebuilds repair it). -timeout, -max-inflight and
// -qps wire the middleware stack's operational limits (0 disables
// each); -quiet (or -access-log=false) drops the access log.
//
// Observability: GET /metrics serves the process-wide registry in
// Prometheus text exposition — request counts and latency histograms
// per route, delta-apply / compaction / journal / replication / quorum
// / election instruments, and per-shard state gauges — and GET
// /api/v1/debug/traces serves the slowest recent requests with their
// per-stage timings (see API.md, "Observability"). Both ride outside
// the QPS and in-flight caps so a shedding server can still be
// scraped; -metrics=false disables both endpoints and the per-request
// trace recorder.
//
// With -pprof ADDR (off by default), net/http/pprof profiling handlers
// are exposed on a separate listener under /debug/pprof/, kept off the
// public API address so profiling never rides the serving middleware
// (and can be bound to localhost while the API is public).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"hive"
	"hive/internal/election"
	"hive/internal/server"
	"hive/internal/workload"
)

// clusterSpec is the parsed -cluster flag.
type clusterSpec struct {
	self     string
	peers    []string
	leaseDir string
	ttl      time.Duration
}

// parseClusterFlag parses "self=URL,peers=URL;URL,lease=DIR[,ttl=2s]".
// Peers use ';' as the separator because ',' separates the pairs.
func parseClusterFlag(s string) (clusterSpec, error) {
	spec := clusterSpec{ttl: election.DefaultLeaseTTL}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return spec, fmt.Errorf("-cluster: %q is not key=value", part)
		}
		switch key {
		case "self":
			spec.self = val
		case "peers":
			for _, p := range strings.Split(val, ";") {
				if p = strings.TrimSpace(p); p != "" {
					spec.peers = append(spec.peers, p)
				}
			}
		case "lease":
			spec.leaseDir = val
		case "ttl":
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("-cluster: bad ttl %q: %w", val, err)
			}
			spec.ttl = d
		default:
			return spec, fmt.Errorf("-cluster: unknown key %q (want self, peers, lease, ttl)", key)
		}
	}
	if spec.self == "" {
		return spec, fmt.Errorf("-cluster: self=URL is required")
	}
	if spec.leaseDir == "" {
		return spec, fmt.Errorf("-cluster: lease=DIR is required (a shared directory all members can reach)")
	}
	return spec, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "storage directory (empty = in-memory)")
	seed := flag.Int("seed", 0, "generate a synthetic workload with this many users")
	compactInterval := flag.Duration("compact-interval", 30*time.Second,
		"background compaction (full rebuild) interval, run while due (0 = disabled)")
	shards := flag.Int("shards", 1,
		"partition the write path across this many in-process shards (1 = unsharded; incompatible with -cluster)")
	cluster := flag.String("cluster", "",
		"join an elected replica set: self=URL,peers=URL;URL,lease=DIR[,ttl=2s] (requires -data)")
	quorum := flag.Int("quorum", 0,
		"follower acks each write must collect before the response returns (0 = async durability; requires -cluster)")
	ackTimeout := flag.Duration("ack-timeout", 0,
		"bounded wait for quorum write acks before a 503 quorum_unavailable (0 = 5s default)")
	journalRetention := flag.Int("journal-retention", 0,
		"closed change-journal segments to retain (0 = default 8)")
	noDeltas := flag.Bool("no-deltas", false,
		"disable incremental snapshot maintenance (writes wait for the next full rebuild)")
	workers := flag.Int("workers", 0, "engine rebuild parallelism (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request time budget (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent requests (0 = uncapped)")
	qps := flag.Float64("qps", 0, "global request rate limit (0 = unlimited)")
	quiet := flag.Bool("quiet", false, "disable the per-request access log")
	accessLog := flag.Bool("access-log", true,
		"per-request access log with trace ID, resolved shard and status (false = same effect as -quiet)")
	metricsOn := flag.Bool("metrics", true,
		"serve Prometheus text metrics at GET /metrics and traces at GET /api/v1/debug/traces (false = disable both)")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this separate address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	opts := hive.Options{
		Dir:           *data,
		Workers:       *workers,
		DisableDeltas: *noDeltas,
		JournalRetain: *journalRetention,
	}
	var leaseDir string
	if *cluster != "" {
		if *data == "" {
			log.Fatalf("-cluster requires -data: an elected node must be able to lead, and leading requires a journal")
		}
		spec, err := parseClusterFlag(*cluster)
		if err != nil {
			log.Fatalf("%v", err)
		}
		leaseDir = spec.leaseDir
		lease, err := election.NewFileLease(election.LeaseConfig{
			Dir:  spec.leaseDir,
			Self: spec.self,
			TTL:  spec.ttl,
		})
		if err != nil {
			log.Fatalf("cluster lease: %v", err)
		}
		opts.Cluster = &hive.ClusterConfig{
			SelfURL:      spec.self,
			Peers:        spec.peers,
			Election:     lease,
			QuorumWrites: *quorum,
			AckTimeout:   *ackTimeout,
		}
	} else if *quorum > 0 {
		log.Fatalf("-quorum requires -cluster: only a leader with followers can collect acks")
	}

	if *shards > 1 {
		if *cluster != "" {
			log.Fatalf("-shards and -cluster are mutually exclusive: per-shard replication is a follow-up")
		}
		runSharded(*shards, opts, *seed, *compactInterval, *addr, server.Config{
			Timeout:        *timeout,
			MaxInFlight:    *maxInflight,
			QPS:            *qps,
			DisableMetrics: !*metricsOn,
		}, *quiet || !*accessLog)
		return
	}

	p, err := hive.Open(opts)
	if err != nil {
		log.Fatalf("open platform: %v", err)
	}
	defer p.Close()

	switch {
	case *cluster != "":
		// Role and state are election-driven: the node joined fenced, the
		// lease decides whether it leads or tails a peer. No local seeding
		// or eager build — a follower's state comes from the leader, and a
		// promotion folds the journal tail in before opening writes.
		log.Printf("cluster member %s (peers %v, lease %s, role %s, epoch %d)",
			opts.Cluster.SelfURL, opts.Cluster.Peers, leaseDir, p.Role(), p.Epoch())
		if *seed > 0 {
			log.Printf("warning: -seed ignored in cluster mode (state replicates from the elected leader)")
		}
	case *seed > 0:
		ds := workload.Generate(workload.Config{Seed: 42, Users: *seed})
		// Seeding runs in-process before serving: one batched store pass,
		// one snapshot invalidation.
		if err := p.Store().Batched(func() error { return ds.Load(p.Store()) }); err != nil {
			log.Fatalf("load workload: %v", err)
		}
		log.Printf("seeded %d users, %d papers, %d sessions",
			len(ds.Users), len(ds.Papers), len(ds.Sessions))
	}
	if *cluster == "" {
		if err := p.Refresh(); err != nil {
			log.Fatalf("build knowledge engine: %v", err)
		}
	}
	if eng := p.Snapshot(); eng != nil {
		log.Printf("knowledge engine ready in %v (generation %d)", eng.BuildDuration(), p.Generation())
	}
	if *compactInterval > 0 {
		p.AutoRefresh(*compactInterval)
		log.Printf("compaction loop every %v (runs while due)", *compactInterval)
	}

	cfg := server.Config{
		Timeout:        *timeout,
		MaxInFlight:    *maxInflight,
		QPS:            *qps,
		DisableMetrics: !*metricsOn,
	}
	if !*quiet && *accessLog {
		cfg.AccessLog = log.Default()
	}
	log.Printf("hived listening on %s (API v1 at /api/v1, legacy /api/* deprecated)", *addr)
	if err := http.ListenAndServe(*addr, server.NewWith(p, cfg)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// runSharded boots a sharded platform and serves it: N independent
// shards behind one routing server.
func runSharded(shards int, opts hive.Options, seed int, compactInterval time.Duration, addr string, cfg server.Config, quiet bool) {
	sh, err := hive.OpenSharded(shards, opts)
	if err != nil {
		log.Fatalf("open sharded platform: %v", err)
	}
	defer sh.Close()

	if seed > 0 {
		ds := workload.Generate(workload.Config{Seed: 42, Users: seed})
		if err := loadSharded(sh, ds); err != nil {
			log.Fatalf("load workload: %v", err)
		}
		log.Printf("seeded %d users, %d papers, %d sessions across %d shards",
			len(ds.Users), len(ds.Papers), len(ds.Sessions), shards)
	}
	if err := sh.Refresh(); err != nil {
		log.Fatalf("build knowledge engines: %v", err)
	}
	log.Printf("knowledge engines ready on %d shards (generation %d)", shards, sh.Generation())
	if compactInterval > 0 {
		sh.AutoRefresh(compactInterval)
		log.Printf("compaction loop every %v on each shard (runs while due)", compactInterval)
	}

	if !quiet {
		cfg.AccessLog = log.Default()
	}
	log.Printf("hived listening on %s (%d shards, API v1 at /api/v1)", addr, shards)
	if err := http.ListenAndServe(addr, server.NewSharded(sh, cfg)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// loadSharded applies a synthetic dataset through the sharded write
// path so every entity lands on its owning shard. One batch per shard:
// Batched nests the per-shard store batches, so the whole load is a
// single snapshot invalidation on each.
func loadSharded(sh *hive.Sharded, ds *workload.Dataset) error {
	return sh.Batched(func() error { return ds.LoadRouted(sh) })
}
