// Package hive is the public API of the Hive Open Research Network
// Platform (Kim, Chen, Candan, Sapino — EDBT 2013): a conference-centric,
// cross-conference social platform for researchers with integrated
// knowledge services — context-aware search and previews, evidence-based
// peer discovery and explanation, collaborative recommendation, community
// discovery, and activity change monitoring.
//
// A Platform wraps the durable social store and the MiNC knowledge engine.
// Mutations (users, papers, check-ins, questions, workpads, ...) apply
// immediately; knowledge services run against an engine snapshot that is
// rebuilt lazily after mutations (call Refresh to rebuild eagerly).
//
//	p, _ := hive.Open(hive.Options{Dir: ""}) // in-memory
//	defer p.Close()
//	_ = p.RegisterUser(hive.User{ID: "zach", Name: "Zach"})
//	recs, _ := p.RecommendPeers("zach", 5)
package hive

import (
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/core"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/tensor"
	"hive/internal/textindex"
)

// Re-exported domain types: the social layer's entities are the public
// vocabulary of the platform.
type (
	// User is a researcher profile.
	User = social.User
	// Conference is an event edition.
	Conference = social.Conference
	// Session is a technical session.
	Session = social.Session
	// Paper is a published or accepted paper.
	Paper = social.Paper
	// Presentation is uploaded slide/poster content.
	Presentation = social.Presentation
	// Question is a question about an entity.
	Question = social.Question
	// Answer replies to a question.
	Answer = social.Answer
	// Comment is free-form feedback on an entity.
	Comment = social.Comment
	// Workpad is the user's context-defining resource pad.
	Workpad = social.Workpad
	// WorkpadItem is one resource on a workpad.
	WorkpadItem = social.WorkpadItem
	// Collection is an exported, shareable workpad.
	Collection = social.Collection
	// Event is one activity-stream entry.
	Event = social.Event

	// Evidence is one relationship evidence (Figure 2).
	Evidence = core.Evidence
	// Explanation is a full relationship explanation between two users.
	Explanation = core.Explanation
	// PeerRecommendation is a suggested contact with its justification.
	PeerRecommendation = core.PeerRecommendation
	// SessionSuggestion is a scored session suggestion.
	SessionSuggestion = core.SessionSuggestion
	// ResourceRecommendation is a suggested document.
	ResourceRecommendation = core.ResourceRecommendation
	// SearchResult is a scored document hit.
	SearchResult = core.SearchResult
	// Snippet is a context-extracted document fragment.
	Snippet = textindex.Snippet
	// Keyphrase is an extracted key concept.
	Keyphrase = textindex.Keyphrase
	// Summary is a size-constrained update digest.
	Summary = summarize.Summary
	// ChangeResult reports activity change detection for one epoch.
	ChangeResult = tensor.StreamResult
)

// Workpad item kinds.
const (
	ItemUser         = social.ItemUser
	ItemPaper        = social.ItemPaper
	ItemPresentation = social.ItemPresentation
	ItemSession      = social.ItemSession
	ItemQuestion     = social.ItemQuestion
	ItemCollection   = social.ItemCollection
)

// Document namespaces used in search results and previews.
const (
	DocPaper        = core.DocPaper
	DocPresentation = core.DocPresentation
	DocQuestion     = core.DocQuestion
)

// Options configures Open.
type Options struct {
	// Dir is the storage directory; empty means in-memory (non-durable).
	Dir string
	// Clock overrides the time source (tests, replay). Nil = wall clock.
	Clock func() time.Time
}

// Platform is the assembled Hive instance.
type Platform struct {
	store *social.Store

	mu     sync.RWMutex // guards engine pointer
	engine *core.Engine
	dirty  atomic.Bool
}

// Open creates or opens a platform.
func Open(opts Options) (*Platform, error) {
	st, err := social.Open(opts.Dir, social.Clock(opts.Clock))
	if err != nil {
		return nil, err
	}
	p := &Platform{store: st}
	p.dirty.Store(true)
	return p, nil
}

// Close releases the underlying storage.
func (p *Platform) Close() error { return p.store.Close() }

// Store exposes the raw social store for advanced callers.
func (p *Platform) Store() *social.Store { return p.store }

// Refresh rebuilds the knowledge engine from current data. Knowledge
// services call it automatically when data changed; explicit calls let
// applications control when the (potentially expensive) rebuild happens.
func (p *Platform) Refresh() error {
	eng, err := core.Build(p.store)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.engine = eng
	p.mu.Unlock()
	p.dirty.Store(false)
	return nil
}

// Engine returns a current engine snapshot, rebuilding if stale.
func (p *Platform) Engine() (*core.Engine, error) {
	if p.dirty.Load() {
		if err := p.Refresh(); err != nil {
			return nil, err
		}
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.engine, nil
}

func (p *Platform) invalidate() { p.dirty.Store(true) }

// Additional re-exported service types.
type (
	// HistoryEntry is one matched personal-activity record.
	HistoryEntry = core.HistoryEntry
	// ResourceEvidence explains a user-resource relationship.
	ResourceEvidence = core.ResourceEvidence
	// KnowledgePath is a ranked weighted path in the RDF knowledge base.
	KnowledgePath = rdf.RankedPath
)
