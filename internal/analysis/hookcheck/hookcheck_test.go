package hookcheck_test

import (
	"testing"

	"hive/internal/analysis/analysistest"
	"hive/internal/analysis/hookcheck"
)

func TestHookCheck(t *testing.T) {
	analysistest.Run(t, "testdata", hookcheck.Analyzer)
}
