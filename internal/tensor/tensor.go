// Package tensor implements SCENT (paper §2.4, ref [15]): scalable
// compressed monitoring of evolving multi-relational social networks
// encoded as tensor streams. Multi-relational activity (who asks whom
// about what, who checks into which session when) forms a sparse tensor
// per epoch; SCENT summarizes each epoch with an ensemble of randomized
// linear sketches — a compressed-sensing-style descriptor — and flags
// structural change when consecutive descriptors diverge. The point of
// the method is that sketch updates cost O(nnz × ensemble) instead of a
// full O(size) recomputation, while detecting the same change points.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when coordinates or shapes are inconsistent.
var ErrShape = errors.New("tensor: shape mismatch")

// Sparse is a sparse N-way tensor with float64 entries.
type Sparse struct {
	shape []int
	data  map[string]float64 // encoded coordinate -> value
}

// NewSparse returns an all-zero tensor with the given mode sizes.
func NewSparse(shape ...int) (*Sparse, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: empty shape", ErrShape)
	}
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: non-positive dimension %d", ErrShape, d)
		}
	}
	return &Sparse{shape: append([]int(nil), shape...), data: make(map[string]float64)}, nil
}

// MustSparse is NewSparse that panics on error; for tests and literals.
func MustSparse(shape ...int) *Sparse {
	t, err := NewSparse(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the mode sizes.
func (t *Sparse) Shape() []int { return append([]int(nil), t.shape...) }

// NNZ reports the number of stored non-zeros.
func (t *Sparse) NNZ() int { return len(t.data) }

func (t *Sparse) checkCoords(coords []int) error {
	if len(coords) != len(t.shape) {
		return fmt.Errorf("%w: got %d coords for order-%d tensor", ErrShape, len(coords), len(t.shape))
	}
	for i, c := range coords {
		if c < 0 || c >= t.shape[i] {
			return fmt.Errorf("%w: coord %d out of range [0,%d)", ErrShape, c, t.shape[i])
		}
	}
	return nil
}

func encode(coords []int) string {
	// Fixed-width binary encoding keeps map keys compact and comparable.
	b := make([]byte, 4*len(coords))
	for i, c := range coords {
		b[4*i] = byte(c >> 24)
		b[4*i+1] = byte(c >> 16)
		b[4*i+2] = byte(c >> 8)
		b[4*i+3] = byte(c)
	}
	return string(b)
}

func decode(s string) []int {
	coords := make([]int, len(s)/4)
	for i := range coords {
		coords[i] = int(s[4*i])<<24 | int(s[4*i+1])<<16 | int(s[4*i+2])<<8 | int(s[4*i+3])
	}
	return coords
}

// Set assigns a value; setting 0 deletes the entry.
func (t *Sparse) Set(value float64, coords ...int) error {
	if err := t.checkCoords(coords); err != nil {
		return err
	}
	k := encode(coords)
	if value == 0 {
		delete(t.data, k)
	} else {
		t.data[k] = value
	}
	return nil
}

// Add accumulates delta at the coordinates.
func (t *Sparse) Add(delta float64, coords ...int) error {
	if err := t.checkCoords(coords); err != nil {
		return err
	}
	k := encode(coords)
	v := t.data[k] + delta
	if v == 0 {
		delete(t.data, k)
	} else {
		t.data[k] = v
	}
	return nil
}

// At returns the value at the coordinates (0 for absent entries).
func (t *Sparse) At(coords ...int) (float64, error) {
	if err := t.checkCoords(coords); err != nil {
		return 0, err
	}
	return t.data[encode(coords)], nil
}

// Each calls fn for every non-zero entry. Iteration order is unspecified.
func (t *Sparse) Each(fn func(coords []int, value float64)) {
	for k, v := range t.data {
		fn(decode(k), v)
	}
}

// Clone returns a deep copy.
func (t *Sparse) Clone() *Sparse {
	c := &Sparse{shape: append([]int(nil), t.shape...), data: make(map[string]float64, len(t.data))}
	for k, v := range t.data {
		c.data[k] = v
	}
	return c
}

// FrobeniusNorm returns sqrt of the sum of squared entries.
func (t *Sparse) FrobeniusNorm() float64 {
	var s float64
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Diff returns the Frobenius norm of (t - o). Shapes must match. This is
// the exact change measure that the full-recompute baseline uses.
func (t *Sparse) Diff(o *Sparse) (float64, error) {
	if !sameShape(t.shape, o.shape) {
		return 0, fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, o.shape)
	}
	var s float64
	for k, v := range t.data {
		d := v - o.data[k]
		s += d * d
	}
	for k, v := range o.data {
		if _, ok := t.data[k]; !ok {
			s += v * v
		}
	}
	return math.Sqrt(s), nil
}

// Scale multiplies every entry by f in place.
func (t *Sparse) Scale(f float64) {
	if f == 0 {
		t.data = make(map[string]float64)
		return
	}
	for k := range t.data {
		t.data[k] *= f
	}
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// linearIndex maps coordinates to the row-major linear offset.
func linearIndex(shape, coords []int) int {
	idx := 0
	for i, c := range coords {
		idx = idx*shape[i] + c
	}
	return idx
}

// Size returns the total number of cells (product of mode sizes).
func (t *Sparse) Size() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}
