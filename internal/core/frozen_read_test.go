package core

import (
	"sync"
	"testing"

	"hive/internal/graph"
	"hive/internal/textindex"
)

// TestSnapshotTablesPopulated checks that Build precomputes the frozen
// searcher and every read-path table.
func TestSnapshotTablesPopulated(t *testing.T) {
	_, eng := zachWorld(t)
	if eng.Frozen() == nil {
		t.Fatal("no frozen index on the snapshot")
	}
	if eng.Frozen().Len() != eng.Index().Len() {
		t.Fatalf("frozen %d docs, live %d", eng.Frozen().Len(), eng.Index().Len())
	}
	for _, u := range eng.users {
		if _, ok := eng.ctxVecs[u]; !ok {
			t.Fatalf("no precomputed context vector for %s", u)
		}
		if _, ok := eng.userContent[u]; !ok {
			t.Fatalf("no precomputed content vector for %s", u)
		}
	}
	if eng.interVecs == nil || eng.popularity == nil {
		t.Fatal("interaction tables not precomputed")
	}
}

// TestPrecomputedTablesMatchRecomputation checks the snapshot tables
// equal what the per-request derivations used to produce.
func TestPrecomputedTablesMatchRecomputation(t *testing.T) {
	_, eng := zachWorld(t)
	for _, u := range eng.users {
		want := eng.computeContextVector(u)
		got := eng.ContextVector(u)
		if len(want) != len(got) {
			t.Fatalf("ctx vector for %s: %d terms precomputed, %d recomputed", u, len(got), len(want))
		}
		for term, w := range want {
			// Concept-map activation normalizes over map iteration order,
			// so recomputation may differ in the last ulp; compare with a
			// tight relative tolerance.
			if d := got[term] - w; d > 1e-9*(1+w) || -d > 1e-9*(1+w) {
				t.Fatalf("ctx vector for %s: term %q = %v, want %v", u, term, got[term], w)
			}
		}
		wantC := eng.computeUserContentVector(u)
		gotC := eng.userContentVector(u)
		if len(wantC) != len(gotC) {
			t.Fatalf("content vector for %s: %d vs %d terms", u, len(gotC), len(wantC))
		}
	}
	wantPop := eng.computeObjectPopularity()
	for doc, n := range wantPop {
		if eng.popularityOf(doc) != n {
			t.Fatalf("popularity[%s] = %d, want %d", doc, eng.popularityOf(doc), n)
		}
	}
}

// TestEngineSearchMatchesLiveIndex checks the engine's frozen-backed
// search equals the live index path end to end.
func TestEngineSearchMatchesLiveIndex(t *testing.T) {
	_, eng := zachWorld(t)
	for _, q := range []string{"graph partitioning", "diffusion kernel", "community", "nothing matches this"} {
		frozen := eng.Search(q, 10)
		live := eng.index.Search(q, 10)
		if len(frozen) != len(live) {
			t.Fatalf("Search(%q): frozen %d results, live %d", q, len(frozen), len(live))
		}
		for i := range live {
			if frozen[i].DocID != live[i].DocID || frozen[i].Score != live[i].Score {
				t.Fatalf("Search(%q) rank %d: frozen %+v, live %+v", q, i, frozen[i], live[i])
			}
		}
	}
	ctx := eng.ContextVector("zach")
	frozen := eng.searchVector(ctx, 10)
	live := eng.index.SearchVector(ctx, 10)
	if len(frozen) != len(live) {
		t.Fatalf("searchVector: frozen %d, live %d", len(frozen), len(live))
	}
	for i := range live {
		if frozen[i] != live[i] {
			t.Fatalf("searchVector rank %d: frozen %+v, live %+v", i, frozen[i], live[i])
		}
	}
}

// TestRecommendPeersMemoized checks the PageRank memo returns identical
// recommendations on repeat calls and is safe under concurrency.
func TestRecommendPeersMemoized(t *testing.T) {
	_, eng := zachWorld(t)
	first, err := eng.RecommendPeers("zach", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.pprMemo) == 0 {
		t.Fatal("memo not populated after first request")
	}
	again, err := eng.RecommendPeers("zach", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(again) {
		t.Fatalf("memoized call changed results: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i].UserID != again[i].UserID || first[i].Score != again[i].Score {
			t.Fatalf("rank %d: %+v vs %+v", i, first[i], again[i])
		}
	}

	// Concurrent requests across users: memo misses compute in parallel
	// on pooled workspaces; run with -race to verify.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, u := range []string{"zach", "ann", "aaron", "carl", "advisor"} {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if _, err := eng.RecommendPeers(u, 3); err != nil {
					t.Error(err)
				}
			}(u)
		}
	}
	wg.Wait()
	if len(eng.pprMemo) > pprMemoMax {
		t.Fatalf("memo exceeded bound: %d", len(eng.pprMemo))
	}
}

// TestPPRWorkspaceReuseMatchesFreshRuns checks the reusable workspace
// yields the same ranks as workspace-free calls, including after being
// re-bound to a different graph.
func TestPPRWorkspaceReuseMatchesFreshRuns(t *testing.T) {
	g1 := graph.New()
	for _, k := range []string{"a", "b", "c", "d"} {
		g1.EnsureNode(k, "user")
	}
	_ = g1.AddEdge(0, 1, "e", 1)
	_ = g1.AddEdge(1, 2, "e", 2)
	_ = g1.AddEdge(2, 0, "e", 1)
	_ = g1.AddEdge(2, 3, "e", 0.5)

	g2 := graph.New()
	for _, k := range []string{"x", "y"} {
		g2.EnsureNode(k, "user")
	}
	_ = g2.AddEdge(0, 1, "e", 1)

	ws := &graph.PPRWorkspace{}
	for trial := 0; trial < 3; trial++ {
		for _, g := range []*graph.Graph{g1, g2} {
			restart := map[graph.NodeID]float64{0: 1}
			got := g.PersonalizedPageRankWith(ws, restart, graph.PageRankOptions{})
			want := g.PersonalizedPageRank(restart, graph.PageRankOptions{})
			if len(got) != len(want) {
				t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d node %d: ws %v, fresh %v", trial, i, got[i], want[i])
				}
			}
		}
	}
	// The returned slice must stay valid after the workspace is reused.
	keep := g1.PersonalizedPageRankWith(ws, map[graph.NodeID]float64{1: 1}, graph.PageRankOptions{})
	sum := 0.0
	for _, v := range keep {
		sum += v
	}
	_ = g2.PersonalizedPageRankWith(ws, map[graph.NodeID]float64{0: 1}, graph.PageRankOptions{})
	sum2 := 0.0
	for _, v := range keep {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatal("rank slice was clobbered by workspace reuse")
	}
}

// TestContextVectorSharedReadOnly documents that callers receive the
// shared precomputed vector: both calls must observe the same contents.
func TestContextVectorSharedReadOnly(t *testing.T) {
	_, eng := zachWorld(t)
	a := eng.ContextVector("zach")
	b := eng.ContextVector("zach")
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("inconsistent shared vectors: %d vs %d", len(a), len(b))
	}
	var _ textindex.Vector = a
}
