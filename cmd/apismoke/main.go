// Command apismoke is the end-to-end contract check behind
// `make api-smoke`: it starts a real hived process, then drives the
// entire /api/v1 surface through the client SDK — typed mutations,
// batch ingest, every knowledge read, cursor pagination, conditional
// GET revalidation, typed errors and the legacy-alias deprecation
// headers — and exits non-zero on the first contract violation.
//
// Usage:
//
//	apismoke [-hived bin/hived] [-addr 127.0.0.1:18080] [-seed 24]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"time"

	"hive/api"
	"hive/client"
)

func main() {
	hived := flag.String("hived", "bin/hived", "path to the hived binary")
	addr := flag.String("addr", "127.0.0.1:18080", "address to run hived on")
	seed := flag.Int("seed", 24, "synthetic workload size")
	flag.Parse()

	if err := run(*hived, *addr, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "api-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("api-smoke: OK")
}

func run(hived, addr string, seed int) error {
	cmd := exec.Command(hived,
		"-addr", addr,
		"-seed", fmt.Sprint(seed),
		"-refresh", "1s",
		"-quiet",
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start hived: %w", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := "http://" + addr
	c := client.New(base, client.WithETagCache())

	// Wait for the server to come up with a built snapshot.
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}

	steps := []struct {
		name string
		fn   func(context.Context, *client.Client, string) error
	}{
		{"typed mutations", stepMutations},
		{"batch ingest", stepBatch},
		{"entity reads + feeds", stepReads},
		{"knowledge services", stepKnowledge},
		{"cursor pagination", stepPagination},
		{"conditional GETs (ETag/304)", stepConditional},
		{"typed errors", stepErrors},
		{"legacy alias deprecation", stepLegacy},
	}
	for _, s := range steps {
		if err := s.fn(ctx, c, base); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("api-smoke: %-30s ok\n", s.name)
	}
	return nil
}

func waitHealthy(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		h, err := c.Healthz(ctx)
		if err == nil && h.Status == "ok" && h.Snapshot {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("hived did not become healthy in 30s")
}

func stepMutations(ctx context.Context, c *client.Client, _ string) error {
	if err := c.CreateUser(ctx, api.User{ID: "smoke", Name: "Smoke", Interests: []string{"graphs"}}); err != nil {
		return err
	}
	if err := c.CreateConference(ctx, api.Conference{ID: "smokeconf", Name: "SmokeConf"}); err != nil {
		return err
	}
	if err := c.CreateSession(ctx, api.Session{ID: "smoke-s1", ConferenceID: "smokeconf",
		Title: "Smoke session", Hashtag: "#smoke"}); err != nil {
		return err
	}
	if err := c.CreatePaper(ctx, api.Paper{ID: "smoke-p1", Title: "Smoke testing at scale",
		Abstract: "We smoke-test APIs.", Authors: []string{"smoke"},
		ConferenceID: "smokeconf", SessionID: "smoke-s1"}); err != nil {
		return err
	}
	if err := c.CreatePresentation(ctx, api.Presentation{ID: "smoke-pr1", PaperID: "smoke-p1",
		Owner: "smoke", Text: "Smoke slides with enough text for snippets."}); err != nil {
		return err
	}
	if err := c.CheckIn(ctx, "smoke-s1", "smoke"); err != nil {
		return err
	}
	if err := c.Ask(ctx, api.Question{ID: "smoke-q1", Author: "smoke", Target: "smoke-p1", Text: "Works?"}); err != nil {
		return err
	}
	if err := c.Answer(ctx, api.Answer{ID: "smoke-a1", QuestionID: "smoke-q1", Author: "smoke", Text: "Yes."}); err != nil {
		return err
	}
	if err := c.Comment(ctx, api.Comment{ID: "smoke-c1", Author: "smoke", Target: "smoke-p1", Text: "Nice."}); err != nil {
		return err
	}
	if err := c.CreateWorkpad(ctx, api.Workpad{ID: "smoke-w1", Owner: "smoke", Name: "smoke ctx"}); err != nil {
		return err
	}
	if err := c.AddWorkpadItem(ctx, "smoke-w1", api.WorkpadItem{Kind: "paper", Ref: "smoke-p1"}); err != nil {
		return err
	}
	if err := c.ActivateWorkpad(ctx, "smoke", "smoke-w1"); err != nil {
		return err
	}
	return c.Refresh(ctx, true)
}

func stepBatch(ctx context.Context, c *client.Client, _ string) error {
	var ents []api.BatchEntity
	for i := 0; i < 5; i++ {
		ent, err := api.NewBatchEntity(api.KindUser, api.User{
			ID: fmt.Sprintf("smoke-b%d", i), Name: "Batcher", Interests: []string{"graphs"}})
		if err != nil {
			return err
		}
		ents = append(ents, ent)
	}
	conn, err := api.NewBatchEntity(api.KindConnection, api.ConnectRequest{A: "smoke-b0", B: "smoke-b1"})
	if err != nil {
		return err
	}
	ents = append(ents, conn)
	br, err := c.Batch(ctx, ents)
	if err != nil {
		return err
	}
	if br.Applied != len(ents) || br.Failed != 0 {
		return fmt.Errorf("batch response %+v", br)
	}
	return nil
}

func stepReads(ctx context.Context, c *client.Client, _ string) error {
	u, err := c.GetUser(ctx, "smoke")
	if err != nil || u.Name != "Smoke" {
		return fmt.Errorf("GetUser = %+v, %v", u, err)
	}
	att, err := c.Attendees(ctx, "smoke-s1", "", 0)
	if err != nil || len(att.Items) != 1 {
		return fmt.Errorf("attendees = %+v, %v", att, err)
	}
	wp, err := c.ActiveWorkpad(ctx, "smoke")
	if err != nil || wp.ID != "smoke-w1" {
		return fmt.Errorf("workpad = %+v, %v", wp, err)
	}
	evs, err := c.TagEvents(ctx, "#smoke", "", 0)
	if err != nil || len(evs.Items) == 0 {
		return fmt.Errorf("tag events = %+v, %v", evs, err)
	}
	if _, err := c.Feed(ctx, "smoke", "", 10); err != nil {
		return err
	}
	return nil
}

func stepKnowledge(ctx context.Context, c *client.Client, _ string) error {
	if _, err := c.Search(ctx, "smoke testing", "", "", 5); err != nil {
		return err
	}
	if _, err := c.Search(ctx, "smoke testing", "smoke", "", 5); err != nil {
		return err
	}
	if _, err := c.PeerRecommendations(ctx, "smoke", "", 5); err != nil {
		return err
	}
	if _, err := c.ResourceRecommendations(ctx, "smoke", true, "", 5); err != nil {
		return err
	}
	if _, err := c.SuggestSessions(ctx, "smoke", "smokeconf", "", 3); err != nil {
		return err
	}
	snips, err := c.Preview(ctx, "smoke", "pres/smoke-pr1", 2)
	if err != nil || len(snips) == 0 {
		return fmt.Errorf("preview = %v, %v", snips, err)
	}
	if _, err := c.Digest(ctx, "smoke", 4); err != nil {
		return err
	}
	comms, err := c.Communities(ctx, "", 0)
	if err != nil || len(comms.Items) == 0 {
		return fmt.Errorf("communities = %+v, %v", comms, err)
	}
	if _, err := c.History(ctx, "smoke", "checkin", false, "", 0); err != nil {
		return err
	}
	if _, err := c.ResourceRelationship(ctx, "smoke", "smoke-p1"); err != nil {
		return err
	}
	if _, err := c.KnowledgePaths(ctx, "user:smoke", "session:smoke-s1", 2); err != nil {
		return err
	}
	ex, err := c.Relationship(ctx, "smoke-b0", "smoke-b1")
	if err != nil || len(ex.Evidences) == 0 {
		return fmt.Errorf("relationship = %+v, %v", ex, err)
	}
	return nil
}

func stepPagination(ctx context.Context, c *client.Client, _ string) error {
	pg, err := c.Users(ctx, "", 5)
	if err != nil {
		return err
	}
	if len(pg.Items) != 5 || pg.NextCursor == "" {
		return fmt.Errorf("first page = %d items, cursor %q", len(pg.Items), pg.NextCursor)
	}
	all, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
		return c.Users(ctx, cur, 7)
	})
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, id := range all {
		if seen[id] {
			return fmt.Errorf("duplicate id %q across pages", id)
		}
		seen[id] = true
	}
	if !seen["smoke"] || !seen["smoke-b4"] {
		return fmt.Errorf("page walk missed seeded users (%d total)", len(all))
	}
	return nil
}

func stepConditional(ctx context.Context, c *client.Client, _ string) error {
	// Settle the snapshot, then read the same knowledge URL twice: the
	// second must revalidate from the ETag cache.
	if err := c.Refresh(ctx, true); err != nil {
		return err
	}
	if _, err := c.Search(ctx, "smoke conditional", "", "", 5); err != nil {
		return err
	}
	_, before := c.Stats()
	if _, err := c.Search(ctx, "smoke conditional", "", "", 5); err != nil {
		return err
	}
	if _, after := c.Stats(); after != before+1 {
		return fmt.Errorf("expected one 304 revalidation, cache hits %d -> %d", before, after)
	}
	return nil
}

func stepErrors(ctx context.Context, c *client.Client, _ string) error {
	_, err := c.GetUser(ctx, "ghost-user")
	if !api.IsCode(err, api.CodeNotFound) {
		return fmt.Errorf("missing user err = %v, want code %s", err, api.CodeNotFound)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusNotFound {
		return fmt.Errorf("err = %v, want HTTP 404", err)
	}
	if err := c.CreateUser(ctx, api.User{}); !api.IsCode(err, api.CodeInvalidArgument) {
		return fmt.Errorf("invalid user err = %v", err)
	}
	return nil
}

func stepLegacy(ctx context.Context, _ *client.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy healthz = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		return fmt.Errorf("legacy route missing Deprecation header")
	}
	return nil
}
