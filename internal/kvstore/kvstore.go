// Package kvstore implements the small embedded key-value storage engine
// that backs Hive's durable entities (users, papers, sessions, Q&A,
// workpads). The paper's deployment stored these in MySQL under Joomla;
// this engine is the stdlib-only substitute: an in-memory sorted index
// over an append-only write-ahead log with CRC-framed records, plus
// point-in-time snapshots and log compaction.
//
// Durability model: every Put/Delete is appended to the WAL before the
// in-memory index is updated. On open, the snapshot (if any) is loaded and
// the WAL tail is replayed; torn tail records are detected via CRC and
// truncated, mirroring standard database recovery.
package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store closed")

// Store is a durable key-value store. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	dir    string
	mem    map[string][]byte
	wal    *walWriter
	closed bool
	// walRecords counts records appended since the last compaction; used
	// by MaybeCompact.
	walRecords int
	// writeHook, when set, observes every committed write (see
	// SetWriteHook).
	writeHook func(key string, val []byte, del bool)
}

// SetWriteHook registers a single observer invoked once per committed
// write — after the WAL append and memory update, under the store lock,
// so the hook sees writes in commit order. The hook must be fast and
// must not call back into the store. It exists so a higher layer (the
// social store's replication journal) can capture the exact byte-level
// image of each write batch; ApplyQuiet bypasses it for writes that are
// themselves replicas.
func (s *Store) SetWriteHook(fn func(key string, val []byte, del bool)) {
	s.mu.Lock()
	s.writeHook = fn
	s.mu.Unlock()
}

// Open opens (creating if necessary) a store rooted at dir. If dir is
// empty the store is purely in-memory and non-durable.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, mem: make(map[string][]byte)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	n, err := replayWAL(s.walPath(), func(op byte, key, val []byte) {
		switch op {
		case opPut:
			s.mem[string(key)] = append([]byte(nil), val...)
		case opDelete:
			delete(s.mem, string(key))
		}
	})
	if err != nil {
		return nil, err
	}
	s.walRecords = n
	w, err := openWALWriter(s.walPath())
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.db") }

// Put stores val under key, overwriting any previous value.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		if err := s.wal.append(opPut, []byte(key), val); err != nil {
			return err
		}
		s.walRecords++
	}
	s.mem[key] = append([]byte(nil), val...)
	if s.writeHook != nil {
		s.writeHook(key, val, false)
	}
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.mem[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte(nil), v...), nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.mem[key]
	return ok
}

// Delete removes key. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.mem[key]; !ok {
		return nil
	}
	if s.wal != nil {
		if err := s.wal.append(opDelete, []byte(key), nil); err != nil {
			return err
		}
		s.walRecords++
	}
	delete(s.mem, key)
	if s.writeHook != nil {
		s.writeHook(key, nil, true)
	}
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Scan calls fn for every key with the given prefix, in ascending key
// order, until fn returns false. Values passed to fn are copies.
func (s *Store) Scan(prefix string, fn func(key string, val []byte) bool) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	type kv struct {
		k string
		v []byte
	}
	items := make([]kv, len(keys))
	for i, k := range keys {
		items[i] = kv{k, append([]byte(nil), s.mem[k]...)}
	}
	s.mu.RUnlock()
	for _, it := range items {
		if !fn(it.k, it.v) {
			return
		}
	}
}

// Keys returns all keys with the given prefix in ascending order.
func (s *Store) Keys(prefix string) []string {
	var keys []string
	s.Scan(prefix, func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Batch applies a set of writes atomically with respect to readers: either
// all entries become visible or none (on WAL error, nothing is applied).
type Batch struct {
	puts    map[string][]byte
	deletes map[string]bool
}

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{puts: make(map[string][]byte), deletes: make(map[string]bool)}
}

// Put queues a write.
func (b *Batch) Put(key string, val []byte) *Batch {
	b.puts[key] = append([]byte(nil), val...)
	delete(b.deletes, key)
	return b
}

// Delete queues a deletion.
func (b *Batch) Delete(key string) *Batch {
	b.deletes[key] = true
	delete(b.puts, key)
	return b
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.puts) + len(b.deletes) }

// Apply commits the batch.
func (s *Store) Apply(b *Batch) error { return s.apply(b, true) }

// ApplyQuiet commits the batch without invoking the write hook. It is
// the replica-apply path: a follower folding a leader's write batch in
// must not re-capture it for its own outbound journal record (the
// replicated record is appended verbatim instead).
func (s *Store) ApplyQuiet(b *Batch) error { return s.apply(b, false) }

func (s *Store) apply(b *Batch, hook bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		// Append all records first; only mutate memory after every append
		// succeeded so a mid-batch I/O error leaves memory untouched.
		for k, v := range b.puts {
			if err := s.wal.append(opPut, []byte(k), v); err != nil {
				return err
			}
			s.walRecords++
		}
		for k := range b.deletes {
			if err := s.wal.append(opDelete, []byte(k), nil); err != nil {
				return err
			}
			s.walRecords++
		}
	}
	for k, v := range b.puts {
		s.mem[k] = append([]byte(nil), v...)
		if hook && s.writeHook != nil {
			s.writeHook(k, v, false)
		}
	}
	for k := range b.deletes {
		delete(s.mem, k)
		if hook && s.writeHook != nil {
			s.writeHook(k, nil, true)
		}
	}
	return nil
}

// ImportSnapshot atomically replaces the store's entire contents with
// entries — the replication-bootstrap path: a follower loads the
// leader's full key-value image before tailing its journal. On durable
// stores the new state is persisted as a snapshot file and the WAL is
// reset, so a crashed follower reopens into the imported state. The
// write hook is not invoked (imports are replicas by definition).
//
// Crash ordering: the old WAL belongs to the *discarded* state, so it
// must be gone before the new snapshot file is installed — otherwise a
// crash in between would make reopen replay stale records on top of
// the imported image (unlike Compact, where WAL contents are a subset
// of the snapshot and replay is idempotent). The snapshot is staged to
// a temp file first, so the sequence old-state → no-WAL-old-snapshot →
// imported-state only ever passes through self-consistent states.
func (s *Store) ImportSnapshot(entries map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	mem := make(map[string][]byte, len(entries))
	for k, v := range entries {
		mem[k] = append([]byte(nil), v...)
	}
	s.mem = mem
	if s.dir == "" {
		return nil
	}
	tmp, err := s.stageSnapshotLocked()
	if err != nil {
		return err
	}
	if err := s.resetWALLocked(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return fmt.Errorf("kvstore: rename snapshot: %w", err)
	}
	return nil
}

// Compact writes a snapshot of the live data and truncates the WAL. The
// store stays usable throughout.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.dir == "" {
		return nil
	}
	if err := s.writeSnapshotLocked(); err != nil {
		return err
	}
	return s.resetWALLocked()
}

// resetWALLocked closes, deletes and re-creates the WAL.
func (s *Store) resetWALLocked() error {
	if err := s.wal.close(); err != nil {
		return err
	}
	if err := os.Remove(s.walPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("kvstore: remove wal: %w", err)
	}
	w, err := openWALWriter(s.walPath())
	if err != nil {
		return err
	}
	s.wal = w
	s.walRecords = 0
	return nil
}

// MaybeCompact compacts when more than threshold records have accumulated
// in the WAL since the last compaction.
func (s *Store) MaybeCompact(threshold int) error {
	s.mu.RLock()
	n := s.walRecords
	s.mu.RUnlock()
	if n <= threshold {
		return nil
	}
	return s.Compact()
}

// Close flushes and closes the store. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}

// writeSnapshotLocked persists the in-memory table atomically via a temp
// file + rename.
func (s *Store) writeSnapshotLocked() error {
	tmp, err := s.stageSnapshotLocked()
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return fmt.Errorf("kvstore: rename snapshot: %w", err)
	}
	return nil
}

// stageSnapshotLocked writes the in-memory table to the snapshot temp
// file and returns its path; the caller renames it into place when its
// crash-ordering constraints are satisfied.
func (s *Store) stageSnapshotLocked() (string, error) {
	tmp := s.snapshotPath() + ".tmp"
	var buf bytes.Buffer
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeRecord(&buf, opPut, []byte(k), s.mem[k])
	}
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("kvstore: write snapshot: %w", err)
	}
	return tmp, nil
}

func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(s.snapshotPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("kvstore: read snapshot: %w", err)
	}
	_, err = replayRecords(data, func(op byte, key, val []byte) {
		if op == opPut {
			s.mem[string(key)] = append([]byte(nil), val...)
		}
	})
	if err != nil {
		return fmt.Errorf("kvstore: corrupt snapshot: %w", err)
	}
	return nil
}
