package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hive/internal/social"
	"hive/internal/workload"
)

func testClock() social.Clock {
	t := time.Unix(1363000000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// zachWorld builds the §1.1 scenario by hand: Zach, his advisor, Ann and
// Aaron around EDBT'13.
func zachWorld(t *testing.T) (*social.Store, *Engine) {
	t.Helper()
	st, err := social.Open("", testClock())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	users := []social.User{
		{ID: "zach", Name: "Zach", Affiliation: "ASU", Interests: []string{"social media", "graphs"}},
		{ID: "advisor", Name: "Advisor", Affiliation: "ASU", Interests: []string{"graphs"}},
		{ID: "ann", Name: "Ann", Affiliation: "UniTo", Interests: []string{"community detection"}},
		{ID: "aaron", Name: "Aaron", Affiliation: "MPI", Interests: []string{"social media"}},
		{ID: "carl", Name: "Carl", Affiliation: "NUS", Interests: []string{"graphs"}},
	}
	for _, u := range users {
		if err := st.PutUser(u); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.PutConference(social.Conference{ID: "edbt13", Name: "EDBT 2013", Series: "edbt", Year: 2013})
	_ = st.PutConference(social.Conference{ID: "edbt12", Name: "EDBT 2012", Series: "edbt", Year: 2012})
	_ = st.PutSession(social.Session{ID: "s-graphs", ConferenceID: "edbt13",
		Title: "Large scale graph processing", Track: "graphs", Chair: "ann", Hashtag: "#graphs13"})
	_ = st.PutSession(social.Session{ID: "s-social", ConferenceID: "edbt13",
		Title: "Social media and networks", Track: "social", Chair: "aaron"})

	papers := []social.Paper{
		{ID: "p-ann10", Title: "Community detection in evolving networks", Authors: []string{"ann"},
			Abstract: "We detect communities in evolving social networks.", Year: 2010},
		{ID: "p-advisor", Title: "Graph partitioning methods", Authors: []string{"advisor", "carl"},
			Abstract: "Partitioning large graphs for distributed processing.", Year: 2009},
		{ID: "p-zach", Title: "Diffusion of influence in social media graphs", Authors: []string{"zach", "advisor"},
			Abstract:     "Influence diffusion in social media interaction graphs with community structure.",
			ConferenceID: "edbt13", SessionID: "s-social", Citations: []string{"p-ann10", "p-advisor"}},
		{ID: "p-carl", Title: "Scalable graph traversal on clusters", Authors: []string{"carl"},
			Abstract:     "Traversal of massive graphs with partitioning and communication optimizations.",
			ConferenceID: "edbt13", SessionID: "s-graphs", Citations: []string{"p-advisor", "p-ann10"}},
	}
	for _, p := range papers {
		if err := st.PutPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.PutPresentation(social.Presentation{ID: "pres-zach", PaperID: "p-zach", Owner: "zach",
		Title: "Diffusion slides", Text: "Influence diffusion in social media graphs. Community structure matters. Equation three defines the diffusion kernel."})

	_ = st.Connect("zach", "ann")
	_ = st.Follow("zach", "ann")
	_ = st.Follow("zach", "carl")
	_ = st.Follow("advisor", "zach")
	_ = st.CheckIn("s-graphs", "ann")
	_ = st.CheckIn("s-graphs", "carl")
	_ = st.CheckIn("s-social", "zach")
	_ = st.CheckIn("s-social", "aaron")
	_ = st.AskQuestion(social.Question{ID: "q-aaron", Author: "aaron", Target: "pres-zach",
		Text: "Is there a typo in equation three of the diffusion kernel?"})
	_ = st.PostAnswer(social.Answer{ID: "ans-zach", QuestionID: "q-aaron", Author: "zach",
		Text: "Yes, fixed. Thanks for catching the diffusion kernel typo."})
	_ = st.PutWorkpad(social.Workpad{ID: "w-zach", Owner: "zach", Name: "session", Items: []social.WorkpadItem{
		{Kind: social.ItemUser, Ref: "ann"},
		{Kind: social.ItemPaper, Ref: "p-carl"},
		{Kind: social.ItemSession, Ref: "s-graphs"},
	}})
	_ = st.SetActiveWorkpad("zach", "w-zach")

	eng, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	return st, eng
}

func TestBuildAssemblesAllLayers(t *testing.T) {
	_, eng := zachWorld(t)
	if eng.Index().Len() == 0 {
		t.Fatal("text index empty")
	}
	if eng.ConceptMap().Len() == 0 {
		t.Fatal("concept map empty")
	}
	if eng.PeerGraph().NumNodes() != 5 {
		t.Fatalf("peer graph nodes = %d", eng.PeerGraph().NumNodes())
	}
	if eng.KnowledgeBase().Len() == 0 {
		t.Fatal("knowledge base empty")
	}
	if len(eng.Layers()) != 4 {
		t.Fatalf("layers = %d", len(eng.Layers()))
	}
	if s := eng.String(); !strings.Contains(s, "users=5") {
		t.Fatalf("String = %q", s)
	}
}

func TestExplainFindsScenarioEvidences(t *testing.T) {
	_, eng := zachWorld(t)
	// Zach vs Ann: zach cites her, follows her, connected, shares the
	// graph context.
	ex, err := eng.Explain("zach", "ann")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EvidenceKind]bool{}
	for _, ev := range ex.Evidences {
		kinds[ev.Kind] = true
		if ev.Strength <= 0 || ev.Strength > 1 {
			t.Fatalf("strength out of range: %+v", ev)
		}
		if ev.Description == "" {
			t.Fatalf("missing description: %+v", ev)
		}
	}
	if !kinds[EvCitation] {
		t.Fatalf("citation evidence missing: %+v", ex.Evidences)
	}
	if !kinds[EvFollow] {
		t.Fatalf("follow evidence missing: %+v", ex.Evidences)
	}
	if ex.Score <= 0 || ex.Score > 1 {
		t.Fatalf("score = %v", ex.Score)
	}
	if len(ex.Paths) == 0 {
		t.Fatal("no connecting paths")
	}
	if ex.Paths[0][0] != "zach" || ex.Paths[0][len(ex.Paths[0])-1] != "ann" {
		t.Fatalf("path endpoints wrong: %v", ex.Paths[0])
	}
}

func TestExplainCoauthorAndAffiliation(t *testing.T) {
	_, eng := zachWorld(t)
	ex, err := eng.Explain("zach", "advisor")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EvidenceKind]bool{}
	for _, ev := range ex.Evidences {
		kinds[ev.Kind] = true
	}
	if !kinds[EvCoauthor] {
		t.Fatalf("coauthor evidence missing: %+v", ex.Evidences)
	}
	if !kinds[EvAffiliation] {
		t.Fatalf("affiliation evidence missing: %+v", ex.Evidences)
	}
}

func TestExplainQAEvidence(t *testing.T) {
	_, eng := zachWorld(t)
	// Aaron asked about Zach's presentation; Zach answered.
	ex, err := eng.Explain("zach", "aaron")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range ex.Evidences {
		if ev.Kind == EvQA {
			found = true
		}
	}
	if !found {
		t.Fatalf("QA evidence missing: %+v", ex.Evidences)
	}
}

func TestExplainIndirectCoauthorship(t *testing.T) {
	_, eng := zachWorld(t)
	// zach—advisor—carl: distance 2.
	ex, err := eng.Explain("zach", "carl")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range ex.Evidences {
		if ev.Kind == EvCoauthor {
			if !strings.Contains(ev.Description, "distance 2") {
				t.Fatalf("expected distance-2 explanation: %+v", ev)
			}
			return
		}
	}
	t.Fatalf("indirect coauthor evidence missing: %+v", ex.Evidences)
}

func TestExplainUnknownUser(t *testing.T) {
	_, eng := zachWorld(t)
	if _, err := eng.Explain("zach", "ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
	if _, err := eng.Explain("ghost", "zach"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestFusionRules(t *testing.T) {
	evs := []Evidence{
		{Kind: EvCoauthor, Strength: 0.8},
		{Kind: EvProfile, Strength: 0.4},
		{Kind: EvFollow, Strength: 0.6},
	}
	ws := FuseWeightedSum(evs)
	mx := FuseMax(evs)
	if ws <= 0 || ws > 1 {
		t.Fatalf("weighted sum = %v", ws)
	}
	if mx != 0.8 { // coauthor weight 1.0 × 0.8
		t.Fatalf("max fusion = %v", mx)
	}
	if FuseWeightedSum(nil) != 0 || FuseMax(nil) != 0 {
		t.Fatal("empty fusion should be 0")
	}
	// More independent evidence must not lower the weighted score given
	// equal strengths.
	single := FuseWeightedSum([]Evidence{{Kind: EvCoauthor, Strength: 0.8}})
	if single >= ws {
		t.Fatalf("count damping inverted: single=%v multi=%v", single, ws)
	}
}

func TestContextVectorUsesWorkpad(t *testing.T) {
	_, eng := zachWorld(t)
	ctx := eng.ContextVector("zach")
	if len(ctx) == 0 {
		t.Fatal("empty context")
	}
	// The workpad contains a graph-processing paper and session; "graph"
	// must be a strong term.
	if ctx["graph"] == 0 {
		t.Fatalf("context missing workpad terms: %v", ctx.TopTerms(10))
	}
	// A user with no workpad still gets interests.
	ctxA := eng.ContextVector("aaron")
	if len(ctxA) == 0 {
		t.Fatal("interest-only context empty")
	}
	// Unknown users yield an empty vector.
	if got := eng.ContextVector("ghost"); len(got) != 0 {
		t.Fatalf("ghost context = %v", got)
	}
}

func TestSearchAndSearchWithContext(t *testing.T) {
	_, eng := zachWorld(t)
	plain := eng.Search("graph processing", 5)
	if len(plain) == 0 {
		t.Fatal("no plain results")
	}
	ctxd := eng.SearchWithContext("zach", "graph processing", 5)
	if len(ctxd) == 0 {
		t.Fatal("no contextual results")
	}
	// Zach's workpad is graph-flavored; the graph-traversal paper p-carl
	// should rank at or above its plain position.
	posPlain, posCtx := -1, -1
	for i, r := range plain {
		if r.DocID == DocPaper+"p-carl" {
			posPlain = i
		}
	}
	for i, r := range ctxd {
		if r.DocID == DocPaper+"p-carl" {
			posCtx = i
		}
	}
	if posCtx == -1 {
		t.Fatalf("context search lost the relevant paper: %v", ctxd)
	}
	if posPlain != -1 && posCtx > posPlain {
		t.Fatalf("context demoted relevant paper: plain@%d ctx@%d", posPlain, posCtx)
	}
}

func TestPreviewAndAnnotate(t *testing.T) {
	_, eng := zachWorld(t)
	snips, err := eng.Preview("zach", DocPresentation+"pres-zach", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snips) == 0 {
		t.Fatal("no snippets")
	}
	kps, err := eng.Annotate(DocPaper+"p-zach", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kps) == 0 {
		t.Fatal("no annotations")
	}
	if _, err := eng.Preview("zach", "paper/missing", 2); err == nil {
		t.Fatal("missing doc accepted")
	}
}

func TestDetectOverlap(t *testing.T) {
	_, eng := zachWorld(t)
	// Zach's slides reuse his paper's content.
	res, cont, err := eng.DetectOverlap(DocPresentation+"pres-zach", DocPaper+"p-zach")
	if err != nil {
		t.Fatal(err)
	}
	if res <= 0 {
		t.Fatalf("resemblance = %v, want > 0", res)
	}
	if cont <= 0 {
		t.Fatalf("containment = %v", cont)
	}
	// Unrelated pair.
	res2, _, err := eng.DetectOverlap(DocPaper+"p-ann10", DocPaper+"p-advisor")
	if err != nil {
		t.Fatal(err)
	}
	if res2 >= res {
		t.Fatalf("unrelated pair (%v) should overlap less than slide/paper (%v)", res2, res)
	}
}

func TestRecommendPeersExcludesSelfAndConnections(t *testing.T) {
	_, eng := zachWorld(t)
	recs, err := eng.RecommendPeers("zach", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no peer recommendations")
	}
	for _, r := range recs {
		if r.UserID == "zach" {
			t.Fatal("recommended self")
		}
		if r.UserID == "ann" {
			t.Fatal("recommended an existing connection")
		}
		if r.Score <= 0 {
			t.Fatalf("non-positive score: %+v", r)
		}
	}
	// The advisor (coauthor, same affiliation, follows zach) should be
	// among the top suggestions, with evidence attached.
	found := false
	for _, r := range recs {
		if r.UserID == "advisor" {
			found = true
			if len(r.Evidences) == 0 {
				t.Fatal("advisor recommendation has no evidence")
			}
		}
	}
	if !found {
		t.Fatalf("advisor not recommended: %+v", recs)
	}
	if _, err := eng.RecommendPeers("ghost", 3); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecommendPeersAttachesLikelySessions(t *testing.T) {
	_, eng := zachWorld(t)
	recs, err := eng.RecommendPeers("zach", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.UserID == "carl" {
			if len(r.LikelySessions) == 0 {
				t.Fatal("carl checked into s-graphs; likely sessions empty")
			}
			if r.LikelySessions[0] != "s-graphs" {
				t.Fatalf("LikelySessions = %v", r.LikelySessions)
			}
			return
		}
	}
	// carl might not be in top-4; that is fine as long as someone has
	// sessions.
	for _, r := range recs {
		if len(r.LikelySessions) > 0 {
			return
		}
	}
	t.Fatalf("no recommendation carries likely sessions: %+v", recs)
}

func TestSuggestSessionsSocialSignal(t *testing.T) {
	_, eng := zachWorld(t)
	// Zach follows ann and carl, both checked into s-graphs; he attends
	// s-social already.
	sugg, err := eng.SuggestSessions("zach", "edbt13", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	if sugg[0].SessionID != "s-graphs" {
		t.Fatalf("top suggestion = %+v, want s-graphs", sugg[0])
	}
	if len(sugg[0].FollowedAttendees) != 2 {
		t.Fatalf("FollowedAttendees = %v", sugg[0].FollowedAttendees)
	}
	// Already-attended sessions are excluded.
	for _, s := range sugg {
		if s.SessionID == "s-social" {
			t.Fatal("suggested an attended session")
		}
	}
	if _, err := eng.SuggestSessions("ghost", "edbt13", 3); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecommendResourcesContextBeatsNoContext(t *testing.T) {
	_, eng := zachWorld(t)
	withCtx, err := eng.RecommendResources("zach", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(withCtx) == 0 {
		t.Fatal("no contextual recommendations")
	}
	// Own content never recommended.
	for _, r := range withCtx {
		if strings.Contains(r.DocID, "p-zach") || strings.Contains(r.DocID, "pres-zach") {
			t.Fatalf("own content recommended: %+v", r)
		}
	}
	// The graph-themed p-carl should surface for Zach's graph workpad.
	found := false
	for _, r := range withCtx {
		if r.DocID == DocPaper+"p-carl" {
			found = true
		}
	}
	if !found {
		t.Fatalf("context-matched paper missing: %+v", withCtx)
	}
}

func TestCommunitiesCoverAllUsers(t *testing.T) {
	_, eng := zachWorld(t)
	comms := eng.Communities()
	seen := map[string]bool{}
	for _, c := range comms {
		for _, u := range c {
			seen[u] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("communities cover %d users, want 5", len(seen))
	}
	if got := eng.CommunityOf("zach"); len(got) == 0 {
		t.Fatal("CommunityOf(zach) empty")
	}
	if got := eng.CommunityOf("ghost"); got != nil {
		t.Fatalf("CommunityOf(ghost) = %v", got)
	}
}

func TestUpdateDigest(t *testing.T) {
	st, eng := zachWorld(t)
	_ = st // advisor follows zach; zach has activity
	sum, err := eng.UpdateDigest("advisor", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) == 0 || len(sum.Rows) > 3 {
		t.Fatalf("digest rows = %d", len(sum.Rows))
	}
	total := 0
	for _, r := range sum.Rows {
		total += r.Count
	}
	if total == 0 {
		t.Fatal("digest covers no events")
	}
}

func TestActivityTensorStreamAndMonitor(t *testing.T) {
	_, eng := zachWorld(t)
	stream, sk, err := eng.ActivityTensorStream(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("empty tensor stream")
	}
	if sk == nil {
		t.Fatal("nil sketcher")
	}
	res, err := eng.MonitorActivity(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(stream) {
		t.Fatalf("results = %d, epochs = %d", len(res), len(stream))
	}
}

// --- Workload-scale integration ----------------------------------------------

func buildWorkloadEngine(t *testing.T, users int) *Engine {
	t.Helper()
	st, err := social.Open("", testClock())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ds := workload.Generate(workload.Config{Seed: 11, Users: users})
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	eng, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestWorkloadScaleBuildAndServices(t *testing.T) {
	eng := buildWorkloadEngine(t, 48)
	// Every user must be explainable against every service without error.
	users := eng.Store().Users()
	if _, err := eng.Explain(users[0], users[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RecommendPeers(users[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RecommendResources(users[0], 5, true); err != nil {
		t.Fatal(err)
	}
	if got := eng.Search("graph partitioning", 5); len(got) == 0 {
		t.Fatal("search found nothing in workload corpus")
	}
	if comms := eng.Communities(); len(comms) == 0 {
		t.Fatal("no communities")
	}
}

func TestCFBeatsPopularityOnTopicalHoldout(t *testing.T) {
	eng := buildWorkloadEngine(t, 64)
	ds := workload.Generate(workload.Config{Seed: 11, Users: 64})

	// For each user, check whether top-5 recommendations match the
	// user's planted topic. CF should exceed the popularity baseline on
	// average (the E10 shape).
	topicHit := func(recs []CFRecommendation, topic int) float64 {
		if len(recs) == 0 {
			return 0
		}
		hits := 0
		for _, r := range recs {
			id := stripDocPrefix(r.DocID)
			if ds.TopicOfPaper[id] == topic {
				hits++
			}
			if p, err := eng.Store().Presentation(id); err == nil && ds.TopicOfPaper[p.PaperID] == topic {
				hits++
			}
		}
		return float64(hits) / float64(len(recs))
	}
	var cfSum, popSum float64
	n := 0
	for _, u := range eng.Store().Users() {
		topic := ds.TopicOfUser[u]
		cf := eng.RecommendByCF(u, 5)
		pop := eng.RecommendByPopularity(u, 5)
		if len(cf) == 0 {
			continue
		}
		cfSum += topicHit(cf, topic)
		popSum += topicHit(pop, topic)
		n++
	}
	if n < 10 {
		t.Fatalf("too few users with CF output: %d", n)
	}
	if cfSum <= popSum {
		t.Fatalf("CF precision %.3f not above popularity %.3f", cfSum/float64(n), popSum/float64(n))
	}
}

func TestContextImprovesResourcePrecision(t *testing.T) {
	eng := buildWorkloadEngine(t, 64)
	ds := workload.Generate(workload.Config{Seed: 11, Users: 64})

	precision := func(useCtx bool) float64 {
		var sum float64
		n := 0
		for _, u := range eng.Store().Users() {
			topic := ds.TopicOfUser[u]
			recs, err := eng.RecommendResources(u, 5, useCtx)
			if err != nil || len(recs) == 0 {
				continue
			}
			hits := 0
			for _, r := range recs {
				id := stripDocPrefix(r.DocID)
				if ds.TopicOfPaper[id] == topic {
					hits++
				} else if p, err := eng.Store().Presentation(id); err == nil && ds.TopicOfPaper[p.PaperID] == topic {
					hits++
				}
			}
			sum += float64(hits) / float64(len(recs))
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	withCtx := precision(true)
	without := precision(false)
	if withCtx <= without {
		t.Fatalf("context precision %.3f not above no-context %.3f (E4 shape)", withCtx, without)
	}
}
