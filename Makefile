# Local dev and CI run the exact same commands: CI jobs call these
# targets, so a green `make ci` locally means a green pipeline.

GO      ?= go
BENCHTIME ?= 200ms

.PHONY: build test race bench bench-ci fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Short benchmark pass for CI: one data point per benchmark, JSON
# stream captured as BENCH_ci.json so the perf trajectory accumulates.
bench-ci:
	$(GO) test -json -bench=. -benchtime=$(BENCHTIME) -run='^$$' . | tee BENCH_ci.json

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt race
