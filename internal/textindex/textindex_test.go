package textindex

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Graph-based Peer Discovery, v2.0!")
	want := []string{"graph", "based", "peer", "discovery", "v2", "0"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ...  "); len(got) != 0 {
		t.Fatalf("Tokenize punctuation = %v, want empty", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Müller naïve café")
	if len(got) != 3 || got[0] != "müller" {
		t.Fatalf("Tokenize unicode = %v", got)
	}
}

func TestTermsDropsStopwordsAndStems(t *testing.T) {
	got := Terms("the quick databases are processing queries")
	for _, tok := range got {
		if IsStopword(tok) {
			t.Fatalf("stopword %q survived: %v", tok, got)
		}
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "databas") {
		t.Fatalf("expected stemmed 'databas' in %v", got)
	}
	if !strings.Contains(joined, "process") {
		t.Fatalf("expected stemmed 'process' in %v", got)
	}
}

func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "is", "go"} {
		if got := Stem(w); got != w {
			t.Fatalf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestPropStemIdempotentForCommonWords(t *testing.T) {
	// Stemming a stem should usually be stable for dictionary-like input.
	words := []string{"connection", "networks", "recommendations", "running",
		"analysis", "citations", "conferences", "sessions", "questions"}
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		// Porter is not strictly idempotent in general, but must be for
		// these already-reduced forms.
		if s2 != s1 && Stem(s2) != s2 {
			t.Errorf("Stem unstable: %q -> %q -> %q", w, s1, s2)
		}
	}
}

func TestVectorCosine(t *testing.T) {
	a := Vector{"x": 1, "y": 2}
	b := Vector{"x": 2, "y": 4}
	if c := a.Cosine(b); c < 0.999 {
		t.Fatalf("parallel cosine = %v", c)
	}
	c := Vector{"z": 1}
	if got := a.Cosine(c); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := a.Cosine(Vector{}); got != 0 {
		t.Fatalf("empty cosine = %v", got)
	}
}

func TestVectorAddAndTopTerms(t *testing.T) {
	v := Vector{"a": 1}
	v.Add(Vector{"a": 1, "b": 3}, 2)
	if v["a"] != 3 || v["b"] != 6 {
		t.Fatalf("Add result = %v", v)
	}
	top := v.TopTerms(1)
	if len(top) != 1 || top[0] != "b" {
		t.Fatalf("TopTerms = %v", top)
	}
	if got := v.TopTerms(10); len(got) != 2 {
		t.Fatalf("TopTerms over-length = %v", got)
	}
}

func TestPropCosineSymmetricBounded(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := make(Vector), make(Vector)
		for i, x := range xs {
			a[fmt.Sprintf("t%d", i%8)] += float64(x)
		}
		for i, y := range ys {
			b[fmt.Sprintf("t%d", i%8)] += float64(y)
		}
		c1, c2 := a.Cosine(b), b.Cosine(a)
		if diff := c1 - c2; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return c1 >= 0 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func buildCorpus(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex()
	docs := map[string]string{
		"p1": "Scalable graph processing on distributed clusters with vertex partitioning",
		"p2": "Community detection in social networks using modularity optimization",
		"p3": "Tensor decomposition methods for multi-relational social media analysis",
		"p4": "Query optimization in relational database systems with cost models",
		"p5": "Graph partitioning heuristics for large scale graph analytics workloads",
	}
	for id, text := range docs {
		ix.Add(id, text)
	}
	return ix
}

func TestSearchBM25RanksRelevantFirst(t *testing.T) {
	ix := buildCorpus(t)
	res := ix.Search("graph partitioning", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].DocID != "p5" && res[0].DocID != "p1" {
		t.Fatalf("top result = %v, want a graph-partitioning paper", res[0])
	}
	// p5 mentions both terms (and graph twice) so it should beat p2/p4.
	for _, r := range res {
		if r.DocID == "p2" && r.Score >= res[0].Score {
			t.Fatalf("irrelevant doc ranked first: %v", res)
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := buildCorpus(t)
	if res := ix.Search("quantum chromodynamics", 5); len(res) != 0 {
		t.Fatalf("expected no results, got %v", res)
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	ix := NewIndex()
	if res := ix.Search("anything", 5); res != nil {
		t.Fatalf("expected nil, got %v", res)
	}
}

func TestSearchKLimit(t *testing.T) {
	ix := buildCorpus(t)
	res := ix.Search("graph social tensor query", 2)
	if len(res) > 2 {
		t.Fatalf("k not honored: %v", res)
	}
}

func TestAddReplacesDocument(t *testing.T) {
	ix := NewIndex()
	ix.Add("d", "graph processing")
	ix.Add("d", "database systems")
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if res := ix.Search("graph", 5); len(res) != 0 {
		t.Fatalf("old content still searchable: %v", res)
	}
	if res := ix.Search("database", 5); len(res) != 1 {
		t.Fatalf("new content not searchable: %v", res)
	}
}

func TestRemove(t *testing.T) {
	ix := buildCorpus(t)
	ix.Remove("p1")
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for _, r := range ix.Search("graph", 10) {
		if r.DocID == "p1" {
			t.Fatal("removed doc still in results")
		}
	}
	ix.Remove("p1") // double remove is a no-op
}

func TestTextRoundTrip(t *testing.T) {
	ix := buildCorpus(t)
	txt, err := ix.Text("p2")
	if err != nil || !strings.Contains(txt, "Community") {
		t.Fatalf("Text = %q, %v", txt, err)
	}
	if _, err := ix.Text("nope"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDocIDsSorted(t *testing.T) {
	ix := buildCorpus(t)
	ids := ix.DocIDs()
	if len(ids) != 5 {
		t.Fatalf("DocIDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
}

func TestTFIDFVector(t *testing.T) {
	ix := buildCorpus(t)
	v, err := ix.TFIDFVector("p1")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Fatal("empty vector")
	}
	// "graph" appears in 2 of 5 docs; "scalable" in 1. For p1 both have
	// tf=1 so the rarer term must weigh more.
	if v[Stem("scalable")] <= v[Stem("graph")] {
		t.Fatalf("idf ordering wrong: scalable=%v graph=%v", v[Stem("scalable")], v[Stem("graph")])
	}
	if _, err := ix.TFIDFVector("nope"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSearchVectorMatchesContext(t *testing.T) {
	ix := buildCorpus(t)
	ctx := TermFrequency("tensor streams for social media monitoring")
	res := ix.SearchVector(ctx, 2)
	if len(res) == 0 || res[0].DocID != "p3" {
		t.Fatalf("SearchVector top = %v, want p3", res)
	}
	if res := ix.SearchVector(Vector{}, 3); res != nil {
		t.Fatalf("empty query should return nil, got %v", res)
	}
}

func TestExtractKeyphrases(t *testing.T) {
	text := `Graph processing systems partition large graphs across machines.
	Partitioning quality determines communication volume in graph processing.
	We study graph partitioning algorithms and their communication costs.`
	kps := ExtractKeyphrases(text, 5)
	if len(kps) == 0 {
		t.Fatal("no keyphrases")
	}
	found := false
	for _, kp := range kps[:3] {
		if strings.HasPrefix(kp.Term, "graph") || strings.HasPrefix(kp.Term, "partition") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dominant concept missing from top-3: %v", kps)
	}
	for i := 1; i < len(kps); i++ {
		if kps[i].Score > kps[i-1].Score {
			t.Fatalf("not sorted by score: %v", kps)
		}
	}
}

func TestExtractKeyphrasesEmpty(t *testing.T) {
	if kps := ExtractKeyphrases("", 5); kps != nil {
		t.Fatalf("got %v", kps)
	}
	if kps := ExtractKeyphrases("the and of", 5); kps != nil {
		t.Fatalf("stopword-only text gave %v", kps)
	}
}

func TestSplitSentences(t *testing.T) {
	sents := SplitSentences("First sentence. Second one! Third? Trailing")
	if len(sents) != 4 {
		t.Fatalf("SplitSentences = %v", sents)
	}
	if sents[3] != "Trailing" {
		t.Fatalf("trailing fragment lost: %v", sents)
	}
}

func TestExtractSnippets(t *testing.T) {
	doc := `We present a system for large scale data processing.
	The weather in Genoa is pleasant in March.
	Our tensor decomposition method scales to billions of entries.
	Lunch was served at noon.
	Experiments show tensor methods outperform matrix baselines.`
	ctx := TermFrequency("tensor decomposition scalability")
	snips := ExtractSnippets(doc, ctx, 2)
	if len(snips) != 2 {
		t.Fatalf("got %d snippets", len(snips))
	}
	for _, s := range snips {
		if strings.Contains(s.Text, "weather") || strings.Contains(s.Text, "Lunch") {
			t.Fatalf("irrelevant snippet selected: %q", s.Text)
		}
	}
	// Document order must be preserved.
	if snips[0].Start > snips[1].Start {
		t.Fatalf("snippets out of order: %+v", snips)
	}
}

func TestExtractSnippetsEmptyDoc(t *testing.T) {
	if s := ExtractSnippets("", Vector{"x": 1}, 3); s != nil {
		t.Fatalf("got %v", s)
	}
}

func TestExtractSnippetsNoContext(t *testing.T) {
	// With an empty context the positional prior should pick leading
	// sentences.
	doc := "Alpha beta. Gamma delta. Epsilon zeta."
	s := ExtractSnippets(doc, Vector{}, 1)
	if len(s) != 1 || !strings.HasPrefix(s[0].Text, "Alpha") {
		t.Fatalf("got %+v", s)
	}
}

func TestShinglesAndResemblance(t *testing.T) {
	a := Shingles("the quick brown fox jumps over the lazy dog", 3)
	b := Shingles("the quick brown fox jumps over the lazy dog", 3)
	if r := Resemblance(a, b); r < 0.999 {
		t.Fatalf("identical docs resemblance = %v", r)
	}
	c := Shingles("completely different content about databases", 3)
	if r := Resemblance(a, c); r != 0 {
		t.Fatalf("disjoint docs resemblance = %v", r)
	}
}

func TestResemblancePartialOverlap(t *testing.T) {
	a := Shingles("graph processing systems partition large graphs across machines today", 2)
	b := Shingles("graph processing systems partition large graphs across machines yesterday evening", 2)
	r := Resemblance(a, b)
	if r <= 0.3 || r >= 1 {
		t.Fatalf("partial overlap resemblance = %v, want in (0.3, 1)", r)
	}
}

func TestContainmentAsymmetry(t *testing.T) {
	slide := "tensor streams compressed sensing"
	paper := "tensor streams compressed sensing with randomized ensembles for change detection in evolving multi relational social networks"
	a := Shingles(slide, 2)
	b := Shingles(paper, 2)
	if Containment(a, b) <= Containment(b, a) {
		t.Fatalf("containment should be asymmetric: a-in-b=%v b-in-a=%v",
			Containment(a, b), Containment(b, a))
	}
	if Containment(a, b) < 0.9 {
		t.Fatalf("slide should be nearly contained in paper: %v", Containment(a, b))
	}
}

func TestShinglesShortDoc(t *testing.T) {
	s := Shingles("tensor", 5)
	if len(s) != 1 {
		t.Fatalf("short doc shingles = %d, want 1", len(s))
	}
	if len(Shingles("", 3)) != 0 {
		t.Fatal("empty doc should have no shingles")
	}
}

func TestPropResemblanceBoundsAndSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		sa := Shingles(a, 2)
		sb := Shingles(b, 2)
		r1 := Resemblance(sa, sb)
		r2 := Resemblance(sb, sa)
		return r1 == r2 && r1 >= 0 && r1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexConcurrentAccess(t *testing.T) {
	ix := NewIndex()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			ix.Add(fmt.Sprintf("d%d", i%20), "graph database systems research")
		}
	}()
	for i := 0; i < 200; i++ {
		ix.Search("graph", 5)
		ix.Len()
	}
	<-done
}
