// Package server exercises the closed-registry rule at the three
// sensitive shapes: envelope literals, writeError call sites, and
// IsCode checks.
package server

import "apierrtest/api"

// codeTeapot is declared outside the api registry: no client can
// dispatch on it.
const codeTeapot = "teapot"

func writeError(w, r any, status int, code, msg string) {}

func handlers(err error) {
	writeError(nil, nil, 404, api.CodeNotFound, "missing")  // clean: registry constant
	writeError(nil, nil, 500, "oops", "raw")                // want `raw string as an error code`
	writeError(nil, nil, 418, codeTeapot, "local constant") // want `not declared in the api`

	//lint:allow apierrcheck migration shim: legacy clients still match on this string
	writeError(nil, nil, 410, "gone_legacy", "legacy")

	_ = &api.Error{Code: api.CodeInternal, Message: "boom"} // clean
	_ = &api.Error{Code: "boom", Message: "boom"}           // want `raw string as an error code`
	_ = api.Error{Code: codeTeapot}                         // want `not declared in the api`

	_ = api.IsCode(err, api.CodeInvalidArgument) // clean
	_ = api.IsCode(err, "not_found")             // want `raw string as an error code`

	// Dynamic values pass: provenance is not tracked.
	var ae api.Error
	writeError(nil, nil, 500, ae.Code, ae.Message)
}
