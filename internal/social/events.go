package social

// Typed change log: every mutation of the store emits one or more
// ChangeEvents describing *what* changed, replacing the untyped dirty
// bit the platform used to rebuild the whole knowledge engine from. The
// events are the contract between the write path and the incremental
// engine maintenance (core.Builder.ApplyDelta): each event names the
// entity it touched and the related entities a delta repair needs, so
// the engine can recompute exactly the derived state the write
// invalidated instead of rebuilding O(corpus).

// ChangeKind classifies a change event.
type ChangeKind uint8

// Change kinds. The store currently has no hard-delete APIs beyond
// Unfollow, so ChangeDelete is rare; it exists so delta consumers
// handle removal uniformly when more delete paths appear.
const (
	// ChangePut records a create or update of an entity.
	ChangePut ChangeKind = iota + 1
	// ChangeDelete records a removal of an entity (or edge).
	ChangeDelete
)

func (k ChangeKind) String() string {
	switch k {
	case ChangePut:
		return "put"
	case ChangeDelete:
		return "delete"
	}
	return "unknown"
}

// EntityType names the kind of entity a ChangeEvent touched.
type EntityType string

// Entity types carried by change events.
const (
	EntityUser          EntityType = "user"
	EntityConference    EntityType = "conference"
	EntitySession       EntityType = "session"
	EntityPaper         EntityType = "paper"
	EntityPresentation  EntityType = "presentation"
	EntityConnection    EntityType = "connection"
	EntityFollow        EntityType = "follow"
	EntityCheckin       EntityType = "checkin"
	EntityQuestion      EntityType = "question"
	EntityAnswer        EntityType = "answer"
	EntityComment       EntityType = "comment"
	EntityWorkpad       EntityType = "workpad"
	EntityActiveWorkpad EntityType = "active-workpad"
	EntityCollection    EntityType = "collection"
	// EntityActivity marks an appended activity-stream Event; ID is the
	// event's sequence key (seqKey) and Refs is [actor, object].
	EntityActivity EntityType = "activity"
)

// ChangeEvent is one typed entry of the store's change log.
//
// Seq is a monotone sequence assigned at emission time; consumers use
// it to order events and to bound "applied up to" watermarks. On
// durable stores the change journal persists every delivered batch, so
// Seq resumes where it left off after a reopen (in-memory stores
// restart at zero). ID identifies
// the touched entity within its type (edges use composite IDs, e.g.
// "follower/followee"). Refs lists the related entity IDs an
// incremental consumer needs to repair derived state (paper authors,
// edge endpoints, workpad owners) without refetching the entity first.
// ChangeEvents are also the unit of durability and replication: the
// store journals every delivered batch (internal/journal), and the
// leader/follower protocol ships batches by Seq — hence the JSON tags,
// which are part of the replication wire format.
type ChangeEvent struct {
	Seq        uint64     `json:"seq"`
	Kind       ChangeKind `json:"kind"`
	EntityType EntityType `json:"entity"`
	ID         string     `json:"id"`
	Refs       []string   `json:"refs,omitempty"`
}
