// Command hived serves the Hive platform over HTTP (the Figure 1
// surface).
//
// Usage:
//
//	hived [-addr :8080] [-data DIR] [-seed users] [-refresh 30s] [-workers N]
//	      [-timeout 30s] [-max-inflight N] [-qps N] [-quiet] [-pprof ADDR]
//
// The API is served under /api/v1 (typed DTOs, cursor pagination,
// structured errors, conditional knowledge GETs, POST /api/v1/batch
// bulk ingest — see API.md); the unversioned /api/* routes remain as
// deprecated aliases for one release.
//
// With -seed N, a synthetic conference workload of N users is generated
// and loaded at startup so the API has data to serve. With -refresh D,
// the knowledge engine is rebuilt in the background every D while data
// changed; rebuilds fan the derivation stages out across -workers
// goroutines and swap the snapshot atomically, so requests keep being
// served from the previous snapshot for the whole rebuild. A rebuild can
// also be requested over HTTP: POST /api/v1/admin/refresh (async; add
// ?wait=true to block until the swap), and GET /api/v1/healthz reports
// the serving snapshot's generation, age and staleness.
//
// -timeout, -max-inflight and -qps wire the middleware stack's
// operational limits (0 disables each); -quiet drops the access log.
//
// With -pprof ADDR (off by default), net/http/pprof profiling handlers
// are exposed on a separate listener under /debug/pprof/, kept off the
// public API address so profiling never rides the serving middleware
// (and can be bound to localhost while the API is public).
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"hive"
	"hive/internal/server"
	"hive/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "storage directory (empty = in-memory)")
	seed := flag.Int("seed", 0, "generate a synthetic workload with this many users")
	refresh := flag.Duration("refresh", 30*time.Second, "background snapshot refresh interval (0 = disabled)")
	workers := flag.Int("workers", 0, "engine rebuild parallelism (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request time budget (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent requests (0 = uncapped)")
	qps := flag.Float64("qps", 0, "global request rate limit (0 = unlimited)")
	quiet := flag.Bool("quiet", false, "disable the per-request access log")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this separate address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	p, err := hive.Open(hive.Options{Dir: *data, Workers: *workers})
	if err != nil {
		log.Fatalf("open platform: %v", err)
	}
	defer p.Close()

	if *seed > 0 {
		ds := workload.Generate(workload.Config{Seed: 42, Users: *seed})
		// Seeding runs in-process before serving: one batched store pass,
		// one snapshot invalidation.
		if err := p.Store().Batched(func() error { return ds.Load(p.Store()) }); err != nil {
			log.Fatalf("load workload: %v", err)
		}
		log.Printf("seeded %d users, %d papers, %d sessions",
			len(ds.Users), len(ds.Papers), len(ds.Sessions))
	}
	if err := p.Refresh(); err != nil {
		log.Fatalf("build knowledge engine: %v", err)
	}
	if eng := p.Snapshot(); eng != nil {
		log.Printf("knowledge engine ready in %v (generation %d)", eng.BuildDuration(), p.Generation())
	}
	if *refresh > 0 {
		p.AutoRefresh(*refresh)
		log.Printf("auto-refresh every %v", *refresh)
	}

	cfg := server.Config{
		Timeout:     *timeout,
		MaxInFlight: *maxInflight,
		QPS:         *qps,
	}
	if !*quiet {
		cfg.AccessLog = log.Default()
	}
	log.Printf("hived listening on %s (API v1 at /api/v1, legacy /api/* deprecated)", *addr)
	if err := http.ListenAndServe(*addr, server.NewWith(p, cfg)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
