// Quickstart: create a tiny research network, get peer recommendations
// with explanations, and run a context-aware search.
package main

import (
	"fmt"
	"log"

	"hive"
)

func main() {
	p, err := hive.Open(hive.Options{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// A minimal world: three researchers, one conference, one paper.
	must(p.RegisterUser(hive.User{ID: "zach", Name: "Zach", Affiliation: "ASU",
		Interests: []string{"graphs", "social media"}}))
	must(p.RegisterUser(hive.User{ID: "ann", Name: "Ann", Affiliation: "UniTo",
		Interests: []string{"graphs", "community detection"}}))
	must(p.RegisterUser(hive.User{ID: "aaron", Name: "Aaron", Affiliation: "MPI",
		Interests: []string{"social media"}}))

	must(p.CreateConference(hive.Conference{ID: "edbt13", Name: "EDBT 2013", Series: "edbt", Year: 2013}))
	must(p.CreateSession(hive.Session{ID: "s-graphs", ConferenceID: "edbt13",
		Title: "Large Scale Graph Processing", Hashtag: "#edbt13graphs", Chair: "ann"}))
	must(p.PublishPaper(hive.Paper{ID: "p1", Title: "Community detection in large graphs",
		Abstract: "We detect communities in large social graphs using modularity.",
		Authors:  []string{"ann"}, ConferenceID: "edbt13", SessionID: "s-graphs"}))

	// Zach checks in and asks a question.
	must(p.CheckIn("s-graphs", "zach"))
	must(p.Ask(hive.Question{ID: "q1", Author: "zach", Target: "p1",
		Text: "How does modularity behave on power-law graphs?"}))

	// Peer recommendations for Zach, with the evidence behind each.
	recs, err := p.RecommendPeers("zach", 3)
	must(err)
	fmt.Println("Peer recommendations for zach:")
	for _, r := range recs {
		fmt.Printf("  %-8s score=%.4f\n", r.UserID, r.Score)
		for _, ev := range r.Evidences {
			fmt.Printf("    - [%s] %s (%.2f)\n", ev.Kind, ev.Description, ev.Strength)
		}
	}

	// Plain search over all content.
	hits, err := p.Search("community detection graphs", 3)
	must(err)
	fmt.Println("\nSearch results:")
	for _, h := range hits {
		fmt.Printf("  %-12s %.3f\n", h.DocID, h.Score)
	}

	// Relationship explanation between Zach and Ann (Figure 2).
	ex, err := p.Explain("zach", "ann")
	must(err)
	fmt.Printf("\nRelationship zach—ann (score %.3f):\n", ex.Score)
	for _, ev := range ex.Evidences {
		fmt.Printf("  - [%s] %s\n", ev.Kind, ev.Description)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
