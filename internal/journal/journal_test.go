package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendN appends n single-sequence records starting at first, payload
// derived from the sequence so reads can verify content.
func appendN(t *testing.T, j *Journal, first uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := first + uint64(i)
		if err := j.Append(Record{First: seq, Last: seq, Data: payloadFor(seq)}); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
}

func payloadFor(seq uint64) []byte { return []byte(fmt.Sprintf("batch-%d", seq)) }

func openT(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{})
	if got := j.Tail(); got != 0 {
		t.Fatalf("empty Tail = %d", got)
	}
	if recs, err := j.ReadFrom(0, 0); err != nil || recs != nil {
		t.Fatalf("empty ReadFrom = %v, %v", recs, err)
	}

	// Multi-event batch records, like the store's coalesced batches.
	if err := j.Append(Record{First: 1, Last: 3, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{First: 4, Last: 4, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if got := j.Tail(); got != 4 {
		t.Fatalf("Tail = %d, want 4", got)
	}

	recs, err := j.ReadFrom(0, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReadFrom(0) = %d recs, %v", len(recs), err)
	}
	if recs[0].First != 1 || recs[0].Last != 3 || !bytes.Equal(recs[0].Data, []byte("a")) {
		t.Fatalf("rec[0] = %+v", recs[0])
	}
	// after=2 falls inside the first record's range: the record still
	// returns (it contains events > 2).
	recs, err = j.ReadFrom(2, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReadFrom(2) = %d recs, %v", len(recs), err)
	}
	recs, err = j.ReadFrom(3, 0)
	if err != nil || len(recs) != 1 || recs[0].First != 4 {
		t.Fatalf("ReadFrom(3) = %+v, %v", recs, err)
	}
	if recs, err = j.ReadFrom(4, 0); err != nil || recs != nil {
		t.Fatalf("caught-up ReadFrom = %v, %v", recs, err)
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	appendN(t, j, 1, 3)
	if err := j.Append(Record{First: 2, Last: 5}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("overlapping append err = %v", err)
	}
	if err := j.Append(Record{First: 0, Last: 0}); err == nil {
		t.Fatal("zero-sequence append accepted")
	}
	// Gaps are tolerated (the producer may skip sequences it never
	// journals), only regressions are rejected.
	if err := j.Append(Record{First: 10, Last: 12}); err != nil {
		t.Fatalf("gapped append: %v", err)
	}
	if got := j.Tail(); got != 12 {
		t.Fatalf("Tail = %d", got)
	}
}

// TestCrashRecovery is the table test of torn-tail scenarios: each case
// mangles the newest segment and expects recovery to truncate at the
// last good record and keep appending cleanly.
func TestCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		// mangle receives the active segment path after 5 appends (seqs 1-5).
		mangle   func(t *testing.T, path string)
		wantTail uint64
	}{
		{
			name:     "clean shutdown",
			mangle:   func(t *testing.T, path string) {},
			wantTail: 5,
		},
		{
			name: "torn header",
			mangle: func(t *testing.T, path string) {
				// Each record is 8 bytes of header + ~9 of payload;
				// cutting 12 leaves a partial header for the final one.
				truncateBy(t, path, 12)
			},
			wantTail: 4,
		},
		{
			name: "torn payload",
			mangle: func(t *testing.T, path string) {
				info, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				// Leave the final record's header intact but cut its payload.
				if err := os.Truncate(path, info.Size()-1); err != nil {
					t.Fatal(err)
				}
			},
			wantTail: 4,
		},
		{
			name: "corrupt final payload",
			mangle: func(t *testing.T, path string) {
				flipLastByte(t, path)
			},
			wantTail: 4,
		},
		{
			name: "all records torn",
			mangle: func(t *testing.T, path string) {
				if err := os.Truncate(path, 2); err != nil {
					t.Fatal(err)
				}
			},
			wantTail: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j := openT(t, dir, Options{})
			appendN(t, j, 1, 5)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			names := segFiles(t, dir)
			if len(names) != 1 {
				t.Fatalf("segments = %v", names)
			}
			tc.mangle(t, filepath.Join(dir, names[0]))

			re := openT(t, dir, Options{})
			if got := re.Tail(); got != tc.wantTail {
				t.Fatalf("recovered Tail = %d, want %d", got, tc.wantTail)
			}
			recs, err := re.ReadFrom(0, 0)
			if err != nil {
				t.Fatalf("ReadFrom after recovery: %v", err)
			}
			if len(recs) != int(tc.wantTail) {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.wantTail)
			}
			for i, rec := range recs {
				want := payloadFor(uint64(i + 1))
				if !bytes.Equal(rec.Data, want) {
					t.Fatalf("rec[%d].Data = %q, want %q", i, rec.Data, want)
				}
			}
			// The journal must accept appends continuing from the
			// recovered tail — the restart scenario.
			next := tc.wantTail + 1
			if err := re.Append(Record{First: next, Last: next, Data: payloadFor(next)}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if got := re.Tail(); got != next {
				t.Fatalf("Tail after post-recovery append = %d, want %d", got, next)
			}
		})
	}
}

// TestCorruptInteriorRecordUnreachable: a flipped bit mid-file makes
// everything after it unreachable (truncate-on-recovery semantics),
// matching the kvstore WAL's model.
func TestCorruptInteriorRecordUnreachable(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{})
	appendN(t, j, 1, 5)
	j.Close()
	path := filepath.Join(dir, segFiles(t, dir)[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openT(t, dir, Options{})
	if got := re.Tail(); got >= 5 {
		t.Fatalf("Tail = %d after interior corruption", got)
	}
	recs, err := re.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if !bytes.Equal(rec.Data, payloadFor(rec.First)) {
			t.Fatalf("surviving record %d corrupted: %q", rec.First, rec.Data)
		}
	}
}

func TestSegmentRotationAndReadAcrossBoundaries(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates after roughly two appends.
	j := openT(t, dir, Options{SegmentBytes: 48, Retain: 1000})
	appendN(t, j, 1, 40)
	if files := segFiles(t, dir); len(files) < 3 {
		t.Fatalf("expected multiple segments, got %v", files)
	}
	// Full scan crosses every boundary.
	recs, err := j.ReadFrom(0, 0)
	if err != nil || len(recs) != 40 {
		t.Fatalf("ReadFrom(0) = %d, %v", len(recs), err)
	}
	for i, rec := range recs {
		if rec.First != uint64(i+1) || !bytes.Equal(rec.Data, payloadFor(rec.First)) {
			t.Fatalf("rec[%d] = %+v", i, rec)
		}
	}
	// Mid-journal reads start in the right segment.
	for _, after := range []uint64{5, 17, 23, 39} {
		recs, err := j.ReadFrom(after, 0)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", after, err)
		}
		if len(recs) != int(40-after) || recs[0].First != after+1 {
			t.Fatalf("ReadFrom(%d) = %d recs starting %d", after, len(recs), recs[0].First)
		}
	}
	// max bounds the batch.
	recs, err = j.ReadFrom(0, 7)
	if err != nil || len(recs) != 7 {
		t.Fatalf("bounded ReadFrom = %d, %v", len(recs), err)
	}

	// Reopen after rotation: tail recovers from the newest segment.
	j.Close()
	re := openT(t, dir, Options{SegmentBytes: 48, Retain: 1000})
	if got := re.Tail(); got != 40 {
		t.Fatalf("reopened Tail = %d", got)
	}
	recs, err = re.ReadFrom(20, 0)
	if err != nil || len(recs) != 20 {
		t.Fatalf("reopened ReadFrom(20) = %d, %v", len(recs), err)
	}
}

func TestRetentionDropsOldSegmentsAndReportsCompacted(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{SegmentBytes: 48, Retain: 2})
	appendN(t, j, 1, 60)
	files := segFiles(t, dir)
	if len(files) > 3 { // active + 2 retained
		t.Fatalf("retention kept %d segments: %v", len(files), files)
	}
	oldest, tail, segs := j.Stats()
	if tail != 60 || oldest <= 1 || segs != len(files) {
		t.Fatalf("Stats = (%d, %d, %d)", oldest, tail, segs)
	}
	if _, err := j.ReadFrom(0, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom(0) err = %v, want ErrCompacted", err)
	}
	// Reads at or past the horizon still work.
	recs, err := j.ReadFrom(oldest-1, 0)
	if err != nil {
		t.Fatalf("ReadFrom(horizon): %v", err)
	}
	if len(recs) == 0 || recs[0].First != oldest {
		t.Fatalf("horizon read starts at %d, want %d", recs[0].First, oldest)
	}
	// Reopen keeps the horizon.
	j.Close()
	re := openT(t, dir, Options{SegmentBytes: 48, Retain: 2})
	if got := re.Oldest(); got != oldest {
		t.Fatalf("reopened Oldest = %d, want %d", got, oldest)
	}
}

// Sequential paged tailing — the follower pattern the read cursor
// optimizes — must return exactly the full-scan record stream, across
// rotations and interleaved appends.
func TestSequentialPagedTailing(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{SegmentBytes: 64, Retain: 1000})
	appendN(t, j, 1, 30)

	var got []Record
	after := uint64(0)
	for {
		recs, err := j.ReadFrom(after, 4)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", after, err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
		after = recs[len(recs)-1].Last
		// Interleave appends mid-tail to exercise cursor-at-live-end.
		if after == 12 {
			appendN(t, j, 31, 5)
		}
	}
	if len(got) != 35 {
		t.Fatalf("paged tail returned %d records, want 35", len(got))
	}
	for i, rec := range got {
		if rec.First != uint64(i+1) || !bytes.Equal(rec.Data, payloadFor(rec.First)) {
			t.Fatalf("paged rec[%d] = %+v", i, rec)
		}
	}
	// A non-sequential read (cursor miss) still answers correctly.
	recs, err := j.ReadFrom(10, 0)
	if err != nil || len(recs) != 25 || recs[0].First != 11 {
		t.Fatalf("cursor-miss ReadFrom(10) = %d recs, %v", len(recs), err)
	}
}

func TestWaitFrom(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	appendN(t, j, 1, 1)

	// Data already present: returns immediately.
	if !j.WaitFrom(nil, 0) {
		t.Fatal("WaitFrom(0) with data = false")
	}

	got := make(chan bool, 1)
	go func() { got <- j.WaitFrom(nil, 1) }()
	select {
	case <-got:
		t.Fatal("WaitFrom(1) returned before new data")
	case <-time.After(20 * time.Millisecond):
	}
	appendN(t, j, 2, 1)
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("WaitFrom = false after append")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitFrom did not wake on append")
	}

	// Cancellation unblocks.
	done := make(chan struct{})
	got2 := make(chan bool, 1)
	go func() { got2 <- j.WaitFrom(done, 99) }()
	close(done)
	select {
	case ok := <-got2:
		if ok {
			t.Fatal("cancelled WaitFrom = true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitFrom did not honor done")
	}

	// Close releases waiters.
	got3 := make(chan bool, 1)
	go func() { got3 <- j.WaitFrom(nil, 99) }()
	time.Sleep(10 * time.Millisecond)
	j.Close()
	select {
	case ok := <-got3:
		if ok {
			t.Fatal("WaitFrom on closed journal = true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release WaitFrom")
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func flipLastByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCommitIndexPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{})
	appendN(t, j, 1, 10)

	if got := j.CommitIndex(); got != 0 {
		t.Fatalf("fresh CommitIndex = %d, want 0", got)
	}
	if err := j.SetCommitIndex(7); err != nil {
		t.Fatal(err)
	}
	// Regressions are ignored: a quorum-acked write stays acked.
	if err := j.SetCommitIndex(3); err != nil {
		t.Fatal(err)
	}
	if got := j.CommitIndex(); got != 7 {
		t.Fatalf("CommitIndex after regress attempt = %d, want 7", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, dir, Options{})
	if got := j2.CommitIndex(); got != 7 {
		t.Fatalf("CommitIndex after reopen = %d, want 7", got)
	}

	// A corrupt sidecar degrades to 0 (re-derived from acks), never an
	// open failure.
	j2.Close()
	if err := os.WriteFile(filepath.Join(dir, commitFile), []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	j3 := openT(t, dir, Options{})
	if got := j3.CommitIndex(); got != 0 {
		t.Fatalf("CommitIndex with corrupt sidecar = %d, want 0", got)
	}
}
