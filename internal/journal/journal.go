// Package journal implements Hive's durable, offset-addressable change
// journal: an append-only sequence of records, each covering a
// contiguous range of change-event sequence numbers, stored in rotated
// segment files with CRC framing. It is the persistence layer under the
// social store's typed change log — the log survives restarts, and the
// leader/follower replication protocol reads it by sequence number —
// and the first building block of Hive-as-a-distributed-system: every
// future sharding or replication feature tails this journal.
//
// Durability model (mirroring internal/kvstore's WAL): every Append is
// framed as crc32(payload) | payloadLen | payload and flushed to the OS
// before returning. On open, the newest segment's tail is validated
// record by record; a torn final record (partial write before crash)
// fails the length or CRC check and the segment is truncated at the
// last good record, so acknowledged appends survive and the journal
// never serves garbage.
//
// Addressing: records carry [First, Last] — the inclusive range of
// change-event sequence numbers the record's batch covers. Sequences
// are assigned by the producer (the social store) and are strictly
// monotone across appends. ReadFrom(seq) returns every record that
// contains events after seq, starting in the segment whose range covers
// it; Tail() is the highest sequence persisted. Segment files are named
// by the first sequence they hold, so locating a sequence never reads
// more than one directory listing.
//
// Retention: segments rotate past Options.SegmentBytes, and at most
// Options.Retain closed segments are kept (the active segment always
// survives). Reading past the retention horizon returns ErrCompacted —
// the signal for a replication follower to re-bootstrap from a full
// snapshot instead of tailing.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/metrics"
)

// mAppendSeconds times the full durable append — framing, write and
// flush — on the process-wide registry.
var mAppendSeconds = metrics.Default.Histogram(metrics.JournalAppendSeconds,
	"Latency of one durable journal append (write + flush).", nil)

// ErrCompacted is returned by ReadFrom when the requested sequence lies
// before the retention horizon: the events were dropped with their
// segment, and the caller must re-bootstrap from a snapshot.
var ErrCompacted = errors.New("journal: sequence compacted away")

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrOutOfOrder is returned by Append when the record's range does not
// extend the journal (First <= Tail): sequences are assigned monotonically
// by the producer, so an out-of-order append is a producer bug.
var ErrOutOfOrder = errors.New("journal: out-of-order append")

// Record is one journal entry: an opaque payload covering the inclusive
// change-sequence range [First, Last].
type Record struct {
	First uint64
	Last  uint64
	Data  []byte
}

// Options tunes rotation and retention. Zero values take the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	SegmentBytes int64
	// Retain bounds how many closed segments are kept; the active
	// segment is always kept. Older segments are deleted on rotation.
	Retain int
}

const (
	defaultSegmentBytes = 4 << 20
	defaultRetain       = 8

	segPrefix = "journal-"
	segSuffix = ".seg"

	// commitFile is the sidecar holding the cluster commit index — the
	// highest change sequence acknowledged by a write quorum. It lives
	// beside the segments (same directory, same fsync domain) but outside
	// the record stream: the index moves monotonically and is rewritten
	// in place (tmp + rename), whereas records only append. ASCII decimal
	// so an operator can cat it.
	commitFile = "commit.idx"
)

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.Retain <= 0 {
		o.Retain = defaultRetain
	}
	return o
}

// segment is one on-disk file of the journal. first is the sequence the
// segment starts at (its name); size is its current byte length.
type segment struct {
	path  string
	first uint64
	size  int64
}

// Journal is a durable change journal. All methods are safe for
// concurrent use; appends are serialized, reads snapshot the segment
// list and read files the writer only ever appends to.
type Journal struct {
	dir  string
	opts Options

	mu     sync.Mutex
	segs   []segment // ascending by first; last entry is active
	f      *os.File  // active segment writer
	bw     *bufio.Writer
	tail   uint64 // highest sequence persisted (0 = empty)
	oldest uint64 // first sequence of the oldest retained segment (0 = empty)
	closed bool

	// updated is closed and replaced on every successful Append so
	// long-poll readers (WaitFrom) wake without polling the disk.
	updated chan struct{}

	// cursor remembers where the most recent ReadFrom stopped so the
	// common pattern — one follower tailing sequentially — resumes
	// mid-segment instead of re-decoding the file from byte zero on
	// every poll. Purely an optimization: a mismatch falls back to a
	// full scan.
	cursor readCursor

	// commit is the persisted cluster commit index (commitFile). It is
	// written under cmu — its own lock, so quorum bookkeeping never
	// contends with the append path — and read without any lock.
	cmu    sync.Mutex
	commit atomic.Uint64
}

// readCursor marks a resumable position: a ReadFrom(after, …) whose
// first candidate segment is path may start decoding at off.
type readCursor struct {
	path  string
	off   int
	after uint64
}

// Open opens (creating if necessary) a journal rooted at dir, validates
// the newest segment's tail — truncating a torn final record — and
// positions the writer after the last good record.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	j := &Journal{dir: dir, opts: opts.withDefaults(), updated: make(chan struct{})}
	if err := j.load(); err != nil {
		return nil, err
	}
	j.loadCommitIndex()
	return j, nil
}

// segPath names the segment that starts at seq.
func (j *Journal) segPath(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix))
}

// parseSegName extracts the starting sequence from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// load discovers the on-disk segments, recovers the tail of the newest
// one and opens it for appending.
func (j *Journal) load() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: read dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("journal: stat segment: %w", err)
		}
		j.segs = append(j.segs, segment{
			path:  filepath.Join(j.dir, e.Name()),
			first: first,
			size:  info.Size(),
		})
	}
	sort.Slice(j.segs, func(a, b int) bool { return j.segs[a].first < j.segs[b].first })

	if len(j.segs) == 0 {
		return nil // first Append creates the initial segment
	}
	j.oldest = j.segs[0].first

	// Recover the newest segment: scan to the last good record,
	// truncate any torn tail, and take its Last as the journal tail.
	// Interior segments were sealed by a rotation, which only happens
	// after their final record was fully flushed.
	active := &j.segs[len(j.segs)-1]
	goodLen, last, _, err := scanSegment(active.path)
	if err != nil {
		return err
	}
	if goodLen < active.size {
		if err := os.Truncate(active.path, goodLen); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		active.size = goodLen
	}
	if last > 0 {
		j.tail = last
	} else {
		// The active segment held no valid record (created just before
		// a crash, or fully torn): its name records the sequence it was
		// meant to start at, so the tail is the one before.
		j.tail = active.first - 1
	}
	return j.openActiveLocked()
}

// openActiveLocked opens the newest segment for appending.
func (j *Journal) openActiveLocked() error {
	f, err := os.OpenFile(j.segs[len(j.segs)-1].path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f = f
	j.bw = bufio.NewWriter(f)
	return nil
}

// encodeRecord frames rec for disk: crc32(payload) | len(payload) |
// payload, payload = first uvarint | last uvarint | data.
func encodeRecord(buf *bytes.Buffer, rec Record) {
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], rec.First)
	payload.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], rec.Last)
	payload.Write(tmp[:n])
	payload.Write(rec.Data)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload.Bytes()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
}

// decodeRecord decodes one record from data starting at off, returning
// the record and the offset past it. ok is false at a torn or corrupt
// record (scanning must stop: everything after is unreachable).
func decodeRecord(data []byte, off int) (rec Record, next int, ok bool) {
	if off+8 > len(data) {
		return Record{}, off, false
	}
	crc := binary.LittleEndian.Uint32(data[off : off+4])
	plen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
	if off+8+plen > len(data) {
		return Record{}, off, false
	}
	payload := data[off+8 : off+8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, off, false
	}
	first, n := binary.Uvarint(payload)
	if n <= 0 {
		return Record{}, off, false
	}
	last, m := binary.Uvarint(payload[n:])
	if m <= 0 || last < first {
		return Record{}, off, false
	}
	rec = Record{First: first, Last: last, Data: append([]byte(nil), payload[n+m:]...)}
	return rec, off + 8 + plen, true
}

// scanSegment reads a whole segment, returning the byte length of its
// valid prefix, the Last sequence of its final good record (0 if none)
// and the decoded records.
func scanSegment(path string) (goodLen int64, last uint64, recs []Record, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil, nil
		}
		return 0, 0, nil, fmt.Errorf("journal: read segment: %w", err)
	}
	off := 0
	for {
		rec, next, ok := decodeRecord(data, off)
		if !ok {
			break
		}
		recs = append(recs, rec)
		last = rec.Last
		off = next
	}
	return int64(off), last, recs, nil
}

// Append persists one record and flushes it to the OS before returning:
// once Append returns nil the record survives a crash. Records must
// extend the journal (rec.First > Tail()); the active segment rotates
// past Options.SegmentBytes and rotation enforces retention.
func (j *Journal) Append(rec Record) error {
	if rec.Last < rec.First || rec.First == 0 {
		return fmt.Errorf("journal: invalid record range [%d,%d]", rec.First, rec.Last)
	}
	defer mAppendSeconds.ObserveSince(time.Now())
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if rec.First <= j.tail {
		return fmt.Errorf("%w: record [%d,%d] behind tail %d", ErrOutOfOrder, rec.First, rec.Last, j.tail)
	}
	if len(j.segs) == 0 {
		// First record ever: the initial segment starts at its First.
		j.segs = append(j.segs, segment{path: j.segPath(rec.First), first: rec.First})
		j.oldest = rec.First
		if err := j.openActiveLocked(); err != nil {
			return err
		}
	} else if j.segs[len(j.segs)-1].size >= j.opts.SegmentBytes {
		if err := j.rotateLocked(rec.First); err != nil {
			return err
		}
	}

	var buf bytes.Buffer
	encodeRecord(&buf, rec)
	if _, err := j.bw.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	// Flush to the OS on every record, like the kvstore WAL: the
	// durability story stays simple and a crashed process loses nothing
	// it acknowledged.
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	j.segs[len(j.segs)-1].size += int64(buf.Len())
	j.tail = rec.Last

	// Wake long-poll waiters.
	close(j.updated)
	j.updated = make(chan struct{})
	return nil
}

// rotateLocked seals the active segment, starts a fresh one at next,
// and deletes segments past the retention bound.
func (j *Journal) rotateLocked(next uint64) error {
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("journal: flush on rotate: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.segs = append(j.segs, segment{path: j.segPath(next), first: next})
	if err := j.openActiveLocked(); err != nil {
		return err
	}
	// Retention: keep the active segment plus at most Retain closed ones.
	for len(j.segs)-1 > j.opts.Retain {
		old := j.segs[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("journal: drop segment: %w", err)
		}
		j.segs = j.segs[1:]
	}
	j.oldest = j.segs[0].first
	return nil
}

// Tail returns the highest sequence persisted so far (0 if empty).
func (j *Journal) Tail() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tail
}

// Oldest returns the first sequence still readable (0 if empty).
// Sequences below it were dropped by retention.
func (j *Journal) Oldest() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.oldest
}

// Stats reports the journal's addressable range and segment count.
func (j *Journal) Stats() (oldest, tail uint64, segments int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.oldest, j.tail, len(j.segs)
}

// loadCommitIndex reads the commit sidecar. A missing file means no
// quorum write ever committed (index 0); a corrupt one is treated the
// same — the index is a floor re-derived from follower acks, never a
// source of record data, so starting at 0 only widens the re-ack window.
func (j *Journal) loadCommitIndex() {
	raw, err := os.ReadFile(filepath.Join(j.dir, commitFile))
	if err != nil {
		return
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return
	}
	j.commit.Store(n)
}

// CommitIndex returns the persisted cluster commit index: the highest
// change sequence a write quorum has acknowledged (0 = none recorded).
func (j *Journal) CommitIndex() uint64 { return j.commit.Load() }

// SetCommitIndex durably advances the commit index to seq. Regressions
// are ignored without error: the index is monotone by definition (a
// quorum-acked write stays acked), and concurrent ack bookkeeping may
// legitimately race an older value here. The write is tmp + rename so a
// crash mid-update leaves the previous index intact.
func (j *Journal) SetCommitIndex(seq uint64) error {
	j.cmu.Lock()
	defer j.cmu.Unlock()
	if seq <= j.commit.Load() {
		return nil
	}
	path := filepath.Join(j.dir, commitFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(seq, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("journal: write commit index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: rename commit index: %w", err)
	}
	j.commit.Store(seq)
	return nil
}

// ReadFrom returns up to max records containing events with sequence
// numbers strictly greater than after, in order. It returns
// ErrCompacted when after+1 lies before the retention horizon — the
// events are gone and the caller must bootstrap from a snapshot. An
// empty result with a nil error means the caller is caught up.
func (j *Journal) ReadFrom(after uint64, max int) ([]Record, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, ErrClosed
	}
	if j.tail <= after {
		j.mu.Unlock()
		return nil, nil
	}
	if after+1 < j.oldest {
		j.mu.Unlock()
		return nil, ErrCompacted
	}
	// Snapshot the segment list covering the request. Appends only ever
	// extend the newest file, and decoding stops cleanly at a torn tail,
	// so reading concurrently with the writer is safe; flush-per-append
	// means every acknowledged record is visible to ReadFile.
	var paths []string
	for i, seg := range j.segs {
		// A segment covers [seg.first, nextSeg.first): include it when
		// its range can contain sequences > after.
		if i+1 < len(j.segs) && j.segs[i+1].first <= after+1 {
			continue
		}
		paths = append(paths, seg.path)
	}
	// A sequential tail (same after, same starting segment as the last
	// call left off in) resumes mid-file instead of re-decoding already
	// consumed records.
	startOff := 0
	if j.cursor.after == after && len(paths) > 0 && j.cursor.path == paths[0] {
		startOff = j.cursor.off
	}
	j.mu.Unlock()

	if max <= 0 {
		max = 1 << 30
	}
	var out []Record
	cur := readCursor{after: after}
	for pi, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				// Retention deleted the segment between the snapshot of
				// the list and this read: the range is gone, not empty.
				return nil, ErrCompacted
			}
			return nil, fmt.Errorf("journal: read segment: %w", err)
		}
		off := 0
		if pi == 0 && startOff <= len(data) {
			off = startOff
		}
		cur.path = path
		for {
			rec, next, ok := decodeRecord(data, off)
			if !ok {
				break
			}
			off = next
			if rec.Last <= after {
				continue
			}
			out = append(out, rec)
			if len(out) >= max {
				j.saveCursor(readCursor{path: path, off: off, after: rec.Last})
				return out, nil
			}
		}
		cur.off = off
	}
	if n := len(out); n > 0 {
		cur.after = out[n-1].Last
	}
	j.saveCursor(cur)
	return out, nil
}

// saveCursor records where the scan stopped, keyed by the `after` value
// the next sequential call will use.
func (j *Journal) saveCursor(c readCursor) {
	j.mu.Lock()
	j.cursor = c
	j.mu.Unlock()
}

// WaitFrom blocks until the journal holds sequences greater than after
// or done is closed/cancelled, whichever comes first. It returns true
// when new data is available.
func (j *Journal) WaitFrom(done <-chan struct{}, after uint64) bool {
	for {
		j.mu.Lock()
		if j.closed {
			j.mu.Unlock()
			return false
		}
		if j.tail > after {
			j.mu.Unlock()
			return true
		}
		ch := j.updated
		j.mu.Unlock()
		select {
		case <-ch:
		case <-done:
			return false
		}
	}
}

// Close flushes and closes the journal. Waiters are released.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	close(j.updated)
	j.updated = make(chan struct{})
	if j.f == nil {
		return nil
	}
	if err := j.bw.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: flush on close: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}
