// Package core implements the MiNC engine (paper §2, ref [8]): the
// middleware for network- and context-aware recommendations that powers
// every knowledge service of Hive. It derives the multi-layer context
// network of Figure 3 from the social store, aligns and integrates the
// layers, and provides evidence-based relationship discovery and
// explanation (Figure 2), context-aware search and ranking driven by the
// active workpad (Figure 4), peer and resource recommendation,
// collaborative filtering, community discovery, update digests, and
// activity change monitoring.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hive/internal/align"
	"hive/internal/biblio"
	"hive/internal/community"
	"hive/internal/conceptmap"
	"hive/internal/graph"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/textindex"
)

// ErrUnknownUser is returned when a service references a missing user.
var ErrUnknownUser = errors.New("core: unknown user")

// Document ID prefixes in the text index.
const (
	DocPaper        = "paper/"
	DocPresentation = "pres/"
	DocQuestion     = "question/"
)

// Layer names of the integrated context network.
const (
	LayerConnections = "connections"
	LayerCoauthor    = "coauthor"
	LayerAttendance  = "attendance"
	LayerQA          = "qa"
)

// Engine is the assembled knowledge middleware: an immutable snapshot of
// every derived knowledge structure. A Builder produces it (fanning the
// derivation stages out across workers); after Build returns, nothing
// mutates the Engine, so any number of goroutines can serve queries from
// it while a replacement snapshot is built in the background and swapped
// in atomically (the paper's deployment refreshed knowledge structures
// periodically and offline; hive.Platform does it with zero downtime).
type Engine struct {
	store *social.Store

	index    *textindex.Index
	frozen   *textindex.Frozen    // base segment from the last full build
	seg      *textindex.Segmented // serving read view: base + delta overlay
	concepts *conceptmap.Map

	papers []social.Paper
	users  []string

	coauthorNet *graph.Graph
	citationNet *graph.Graph
	litNet      *graph.Graph // bipartite author/paper graph

	// Per-evidence user layers, derived concurrently then integrated.
	connLayer   *graph.Graph
	coauthLayer *graph.Graph
	attendLayer *graph.Graph
	qaLayer     *graph.Graph

	layers     []*align.Layer
	integrated *align.Integrated
	peerGraph  *graph.Graph // alias of integrated.G

	kb *rdf.Store // weighted RDF export of all layers (R2DB)

	communities []community.Community

	// Snapshot-resident read-path tables, precomputed by the Builder so
	// serving never re-derives them (the paper's offline refresh): the
	// per-user workpad context vectors, per-user uploaded-content TF-IDF
	// vectors, per-user interaction vectors and object popularity counts
	// from the activity stream. All are frozen at build time; the values
	// are shared and must be treated as read-only by callers.
	ctxVecs     map[string]textindex.Vector
	ctxQueries  map[string]*textindex.CompiledVector // ctxVecs pre-resolved against frozen
	wpPeerRefs  map[string][]string                  // users pinned on each user's active workpad
	userContent map[string]textindex.Vector
	interVecs   map[string]textindex.Vector
	popularity  map[string]int

	// Delta overlays over the phase-2 tables. A snapshot produced by
	// ApplyDelta shares the base maps above with its ancestor untouched
	// and carries only the entries the applied events invalidated here;
	// readers consult the overlay first. All nil on full builds.
	ctxOver     map[string]textindex.Vector
	ctxQOver    map[string]*textindex.CompiledVector
	wpRefsOver  map[string][]string
	contentOver map[string]textindex.Vector
	interOver   map[string]textindex.Vector
	popOver     map[string]int

	// evtSeq is the highest activity-stream sequence folded into the
	// interaction tables — the exactly-once guard for delta repairs.
	evtSeq uint64
	// graphPending counts applied events whose evidence-graph effects
	// (connections, co-attendance, Q&A, coauthorship) await the next
	// compaction; the platform's compaction policy watches it.
	graphPending int

	deltaCount   int           // deltas applied since the last full build
	lastDeltaDur time.Duration // duration of the most recent delta apply
	appliedAt    time.Time     // when the most recent delta applied

	// pprMemo caches PersonalizedPageRank results per user for this
	// snapshot, computed on first request (RecommendPeers stops paying a
	// full power iteration per call). It is the one mutable, lock-guarded
	// corner of the otherwise immutable Engine; bounded by pprMemoMax.
	// Power iterations run outside the lock (concurrent misses for
	// different users proceed in parallel) on workspaces from pprPool.
	pprMu   sync.Mutex
	pprMemo map[string][]float64
	pprPool sync.Pool // *graph.PPRWorkspace, bound to peerGraph

	// buildWorkers is the Builder's parallelism, kept so phase-2 table
	// derivations can shard their per-user loops.
	buildWorkers int

	builtAt  time.Time
	buildDur time.Duration
}

// pprMemoMax bounds the per-snapshot PageRank memo. When full, the memo
// is reset wholesale: snapshots are short-lived relative to the user
// population, so simple wipe beats LRU bookkeeping here.
const pprMemoMax = 4096

// Build assembles an engine snapshot from a social store with default
// parallelism. It is shorthand for (&Builder{Store: st}).Build().
func Build(st *social.Store) (*Engine, error) {
	return (&Builder{Store: st}).Build()
}

// DeltaStats summarizes a snapshot's incremental-maintenance state: how
// far it has drifted from its last full build and how much merge-on-
// read work the overlay carries. The platform's compaction policy and
// the server's healthz read it.
type DeltaStats struct {
	// Deltas counts ApplyDelta derivations since the last full build.
	Deltas int
	// GraphPending counts applied events whose evidence-graph effects
	// await compaction.
	GraphPending int
	// OverlayDocs and Tombstones size the overlay segment.
	OverlayDocs int
	Tombstones  int
	// TombstoneRatio is the dead fraction of the base segment.
	TombstoneRatio float64
	// LastDeltaDur is the duration of the most recent delta apply, and
	// AppliedAt when it happened (zero on full builds).
	LastDeltaDur time.Duration
	AppliedAt    time.Time
}

// DeltaStats reports the snapshot's incremental-maintenance state.
func (e *Engine) DeltaStats() DeltaStats {
	ds := DeltaStats{
		Deltas:       e.deltaCount,
		GraphPending: e.graphPending,
		LastDeltaDur: e.lastDeltaDur,
		AppliedAt:    e.appliedAt,
	}
	if e.seg != nil {
		ds.OverlayDocs = e.seg.OverlayDocs()
		ds.Tombstones = e.seg.Tombstones()
		ds.TombstoneRatio = e.seg.TombstoneRatio()
	}
	return ds
}

// BuiltAt reports when this snapshot finished building.
func (e *Engine) BuiltAt() time.Time { return e.builtAt }

// BuildDuration reports how long this snapshot took to build.
func (e *Engine) BuildDuration() time.Duration { return e.buildDur }

// Store exposes the underlying social store.
func (e *Engine) Store() *social.Store { return e.store }

// Index exposes the live text index (the build-time representation).
func (e *Engine) Index() *textindex.Index { return e.index }

// Frozen exposes the frozen base segment of the last full build.
func (e *Engine) Frozen() *textindex.Frozen { return e.frozen }

// Segment exposes the serving base+overlay read view (nil only on
// engines predating the first Build).
func (e *Engine) Segment() *textindex.Segmented { return e.seg }

// reader resolves the text read path: the segmented base+overlay view
// when present (every built snapshot), falling back to the frozen base
// and finally the live index.
func (e *Engine) reader() textindex.Searcher {
	if e.seg != nil {
		return e.seg
	}
	if e.frozen != nil {
		return e.frozen
	}
	return nil
}

// DocTFIDF returns a document's TF-IDF vector through the serving read
// view, under this snapshot's (shard-local) corpus statistics. The
// sharded context re-rank uses it on the shard that owns the document.
func (e *Engine) DocTFIDF(docID string) (textindex.Vector, error) { return e.docVector(docID) }

// docVector returns a document's TF-IDF vector through the serving read
// view (O(terms-in-doc)), falling back to the live index.
func (e *Engine) docVector(docID string) (textindex.Vector, error) {
	if r := e.reader(); r != nil {
		return r.TFIDFVector(docID)
	}
	return e.index.TFIDFVector(docID)
}

// docText reads a document's raw text through the serving read view.
func (e *Engine) docText(docID string) (string, error) {
	if r := e.reader(); r != nil {
		return r.Text(docID)
	}
	return e.index.Text(docID)
}

// searchVector runs a context-vector query through the read view.
func (e *Engine) searchVector(query textindex.Vector, k int) []textindex.Result {
	if r := e.reader(); r != nil {
		return r.SearchVector(query, k)
	}
	return e.index.SearchVector(query, k)
}

// ctxQueryOf resolves the user's compiled context query, overlay first.
func (e *Engine) ctxQueryOf(userID string) (*textindex.CompiledVector, bool) {
	if cq, ok := e.ctxQOver[userID]; ok {
		return cq, cq != nil
	}
	cq, ok := e.ctxQueries[userID]
	return cq, ok
}

// searchUserContext ranks documents against the user's context vector.
// For known users this runs the build-time compiled query — no term
// extraction or sorting on the serving path; on a pristine snapshot the
// base segment additionally skips all per-term hash lookups.
func (e *Engine) searchUserContext(userID string, k int) []textindex.Result {
	if cq, ok := e.ctxQueryOf(userID); ok && e.seg != nil {
		return e.seg.SearchCompiled(cq, k)
	}
	return e.searchVector(e.ContextVector(userID), k)
}

// ConceptMap exposes the bootstrapped concept map.
func (e *Engine) ConceptMap() *conceptmap.Map { return e.concepts }

// KnowledgeBase exposes the weighted RDF export (R2DB layer).
func (e *Engine) KnowledgeBase() *rdf.Store { return e.kb }

// PeerGraph exposes the integrated peer network.
func (e *Engine) PeerGraph() *graph.Graph { return e.peerGraph }

func (e *Engine) buildTextIndex() error {
	for _, p := range e.papers {
		e.index.Add(DocPaper+p.ID, p.Title+". "+p.Abstract)
	}
	for _, u := range e.users {
		for _, prID := range e.store.PresentationsOfUser(u) {
			pr, err := e.store.Presentation(prID)
			if err != nil {
				return err
			}
			e.index.Add(DocPresentation+pr.ID, pr.Title+". "+pr.Text)
		}
		for _, qID := range e.store.QuestionsBy(u) {
			q, err := e.store.Question(qID)
			if err != nil {
				return err
			}
			e.index.Add(DocQuestion+q.ID, q.Text)
		}
	}
	return nil
}

func (e *Engine) buildConceptMap() {
	var docs []string
	for _, p := range e.papers {
		docs = append(docs, p.Title+". "+p.Abstract)
	}
	m, err := conceptmap.Bootstrap(docs, conceptmap.BootstrapOptions{MaxConcepts: 80})
	if err != nil {
		m = conceptmap.New() // empty corpus -> empty map, services degrade gracefully
	}
	e.concepts = m
}

func (e *Engine) buildBibliographicLayers() {
	e.coauthorNet = biblio.CoauthorNetwork(e.papers)
	e.citationNet = biblio.CitationGraph(e.papers)
	e.litNet = biblio.AuthorPaperGraph(e.papers)
}

// Layers exposes the evidence layers (for alignment experiments).
func (e *Engine) Layers() []*align.Layer { return e.layers }

// Integrated exposes the integrated context network.
func (e *Engine) Integrated() *align.Integrated { return e.integrated }

// ownersOf resolves the users responsible for an entity: paper authors,
// presentation owner, session chair, question author.
func (e *Engine) ownersOf(entity string) []string {
	if p, err := e.store.Paper(entity); err == nil {
		return p.Authors
	}
	if pr, err := e.store.Presentation(entity); err == nil {
		return []string{pr.Owner}
	}
	if s, err := e.store.Session(entity); err == nil && s.Chair != "" {
		return []string{s.Chair}
	}
	if q, err := e.store.Question(entity); err == nil {
		return []string{q.Author}
	}
	return nil
}

// exportKnowledgeBase mirrors the layers into the weighted RDF store so
// R2DB-style ranked path queries can explain any relationship.
func (e *Engine) exportKnowledgeBase() {
	for _, p := range e.papers {
		for _, a := range p.Authors {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + a, Predicate: "authored", Object: "paper:" + p.ID, Weight: 1})
		}
		for _, c := range p.Citations {
			_ = e.kb.Add(rdf.Triple{Subject: "paper:" + p.ID, Predicate: "cites", Object: "paper:" + c, Weight: 0.9})
		}
		if p.SessionID != "" {
			_ = e.kb.Add(rdf.Triple{Subject: "paper:" + p.ID, Predicate: "presentedIn", Object: "session:" + p.SessionID, Weight: 1})
		}
	}
	for _, u := range e.users {
		for _, o := range e.store.ConnectionsOf(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "connected", Object: "user:" + o, Weight: 1})
		}
		for _, o := range e.store.Following(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "follows", Object: "user:" + o, Weight: 0.7})
		}
		for _, s := range e.store.SessionsAttendedBy(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "attends", Object: "session:" + s, Weight: 0.8})
		}
	}
}

// Communities returns the discovered peer communities as lists of user
// IDs, largest first (Table 1: "community discovery and tracking").
func (e *Engine) Communities() [][]string {
	var out [][]string
	for _, c := range e.communities {
		var users []string
		for _, id := range c {
			n, err := e.peerGraph.Node(id)
			if err == nil {
				users = append(users, n.Key)
			}
		}
		out = append(out, users)
	}
	return out
}

// CommunityOf returns the community containing the user (nil when the
// user is unknown).
func (e *Engine) CommunityOf(userID string) []string {
	for _, c := range e.Communities() {
		for _, u := range c {
			if u == userID {
				return c
			}
		}
	}
	return nil
}

// entityText renders any entity into text for context building.
func (e *Engine) entityText(kind social.ItemKind, ref string) string {
	switch kind {
	case social.ItemPaper:
		if p, err := e.store.Paper(ref); err == nil {
			return p.Title + ". " + p.Abstract
		}
	case social.ItemPresentation:
		if pr, err := e.store.Presentation(ref); err == nil {
			return pr.Title + ". " + pr.Text
		}
	case social.ItemSession:
		if s, err := e.store.Session(ref); err == nil {
			parts := []string{s.Title, s.Track}
			for _, pid := range e.store.PapersOfSession(ref) {
				if p, err := e.store.Paper(pid); err == nil {
					parts = append(parts, p.Title)
				}
			}
			return strings.Join(parts, ". ")
		}
	case social.ItemUser:
		if u, err := e.store.User(ref); err == nil {
			return u.Name + ". " + strings.Join(u.Interests, ". ") + ". " + u.Bio
		}
	case social.ItemQuestion:
		if q, err := e.store.Question(ref); err == nil {
			return q.Text
		}
	case social.ItemCollection:
		if c, err := e.store.Collection(ref); err == nil {
			var parts []string
			for _, it := range c.Items {
				parts = append(parts, e.entityText(it.Kind, it.Ref))
			}
			return strings.Join(parts, ". ")
		}
	}
	return ""
}

// String summarizes the engine for logs.
func (e *Engine) String() string {
	return fmt.Sprintf("mincengine(users=%d papers=%d peers=%d/%d concepts=%d kb=%d)",
		len(e.store.Users()), len(e.papers),
		e.peerGraph.NumNodes(), e.peerGraph.NumEdges(),
		e.concepts.Len(), e.kb.Len())
}
