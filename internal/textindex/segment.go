package textindex

import (
	"fmt"
	"math"
	"sort"
)

// Searcher is the read-path contract shared by Frozen and Segmented:
// everything the knowledge engine needs to serve search, vectors and
// raw text from an immutable snapshot of the corpus.
type Searcher interface {
	Len() int
	DocIDs() []string
	Text(docID string) (string, error)
	TFIDFVector(docID string) (Vector, error)
	DocNorm(docID string) float64
	Search(query string, k int) []Result
	SearchVector(query Vector, k int) []Result
	SearchCompiled(cq *CompiledVector, k int) []Result
}

var (
	_ Searcher = (*Frozen)(nil)
	_ Searcher = (*Segmented)(nil)
)

// Segmented is an immutable LSM-style read view over a text corpus: the
// frozen base segment from the last full build plus a small overlay
// segment of documents added or updated since, merged on read. Overlay
// documents shadow their base versions (the shadowed base doc joins the
// tombstone set), so the view answers queries over exactly the live
// logical corpus.
//
// Score parity: every query recomputes IDF, average document length and
// document norms from the merged statistics using the same expressions
// and the same float accumulation order as the live Index (and hence as
// a from-scratch Frozen of the same corpus), so segmented results are
// bit-identical to a full rebuild — including tie-break order. When the
// overlay is empty the view delegates to the base's precomputed fast
// paths, so a freshly compacted snapshot costs nothing extra.
//
// A Segmented is immutable; WithDocs/WithoutDocs return a new view
// sharing the base (and all untouched overlay state) structurally. The
// per-apply cost is proportional to the overlay size, which compaction
// keeps bounded — never to the base corpus.
type Segmented struct {
	base *Frozen

	over     map[string]*overlayDoc      // overlay docs by ID
	overPost map[string][]overlayPosting // term -> overlay postings
	dead     map[string]struct{}         // base doc IDs shadowed or deleted
	deadDF   map[string]int              // per-term base postings lost to dead docs

	nDocs    int // live documents across base and overlay
	totalLen int // live token count across base and overlay
}

// overlayDoc is one overlay document in forward form.
type overlayDoc struct {
	terms  []docTerm // sorted by term, like the live index's forward entry
	length int
	text   string
}

// overlayPosting is one overlay document's occurrence of a term.
type overlayPosting struct {
	doc string
	tf  int32
}

// NewSegmented wraps a frozen base segment in an empty overlay view.
func NewSegmented(base *Frozen) *Segmented {
	return &Segmented{
		base:     base,
		nDocs:    base.Len(),
		totalLen: base.totalLen,
	}
}

// pristine reports whether the view is exactly the base segment, in
// which case every read delegates to the base's precomputed fast path.
func (s *Segmented) pristine() bool { return len(s.over) == 0 && len(s.dead) == 0 }

// Base returns the frozen base segment.
func (s *Segmented) Base() *Frozen { return s.base }

// OverlayDocs reports the number of overlay documents.
func (s *Segmented) OverlayDocs() int { return len(s.over) }

// Tombstones reports the number of dead base documents (shadowed by
// overlay versions or deleted).
func (s *Segmented) Tombstones() int { return len(s.dead) }

// TombstoneRatio reports the fraction of the base segment that is dead
// — merge-on-read work that a compaction would reclaim.
func (s *Segmented) TombstoneRatio() float64 {
	if s.base.Len() == 0 {
		return 0
	}
	return float64(len(s.dead)) / float64(s.base.Len())
}

// clone copies the overlay bookkeeping into a fresh view sharing the
// base. Slices inside overPost are copied lazily by the mutating ops.
func (s *Segmented) clone() *Segmented {
	n := &Segmented{
		base:     s.base,
		over:     make(map[string]*overlayDoc, len(s.over)+1),
		overPost: make(map[string][]overlayPosting, len(s.overPost)),
		dead:     make(map[string]struct{}, len(s.dead)+1),
		deadDF:   make(map[string]int, len(s.deadDF)),
		nDocs:    s.nDocs,
		totalLen: s.totalLen,
	}
	for id, od := range s.over {
		n.over[id] = od
	}
	for t, ps := range s.overPost {
		n.overPost[t] = ps // copied on write by addPosting/dropPosting
	}
	for id := range s.dead {
		n.dead[id] = struct{}{}
	}
	for t, c := range s.deadDF {
		n.deadDF[t] = c
	}
	return n
}

// WithDocs returns a new view with the given documents added (or
// updated: an existing overlay version is replaced, an existing base
// version is tombstoned and shadowed). Documents apply in sorted-ID
// order for reproducibility; the result set is order-insensitive.
func (s *Segmented) WithDocs(docs map[string]string) *Segmented {
	if len(docs) == 0 {
		return s
	}
	n := s.clone()
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n.removeLive(id)
		text := docs[id]
		terms := Terms(text)
		counts := make(map[string]int)
		for _, t := range terms {
			counts[t]++
		}
		dts := make([]docTerm, 0, len(counts))
		for t, c := range counts {
			dts = append(dts, docTerm{term: t, tf: c})
		}
		sort.Slice(dts, func(i, j int) bool { return dts[i].term < dts[j].term })
		n.over[id] = &overlayDoc{terms: dts, length: len(terms), text: text}
		for _, dt := range dts {
			n.addPosting(dt.term, overlayPosting{doc: id, tf: int32(dt.tf)})
		}
		n.nDocs++
		n.totalLen += len(terms)
	}
	return n
}

// WithoutDocs returns a new view with the given documents removed:
// overlay versions are dropped, base versions tombstoned. Unknown IDs
// are ignored.
func (s *Segmented) WithoutDocs(ids []string) *Segmented {
	if len(ids) == 0 {
		return s
	}
	n := s.clone()
	for _, id := range ids {
		n.removeLive(id)
	}
	return n
}

// removeLive drops the live version of a document, wherever it resides.
func (s *Segmented) removeLive(id string) {
	if od, ok := s.over[id]; ok {
		delete(s.over, id)
		for _, dt := range od.terms {
			s.dropPosting(dt.term, id)
		}
		s.nDocs--
		s.totalLen -= od.length
		return
	}
	d, inBase := s.base.idOf[id]
	if !inBase {
		return
	}
	if _, gone := s.dead[id]; gone {
		return
	}
	s.dead[id] = struct{}{}
	for j := s.base.fwdOff[d]; j < s.base.fwdOff[d+1]; j++ {
		s.deadDF[s.base.fwdTerm[j]]++
	}
	s.nDocs--
	s.totalLen -= int(s.base.docLen[d])
}

// addPosting appends an overlay posting, copying the term's list so the
// parent view's slice is never mutated.
func (s *Segmented) addPosting(term string, p overlayPosting) {
	old := s.overPost[term]
	nl := make([]overlayPosting, len(old), len(old)+1)
	copy(nl, old)
	s.overPost[term] = append(nl, p)
}

// dropPosting removes a document's overlay posting for a term.
func (s *Segmented) dropPosting(term, doc string) {
	old := s.overPost[term]
	nl := make([]overlayPosting, 0, len(old))
	for _, p := range old {
		if p.doc != doc {
			nl = append(nl, p)
		}
	}
	if len(nl) == 0 {
		delete(s.overPost, term)
	} else {
		s.overPost[term] = nl
	}
}

// df returns the merged document frequency of a term.
func (s *Segmented) df(term string) int {
	base := 0
	if ti, ok := s.base.terms[term]; ok {
		base = int(ti.n)
	}
	return base - s.deadDF[term] + len(s.overPost[term])
}

// idfOf returns the merged-corpus IDF of a term.
func (s *Segmented) idfOf(term string) float64 { return idfFor(s.df(term), s.nDocs) }

// Len reports the number of live documents.
func (s *Segmented) Len() int { return s.nDocs }

// DocIDs returns all live document IDs in sorted order.
func (s *Segmented) DocIDs() []string {
	if s.pristine() {
		return s.base.DocIDs()
	}
	ids := make([]string, 0, s.nDocs)
	for _, id := range s.base.ids {
		if _, gone := s.dead[id]; !gone {
			ids = append(ids, id)
		}
	}
	for id := range s.over {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Text returns the stored raw text of a live document.
func (s *Segmented) Text(docID string) (string, error) {
	if od, ok := s.over[docID]; ok {
		return od.text, nil
	}
	if _, gone := s.dead[docID]; gone {
		return "", fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	return s.base.Text(docID)
}

// TFIDFVector returns the document's TF-IDF vector under merged corpus
// statistics: O(terms-in-doc), identical to a full rebuild's vector.
func (s *Segmented) TFIDFVector(docID string) (Vector, error) {
	if s.pristine() {
		return s.base.TFIDFVector(docID)
	}
	if od, ok := s.over[docID]; ok {
		v := make(Vector, len(od.terms))
		for _, dt := range od.terms {
			v[dt.term] = float64(dt.tf) * s.idfOf(dt.term)
		}
		return v, nil
	}
	if _, gone := s.dead[docID]; gone {
		return nil, fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	d, ok := s.base.idOf[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	lo, hi := s.base.fwdOff[d], s.base.fwdOff[d+1]
	v := make(Vector, hi-lo)
	for j := lo; j < hi; j++ {
		v[s.base.fwdTerm[j]] = float64(s.base.fwdTF[j]) * s.idfOf(s.base.fwdTerm[j])
	}
	return v, nil
}

// DocNorm returns the merged-statistics TF-IDF norm of a live document
// (0 for unknown or dead documents). Weights accumulate in the per-doc
// sorted term order, matching the live index bit for bit.
func (s *Segmented) DocNorm(docID string) float64 {
	if s.pristine() {
		return s.base.DocNorm(docID)
	}
	if od, ok := s.over[docID]; ok {
		var sum float64
		for _, dt := range od.terms {
			w := float64(dt.tf) * s.idfOf(dt.term)
			sum += w * w
		}
		return math.Sqrt(sum)
	}
	if _, gone := s.dead[docID]; gone {
		return 0
	}
	d, ok := s.base.idOf[docID]
	if !ok {
		return 0
	}
	var sum float64
	for j := s.base.fwdOff[d]; j < s.base.fwdOff[d+1]; j++ {
		w := float64(s.base.fwdTF[j]) * s.idfOf(s.base.fwdTerm[j])
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Search ranks live documents against the query with BM25, identically
// to a full rebuild over the merged corpus.
func (s *Segmented) Search(query string, k int) []Result {
	if s.pristine() {
		return s.base.Search(query, k)
	}
	if s.nDocs == 0 {
		return nil
	}
	avgLen := float64(s.totalLen) / float64(s.nDocs)
	if avgLen == 0 {
		avgLen = 1
	}
	scores := make(map[string]float64)
	for _, term := range Terms(query) {
		df := s.df(term)
		if df == 0 {
			continue
		}
		idf := idfFor(df, s.nDocs)
		if ti, ok := s.base.terms[term]; ok {
			for j := ti.off; j < ti.off+ti.n; j++ {
				d := s.base.postDoc[j]
				id := s.base.ids[d]
				if _, gone := s.dead[id]; gone {
					continue
				}
				tf := float64(s.base.postTF[j])
				dl := float64(s.base.docLen[d])
				scores[id] += idf * tf * (bm25K1 + 1) /
					(tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
			}
		}
		for _, p := range s.overPost[term] {
			tf := float64(p.tf)
			dl := float64(s.over[p.doc].length)
			scores[p.doc] += idf * tf * (bm25K1 + 1) /
				(tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
		}
	}
	return topResults(scores, k)
}

// SearchVector ranks live documents by cosine similarity to the query
// vector under merged statistics, identically to a full rebuild.
func (s *Segmented) SearchVector(query Vector, k int) []Result {
	if s.pristine() {
		return s.base.SearchVector(query, k)
	}
	if len(query) == 0 {
		return nil
	}
	pairs := make([]termWeight, 0, len(query))
	for t, w := range query {
		pairs = append(pairs, termWeight{t, w})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].t < pairs[j].t })
	return s.searchPairs(pairs, k)
}

// SearchCompiled ranks live documents against a compiled query. The
// compiled form must have been produced by the base segment's Compile;
// on a pristine view this takes the base's precomputed fast path, and
// otherwise the retained index-independent term list is re-resolved
// against the merged corpus.
func (s *Segmented) SearchCompiled(cq *CompiledVector, k int) []Result {
	if s.pristine() {
		return s.base.SearchCompiled(cq, k)
	}
	if cq.empty {
		return nil
	}
	return s.searchPairs(cq.pairs, k)
}

// searchPairs is the merged-statistics cosine ranking over a sorted
// (term, weight) query. Accumulation order mirrors Index.SearchVector:
// query-norm and dot products in sorted term order, per-posting weights
// grouped as qw × (tf × idf).
func (s *Segmented) searchPairs(pairs []termWeight, k int) []Result {
	dots := make(map[string]float64)
	var qnSq float64
	for _, p := range pairs {
		qnSq += p.w * p.w
		df := s.df(p.t)
		if df == 0 {
			continue
		}
		idf := idfFor(df, s.nDocs)
		if ti, ok := s.base.terms[p.t]; ok {
			for j := ti.off; j < ti.off+ti.n; j++ {
				id := s.base.ids[s.base.postDoc[j]]
				if _, gone := s.dead[id]; gone {
					continue
				}
				dots[id] += p.w * (float64(s.base.postTF[j]) * idf)
			}
		}
		for _, op := range s.overPost[p.t] {
			dots[op.doc] += p.w * (float64(op.tf) * idf)
		}
	}
	if qnSq == 0 {
		return nil
	}
	qn := math.Sqrt(qnSq)
	scores := make(map[string]float64, len(dots))
	for doc, dot := range dots {
		dn := s.DocNorm(doc)
		if dn == 0 {
			continue
		}
		scores[doc] = dot / (qn * dn)
	}
	return topResults(scores, k)
}
