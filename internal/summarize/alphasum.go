package summarize

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrBadTable is returned for ragged tables or impossible budgets.
var ErrBadTable = errors.New("summarize: bad table")

// Table is a relation to summarize: named columns and string-valued rows.
type Table struct {
	Columns []string
	Rows    [][]string
}

// Validate checks that every row matches the column count.
func (t *Table) Validate() error {
	for i, r := range t.Rows {
		if len(r) != len(t.Columns) {
			return fmt.Errorf("%w: row %d has %d cells, want %d", ErrBadTable, i, len(r), len(t.Columns))
		}
	}
	return nil
}

// SummaryRow is one row of a summarized table with the number of source
// rows it covers.
type SummaryRow struct {
	Values []string
	Count  int
}

// Summary is a size-constrained digest of a table.
type Summary struct {
	Columns []string
	Rows    []SummaryRow
	// Loss is the average per-cell information loss in [0, 1].
	Loss float64
}

// Summarizer carries the per-column value hierarchies.
type Summarizer struct {
	hierarchies []*Hierarchy
}

// NewSummarizer builds a summarizer for a table schema. hierarchies maps
// column name -> hierarchy; columns without one get a flat hierarchy
// derived from the table's values at summarize time.
func NewSummarizer(columns []string, hierarchies map[string]*Hierarchy) *Summarizer {
	hs := make([]*Hierarchy, len(columns))
	for i, c := range columns {
		hs[i] = hierarchies[c]
	}
	return &Summarizer{hierarchies: hs}
}

func (s *Summarizer) resolved(t *Table) []*Hierarchy {
	hs := make([]*Hierarchy, len(t.Columns))
	for i := range t.Columns {
		if i < len(s.hierarchies) && s.hierarchies[i] != nil {
			hs[i] = s.hierarchies[i]
			continue
		}
		vals := make([]string, 0, len(t.Rows))
		seen := map[string]bool{}
		for _, r := range t.Rows {
			if !seen[r[i]] {
				seen[r[i]] = true
				vals = append(vals, r[i])
			}
		}
		hs[i] = FlatHierarchy(vals)
	}
	return hs
}

// Greedy summarizes t to at most budget distinct rows by repeatedly
// generalizing, over all columns, the single column whose full-column
// lift (one level up the value lattice) yields the best
// merges-per-unit-loss ratio. This is the fast heuristic of AlphaSum.
func (s *Summarizer) Greedy(t *Table, budget int) (*Summary, error) {
	return s.run(t, budget, true)
}

// Optimal summarizes t by exhaustively searching all per-column
// generalization level vectors and returning the feasible vector with
// minimum loss. Exponential in column count (levels^columns) — the
// quality baseline for experiment E9.
func (s *Summarizer) Optimal(t *Table, budget int) (*Summary, error) {
	return s.run(t, budget, false)
}

func (s *Summarizer) run(t *Table, budget int, greedy bool) (*Summary, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("%w: budget %d < 1", ErrBadTable, budget)
	}
	if len(t.Rows) == 0 {
		return &Summary{Columns: t.Columns}, nil
	}
	hs := s.resolved(t)
	if greedy {
		return s.greedy(t, hs, budget)
	}
	return s.optimal(t, hs, budget)
}

// levels describes a uniform generalization: column i lifted to depth
// levels[i].
func applyLevels(t *Table, hs []*Hierarchy, levels []int) ([][]string, int) {
	rows := make([][]string, len(t.Rows))
	distinct := map[string]bool{}
	for i, r := range t.Rows {
		g := make([]string, len(r))
		for j, v := range r {
			g[j] = hs[j].AtLevel(v, levels[j])
		}
		rows[i] = g
		distinct[strings.Join(g, "\x00")] = true
	}
	return rows, len(distinct)
}

func lossOf(rows [][]string, hs []*Hierarchy) float64 {
	if len(rows) == 0 {
		return 0
	}
	var total float64
	cells := 0
	for _, r := range rows {
		for j, v := range r {
			total += hs[j].Loss(v)
			cells++
		}
	}
	return total / float64(cells)
}

func (s *Summarizer) greedy(t *Table, hs []*Hierarchy, budget int) (*Summary, error) {
	levels := make([]int, len(t.Columns))
	for j := range levels {
		levels[j] = hs[j].MaxDepth()
	}
	rows, distinct := applyLevels(t, hs, levels)
	for distinct > budget {
		bestCol, bestScore := -1, -1.0
		var bestRows [][]string
		var bestDistinct int
		for j := range levels {
			if levels[j] == 0 {
				continue
			}
			trial := append([]int(nil), levels...)
			trial[j]--
			r2, d2 := applyLevels(t, hs, trial)
			merged := float64(distinct - d2)
			extraLoss := lossOf(r2, hs) - lossOf(rows, hs)
			var score float64
			if extraLoss <= 0 {
				score = merged + 1e6 // free merges first
			} else {
				score = merged / extraLoss
			}
			if score > bestScore {
				bestScore, bestCol = score, j
				bestRows, bestDistinct = r2, d2
			}
		}
		if bestCol < 0 {
			// Everything is at Root and still over budget: impossible
			// only when budget < 1, which was validated, so this means
			// budget >= 1 and distinct == 1. Defensive break.
			break
		}
		levels[bestCol]--
		rows, distinct = bestRows, bestDistinct
	}
	return buildSummary(t.Columns, rows, hs), nil
}

func (s *Summarizer) optimal(t *Table, hs []*Hierarchy, budget int) (*Summary, error) {
	nCols := len(t.Columns)
	maxLv := make([]int, nCols)
	for j := range maxLv {
		maxLv[j] = hs[j].MaxDepth()
	}
	best := make([]int, nCols) // all-zero = all-Root always feasible
	bestLoss := 2.0
	levels := make([]int, nCols)
	var rec func(j int)
	rec = func(j int) {
		if j == nCols {
			rows, distinct := applyLevels(t, hs, levels)
			if distinct > budget {
				return
			}
			if l := lossOf(rows, hs); l < bestLoss {
				bestLoss = l
				copy(best, levels)
			}
			return
		}
		for lv := 0; lv <= maxLv[j]; lv++ {
			levels[j] = lv
			rec(j + 1)
		}
	}
	rec(0)
	rows, _ := applyLevels(t, hs, best)
	return buildSummary(t.Columns, rows, hs), nil
}

func buildSummary(columns []string, rows [][]string, hs []*Hierarchy) *Summary {
	counts := map[string]int{}
	repr := map[string][]string{}
	for _, r := range rows {
		k := strings.Join(r, "\x00")
		counts[k]++
		repr[k] = r
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	sum := &Summary{Columns: columns, Loss: lossOf(rows, hs)}
	for _, k := range keys {
		sum.Rows = append(sum.Rows, SummaryRow{Values: repr[k], Count: counts[k]})
	}
	return sum
}

// Format renders the summary as an aligned text table for update reports.
func (s *Summary) Format() string {
	var b strings.Builder
	widths := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		widths[i] = len(c)
	}
	for _, r := range s.Rows {
		for i, v := range r.Values {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	for i, c := range s.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("count\n")
	for _, r := range s.Rows {
		for i, v := range r.Values {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		fmt.Fprintf(&b, "%d\n", r.Count)
	}
	return b.String()
}
