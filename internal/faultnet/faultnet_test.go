package faultnet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestPassThroughWhenZeroConfig(t *testing.T) {
	ts, hits := newBackend(t)
	c := &http.Client{Transport: New(nil, Config{})}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("backend hits = %d, want 1", hits.Load())
	}
}

func TestDropsAreDeterministicPerSeed(t *testing.T) {
	ts, _ := newBackend(t)
	outcomes := func(seed int64) string {
		tr := New(nil, Config{Seed: seed, DropProb: 0.5})
		c := &http.Client{Transport: tr}
		var b strings.Builder
		for i := 0; i < 32; i++ {
			resp, err := c.Get(ts.URL)
			if err != nil {
				b.WriteByte('x')
				continue
			}
			resp.Body.Close()
			b.WriteByte('.')
		}
		return b.String()
	}
	a, b := outcomes(7), outcomes(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 schedule has no mix: %s", a)
	}
	if c := outcomes(8); c == a {
		t.Fatalf("different seeds produced identical schedule: %s", c)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	ts, hits := newBackend(t)
	tr := New(nil, Config{})
	c := &http.Client{Transport: tr}
	host := strings.TrimPrefix(ts.URL, "http://")

	tr.Partition(host)
	if _, err := c.Get(ts.URL); err == nil {
		t.Fatal("request crossed a partition")
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the backend")
	}
	tr.Heal(host)
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	resp.Body.Close()
	if tr.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", tr.Drops())
	}
}

func TestDuplicateDeliveryHitsBackendTwice(t *testing.T) {
	ts, hits := newBackend(t)
	tr := New(nil, Config{Seed: 1, DupProb: 1})
	c := &http.Client{Transport: tr}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("backend hits = %d, want 2 (duplicate delivery)", hits.Load())
	}
	// POSTs are never duplicated regardless of probability.
	resp, err = c.Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 3 {
		t.Fatalf("backend hits = %d, want 3 (no POST duplicate)", hits.Load())
	}
}

func TestDelayRespectsContext(t *testing.T) {
	ts, _ := newBackend(t)
	tr := New(nil, Config{Delay: 5 * time.Second})
	c := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	if _, err := c.Do(req); err == nil {
		t.Fatal("delayed request succeeded past its context deadline")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v, delay did not respect context", d)
	}
}
