package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// reconstruct evaluates the CP model at given coordinates.
func reconstruct(cp *CPResult, coords []int) float64 {
	var s float64
	for r := 0; r < cp.Rank; r++ {
		v := cp.Lambda[r]
		for m, c := range coords {
			v *= cp.Factors[m][c*cp.Rank+r]
		}
		s += v
	}
	return s
}

// rankOneTensor builds an exactly rank-1 tensor a⊗b.
func rankOneTensor(t *testing.T, a, b []float64) *Sparse {
	t.Helper()
	ten := MustSparse(len(a), len(b))
	for i, av := range a {
		for j, bv := range b {
			if av*bv != 0 {
				if err := ten.Set(av*bv, i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return ten
}

func TestCPDecomposeRankOneRecovery(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 1, 0.5}
	ten := rankOneTensor(t, a, b)
	cp, err := CPDecompose(ten, 1, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The rank-1 model must reconstruct the tensor almost exactly.
	var maxErr float64
	ten.Each(func(coords []int, v float64) {
		if e := math.Abs(reconstruct(cp, coords) - v); e > maxErr {
			maxErr = e
		}
	})
	if maxErr > 1e-6 {
		t.Fatalf("rank-1 reconstruction error = %v", maxErr)
	}
}

func TestCPDecomposeReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ten := MustSparse(10, 10, 5)
	for i := 0; i < 80; i++ {
		_ = ten.Set(rng.Float64(), rng.Intn(10), rng.Intn(10), rng.Intn(5))
	}
	errAt := func(rank int) float64 {
		cp, err := CPDecompose(ten, rank, 25, 5)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		ten.Each(func(coords []int, v float64) {
			d := reconstruct(cp, coords) - v
			s += d * d
		})
		return math.Sqrt(s)
	}
	e2 := errAt(2)
	e8 := errAt(8)
	if e8 >= e2 {
		t.Fatalf("higher rank should not fit worse: rank2=%v rank8=%v", e2, e8)
	}
}

func TestCPDecomposeValidation(t *testing.T) {
	ten := MustSparse(3, 3)
	if _, err := CPDecompose(ten, 0, 5, 1); err == nil {
		t.Fatal("rank 0 accepted")
	}
	// Empty tensor decomposes to zero lambdas without error.
	cp, err := CPDecompose(ten, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range cp.Lambda {
		if l != 0 {
			t.Fatalf("empty tensor lambda = %v", cp.Lambda)
		}
	}
}

func TestLambdaDistancePermutationInvariant(t *testing.T) {
	a := &CPResult{Lambda: []float64{3, 1, 2}}
	b := &CPResult{Lambda: []float64{2, 3, 1}}
	if d := LambdaDistance(a, b); d > 1e-12 {
		t.Fatalf("permuted lambdas distance = %v, want 0", d)
	}
	c := &CPResult{Lambda: []float64{30, 1, 2}}
	if d := LambdaDistance(a, c); d <= 0 {
		t.Fatalf("distinct lambdas distance = %v", d)
	}
}

func TestMonitorDecompositionFlagsChange(t *testing.T) {
	changeAt := map[int]bool{15: true}
	stream := SyntheticStream(23, []int{12, 12, 6}, 25, 150, changeAt)
	res, err := MonitorDecomposition(stream, 3, 8, &Detector{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(stream) {
		t.Fatalf("results = %d", len(res))
	}
	found := false
	for _, r := range res {
		if r.Change && r.Epoch >= 14 && r.Epoch <= 16 {
			found = true
		}
	}
	if !found {
		t.Fatalf("decomposition monitor missed the planted change: %+v", res)
	}
}
