package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hive"
	"hive/api"
	"hive/internal/election"
)

// newLeader opens a durable platform (replication needs a journal) and
// serves it over httptest.
func newLeader(t *testing.T) (*httptest.Server, *hive.Platform) {
	t.Helper()
	p, err := hive.Open(hive.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return ts, p
}

// newFollower opens an elected follower of the given leader URL — a
// Manual elector pinned to the follower role, the minimal replacement
// for the removed static FollowURL mode — and serves it. It blocks
// until the async bootstrap has built a serving snapshot, restoring the
// synchronous-boot semantics the static mode used to guarantee.
func newFollower(t *testing.T, leaderURL string) (*httptest.Server, *hive.Platform) {
	t.Helper()
	el := election.NewManual()
	el.Set(election.State{Role: election.Follower, Leader: leaderURL})
	p, err := hive.Open(hive.Options{
		Dir: t.TempDir(),
		Cluster: &hive.ClusterConfig{
			SelfURL:  "http://follower.test",
			Election: el,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	deadline := time.Now().Add(30 * time.Second)
	for p.Snapshot() == nil || p.LeaderURL() != leaderURL {
		if time.Now().After(deadline) {
			t.Fatalf("follower did not bootstrap from %s: leader hint %q, lastErr %v",
				leaderURL, p.LeaderURL(), p.LastReplicationError())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ts, p
}

// waitConverged blocks until the follower has folded every leader event
// into its serving snapshot.
func waitConverged(t *testing.T, leader, follower *hive.Platform, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		want := leader.Store().ChangeSeq()
		if follower.ReplicationApplied() >= want && !follower.Stale() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower did not converge: applied %d, leader seq %d, lag %d, lastErr %v",
		follower.ReplicationApplied(), leader.Store().ChangeSeq(),
		follower.ReplicationLag(), follower.LastReplicationError())
}

// seedLeader loads a small base corpus through the platform API.
func seedLeader(t *testing.T, p *hive.Platform, users int) {
	t.Helper()
	err := p.Store().Batched(func() error {
		for i := 0; i < users; i++ {
			if err := p.RegisterUser(hive.User{
				ID: fmt.Sprintf("u%02d", i), Name: fmt.Sprintf("User %d", i),
				Interests: []string{"graphs", "databases"}[i%2 : i%2+1],
			}); err != nil {
				return err
			}
		}
		if err := p.CreateConference(hive.Conference{ID: "conf", Name: "Conf"}); err != nil {
			return err
		}
		return p.CreateSession(hive.Session{ID: "s1", ConferenceID: "conf", Title: "Graphs", Hashtag: "#graphs"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaderFollowerConvergence is the randomized interleaving test:
// concurrent writers hammer the leader while the follower tails; once
// drained, the follower's results must be bit-identical to the
// leader's.
func TestLeaderFollowerConvergence(t *testing.T) {
	ts, leader := newLeader(t)
	seedLeader(t, leader, 12)
	_, follower := newFollower(t, ts.URL)

	if !follower.IsFollower() || follower.LeaderURL() != ts.URL {
		t.Fatalf("follower role = %v, leader %q", follower.IsFollower(), follower.LeaderURL())
	}

	// Randomized write interleaving: 4 writers, each with its own
	// seeded stream, mixing entity kinds.
	var wg sync.WaitGroup
	var failed atomic.Int32
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < 25; i++ {
				author := fmt.Sprintf("u%02d", rng.Intn(12))
				var err error
				switch rng.Intn(5) {
				case 0:
					err = leader.PublishPaper(hive.Paper{
						ID:    fmt.Sprintf("p-%d-%d", w, i),
						Title: fmt.Sprintf("Paper %d %d on random graphs", w, i),
						Abstract: fmt.Sprintf("Abstract %d about distributed journals and replication, variant %d.",
							i, rng.Intn(100)),
						Authors: []string{author}, ConferenceID: "conf", SessionID: "s1",
					})
				case 1:
					err = leader.CheckIn("s1", author)
				case 2:
					other := fmt.Sprintf("u%02d", (rng.Intn(11)+w*3+i)%12)
					if other == author {
						other = "u00"
					}
					if other == author {
						other = "u01"
					}
					err = leader.Follow(author, other)
				case 3:
					err = leader.Ask(hive.Question{
						ID: fmt.Sprintf("q-%d-%d", w, i), Author: author, Target: "s1",
						Text: fmt.Sprintf("Question %d about replication lag?", i),
					})
				case 4:
					err = leader.RegisterUser(hive.User{
						ID: fmt.Sprintf("w%d-%d", w, i), Name: "New",
						Interests: []string{"replication"},
					})
				}
				if err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					failed.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() > 0 {
		t.FailNow()
	}

	waitConverged(t, leader, follower, 30*time.Second)

	leng, err := leader.Engine()
	if err != nil {
		t.Fatal(err)
	}
	feng, err := follower.Engine()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"random graphs", "distributed journals", "replication lag", "databases"} {
		lres := leng.Search(q, 10)
		fres := feng.Search(q, 10)
		if !reflect.DeepEqual(lres, fres) {
			t.Fatalf("search %q diverges:\nleader:   %+v\nfollower: %+v", q, lres, fres)
		}
	}
	for _, u := range []string{"u00", "u05", "u11"} {
		lres := leng.SearchWithContext(u, "replication graphs", 10)
		fres := feng.SearchWithContext(u, "replication graphs", 10)
		if !reflect.DeepEqual(lres, fres) {
			t.Fatalf("context search for %s diverges", u)
		}
		// Store-level reads (feeds) replicate byte-for-byte too.
		if !reflect.DeepEqual(leader.Feed(u, 20), follower.Feed(u, 20)) {
			t.Fatalf("feed for %s diverges", u)
		}
	}
	if got, want := follower.Attendees("s1"), leader.Attendees("s1"); !reflect.DeepEqual(got, want) {
		t.Fatalf("attendees diverge: %v vs %v", got, want)
	}
}

// A publish on the leader becomes searchable on the follower quickly
// (the acceptance bound is < 1s; the long-poll wakes the follower on
// append, so propagation is one delta apply away).
func TestFollowerFreshness(t *testing.T) {
	ts, leader := newLeader(t)
	seedLeader(t, leader, 4)
	_, follower := newFollower(t, ts.URL)
	waitConverged(t, leader, follower, 10*time.Second)

	if err := leader.PublishPaper(hive.Paper{
		ID: "fresh", Title: "Freshness bound over replication",
		Abstract: "Visible within one second.", Authors: []string{"u00"},
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		eng := follower.Snapshot()
		if eng != nil {
			if res := eng.Search("freshness bound", 5); len(res) > 0 {
				if d := time.Since(start); d > time.Second {
					t.Logf("warning: propagation took %v (target < 1s)", d)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("publish on leader not searchable on follower within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	ts, leader := newLeader(t)
	seedLeader(t, leader, 2)
	fts, follower := newFollower(t, ts.URL)

	// Platform-level: the typed error names the leader.
	err := follower.RegisterUser(hive.User{ID: "x", Name: "X"})
	var nle *hive.NotLeaderError
	if !errors.As(err, &nle) || nle.Leader != ts.URL {
		t.Fatalf("RegisterUser on follower = %v", err)
	}

	// HTTP-level: 409 + not_leader envelope with the leader URL in details.
	resp := post(t, fts, "/api/v1/users", api.User{ID: "x", Name: "X"})
	status, ae := decodeEnvelope(t, resp)
	if status != http.StatusConflict || ae.Code != api.CodeNotLeader {
		t.Fatalf("follower write = %d %q", status, ae.Code)
	}
	if got := ae.Details["leader"]; got != ts.URL {
		t.Fatalf("details.leader = %v, want %q", got, ts.URL)
	}

	// The batch route drives the store directly and has its own guard.
	ent, err := api.NewBatchEntity(api.KindUser, api.User{ID: "y", Name: "Y"})
	if err != nil {
		t.Fatal(err)
	}
	resp = post(t, fts, "/api/v1/batch", api.BatchRequest{Entities: []api.BatchEntity{ent}})
	status, ae = decodeEnvelope(t, resp)
	if status != http.StatusConflict || ae.Code != api.CodeNotLeader {
		t.Fatalf("follower batch = %d %q", status, ae.Code)
	}

	// Reads keep working.
	if _, err := follower.GetUser("u00"); err != nil {
		t.Fatalf("follower read: %v", err)
	}
}

// TestLeaderRestartLosesNoAcknowledgedEvents kills and restarts the
// leader process-equivalent (platform + server) behind a stable URL:
// the journal replay resumes at the persisted sequence and the follower
// reconnects and converges without losing acknowledged writes.
func TestLeaderRestartLosesNoAcknowledgedEvents(t *testing.T) {
	dir := t.TempDir()
	leader1, err := hive.Open(hive.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Stable front URL over a swappable backend, standing in for a
	// restarted process re-binding its address.
	var backend atomic.Pointer[http.Handler]
	setBackend := func(h http.Handler) { backend.Store(&h) }
	setBackend(New(leader1))
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*backend.Load()).ServeHTTP(w, r)
	}))
	defer front.Close()

	seedLeader(t, leader1, 4)
	_, follower := newFollower(t, front.URL)
	waitConverged(t, leader1, follower, 10*time.Second)

	// Acknowledged write, then "kill" the leader.
	if err := leader1.PublishPaper(hive.Paper{
		ID: "acked", Title: "Acknowledged before crash",
		Abstract: "Must survive the restart.", Authors: []string{"u00"},
	}); err != nil {
		t.Fatal(err)
	}
	seqBefore := leader1.Store().ChangeSeq()
	setBackend(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "leader down", http.StatusBadGateway)
	}))
	if err := leader1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir: the sequence resumes, nothing is lost.
	leader2, err := hive.Open(hive.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer leader2.Close()
	if got := leader2.Store().ChangeSeq(); got != seqBefore {
		t.Fatalf("restarted ChangeSeq = %d, want %d", got, seqBefore)
	}
	if err := leader2.Refresh(); err != nil {
		t.Fatal(err)
	}
	setBackend(New(leader2))

	// Post-restart writes extend the same journal.
	if err := leader2.PublishPaper(hive.Paper{
		ID: "after", Title: "Published after restart",
		Abstract: "Continues the sequence.", Authors: []string{"u01"},
	}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, leader2, follower, 30*time.Second)

	feng, err := follower.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if res := feng.Search("acknowledged crash", 5); len(res) == 0 {
		t.Fatal("acknowledged pre-restart write lost on follower")
	}
	if res := feng.Search("published after restart", 5); len(res) == 0 {
		t.Fatal("post-restart write did not reach follower")
	}
}

// A "leader" whose journal tail is behind the follower's applied
// sequence (repurposed data dir, restored backup, misconfigured peers)
// must trigger a re-bootstrap — not a silent caught-up report over
// unrelated state.
func TestFollowerResyncsFromRegressedLeader(t *testing.T) {
	leaderA, err := hive.Open(hive.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderA.Close()
	var backend atomic.Pointer[http.Handler]
	setBackend := func(h http.Handler) { backend.Store(&h) }
	setBackend(New(leaderA))
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*backend.Load()).ServeHTTP(w, r)
	}))
	defer front.Close()
	seedLeader(t, leaderA, 8)
	_, follower := newFollower(t, front.URL)
	waitConverged(t, leaderA, follower, 10*time.Second)
	if follower.ReplicationApplied() == 0 {
		t.Fatal("follower applied nothing from leader A")
	}

	// Swap in an unrelated leader with a much shorter history.
	leaderB, err := hive.Open(hive.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderB.Close()
	if err := leaderB.RegisterUser(hive.User{ID: "b-only", Name: "B", Interests: []string{"resync"}}); err != nil {
		t.Fatal(err)
	}
	if err := leaderB.Refresh(); err != nil {
		t.Fatal(err)
	}
	if leaderB.Store().ChangeSeq() >= leaderA.Store().ChangeSeq() {
		t.Fatal("test setup: leader B must have a shorter history")
	}
	setBackend(New(leaderB))
	// The scenario is a dead process whose address now serves unrelated
	// state: kill leader A so its long-poll waiters release instead of
	// holding the follower's in-flight request for the full wait.
	leaderA.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if follower.ReplicationBootstraps() >= 2 &&
			follower.ReplicationApplied() == leaderB.Store().ChangeSeq() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not resync: bootstraps %d, applied %d (leader B seq %d), lastErr %v",
				follower.ReplicationBootstraps(), follower.ReplicationApplied(),
				leaderB.Store().ChangeSeq(), follower.LastReplicationError())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The follower now serves leader B's world, not leader A's.
	if _, err := follower.GetUser("b-only"); err != nil {
		t.Fatalf("follower missing leader B state: %v", err)
	}
	if _, err := follower.GetUser("u00"); err == nil {
		t.Fatal("follower still serves leader A state after resync")
	}
}

func TestReplicationEndpointsContract(t *testing.T) {
	ts, leader := newLeader(t)
	seedLeader(t, leader, 3)

	// Snapshot: watermark + non-empty image.
	resp, err := http.Get(ts.URL + "/api/v1/replication/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap api.ReplicationSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Seq != leader.Store().ChangeSeq() || len(snap.Entries) == 0 {
		t.Fatalf("snapshot = seq %d, %d entries", snap.Seq, len(snap.Entries))
	}

	// Events from 0: every batch, tail == current seq.
	resp, err = http.Get(ts.URL + "/api/v1/replication/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	var evs api.ReplicationEvents
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if evs.Tail != leader.Store().ChangeSeq() || len(evs.Batches) == 0 {
		t.Fatalf("events = tail %d, %d batches", evs.Tail, len(evs.Batches))
	}
	if evs.Batches[0].First != 1 {
		t.Fatalf("first batch starts at %d", evs.Batches[0].First)
	}

	// Caught-up poll without wait returns immediately and empty.
	resp, err = http.Get(fmt.Sprintf("%s/api/v1/replication/events?from=%d", ts.URL, evs.Tail))
	if err != nil {
		t.Fatal(err)
	}
	var caught api.ReplicationEvents
	if err := json.NewDecoder(resp.Body).Decode(&caught); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(caught.Batches) != 0 || caught.Tail != evs.Tail {
		t.Fatalf("caught-up poll = %+v", caught)
	}

	// Healthz reports the leader role and journal range.
	resp, err = http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Replication.Role != api.RoleLeader || h.Replication.JournalTail != evs.Tail {
		t.Fatalf("healthz replication = %+v", h.Replication)
	}
}

func TestFollowerHealthzReportsLag(t *testing.T) {
	ts, leader := newLeader(t)
	seedLeader(t, leader, 3)
	fts, follower := newFollower(t, ts.URL)
	waitConverged(t, leader, follower, 10*time.Second)

	resp, err := http.Get(fts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	r := h.Replication
	if r.Role != api.RoleFollower || r.LeaderURL != ts.URL {
		t.Fatalf("follower healthz = %+v", r)
	}
	if r.AppliedSeq != leader.Store().ChangeSeq() || r.LagEvents != 0 {
		t.Fatalf("lag report = applied %d, lag %d (leader seq %d)",
			r.AppliedSeq, r.LagEvents, leader.Store().ChangeSeq())
	}
}

// An in-memory platform has no journal: replication reads answer with a
// typed error instead of a hang or a panic.
func TestInMemoryNodeCannotLead(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/replication/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	status, ae := decodeEnvelope(t, resp)
	if status != http.StatusBadRequest || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("in-memory replication read = %d %q", status, ae.Code)
	}
}
