package hive_test

import (
	"sync"
	"testing"
	"time"

	"hive"
	"hive/internal/workload"
)

func refreshPlatform(t *testing.T, users int) *hive.Platform {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ds := workload.Generate(workload.Config{Seed: 42, Users: users})
	if err := ds.Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSnapshotLifecycle(t *testing.T) {
	p := refreshPlatform(t, 12)
	if p.Snapshot() != nil {
		t.Fatal("snapshot before first build")
	}
	if !p.Stale() || p.Generation() != 0 {
		t.Fatalf("pre-build state: stale=%v gen=%d", p.Stale(), p.Generation())
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	first := p.Snapshot()
	if first == nil || p.Stale() || p.Generation() != 1 {
		t.Fatalf("post-build state: snap=%v stale=%v gen=%d", first, p.Stale(), p.Generation())
	}
	if err := p.LastRefreshError(); err != nil {
		t.Fatalf("LastRefreshError after success = %v", err)
	}

	// A write through the raw store — bypassing the Platform wrappers —
	// must mark the snapshot stale via the OnMutate hook.
	if err := p.Store().PutUser(hive.User{ID: "newbie", Name: "New"}); err != nil {
		t.Fatal(err)
	}
	if !p.Stale() {
		t.Fatal("store write did not mark snapshot stale")
	}
	// The serving snapshot is untouched until the next swap.
	if p.Snapshot() != first {
		t.Fatal("snapshot changed without a refresh")
	}

	eng, err := p.Engine() // read-your-writes: rebuilds because stale
	if err != nil {
		t.Fatal(err)
	}
	if eng == first {
		t.Fatal("Engine() returned the stale snapshot")
	}
	if p.Generation() != 2 || p.Stale() {
		t.Fatalf("post-rebuild state: gen=%d stale=%v", p.Generation(), p.Stale())
	}
}

// TestRefreshSingleFlight asserts that concurrent Refresh calls
// coalesce into far fewer rebuilds than callers.
func TestRefreshSingleFlight(t *testing.T) {
	p := refreshPlatform(t, 24)
	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := p.Refresh(); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if g := p.Generation(); g == 0 || g >= callers {
		t.Fatalf("generation = %d after %d concurrent Refresh calls, want coalescing", g, callers)
	}
}

// TestReadsServeOldSnapshotDuringRebuild hammers Snapshot/knowledge
// reads while rebuilds run in a loop: readers must always observe a
// fully built snapshot, never nil and never an error.
func TestReadsServeOldSnapshotDuringRebuild(t *testing.T) {
	p := refreshPlatform(t, 16)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	uid := p.Users()[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng := p.Snapshot()
				if eng == nil {
					t.Error("nil snapshot during rebuild")
					return
				}
				if _, err := eng.RecommendPeers(uid, 3); err != nil {
					t.Errorf("read during rebuild: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		// Mutate so each refresh really rebuilds, then swap.
		if err := p.RegisterUser(hive.User{ID: "loadgen", Name: "L", Bio: time.Now().String()}); err != nil {
			t.Fatal(err)
		}
		if err := p.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAutoRefresh(t *testing.T) {
	p := refreshPlatform(t, 8)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	gen := p.Generation()
	p.AutoRefresh(10 * time.Millisecond)
	defer p.StopAutoRefresh()

	// No writes -> no rebuilds, the loop must not churn.
	time.Sleep(50 * time.Millisecond)
	if g := p.Generation(); g != gen {
		t.Fatalf("auto-refresh rebuilt a clean snapshot: gen %d -> %d", gen, g)
	}

	if err := p.RegisterUser(hive.User{ID: "late", Name: "Late"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Generation() == gen {
		if time.Now().After(deadline) {
			t.Fatal("auto-refresh did not pick up the write")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.Stale() {
		t.Fatal("still stale after auto-refresh")
	}
}
