// Package metriccheck keeps the metric-name registry closed: the
// metrics package declares every exposed series name as a constant
// (metrics.HTTPRequestsTotal, ...), so the exposition surface is
// greppable in one file and two subsystems can never register the
// same name with different meanings. A call that registers an
// instrument under a raw string (or a constant declared elsewhere)
// invents a series no dashboard or alert knows about.
//
// The checker flags registration calls — Counter, CounterVec, Gauge,
// GaugeVec, Histogram, HistogramVec on a metrics.Registry — whose name
// argument is a string literal or a constant declared outside the
// metrics package. The metrics package itself is exempt (it is the
// registry), as are dynamic values (variables, computed names) —
// provenance of runtime strings is out of scope.
package metriccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"hive/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "metriccheck",
	Doc:  "flag metric registrations whose name is not a constant declared in the metrics package (closed registry)",
	Run:  run,
}

// registrations are the Registry methods whose first argument is a
// series name.
var registrations = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"Gauge":        true,
	"GaugeVec":     true,
	"Histogram":    true,
	"HistogramVec": true,
}

func run(pass *analysis.Pass) error {
	// The metrics package is the registry: it declares the constants
	// and its tests register throwaway names on throwaway registries.
	if analysis.PkgPathHasSuffix(pass.Pkg, "metrics") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

// checkCall flags reg.Counter("raw_name", ...) shapes: a registration
// method on a metrics.Registry whose name argument is provably outside
// the registry.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registrations[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.IsNamed(tv.Type, "metrics", "Registry") {
		return
	}
	checkNameExpr(pass, call.Args[0], sel.Sel.Name)
}

// checkNameExpr flags expr when it is provably outside the registry: a
// raw string literal, or a named constant not declared in the metrics
// package.
func checkNameExpr(pass *analysis.Pass, expr ast.Expr, site string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			pass.Reportf(e.Pos(),
				"%s registers a raw-string metric name: declare it as a constant in the metrics package (closed registry)", site)
		}
	case *ast.Ident, *ast.SelectorExpr:
		obj := identObj(pass, e)
		c, ok := obj.(*types.Const)
		if !ok {
			return // dynamic value: provenance not tracked
		}
		if c.Pkg() != nil && analysis.PkgPathHasSuffix(c.Pkg(), "metrics") {
			return
		}
		pass.Reportf(expr.Pos(),
			"%s registers metric name via constant %s, which is not declared in the metrics package registry", site, c.Name())
	}
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[v]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[v.Sel]
	}
	return nil
}
