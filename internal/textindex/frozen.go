package textindex

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"hive/internal/topk"
)

// Frozen is a lock-free, read-only snapshot of an Index, laid out for
// the query path: documents are interned to dense int IDs (assigned in
// lexicographic docID order, so dense-ID order doubles as the tie-break
// order), postings live in contiguous slices sorted by document, and
// per-term IDF plus per-document norms and lengths are precomputed. A
// forward index (term+weight runs per document) makes TFIDFVector
// O(terms-in-doc).
//
// Build one per engine snapshot with Index.Freeze after the last Add.
// A Frozen is immutable, so any number of goroutines may query it with
// no synchronization; later mutations of the source Index are not
// reflected.
//
// Score parity: Search, SearchVector and TFIDFVector accumulate floats
// in exactly the same order as the live Index methods (per-term query
// order for BM25, sorted query terms for vectors, sorted per-doc terms
// for norms and forward weights), so frozen and live results are
// bit-identical, including tie-break order.
type Frozen struct {
	ids      []string         // dense ID -> docID, lexicographically sorted
	idOf     map[string]int32 // docID -> dense ID
	text     []string         // dense ID -> raw text
	docLen   []int32          // dense ID -> token count
	docNorm  []float64        // dense ID -> TF-IDF Euclidean norm
	avgLen   float64          // mean document length (1 when degenerate)
	totalLen int              // total token count (overlay views re-derive avgLen)

	terms   map[string]frozenTerm
	postDoc []int32   // postings: dense doc IDs, contiguous per term
	postTF  []int32   // postings: term frequencies, parallel to postDoc
	postW   []float64 // postings: precomputed tf×idf weights, parallel

	fwdOff  []int32   // dense ID -> offset into fwdTerm/fwdW (len = docs+1)
	fwdTerm []string  // forward index: terms, sorted within each doc
	fwdW    []float64 // forward index: precomputed TF-IDF weights
	fwdTF   []int32   // forward index: raw term frequencies (the overlay
	// read path recomputes weights under merged corpus statistics, which
	// needs the tf the precomputed fwdW already folded in)

	// scratch pools per-query accumulators so steady-state searches
	// allocate only their results. Buffers are reset by zeroing only the
	// touched entries, keeping per-request cost proportional to matched
	// documents rather than corpus size.
	scratch sync.Pool // *frozenScratch
}

// frozenScratch holds one query's dense accumulators. Invariant while
// pooled: scores and seen are all-zero/false and touched is empty.
type frozenScratch struct {
	scores  []float64
	seen    []bool
	touched []int32
}

func (f *Frozen) getScratch() *frozenScratch {
	if s, ok := f.scratch.Get().(*frozenScratch); ok {
		return s
	}
	return &frozenScratch{
		scores: make([]float64, len(f.ids)),
		seen:   make([]bool, len(f.ids)),
	}
}

func (f *Frozen) putScratch(s *frozenScratch) {
	for _, d := range s.touched {
		s.scores[d] = 0
		s.seen[d] = false
	}
	s.touched = s.touched[:0]
	f.scratch.Put(s)
}

// frozenTerm locates one term's postings run and caches its IDF.
type frozenTerm struct {
	off int32
	n   int32
	idf float64
}

// Freeze captures the current index contents into a Frozen searcher.
func (ix *Index) Freeze() *Frozen {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	nDocs := len(ix.docLen)
	f := &Frozen{
		ids:     make([]string, 0, nDocs),
		idOf:    make(map[string]int32, nDocs),
		text:    make([]string, nDocs),
		docLen:  make([]int32, nDocs),
		docNorm: make([]float64, nDocs),
		terms:   make(map[string]frozenTerm, len(ix.postings)),
		fwdOff:  make([]int32, nDocs+1),
	}
	for id := range ix.docLen {
		f.ids = append(f.ids, id)
	}
	sort.Strings(f.ids)
	for d, id := range f.ids {
		f.idOf[id] = int32(d)
		f.text[d] = ix.docText[id]
		f.docLen[d] = int32(ix.docLen[id])
	}
	f.totalLen = ix.totalLen
	f.avgLen = 1
	if nDocs > 0 {
		f.avgLen = float64(ix.totalLen) / float64(nDocs)
		if f.avgLen == 0 {
			f.avgLen = 1
		}
	}

	// Postings: one contiguous run per term, sorted by dense doc ID.
	// Term layout order is sorted too, purely for reproducible builds.
	termList := make([]string, 0, len(ix.postings))
	totalPostings := 0
	for t, ps := range ix.postings {
		termList = append(termList, t)
		totalPostings += len(ps)
	}
	sort.Strings(termList)
	f.postDoc = make([]int32, 0, totalPostings)
	f.postTF = make([]int32, 0, totalPostings)
	f.postW = make([]float64, 0, totalPostings)
	type dp struct {
		doc int32
		tf  int32
	}
	for _, t := range termList {
		ps := ix.postings[t]
		run := make([]dp, len(ps))
		for i, p := range ps {
			run[i] = dp{doc: f.idOf[p.doc], tf: int32(p.tf)}
		}
		sort.Slice(run, func(i, j int) bool { return run[i].doc < run[j].doc })
		idf := ix.idfLocked(t)
		f.terms[t] = frozenTerm{off: int32(len(f.postDoc)), n: int32(len(run)), idf: idf}
		for _, r := range run {
			f.postDoc = append(f.postDoc, r.doc)
			f.postTF = append(f.postTF, r.tf)
			f.postW = append(f.postW, float64(r.tf)*idf)
		}
	}

	// Forward index and norms, in the live index's sorted per-doc term
	// order so the weight and norm accumulation matches bit for bit.
	nFwd := 0
	for _, dts := range ix.docTerms {
		nFwd += len(dts)
	}
	f.fwdTerm = make([]string, 0, nFwd)
	f.fwdW = make([]float64, 0, nFwd)
	f.fwdTF = make([]int32, 0, nFwd)
	for d, id := range f.ids {
		f.fwdOff[d] = int32(len(f.fwdTerm))
		var s float64
		for _, dt := range ix.docTerms[id] {
			w := float64(dt.tf) * ix.idfLocked(dt.term)
			f.fwdTerm = append(f.fwdTerm, dt.term)
			f.fwdW = append(f.fwdW, w)
			f.fwdTF = append(f.fwdTF, int32(dt.tf))
			s += w * w
		}
		f.docNorm[d] = math.Sqrt(s)
	}
	f.fwdOff[nDocs] = int32(len(f.fwdTerm))
	return f
}

// Len reports the number of frozen documents.
func (f *Frozen) Len() int { return len(f.ids) }

// DocIDs returns all document IDs in sorted order. The returned slice is
// owned by the Frozen and must not be modified.
func (f *Frozen) DocIDs() []string { return f.ids }

// Text returns the stored raw text of a document.
func (f *Frozen) Text(docID string) (string, error) {
	d, ok := f.idOf[docID]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	return f.text[d], nil
}

// TFIDFVector returns the document's TF-IDF vector from the forward
// index: O(terms-in-doc), no postings scan.
func (f *Frozen) TFIDFVector(docID string) (Vector, error) {
	d, ok := f.idOf[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	lo, hi := f.fwdOff[d], f.fwdOff[d+1]
	v := make(Vector, hi-lo)
	for j := lo; j < hi; j++ {
		v[f.fwdTerm[j]] = f.fwdW[j]
	}
	return v, nil
}

// DocNorm returns the precomputed TF-IDF norm of a document (0 for
// unknown documents).
func (f *Frozen) DocNorm(docID string) float64 {
	d, ok := f.idOf[docID]
	if !ok {
		return 0
	}
	return f.docNorm[d]
}

// Search ranks documents against the query with BM25, identically to
// Index.Search on the frozen contents.
func (f *Frozen) Search(query string, k int) []Result {
	n := len(f.ids)
	if n == 0 {
		return nil
	}
	sc := f.getScratch()
	defer f.putScratch(sc)
	scores := sc.scores
	for _, term := range Terms(query) {
		ti, ok := f.terms[term]
		if !ok {
			continue
		}
		for j := ti.off; j < ti.off+ti.n; j++ {
			d := f.postDoc[j]
			tf := float64(f.postTF[j])
			// BM25 contributions are strictly positive, so a zero score
			// marks a document not yet touched.
			if scores[d] == 0 {
				sc.touched = append(sc.touched, d)
			}
			scores[d] += ti.idf * tf * (bm25K1 + 1) /
				(tf + bm25K1*(1-bm25B+bm25B*float64(f.docLen[d])/f.avgLen))
		}
	}
	return f.topDense(scores, sc.touched, k)
}

// SearchVector ranks documents by cosine similarity to the query vector,
// identically to Index.SearchVector on the frozen contents. Callers that
// reuse the same query vector (per-user context vectors) should Compile
// it once and search the compiled form instead.
func (f *Frozen) SearchVector(query Vector, k int) []Result {
	if len(query) == 0 {
		return nil
	}
	return f.searchCompiled(f.Compile(query), k)
}

// CompiledVector is a query vector pre-resolved against a Frozen index:
// terms extracted, sorted and looked up once, query norm precomputed.
// Searching a compiled vector skips the per-call term sort and hash
// lookups — the engine compiles every user's context vector at build
// time so context search is pure postings arithmetic.
//
// Besides the base-resolved postings runs, a compiled vector retains
// the full sorted (term, weight) list. That half is independent of any
// particular index, which is what lets a Segmented view (the frozen
// base plus a mutable overlay) serve the same compiled query with
// merged corpus statistics: the runs are a fast path for the pristine
// base, the pairs are the portable query.
type CompiledVector struct {
	empty bool
	qn    float64 // Euclidean norm of the full query
	terms []compiledQTerm
	pairs []termWeight // all query terms, sorted — index-independent
}

// compiledQTerm is one query term resolved to its postings run.
type compiledQTerm struct {
	off int32
	n   int32
	qw  float64
}

// termWeight is one (term, weight) component of a query vector.
type termWeight struct {
	t string
	w float64
}

// Compile resolves a query vector against the index. The postings-run
// fast path is only valid for this Frozen instance; the retained term
// list also serves Segmented views layered over it.
func (f *Frozen) Compile(query Vector) *CompiledVector {
	cq := &CompiledVector{empty: len(query) == 0}
	pairs := make([]termWeight, 0, len(query))
	for t, w := range query {
		pairs = append(pairs, termWeight{t, w})
	}
	// Sorted term order keeps the qn and dot accumulations bit-identical
	// to the live index's sorted-order sums.
	slices.SortFunc(pairs, func(a, b termWeight) int { return strings.Compare(a.t, b.t) })
	var qnSq float64
	for _, p := range pairs {
		qnSq += p.w * p.w
		if ti, ok := f.terms[p.t]; ok {
			cq.terms = append(cq.terms, compiledQTerm{off: ti.off, n: ti.n, qw: p.w})
		}
	}
	cq.qn = math.Sqrt(qnSq)
	cq.pairs = pairs
	return cq
}

// SearchCompiled ranks documents against a query compiled by Compile,
// identically to SearchVector on the original vector.
func (f *Frozen) SearchCompiled(cq *CompiledVector, k int) []Result {
	return f.searchCompiled(cq, k)
}

func (f *Frozen) searchCompiled(cq *CompiledVector, k int) []Result {
	if cq.empty || cq.qn == 0 || len(f.ids) == 0 {
		return nil
	}
	sc := f.getScratch()
	defer f.putScratch(sc)
	dots, seen := sc.scores, sc.seen
	for _, qt := range cq.terms {
		qw := qt.qw
		for j := qt.off; j < qt.off+qt.n; j++ {
			d := f.postDoc[j]
			if !seen[d] {
				seen[d] = true
				sc.touched = append(sc.touched, d)
			}
			dots[d] += qw * f.postW[j]
		}
	}
	h := newDenseTop(k)
	for _, d := range sc.touched {
		dn := f.docNorm[d]
		if dn == 0 {
			continue
		}
		h.Push(denseCand{d: d, s: dots[d] / (cq.qn * dn)})
	}
	return f.denseResults(h)
}

// denseCand is a scored dense doc ID. Dense IDs are assigned in
// lexicographic docID order, so comparing IDs reproduces the live
// index's DocID tie-break.
type denseCand struct {
	d int32
	s float64
}

func newDenseTop(k int) *topk.Heap[denseCand] {
	return topk.New[denseCand](k, func(a, b denseCand) bool {
		if a.s != b.s {
			return a.s > b.s
		}
		return a.d < b.d
	})
}

// topDense selects the top-k touched documents with a bounded heap.
func (f *Frozen) topDense(scores []float64, touched []int32, k int) []Result {
	h := newDenseTop(k)
	for _, d := range touched {
		h.Push(denseCand{d: d, s: scores[d]})
	}
	return f.denseResults(h)
}

func (f *Frozen) denseResults(h *topk.Heap[denseCand]) []Result {
	best := h.Sorted()
	res := make([]Result, len(best))
	for i, c := range best {
		res[i] = Result{DocID: f.ids[c.d], Score: c.s}
	}
	return res
}
