// Package httpload applies a synthetic workload.Dataset to a live Hive
// server through the v1 API client SDK — the HTTP twin of
// Dataset.Load. It lives apart from package workload so the generator
// stays dependency-free (core and platform tests import it), while the
// loaders pull in the client and contract packages.
//
// Two paths exist on purpose: Batch is the production bulk-ingest path
// (chunked POST /api/v1/batch, one round trip and one snapshot
// invalidation per chunk); PerEntity is the typed one-request-per-entity
// baseline it is benchmarked against (cmd/hivebench E13).
package httpload

import (
	"context"
	"fmt"

	"hive/api"
	"hive/client"
	"hive/internal/workload"
)

// Entities flattens the dataset into batch entities in referential
// order (users before papers, conferences before sessions, ...) — the
// same order Dataset.Load applies — deduplicating connection and
// follow pairs.
func Entities(ds *workload.Dataset) ([]api.BatchEntity, error) {
	var ents []api.BatchEntity
	add := func(kind string, v any) error {
		ent, err := api.NewBatchEntity(kind, v)
		if err != nil {
			return err
		}
		ents = append(ents, ent)
		return nil
	}
	for _, u := range ds.Users {
		if err := add(api.KindUser, u); err != nil {
			return nil, err
		}
	}
	for _, c := range ds.Conferences {
		if err := add(api.KindConference, c); err != nil {
			return nil, err
		}
	}
	for _, s := range ds.Sessions {
		if err := add(api.KindSession, s); err != nil {
			return nil, err
		}
	}
	for _, p := range ds.Papers {
		if err := add(api.KindPaper, p); err != nil {
			return nil, err
		}
	}
	for _, pr := range ds.Presentations {
		if err := add(api.KindPresentation, pr); err != nil {
			return nil, err
		}
	}
	for _, c := range dedupPairs(ds.Connections, true) {
		if err := add(api.KindConnection, api.ConnectRequest{A: c[0], B: c[1]}); err != nil {
			return nil, err
		}
	}
	for _, f := range dedupPairs(ds.Follows, false) {
		if err := add(api.KindFollow, api.FollowRequest{Follower: f[0], Followee: f[1]}); err != nil {
			return nil, err
		}
	}
	for _, ci := range ds.CheckIns {
		if err := add(api.KindCheckin, api.CheckinRequest{SessionID: ci[0], UserID: ci[1]}); err != nil {
			return nil, err
		}
	}
	for _, q := range ds.Questions {
		if err := add(api.KindQuestion, q); err != nil {
			return nil, err
		}
	}
	for _, a := range ds.Answers {
		if err := add(api.KindAnswer, a); err != nil {
			return nil, err
		}
	}
	for _, c := range ds.Comments {
		if err := add(api.KindComment, c); err != nil {
			return nil, err
		}
	}
	for _, w := range ds.Workpads {
		if err := add(api.KindWorkpad, w); err != nil {
			return nil, err
		}
	}
	return ents, nil
}

// dedupPairs drops self-pairs and duplicates; undirected pairs compare
// order-insensitively (connections are mutual, follows are not).
func dedupPairs(pairs [][2]string, undirected bool) [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	for _, p := range pairs {
		key := p
		if undirected && key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if p[0] == p[1] || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}

// Batch applies the dataset over the v1 API in chunked batch-ingest
// calls (chunk entities per POST /batch; chunk <= 0 means 256). Workpad
// activation rides through the typed endpoint afterwards (it has no
// batch kind).
func Batch(ctx context.Context, c *client.Client, ds *workload.Dataset, chunk int) error {
	if chunk <= 0 {
		chunk = 256
	}
	ents, err := Entities(ds)
	if err != nil {
		return err
	}
	for start := 0; start < len(ents); start += chunk {
		end := min(start+chunk, len(ents))
		br, err := c.Batch(ctx, ents[start:end])
		if err != nil {
			return err
		}
		if br.Failed > 0 {
			return fmt.Errorf("httpload: batch chunk [%d:%d]: %d failed, first: %v",
				start, end, br.Failed, br.Errors[0].Error)
		}
	}
	return activateWorkpads(ctx, c, ds)
}

// PerEntity applies the dataset one typed request per entity: N round
// trips and N snapshot invalidations instead of N/chunk and one per
// chunk.
func PerEntity(ctx context.Context, c *client.Client, ds *workload.Dataset) error {
	for _, u := range ds.Users {
		if err := c.CreateUser(ctx, u); err != nil {
			return err
		}
	}
	for _, cf := range ds.Conferences {
		if err := c.CreateConference(ctx, cf); err != nil {
			return err
		}
	}
	for _, s := range ds.Sessions {
		if err := c.CreateSession(ctx, s); err != nil {
			return err
		}
	}
	for _, p := range ds.Papers {
		if err := c.CreatePaper(ctx, p); err != nil {
			return err
		}
	}
	for _, pr := range ds.Presentations {
		if err := c.CreatePresentation(ctx, pr); err != nil {
			return err
		}
	}
	for _, cn := range dedupPairs(ds.Connections, true) {
		if err := c.Connect(ctx, cn[0], cn[1]); err != nil {
			return err
		}
	}
	for _, f := range dedupPairs(ds.Follows, false) {
		if err := c.Follow(ctx, f[0], f[1]); err != nil {
			return err
		}
	}
	for _, ci := range ds.CheckIns {
		if err := c.CheckIn(ctx, ci[0], ci[1]); err != nil {
			return err
		}
	}
	for _, q := range ds.Questions {
		if err := c.Ask(ctx, q); err != nil {
			return err
		}
	}
	for _, a := range ds.Answers {
		if err := c.Answer(ctx, a); err != nil {
			return err
		}
	}
	for _, cm := range ds.Comments {
		if err := c.Comment(ctx, cm); err != nil {
			return err
		}
	}
	for _, w := range ds.Workpads {
		if err := c.CreateWorkpad(ctx, w); err != nil {
			return err
		}
	}
	return activateWorkpads(ctx, c, ds)
}

func activateWorkpads(ctx context.Context, c *client.Client, ds *workload.Dataset) error {
	for _, w := range ds.Workpads {
		if err := c.ActivateWorkpad(ctx, w.Owner, w.ID); err != nil {
			return err
		}
	}
	return nil
}
