// Package consumer exercises the cross-package arm: no field of a
// published snapshot type may be written outside its defining package,
// whitelist or not.
package consumer

import (
	"snaptest/internal/core"
	"snaptest/internal/textindex"
)

func Mutate(f *textindex.Frozen, e *core.Engine) {
	f.Meta["k"] = "v" // want `outside the construction whitelist`
	e.Gen = 7         // want `outside the construction whitelist`
	//lint:allow snapshotcheck pre-publication fixup in a single-owner test harness
	e.Gen = 8
	_ = f
}

// Build shares a seed name with the core builder; cross-package writes
// are still illegal.
func Build(e *core.Engine) {
	e.Gen++ // want `outside the construction whitelist`
}
