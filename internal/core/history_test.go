package core

import (
	"errors"
	"testing"

	"hive/internal/social"
	"hive/internal/workload"
)

func TestSearchHistoryLiteralAndTextMatch(t *testing.T) {
	_, eng := zachWorld(t)
	// Zach checked into s-social and asked q-zach... he asked nothing in
	// this world; he answered ans-zach. His events: checkin, answer,
	// connect (none), workpad-free. Use verb match first.
	all, err := eng.SearchHistory("zach", "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty history")
	}
	// Verb literal match.
	checkins, err := eng.SearchHistory("zach", "checkin", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkins) == 0 {
		t.Fatal("no checkin events found")
	}
	for _, h := range checkins {
		if h.Event.Verb != "checkin" && h.Event.Object != "checkin" {
			// Text matches may also surface; ensure top result is the
			// literal one.
			break
		}
	}
	if checkins[0].Event.Verb != "checkin" {
		t.Fatalf("top result = %+v", checkins[0])
	}
	// Limit honored.
	limited, _ := eng.SearchHistory("zach", "", false, 1)
	if len(limited) != 1 {
		t.Fatalf("limit ignored: %d", len(limited))
	}
	// Unknown user.
	if _, err := eng.SearchHistory("ghost", "", false, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestSearchHistoryTextualRelevance(t *testing.T) {
	_, eng := zachWorld(t)
	// "graph" should match the s-graphs session check-in of ann.
	hits, err := eng.SearchHistory("ann", "graph processing", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.Event.Object == "s-graphs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("session checkin not matched: %+v", hits)
	}
}

func TestExplainResourceAuthorship(t *testing.T) {
	_, eng := zachWorld(t)
	evs, err := eng.ExplainResource("zach", "p-zach")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EvidenceKind]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
	}
	if !kinds[EvAuthored] {
		t.Fatalf("authored evidence missing: %+v", evs)
	}
}

func TestExplainResourceCitationAndContext(t *testing.T) {
	_, eng := zachWorld(t)
	// Zach's paper cites p-ann10 directly.
	evs, err := eng.ExplainResource("zach", "p-ann10")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EvidenceKind]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
		if ev.Strength <= 0 || ev.Strength > 1 {
			t.Fatalf("strength out of range: %+v", ev)
		}
	}
	if !kinds[EvCited] {
		t.Fatalf("citation evidence missing: %+v", evs)
	}
	// p-carl is on Zach's workpad context (graph-themed): topical match.
	evs2, err := eng.ExplainResource("zach", "p-carl")
	if err != nil {
		t.Fatal(err)
	}
	foundTopical := false
	for _, ev := range evs2 {
		if ev.Kind == EvTopical {
			foundTopical = true
		}
	}
	if !foundTopical {
		t.Fatalf("topical evidence missing: %+v", evs2)
	}
	if _, err := eng.ExplainResource("ghost", "p-zach"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestExplainResourceInteractionHistory(t *testing.T) {
	st, eng := zachWorld(t)
	_, _ = st.LogEvent("zach", "browse", "p-ann10", nil)
	// Rebuild not needed: events are read live from the store.
	evs, err := eng.ExplainResource("zach", "p-ann10")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range evs {
		if ev.Kind == EvBrowsed {
			found = true
		}
	}
	if !found {
		t.Fatalf("interaction evidence missing: %+v", evs)
	}
}

func TestKnowledgePaths(t *testing.T) {
	_, eng := zachWorld(t)
	// user:zach --authored--> paper:p-zach --cites--> paper:p-ann10
	// <--authored-- user:ann should connect zach to ann in the KB.
	paths := eng.KnowledgePaths("user:zach", "user:ann", 3)
	if len(paths) == 0 {
		t.Fatal("no knowledge paths")
	}
	nodes := paths[0].Nodes()
	if nodes[0] != "user:zach" || nodes[len(nodes)-1] != "user:ann" {
		t.Fatalf("path endpoints = %v", nodes)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Score > paths[i-1].Score {
			t.Fatalf("paths not sorted: %v", paths)
		}
	}
}

func TestTrackCommunitiesStable(t *testing.T) {
	// Two engines over the same store must track ~perfectly.
	st, eng := zachWorld(t)
	eng2, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	matches := eng2.TrackCommunities(eng)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	for _, m := range matches {
		if m.NextIndex < 0 || m.Jaccard < 0.99 {
			t.Fatalf("stable community not tracked: %+v", m)
		}
	}
}

func TestTrackCommunitiesAcrossEditions(t *testing.T) {
	// Year 2: same researchers plus newcomers; communities must still
	// match their year-1 counterparts.
	st, err := social.Open("", testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ds := workload.Generate(workload.Config{Seed: 5, Users: 24})
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	year1, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	// Newcomers join and connect into topic 0.
	for i := 0; i < 4; i++ {
		id := "new" + string(rune('a'+i))
		if err := st.PutUser(social.User{ID: id, Name: id}); err != nil {
			t.Fatal(err)
		}
		if err := st.Connect(id, ds.Users[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	year2, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	matches := year2.TrackCommunities(year1)
	matched := 0
	for _, m := range matches {
		if m.NextIndex >= 0 && m.Jaccard > 0.3 {
			matched++
		}
	}
	if matched == 0 {
		t.Fatalf("no communities survived the edition change: %+v", matches)
	}
}
