package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent proves the lock-free counter loses nothing
// under contention: N writers × M increments land exactly N*M. Run
// under -race this also proves the hot path is data-race-free.
func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "concurrent counter")
	const writers, perWriter = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(writers*perWriter); got != want {
		t.Fatalf("counter lost increments under contention: got %d, want %d", got, want)
	}
}

// TestHistogramConcurrent proves observations are never lost and the
// cumulative bucket layout stays exact under contention: every count
// is conserved and the sum matches the arithmetic total.
func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("test_seconds", "concurrent histogram", []float64{0.001, 0.01, 0.1})
	const writers, perWriter = 16, 2000
	// Each writer observes a fixed cycle of values, one per bucket plus
	// one overflow, so the per-bucket totals are exactly predictable.
	vals := []float64{0.0005, 0.005, 0.05, 0.5}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(vals[i%len(vals)])
			}
		}()
	}
	wg.Wait()

	total := uint64(writers * perWriter)
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost observations: got %d, want %d", got, total)
	}
	perBucket := total / uint64(len(vals))
	for i := range vals {
		if got := h.counts[i].Load(); got != perBucket {
			t.Errorf("bucket %d: got %d, want %d", i, got, perBucket)
		}
	}
	wantSum := 0.0
	for _, v := range vals {
		wantSum += v * float64(perBucket)
	}
	if got := h.Sum(); got < wantSum*0.999999 || got > wantSum*1.000001 {
		t.Errorf("sum drifted: got %g, want %g", got, wantSum)
	}
}

// TestGaugeAddConcurrent proves the CAS-loop float add conserves every
// delta.
func TestGaugeAddConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("test_gauge", "concurrent gauge")
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				g.Add(1)
			}
			for i := 0; i < perWriter/2; i++ {
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(writers*perWriter/2); got != want {
		t.Fatalf("gauge delta lost: got %g, want %g", got, want)
	}
}

// TestRegistrationIdempotent pins the coordination-free registration
// contract: same name returns the same instrument; a conflicting
// redeclaration panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("idem_total", "first")
	b := r.Counter("idem_total", "second help is ignored")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instrument")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("instruments from idempotent registration do not share state")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("idem_total", "type clash")
}

// TestWriteTextGolden pins the exposition format byte-for-byte:
// HELP/TYPE headers, deterministic family and child ordering,
// cumulative histogram buckets with +Inf, _sum and _count.
func TestWriteTextGolden(t *testing.T) {
	r := New()
	reqs := r.CounterVec("app_requests_total", "Requests served.", "route", "class")
	reqs.With("/search", "2xx").Add(42)
	reqs.With("/feed", "5xx").Inc()
	r.Gauge("app_pending", "Pending events.").Set(7)
	h := r.Histogram("app_seconds", "Request latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_pending Pending events.
# TYPE app_pending gauge
app_pending 7
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{route="/feed",class="5xx"} 1
app_requests_total{route="/search",class="2xx"} 42
# HELP app_seconds Request latency.
# TYPE app_seconds histogram
app_seconds_bucket{le="0.01"} 2
app_seconds_bucket{le="0.1"} 3
app_seconds_bucket{le="+Inf"} 4
app_seconds_sum 3.06
app_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteTextEscaping pins label and help escaping.
func TestWriteTextEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "line1\nline2 with \\ backslash", "q").With(`say "hi"\`).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esc_total line1\nline2 with \\ backslash
# TYPE esc_total counter
esc_total{q="say \"hi\"\\"} 1
`
	if got := b.String(); got != want {
		t.Errorf("escaping mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestVecUnresolvedOmitted: a family nobody resolved a child of emits
// no headers (no sample, no noise).
func TestVecUnresolvedOmitted(t *testing.T) {
	r := New()
	r.CounterVec("unused_total", "never resolved", "route")
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("unresolved vec leaked output: %q", b.String())
	}
}

// --- Tracing ------------------------------------------------------------------

// TestTraceNilSafe: every method on a nil *Trace is a no-op, so
// untraced code paths never check.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	tr.SetShard(3)
	tr.AddStage("x", time.Millisecond)
	tr.StartStage("y")()
	if got := tr.Shard(); got != -1 {
		t.Fatalf("nil trace shard = %d, want -1", got)
	}
	if v := tr.Finish("/r", 200); v.ID != "" {
		t.Fatal("nil trace finished into a recordable view")
	}
}

// TestTraceStagesConcurrent: scatter-gather goroutines append stages in
// parallel; all must survive into the finished view.
func TestTraceStagesConcurrent(t *testing.T) {
	tr := NewTrace(NewTraceID(), "GET")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.AddStage("shard", time.Microsecond)
		}()
	}
	wg.Wait()
	v := tr.Finish("/api/v1/search", 200)
	if len(v.Stages) != n {
		t.Fatalf("lost stages: got %d, want %d", len(v.Stages), n)
	}
	if v.Shard != -1 || v.Route != "/api/v1/search" || v.Status != 200 {
		t.Fatalf("finished view wrong: %+v", v)
	}
}

// TestRecorderRingAndSlowest: the ring caps retention and Slowest
// orders by duration.
func TestRecorderRingAndSlowest(t *testing.T) {
	rec := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		rec.Record(TraceView{ID: NewTraceID(), DurationUS: float64(i)})
	}
	got := rec.Slowest(0)
	if len(got) != 4 {
		t.Fatalf("ring retained %d, want 4", len(got))
	}
	// 1 and 2 were evicted; the survivors come back slowest-first.
	want := []float64{6, 5, 4, 3}
	for i, v := range got {
		if v.DurationUS != want[i] {
			t.Fatalf("slowest order: got %v at %d, want %v", v.DurationUS, i, want[i])
		}
	}
	if n := len(rec.Slowest(2)); n != 2 {
		t.Fatalf("Slowest(2) returned %d", n)
	}
	// ID-less views (nil-trace finishes) are dropped, not recorded.
	rec.Record(TraceView{})
	if n := len(rec.Slowest(0)); n != 4 {
		t.Fatalf("empty view was recorded (%d retained)", n)
	}
}
