package analysis

import (
	"go/token"
	"strings"
)

// allowPrefix is the suppression marker: //lint:allow <analyzer> <reason>.
// The comment applies to findings of <analyzer> on its own line or the
// line immediately below it (so it can sit above a long statement).
const allowPrefix = "//lint:allow"

// An allowComment is one parsed suppression site.
type allowComment struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

// collectAllows scans every comment in the package for allow markers.
// Malformed markers keep an empty analyzer name and are reported by
// suppress regardless of which analyzer is running.
func (p *Package) collectAllows() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				pos := p.Fset.Position(c.Pos())
				ac := allowComment{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				fields := strings.Fields(rest)
				if len(fields) >= 2 && strings.HasPrefix(rest, " ") {
					ac.analyzer = fields[0]
					ac.reason = strings.Join(fields[1:], " ")
				}
				p.allows = append(p.allows, ac)
			}
		}
	}
}

// suppress drops diagnostics covered by a well-formed allow comment
// for this analyzer.
func (p *Package) suppress(diags []Diagnostic) []Diagnostic {
	if len(p.allows) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		allowed := false
		for _, ac := range p.allows {
			if ac.analyzer != d.Analyzer || ac.file != pos.Filename {
				continue
			}
			if ac.line == pos.Line || ac.line == pos.Line-1 {
				allowed = true
				break
			}
		}
		if !allowed {
			out = append(out, d)
		}
	}
	return out
}

// MalformedAllows reports every allow comment that is missing its
// analyzer name or reason, so a suppression can never silently rot
// into a typo. The driver calls this once per package, independent of
// which analyzers run.
func (p *Package) MalformedAllows() []Diagnostic {
	var out []Diagnostic
	for _, ac := range p.allows {
		if ac.analyzer == "" {
			out = append(out, Diagnostic{
				Pos:      ac.pos,
				Analyzer: "lintallow",
				Message:  "malformed suppression: want //lint:allow <analyzer> <reason> (reason is mandatory)",
			})
		}
	}
	return out
}
