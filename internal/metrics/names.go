package metrics

// The closed registry of metric names. Every registration site outside
// this package must use one of these constants — hivelint's metriccheck
// analyzer flags raw-string names, so the full metric surface is
// greppable here and documented in API.md's Observability section.
const (
	// HTTP surface (internal/server middleware).

	// HTTPRequestsTotal counts requests by route pattern, method and
	// status class ("2xx".."5xx").
	HTTPRequestsTotal = "hive_http_requests_total"
	// HTTPRequestSeconds is the per-route request latency histogram.
	HTTPRequestSeconds = "hive_http_request_seconds"

	// Delta pipeline and snapshot maintenance (hive.Platform).

	// DeltaApplySeconds times one drained delta batch folding into the
	// serving snapshot.
	DeltaApplySeconds = "hive_delta_apply_seconds"
	// CompactionSeconds times one full snapshot rebuild (compaction).
	CompactionSeconds = "hive_compaction_seconds"
	// DeltasAppliedTotal counts delta batches folded since start.
	DeltasAppliedTotal = "hive_deltas_applied_total"
	// CompactionsTotal counts snapshot compactions since start.
	CompactionsTotal = "hive_compactions_total"
	// SearchSeconds times platform-level search calls (the frozen read
	// path; BenchmarkInstrumentedSearch guards its overhead).
	SearchSeconds = "hive_search_seconds"

	// Durability and replication.

	// JournalAppendSeconds times one journal record append (encode +
	// buffered write + flush, under the journal lock).
	JournalAppendSeconds = "hive_journal_append_seconds"
	// ReplicationPollSeconds times one follower long-poll round trip
	// against the leader's events feed.
	ReplicationPollSeconds = "hive_replication_poll_seconds"
	// QuorumAckWaitSeconds times how long a quorum-acknowledged write
	// waited for its k-th follower ack (quorum mode only).
	QuorumAckWaitSeconds = "hive_quorum_ack_wait_seconds"

	// Elections (hive.Platform + internal/election).

	// ElectionPromotionsTotal counts follower->leader transitions.
	ElectionPromotionsTotal = "hive_election_promotions_total"
	// ElectionDemotionsTotal counts leader->follower transitions.
	ElectionDemotionsTotal = "hive_election_demotions_total"
	// ElectionDeferralsTotal counts caught-up-gate promotion deferrals
	// (an election winner yielding to a peer with more history).
	ElectionDeferralsTotal = "hive_election_deferrals_total"
	// LeaseAcquisitionsTotal counts file-lease claims that survived the
	// settle window (new leadership terms minted by this node).
	LeaseAcquisitionsTotal = "hive_election_lease_acquisitions_total"
	// LeaseRenewalsTotal counts lease renewals while leading.
	LeaseRenewalsTotal = "hive_election_lease_renewals_total"

	// Sharded scatter-gather read path.

	// ScatterFanoutSeconds times one whole scatter-gather fan-out,
	// labeled by op ("search", "feed").
	ScatterFanoutSeconds = "hive_scatter_fanout_seconds"

	// Scrape-time state gauges (collected from platform accessors by
	// the /metrics handler; per-shard where labeled).

	// PendingEvents is the per-shard count of change events not yet
	// folded into the serving snapshot.
	PendingEvents = "hive_pending_events"
	// OverlayDocs is the per-shard delta-overlay document count
	// (compaction pressure).
	OverlayDocs = "hive_overlay_docs"
	// ShardDocs is the per-shard frozen-corpus document count.
	ShardDocs = "hive_shard_docs"
	// CommitIndex is the per-shard quorum-durable commit watermark.
	CommitIndex = "hive_commit_index"
	// ReplicationLagEvents is a follower's journal distance behind its
	// leader (0 on leaders).
	ReplicationLagEvents = "hive_replication_lag_events"
)
