// Package epochcheck enforces the replication epoch-fencing invariant
// from PR 6: every path that applies the *contents* of a
// ReplicationBatch (its Events, Puts or Dels) must also look at the
// batch Epoch — otherwise a deposed leader's writes survive a
// failover — and the errors carrying the fencing verdict
// (ErrStaleEpoch/ErrEpochAhead out of ApplyReplica and friends) must
// never be discarded.
package epochcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"hive/internal/analysis"
)

// batchType is the fenced record type. Both social.ReplicationBatch
// and its api wire mirror carry the invariant, so the match is by type
// name alone.
const batchType = "ReplicationBatch"

// applyFields are the batch fields whose use means "this function is
// applying the batch". First/Last are cursor bookkeeping and exempt.
var applyFields = map[string]bool{"Events": true, "Puts": true, "Dels": true}

// fencedCalls are the social.Store methods whose error result carries
// the fencing verdict.
var fencedCalls = map[string]bool{"ApplyReplica": true, "ImportReplicaSnapshot": true, "SetEpoch": true}

var Analyzer = &analysis.Analyzer{
	Name: "epochcheck",
	Doc: "flag ReplicationBatch apply paths that never compare the batch Epoch, " +
		"and call sites discarding errors from ApplyReplica/fencing paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkApplyWithoutEpoch(pass, fd)
		}
		checkDiscardedErrors(pass, file)
	}
	return nil
}

// checkApplyWithoutEpoch reports a function that touches a batch's
// apply fields without ever referencing a batch Epoch (as a field read
// or a composite-literal key — stamping the epoch at construction
// counts as handling it).
func checkApplyWithoutEpoch(pass *analysis.Pass, fd *ast.FuncDecl) {
	var firstApply token.Pos
	var firstField string
	seesEpoch := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if !isBatch(pass.TypesInfo, e.X) {
				return true
			}
			switch {
			case applyFields[e.Sel.Name]:
				if !firstApply.IsValid() {
					firstApply = e.Pos()
					firstField = e.Sel.Name
				}
			case e.Sel.Name == "Epoch":
				seesEpoch = true
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || !analysis.IsNamed(tv.Type, "", batchType) {
				return true
			}
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
						seesEpoch = true
					}
				}
			}
		}
		return true
	})
	if firstApply.IsValid() && !seesEpoch {
		pass.Reportf(firstApply,
			"%s applies ReplicationBatch.%s without comparing the batch Epoch (epoch fencing)",
			fd.Name.Name, firstField)
	}
}

// isBatch reports whether expr has (a pointer to) the ReplicationBatch
// type.
func isBatch(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && analysis.IsNamed(tv.Type, "", batchType)
}

// checkDiscardedErrors reports fenced-method calls whose error result
// is dropped: bare statement calls, go/defer calls, and assignments to
// the blank identifier.
func checkDiscardedErrors(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				reportIfFenced(pass, call)
			}
		case *ast.GoStmt:
			reportIfFenced(pass, st.Call)
		case *ast.DeferStmt:
			reportIfFenced(pass, st.Call)
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !allBlank(st.Lhs) {
				return true
			}
			reportIfFenced(pass, call)
		}
		return true
	})
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// reportIfFenced flags call if it is a fenced social.Store method
// returning an error whose result the caller is discarding.
func reportIfFenced(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !fencedCalls[sel.Sel.Name] {
		return
	}
	if !analysis.IsNamed(typeOf(pass, sel.X), "internal/social", "Store") {
		return
	}
	sig, ok := typeOf(pass, call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s is discarded: it may carry ErrStaleEpoch/ErrEpochAhead (epoch fencing)",
		sel.Sel.Name)
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := types.Unalias(res.At(i).Type()).(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
