// Package core implements the MiNC engine (paper §2, ref [8]): the
// middleware for network- and context-aware recommendations that powers
// every knowledge service of Hive. It derives the multi-layer context
// network of Figure 3 from the social store, aligns and integrates the
// layers, and provides evidence-based relationship discovery and
// explanation (Figure 2), context-aware search and ranking driven by the
// active workpad (Figure 4), peer and resource recommendation,
// collaborative filtering, community discovery, update digests, and
// activity change monitoring.
package core

import (
	"errors"
	"fmt"
	"strings"

	"hive/internal/align"
	"hive/internal/biblio"
	"hive/internal/community"
	"hive/internal/conceptmap"
	"hive/internal/graph"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/textindex"
)

// ErrUnknownUser is returned when a service references a missing user.
var ErrUnknownUser = errors.New("core: unknown user")

// Document ID prefixes in the text index.
const (
	DocPaper        = "paper/"
	DocPresentation = "pres/"
	DocQuestion     = "question/"
)

// Layer names of the integrated context network.
const (
	LayerConnections = "connections"
	LayerCoauthor    = "coauthor"
	LayerAttendance  = "attendance"
	LayerQA          = "qa"
)

// Engine is the assembled knowledge middleware. Build it once from a
// social store; rebuild after bulk data changes (the paper's deployment
// refreshed knowledge structures periodically).
type Engine struct {
	store *social.Store

	index    *textindex.Index
	concepts *conceptmap.Map

	papers      []social.Paper
	coauthorNet *graph.Graph
	citationNet *graph.Graph
	litNet      *graph.Graph // bipartite author/paper graph

	layers     []*align.Layer
	integrated *align.Integrated
	peerGraph  *graph.Graph // alias of integrated.G

	kb *rdf.Store // weighted RDF export of all layers (R2DB)

	communities []community.Community
}

// Build assembles the engine from a social store.
func Build(st *social.Store) (*Engine, error) {
	e := &Engine{store: st, index: textindex.NewIndex(), kb: rdf.NewStore()}

	// Gather papers once; several layers derive from them.
	for _, id := range st.Papers() {
		p, err := st.Paper(id)
		if err != nil {
			return nil, err
		}
		e.papers = append(e.papers, p)
	}

	if err := e.buildTextIndex(); err != nil {
		return nil, err
	}
	e.buildConceptMap()
	e.buildBibliographicLayers()
	if err := e.buildIntegratedNetwork(); err != nil {
		return nil, err
	}
	e.exportKnowledgeBase()
	e.communities = community.Detect(e.peerGraph, 1)
	return e, nil
}

// Store exposes the underlying social store.
func (e *Engine) Store() *social.Store { return e.store }

// Index exposes the text index (search services build on it).
func (e *Engine) Index() *textindex.Index { return e.index }

// ConceptMap exposes the bootstrapped concept map.
func (e *Engine) ConceptMap() *conceptmap.Map { return e.concepts }

// KnowledgeBase exposes the weighted RDF export (R2DB layer).
func (e *Engine) KnowledgeBase() *rdf.Store { return e.kb }

// PeerGraph exposes the integrated peer network.
func (e *Engine) PeerGraph() *graph.Graph { return e.peerGraph }

func (e *Engine) buildTextIndex() error {
	for _, p := range e.papers {
		e.index.Add(DocPaper+p.ID, p.Title+". "+p.Abstract)
	}
	for _, u := range e.store.Users() {
		for _, prID := range e.store.PresentationsOfUser(u) {
			pr, err := e.store.Presentation(prID)
			if err != nil {
				return err
			}
			e.index.Add(DocPresentation+pr.ID, pr.Title+". "+pr.Text)
		}
		for _, qID := range e.store.QuestionsBy(u) {
			q, err := e.store.Question(qID)
			if err != nil {
				return err
			}
			e.index.Add(DocQuestion+q.ID, q.Text)
		}
	}
	return nil
}

func (e *Engine) buildConceptMap() {
	var docs []string
	for _, p := range e.papers {
		docs = append(docs, p.Title+". "+p.Abstract)
	}
	m, err := conceptmap.Bootstrap(docs, conceptmap.BootstrapOptions{MaxConcepts: 80})
	if err != nil {
		m = conceptmap.New() // empty corpus -> empty map, services degrade gracefully
	}
	e.concepts = m
}

func (e *Engine) buildBibliographicLayers() {
	e.coauthorNet = biblio.CoauthorNetwork(e.papers)
	e.citationNet = biblio.CitationGraph(e.papers)
	e.litNet = biblio.AuthorPaperGraph(e.papers)
}

// buildIntegratedNetwork constructs the user-level evidence layers and
// integrates them (paper §2.2). All layers share user IDs as node keys,
// so alignment resolves them exactly; the machinery still scores and
// merges them as in the general imprecise case.
func (e *Engine) buildIntegratedNetwork() error {
	users := e.store.Users()

	conn := graph.New()
	for _, u := range users {
		conn.EnsureNode(u, "user")
	}
	for _, u := range users {
		for _, o := range e.store.ConnectionsOf(u) {
			_ = conn.AddEdge(conn.Lookup(u), conn.EnsureNode(o, "user"), "connected", 1)
		}
		for _, o := range e.store.Following(u) {
			_ = conn.AddEdge(conn.Lookup(u), conn.EnsureNode(o, "user"), "follows", 0.5)
		}
	}

	coauth := graph.New()
	for _, u := range users {
		coauth.EnsureNode(u, "user")
	}
	e.coauthorNet.Nodes(func(n graph.Node) bool {
		from := coauth.EnsureNode(n.Key, "user")
		for _, ed := range e.coauthorNet.Out(n.ID) {
			toNode, err := e.coauthorNet.Node(ed.To)
			if err != nil {
				continue
			}
			_ = coauth.AddEdge(from, coauth.EnsureNode(toNode.Key, "user"), biblio.EdgeCoauthor, ed.Weight)
		}
		return true
	})

	attend := graph.New()
	for _, u := range users {
		attend.EnsureNode(u, "user")
	}
	for _, conf := range e.store.Conferences() {
		for _, sess := range e.store.SessionsOf(conf) {
			att := e.store.Attendees(sess)
			for i := 0; i < len(att); i++ {
				for j := i + 1; j < len(att); j++ {
					a := attend.EnsureNode(att[i], "user")
					b := attend.EnsureNode(att[j], "user")
					_ = attend.AddUndirected(a, b, "co-attends", 1)
				}
			}
		}
	}

	qa := graph.New()
	for _, u := range users {
		qa.EnsureNode(u, "user")
	}
	for _, u := range users {
		for _, qID := range e.store.QuestionsBy(u) {
			q, err := e.store.Question(qID)
			if err != nil {
				continue
			}
			// Question author relates to the target's owners/authors.
			for _, owner := range e.ownersOf(q.Target) {
				if owner == u {
					continue
				}
				_ = qa.AddUndirected(qa.Lookup(u), qa.EnsureNode(owner, "user"), "qa", 1)
			}
			// Answer authors relate back to the asker.
			for _, aID := range e.store.AnswersTo(qID) {
				a, err := e.store.Answer(aID)
				if err != nil || a.Author == u {
					continue
				}
				_ = qa.AddUndirected(qa.Lookup(u), qa.EnsureNode(a.Author, "user"), "qa", 1)
			}
		}
	}

	e.layers = []*align.Layer{
		{Name: LayerConnections, Trust: 1.0, G: conn},
		{Name: LayerCoauthor, Trust: 0.9, G: coauth},
		{Name: LayerAttendance, Trust: 0.6, G: attend},
		{Name: LayerQA, Trust: 0.7, G: qa},
	}
	in, err := align.Integrate(e.layers, align.Options{})
	if err != nil {
		return err
	}
	e.integrated = in
	e.peerGraph = in.G
	return nil
}

// Layers exposes the evidence layers (for alignment experiments).
func (e *Engine) Layers() []*align.Layer { return e.layers }

// Integrated exposes the integrated context network.
func (e *Engine) Integrated() *align.Integrated { return e.integrated }

// ownersOf resolves the users responsible for an entity: paper authors,
// presentation owner, session chair, question author.
func (e *Engine) ownersOf(entity string) []string {
	if p, err := e.store.Paper(entity); err == nil {
		return p.Authors
	}
	if pr, err := e.store.Presentation(entity); err == nil {
		return []string{pr.Owner}
	}
	if s, err := e.store.Session(entity); err == nil && s.Chair != "" {
		return []string{s.Chair}
	}
	if q, err := e.store.Question(entity); err == nil {
		return []string{q.Author}
	}
	return nil
}

// exportKnowledgeBase mirrors the layers into the weighted RDF store so
// R2DB-style ranked path queries can explain any relationship.
func (e *Engine) exportKnowledgeBase() {
	for _, p := range e.papers {
		for _, a := range p.Authors {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + a, Predicate: "authored", Object: "paper:" + p.ID, Weight: 1})
		}
		for _, c := range p.Citations {
			_ = e.kb.Add(rdf.Triple{Subject: "paper:" + p.ID, Predicate: "cites", Object: "paper:" + c, Weight: 0.9})
		}
		if p.SessionID != "" {
			_ = e.kb.Add(rdf.Triple{Subject: "paper:" + p.ID, Predicate: "presentedIn", Object: "session:" + p.SessionID, Weight: 1})
		}
	}
	for _, u := range e.store.Users() {
		for _, o := range e.store.ConnectionsOf(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "connected", Object: "user:" + o, Weight: 1})
		}
		for _, o := range e.store.Following(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "follows", Object: "user:" + o, Weight: 0.7})
		}
		for _, s := range e.store.SessionsAttendedBy(u) {
			_ = e.kb.Add(rdf.Triple{Subject: "user:" + u, Predicate: "attends", Object: "session:" + s, Weight: 0.8})
		}
	}
}

// Communities returns the discovered peer communities as lists of user
// IDs, largest first (Table 1: "community discovery and tracking").
func (e *Engine) Communities() [][]string {
	var out [][]string
	for _, c := range e.communities {
		var users []string
		for _, id := range c {
			n, err := e.peerGraph.Node(id)
			if err == nil {
				users = append(users, n.Key)
			}
		}
		out = append(out, users)
	}
	return out
}

// CommunityOf returns the community containing the user (nil when the
// user is unknown).
func (e *Engine) CommunityOf(userID string) []string {
	for _, c := range e.Communities() {
		for _, u := range c {
			if u == userID {
				return c
			}
		}
	}
	return nil
}

// entityText renders any entity into text for context building.
func (e *Engine) entityText(kind social.ItemKind, ref string) string {
	switch kind {
	case social.ItemPaper:
		if p, err := e.store.Paper(ref); err == nil {
			return p.Title + ". " + p.Abstract
		}
	case social.ItemPresentation:
		if pr, err := e.store.Presentation(ref); err == nil {
			return pr.Title + ". " + pr.Text
		}
	case social.ItemSession:
		if s, err := e.store.Session(ref); err == nil {
			parts := []string{s.Title, s.Track}
			for _, pid := range e.store.PapersOfSession(ref) {
				if p, err := e.store.Paper(pid); err == nil {
					parts = append(parts, p.Title)
				}
			}
			return strings.Join(parts, ". ")
		}
	case social.ItemUser:
		if u, err := e.store.User(ref); err == nil {
			return u.Name + ". " + strings.Join(u.Interests, ". ") + ". " + u.Bio
		}
	case social.ItemQuestion:
		if q, err := e.store.Question(ref); err == nil {
			return q.Text
		}
	case social.ItemCollection:
		if c, err := e.store.Collection(ref); err == nil {
			var parts []string
			for _, it := range c.Items {
				parts = append(parts, e.entityText(it.Kind, it.Ref))
			}
			return strings.Join(parts, ". ")
		}
	}
	return ""
}

// String summarizes the engine for logs.
func (e *Engine) String() string {
	return fmt.Sprintf("mincengine(users=%d papers=%d peers=%d/%d concepts=%d kb=%d)",
		len(e.store.Users()), len(e.papers),
		e.peerGraph.NumNodes(), e.peerGraph.NumEdges(),
		e.concepts.Len(), e.kb.Len())
}
