package social

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/journal"
	"hive/internal/kvstore"
)

// Sentinel errors.
var (
	// ErrNotFound is returned when a referenced entity does not exist.
	ErrNotFound = errors.New("social: not found")
	// ErrInvalid is returned for malformed entities (empty IDs, dangling
	// references).
	ErrInvalid = errors.New("social: invalid entity")
)

// Key prefixes. Secondary-index keys hold empty values; the primary key
// holds the JSON entity.
const (
	pUser       = "user/"
	pConf       = "conf/"
	pSession    = "session/"
	pSessConf   = "sessconf/" // conference -> session
	pPaper      = "paper/"
	pPaperConf  = "paperconf/" // conference -> paper
	pPaperSess  = "papersess/" // session -> paper
	pPaperAuth  = "paperauth/" // author -> paper
	pPres       = "pres/"
	pPresPaper  = "prespaper/" // paper -> presentation
	pPresOwner  = "presowner/" // owner -> presentation
	pConn       = "conn/"      // sorted pair
	pConnIdx    = "connidx/"   // user -> other
	pFollow     = "follow/"    // follower -> followee
	pFollower   = "followr/"   // followee -> follower
	pCheckin    = "checkin/"   // session -> user
	pCheckinU   = "checkinu/"  // user -> session
	pQuestion   = "question/"
	pQTarget    = "qtarget/" // target -> question
	pQAuthor    = "qauthor/" // author -> question
	pAnswer     = "answer/"
	pAQuestion  = "aq/" // question -> answer
	pComment    = "comment/"
	pCTarget    = "ctarget/" // target -> comment
	pWorkpad    = "workpad/"
	pWPOwner    = "wpowner/"  // owner -> workpad
	pWPActive   = "wpactive/" // owner -> active workpad id
	pCollection = "collection/"
	pEvent      = "event/"
	pEvActor    = "evactor/"
	pEvTag      = "evtag/"
	kSeq        = "meta/seq"
)

// Store is the persistent social graph and content store. All methods are
// safe for concurrent use.
type Store struct {
	kv    *kvstore.Store
	clock Clock

	mu  sync.Mutex // guards seq allocation
	seq uint64

	hookMu sync.RWMutex // guards subs
	subs   []func([]ChangeEvent)

	// evMu guards the change-event sequence counter, the per-batch
	// event buffer, the kv write-capture buffers and journal appends
	// (appending under evMu keeps journal order identical to sequence
	// order).
	evMu      sync.Mutex
	changeSeq uint64
	evBuf     []ChangeEvent
	// epoch is the leadership term stamped into every journaled batch —
	// the election layer's fencing token. It only ever rises (SetEpoch)
	// and is recovered from the last journal record on reopen. Zero
	// means unmanaged (no election): batches carry no epoch and fencing
	// is off, which is exactly the pre-election behavior.
	epoch uint64

	// jn, when non-nil, durably journals every delivered change batch
	// together with the raw kv writes that produced it — the
	// replication feed. capPuts/capDels accumulate the kv image of the
	// in-flight batch (filled by the kvstore write hook).
	jn      *journal.Journal
	capPuts map[string][]byte
	capDels map[string]bool
	jnErr   error // last journal-append failure (nil when healthy)

	// batching defers event delivery inside Batched (and inside each
	// multi-step mutator): the coalesced batch is delivered once when
	// the outermost scope finishes.
	batching atomic.Int32
}

// OnChange subscribes to the store's typed change log. After every
// successful mutation — including writes that bypass the Platform
// wrappers and hit the store directly — the subscriber receives the
// batch of ChangeEvents the mutation emitted; a Batched pass delivers
// exactly one coalesced batch for all its writes. Subscribers must be
// fast and must not mutate the store (reads are fine: the events carry
// IDs, not entity bodies, so consumers refetch what they need).
func (s *Store) OnChange(fn func([]ChangeEvent)) {
	s.hookMu.Lock()
	s.subs = append(s.subs, fn)
	s.hookMu.Unlock()
}

// ChangeSeq returns the latest change-event sequence number assigned so
// far (0 before the first mutation on a fresh store; on durable stores
// it resumes from the journal after a reopen). Consumers use it as a
// watermark: a full rebuild started after observing ChangeSeq() covers
// every event with Seq at or below it.
func (s *Store) ChangeSeq() uint64 {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return s.changeSeq
}

// Epoch returns the leadership term the store currently stamps into
// journaled batches (0 = unmanaged, no fencing).
func (s *Store) Epoch() uint64 {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return s.epoch
}

// SetEpoch raises the store's epoch to e; lower values are ignored —
// epochs are monotonic, a regression would let a deposed leader's
// batches back past the fence. Called by the platform when an election
// outcome (promotion, or following a newer leader) is adopted.
func (s *Store) SetEpoch(e uint64) {
	s.evMu.Lock()
	if e > s.epoch {
		s.epoch = e
	}
	s.evMu.Unlock()
}

// emit appends typed change events to the log. Inside a batch (or a
// multi-step mutator scope) delivery is deferred and coalesced;
// otherwise subscribers receive the events immediately as one batch.
// Events are emitted even when a later step of the mutator failed:
// earlier writes may have persisted, and a spurious event only costs a
// small redundant delta repair, whereas a missed one hides persisted
// data from the knowledge services until the next compaction.
func (s *Store) emit(kind ChangeKind, entity EntityType, id string, refs ...string) {
	s.evMu.Lock()
	s.changeSeq++
	ev := ChangeEvent{Seq: s.changeSeq, Kind: kind, EntityType: entity, ID: id, Refs: refs}
	if s.batching.Load() > 0 {
		s.evBuf = append(s.evBuf, ev)
		s.evMu.Unlock()
		return
	}
	evs := []ChangeEvent{ev}
	s.journalLocked(evs)
	s.evMu.Unlock()
	s.deliver(evs)
}

// flushEvents delivers the buffered batch, if any.
func (s *Store) flushEvents() {
	s.evMu.Lock()
	buf := s.evBuf
	s.evBuf = nil
	s.journalLocked(buf)
	s.evMu.Unlock()
	if len(buf) > 0 {
		s.deliver(buf)
	}
}

// journalLocked durably appends the batch about to be delivered — its
// typed events plus the captured kv write image — to the change
// journal. Called under evMu so journal records are strictly ordered by
// sequence. A journal failure must not fail the write (the data itself
// is already committed to the kv WAL): it is recorded for healthz and
// the journal resumes at the next batch.
func (s *Store) journalLocked(evs []ChangeEvent) {
	if s.jn == nil {
		return
	}
	if len(evs) == 0 {
		// kv writes without change events (counter bumps riding a later
		// batch) stay buffered until an event batch carries them.
		return
	}
	puts, dels := s.capPuts, s.capDels
	s.capPuts, s.capDels = nil, nil
	rb := ReplicationBatch{
		First:  evs[0].Seq,
		Last:   evs[len(evs)-1].Seq,
		Epoch:  s.epoch,
		Events: evs,
		Puts:   puts,
	}
	for k := range dels {
		rb.Dels = append(rb.Dels, k)
	}
	sort.Strings(rb.Dels)
	data, err := json.Marshal(rb)
	if err != nil {
		s.jnErr = fmt.Errorf("social: encode journal batch: %w", err)
		return
	}
	if err := s.jn.Append(journal.Record{First: rb.First, Last: rb.Last, Data: data}); err != nil {
		s.jnErr = fmt.Errorf("social: journal append: %w", err)
		return
	}
	s.jnErr = nil
}

func (s *Store) deliver(evs []ChangeEvent) {
	s.hookMu.RLock()
	subs := s.subs
	s.hookMu.RUnlock()
	for _, fn := range subs {
		fn(evs)
	}
}

// scoped runs fn with event delivery deferred and delivers the
// coalesced batch once when the outermost scope finishes. Every
// multi-step mutator wraps itself in a scope so it emits exactly one
// batch; Batched exposes the same mechanism publicly.
func (s *Store) scoped(fn func() error) error {
	s.batching.Add(1)
	defer func() {
		if s.batching.Add(-1) == 0 {
			s.flushEvents()
		}
	}()
	return fn()
}

// Batched runs fn with change-event delivery deferred and delivers one
// coalesced batch when fn returns — the bulk-ingest path: loading N
// entities costs a single event delivery (one incremental engine
// repair) instead of N. The batch is delivered even when fn errors:
// earlier writes in the batch may have persisted. Nested Batched calls
// coalesce into the outermost one. Concurrent non-batched writers may
// also have their events folded into the batch's final delivery, which
// is harmless: events describe persisted state and consumers refetch
// it. Subscribers never observe a partial batch — delivery happens only
// after the outermost fn returned, so all of the batch's writes are
// visible in the store by then.
func (s *Store) Batched(fn func() error) error {
	return s.scoped(fn)
}

// NewStore wraps a kvstore. A nil clock uses the system clock.
func NewStore(kv *kvstore.Store, clock Clock) *Store {
	if clock == nil {
		clock = SystemClock
	}
	s := &Store{kv: kv, clock: clock}
	// Recover the sequence counter from storage.
	if raw, err := kv.Get(kSeq); err == nil {
		var seq uint64
		if json.Unmarshal(raw, &seq) == nil {
			s.seq = seq
		}
	}
	return s
}

// Open opens a social store at dir ("" = in-memory). Durable stores get
// a change journal with default retention; use OpenJournaled to tune it.
func Open(dir string, clock Clock) (*Store, error) {
	return OpenJournaled(dir, clock, journal.Options{})
}

// OpenJournaled opens a social store at dir with explicit journal
// retention options. On durable stores every delivered change batch is
// appended — events plus the raw kv writes that produced them — to the
// journal at dir/journal, the change-event sequence resumes from the
// journal tail (so delta watermarks and journal offsets agree across
// restarts), and the journal is the feed replication followers tail.
// In-memory stores (dir == "") have no journal.
func OpenJournaled(dir string, clock Clock, jopts journal.Options) (*Store, error) {
	kv, err := kvstore.Open(dir)
	if err != nil {
		return nil, err
	}
	s := NewStore(kv, clock)
	if dir == "" {
		return s, nil
	}
	jn, err := journal.Open(filepath.Join(dir, "journal"), jopts)
	if err != nil {
		kv.Close()
		return nil, err
	}
	s.jn = jn
	// Resume the change sequence where the journal left off: events
	// emitted after a restart must not collide with persisted offsets
	// (a fresh-started counter would make journal offsets and delta
	// watermarks disagree).
	s.changeSeq = jn.Tail()
	// Recover the epoch from the last journal record: after a restart
	// the store must not journal (or accept) batches below the term it
	// last wrote under, or a resurrected deposed leader would slip past
	// the fence. The record whose Last equals the tail is always
	// addressable (retention never drops the active segment).
	if tail := jn.Tail(); tail > 0 {
		if recs, err := jn.ReadFrom(tail-1, 1); err == nil && len(recs) > 0 {
			var rb ReplicationBatch
			if json.Unmarshal(recs[len(recs)-1].Data, &rb) == nil {
				s.epoch = rb.Epoch
			}
		}
	}
	// Capture every committed kv write into the in-flight batch buffer;
	// journalLocked drains it when the batch's events are delivered.
	kv.SetWriteHook(func(key string, val []byte, del bool) {
		s.evMu.Lock()
		if del {
			if s.capDels == nil {
				s.capDels = map[string]bool{}
			}
			s.capDels[key] = true
			delete(s.capPuts, key)
		} else {
			if s.capPuts == nil {
				s.capPuts = map[string][]byte{}
			}
			s.capPuts[key] = append([]byte(nil), val...)
			delete(s.capDels, key)
		}
		s.evMu.Unlock()
	})
	return s, nil
}

// Close releases the underlying storage and the change journal.
func (s *Store) Close() error {
	err := s.kv.Close()
	if s.jn != nil {
		if jerr := s.jn.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

func (s *Store) now() time.Time { return s.clock() }

func (s *Store) putJSON(key string, v interface{}) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("social: marshal %s: %w", key, err)
	}
	return s.kv.Put(key, raw)
}

func (s *Store) getJSON(key string, v interface{}) error {
	raw, err := s.kv.Get(key)
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("social: unmarshal %s: %w", key, err)
	}
	return nil
}

// nextSeq allocates a monotone sequence number and persists the counter.
func (s *Store) nextSeq() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	raw, _ := json.Marshal(s.seq)
	if err := s.kv.Put(kSeq, raw); err != nil {
		return 0, err
	}
	return s.seq, nil
}

func seqKey(seq uint64) string { return fmt.Sprintf("%016x", seq) }

// --- Users -----------------------------------------------------------------

// PutUser creates or updates a user profile.
func (s *Store) PutUser(u User) error {
	if u.ID == "" {
		return fmt.Errorf("%w: user ID empty", ErrInvalid)
	}
	defer s.emit(ChangePut, EntityUser, u.ID)
	return s.putJSON(pUser+u.ID, u)
}

// User fetches a user by ID.
func (s *Store) User(id string) (User, error) {
	var u User
	err := s.getJSON(pUser+id, &u)
	return u, err
}

// HasUser reports whether the user exists.
func (s *Store) HasUser(id string) bool { return s.kv.Has(pUser + id) }

// Users returns all user IDs in sorted order.
func (s *Store) Users() []string { return s.stripPrefix(pUser) }

// UsersN returns up to n user IDs in sorted order (n <= 0 means all) —
// the paginated read path, which stops scanning at the page bound
// instead of materializing the whole table.
func (s *Store) UsersN(n int) []string { return s.stripPrefixN(pUser, n) }

// --- Conferences & sessions --------------------------------------------------

// PutConference creates or updates a conference.
func (s *Store) PutConference(c Conference) error {
	if c.ID == "" {
		return fmt.Errorf("%w: conference ID empty", ErrInvalid)
	}
	defer s.emit(ChangePut, EntityConference, c.ID)
	return s.putJSON(pConf+c.ID, c)
}

// Conference fetches a conference by ID.
func (s *Store) Conference(id string) (Conference, error) {
	var c Conference
	err := s.getJSON(pConf+id, &c)
	return c, err
}

// Conferences returns all conference IDs.
func (s *Store) Conferences() []string { return s.stripPrefix(pConf) }

// PutSession creates or updates a session. Its conference must exist.
func (s *Store) PutSession(sess Session) error {
	if sess.ID == "" {
		return fmt.Errorf("%w: session ID empty", ErrInvalid)
	}
	if !s.kv.Has(pConf + sess.ConferenceID) {
		return fmt.Errorf("%w: conference %q", ErrNotFound, sess.ConferenceID)
	}
	defer s.emit(ChangePut, EntitySession, sess.ID, sess.ConferenceID)
	if err := s.putJSON(pSession+sess.ID, sess); err != nil {
		return err
	}
	return s.kv.Put(pSessConf+sess.ConferenceID+"/"+sess.ID, nil)
}

// Session fetches a session by ID.
func (s *Store) Session(id string) (Session, error) {
	var sess Session
	err := s.getJSON(pSession+id, &sess)
	return sess, err
}

// SessionsOf returns the session IDs of a conference.
func (s *Store) SessionsOf(confID string) []string {
	return s.stripPrefix(pSessConf + confID + "/")
}

// --- Papers & presentations --------------------------------------------------

// PutPaper creates or updates a paper. Authors must exist as users.
func (s *Store) PutPaper(p Paper) error {
	if p.ID == "" {
		return fmt.Errorf("%w: paper ID empty", ErrInvalid)
	}
	if len(p.Authors) == 0 {
		return fmt.Errorf("%w: paper %q has no authors", ErrInvalid, p.ID)
	}
	for _, a := range p.Authors {
		if !s.kv.Has(pUser + a) {
			return fmt.Errorf("%w: author %q", ErrNotFound, a)
		}
	}
	defer s.emit(ChangePut, EntityPaper, p.ID, p.Authors...)
	if err := s.putJSON(pPaper+p.ID, p); err != nil {
		return err
	}
	b := kvstore.NewBatch()
	if p.ConferenceID != "" {
		b.Put(pPaperConf+p.ConferenceID+"/"+p.ID, nil)
	}
	if p.SessionID != "" {
		b.Put(pPaperSess+p.SessionID+"/"+p.ID, nil)
	}
	for _, a := range p.Authors {
		b.Put(pPaperAuth+a+"/"+p.ID, nil)
	}
	return s.kv.Apply(b)
}

// Paper fetches a paper by ID.
func (s *Store) Paper(id string) (Paper, error) {
	var p Paper
	err := s.getJSON(pPaper+id, &p)
	return p, err
}

// Papers returns all paper IDs.
func (s *Store) Papers() []string { return s.stripPrefix(pPaper) }

// PapersOfConference returns the paper IDs published at a conference.
func (s *Store) PapersOfConference(confID string) []string {
	return s.stripPrefix(pPaperConf + confID + "/")
}

// PapersOfSession returns the paper IDs presented in a session.
func (s *Store) PapersOfSession(sessID string) []string {
	return s.stripPrefix(pPaperSess + sessID + "/")
}

// PapersOfAuthor returns the paper IDs authored by a user.
func (s *Store) PapersOfAuthor(userID string) []string {
	return s.stripPrefix(pPaperAuth + userID + "/")
}

// PutPresentation uploads or updates presentation content. Its paper and
// owner must exist.
func (s *Store) PutPresentation(pr Presentation) error {
	if pr.ID == "" {
		return fmt.Errorf("%w: presentation ID empty", ErrInvalid)
	}
	if !s.kv.Has(pPaper + pr.PaperID) {
		return fmt.Errorf("%w: paper %q", ErrNotFound, pr.PaperID)
	}
	if !s.kv.Has(pUser + pr.Owner) {
		return fmt.Errorf("%w: user %q", ErrNotFound, pr.Owner)
	}
	if pr.Updated == 0 {
		pr.Updated = s.now().Unix()
	}
	defer s.emit(ChangePut, EntityPresentation, pr.ID, pr.Owner, pr.PaperID)
	if err := s.putJSON(pPres+pr.ID, pr); err != nil {
		return err
	}
	b := kvstore.NewBatch().
		Put(pPresPaper+pr.PaperID+"/"+pr.ID, nil).
		Put(pPresOwner+pr.Owner+"/"+pr.ID, nil)
	return s.kv.Apply(b)
}

// Presentation fetches presentation content by ID.
func (s *Store) Presentation(id string) (Presentation, error) {
	var pr Presentation
	err := s.getJSON(pPres+id, &pr)
	return pr, err
}

// PresentationsOfPaper returns presentation IDs attached to a paper.
func (s *Store) PresentationsOfPaper(paperID string) []string {
	return s.stripPrefix(pPresPaper + paperID + "/")
}

// PresentationsOfUser returns presentation IDs uploaded by a user.
func (s *Store) PresentationsOfUser(userID string) []string {
	return s.stripPrefix(pPresOwner + userID + "/")
}

func unmarshalEvent(raw []byte, ev *Event) error { return json.Unmarshal(raw, ev) }

// stripPrefix lists keys under prefix with the prefix removed.
func (s *Store) stripPrefix(prefix string) []string {
	return s.stripPrefixN(prefix, 0)
}

// stripPrefixN lists up to n keys under prefix with the prefix removed
// (n <= 0 means all), ending the scan once n is reached.
func (s *Store) stripPrefixN(prefix string, n int) []string {
	var ids []string
	s.kv.Scan(prefix, func(k string, _ []byte) bool {
		ids = append(ids, k[len(prefix):])
		return n <= 0 || len(ids) < n
	})
	return ids
}
