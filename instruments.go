package hive

import (
	"hive/internal/metrics"
)

// Package-level instruments on the process-wide registry, resolved
// once so the hot paths pay atomic ops only. Latency histograms are
// observed at event time; monotonic totals the Platform already keeps
// as struct atomics (per-shard observability accessors) are counted
// here too, so the exposition needs no scrape-time mirroring and a
// sharded process reports the sum over its shard pipelines — the
// process-wide view an operator scrapes.
var (
	mDeltaApplySeconds = metrics.Default.Histogram(metrics.DeltaApplySeconds,
		"Latency of folding one drained delta batch into the serving snapshot.", nil)
	mCompactionSeconds = metrics.Default.Histogram(metrics.CompactionSeconds,
		"Latency of one full snapshot rebuild (compaction).", nil)
	mDeltasApplied = metrics.Default.Counter(metrics.DeltasAppliedTotal,
		"Delta batches folded into serving snapshots since process start.")
	mCompactions = metrics.Default.Counter(metrics.CompactionsTotal,
		"Snapshot compactions since process start.")
	mSearchSeconds = metrics.Default.Histogram(metrics.SearchSeconds,
		"Latency of platform-level search calls (frozen read path).", nil)
	mQuorumAckWaitSeconds = metrics.Default.Histogram(metrics.QuorumAckWaitSeconds,
		"How long quorum-acknowledged writes waited for their k-th follower ack.", nil)
	mReplicationPollSeconds = metrics.Default.Histogram(metrics.ReplicationPollSeconds,
		"Round-trip latency of follower long-polls against the leader's events feed.", nil)
	mPromotions = metrics.Default.Counter(metrics.ElectionPromotionsTotal,
		"Follower-to-leader transitions since process start.")
	mDemotions = metrics.Default.Counter(metrics.ElectionDemotionsTotal,
		"Leader-to-follower transitions since process start.")
	mDeferrals = metrics.Default.Counter(metrics.ElectionDeferralsTotal,
		"Promotions deferred by the caught-up gate since process start.")
	mScatterSearchSeconds = metrics.Default.HistogramVec(metrics.ScatterFanoutSeconds,
		"Latency of one whole scatter-gather fan-out across shard engines.", nil, "op").With("search")
	mScatterFeedSeconds = metrics.Default.HistogramVec(metrics.ScatterFanoutSeconds,
		"Latency of one whole scatter-gather fan-out across shard engines.", nil, "op").With("feed")
)
