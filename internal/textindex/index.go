package textindex

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"hive/internal/topk"
)

// ErrDocNotFound is returned when a document ID is unknown to the index.
var ErrDocNotFound = errors.New("textindex: document not found")

// posting records one document's occurrences of a term.
type posting struct {
	doc string
	tf  int
}

// docTerm is one entry of a document's forward index: a term the
// document contains and its frequency. Per-doc term lists are kept
// sorted by term so every per-document float accumulation (TF-IDF
// vectors, norms) runs in a deterministic order — which is also what
// lets a Frozen snapshot reproduce the live scores bit for bit.
type docTerm struct {
	term string
	tf   int
}

// Index is an inverted index over documents with TF-IDF vectors and BM25
// scoring. It is safe for concurrent use: adds take the write lock,
// queries the read lock.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting
	docTerms map[string][]docTerm // forward index, sorted by term
	docLen   map[string]int
	docText  map[string]string
	totalLen int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docTerms: make(map[string][]docTerm),
		docLen:   make(map[string]int),
		docText:  make(map[string]string),
	}
}

// Add indexes text under the given document ID. Re-adding an existing ID
// replaces the document.
func (ix *Index) Add(docID, text string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[docID]; ok {
		ix.removeLocked(docID)
	}
	terms := Terms(text)
	counts := make(map[string]int)
	for _, t := range terms {
		counts[t]++
	}
	dts := make([]docTerm, 0, len(counts))
	for t, c := range counts {
		dts = append(dts, docTerm{term: t, tf: c})
	}
	sort.Slice(dts, func(i, j int) bool { return dts[i].term < dts[j].term })
	for _, dt := range dts {
		ix.postings[dt.term] = append(ix.postings[dt.term], posting{doc: docID, tf: dt.tf})
	}
	ix.docTerms[docID] = dts
	ix.docLen[docID] = len(terms)
	ix.docText[docID] = text
	ix.totalLen += len(terms)
}

// Remove deletes a document from the index.
func (ix *Index) Remove(docID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(docID)
}

func (ix *Index) removeLocked(docID string) {
	n, ok := ix.docLen[docID]
	if !ok {
		return
	}
	// The forward index names exactly the postings lists that mention the
	// document, so removal is O(terms-in-doc × list length) rather than a
	// scan of the entire postings map.
	for _, dt := range ix.docTerms[docID] {
		ps := ix.postings[dt.term]
		for i := range ps {
			if ps[i].doc == docID {
				ix.postings[dt.term] = append(ps[:i], ps[i+1:]...)
				break
			}
		}
		if len(ix.postings[dt.term]) == 0 {
			delete(ix.postings, dt.term)
		}
	}
	delete(ix.docTerms, docID)
	ix.totalLen -= n
	delete(ix.docLen, docID)
	delete(ix.docText, docID)
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docLen)
}

// Text returns the stored raw text of a document.
func (ix *Index) Text(docID string) (string, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	t, ok := ix.docText[docID]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	return t, nil
}

// DocIDs returns all indexed document IDs in sorted order.
func (ix *Index) DocIDs() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids := make([]string, 0, len(ix.docLen))
	for id := range ix.docLen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// idfFor computes smoothed inverse document frequency from a document
// frequency and a corpus size. Every read representation (live, frozen,
// segmented) funnels through this one expression so their floating-
// point results are bit-identical for the same logical corpus.
func idfFor(df, n int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// idfLocked computes smoothed inverse document frequency for a term.
func (ix *Index) idfLocked(term string) float64 {
	return idfFor(len(ix.postings[term]), len(ix.docLen))
}

// TFIDFVector returns the document's TF-IDF vector.
func (ix *Index) TFIDFVector(docID string) (Vector, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	dts, ok := ix.docTerms[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDocNotFound, docID)
	}
	v := make(Vector, len(dts))
	for _, dt := range dts {
		v[dt.term] = float64(dt.tf) * ix.idfLocked(dt.term)
	}
	return v, nil
}

// Result is a scored document.
type Result struct {
	DocID string
	Score float64
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Search ranks documents against the query with BM25 and returns the top
// k results (fewer if the index is small or the query matches nothing).
func (ix *Index) Search(query string, k int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docLen) == 0 {
		return nil
	}
	avgLen := float64(ix.totalLen) / float64(len(ix.docLen))
	if avgLen == 0 {
		avgLen = 1
	}
	scores := make(map[string]float64)
	for _, term := range Terms(query) {
		ps, ok := ix.postings[term]
		if !ok {
			continue
		}
		idf := ix.idfLocked(term)
		for _, p := range ps {
			dl := float64(ix.docLen[p.doc])
			tf := float64(p.tf)
			scores[p.doc] += idf * tf * (bm25K1 + 1) /
				(tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
		}
	}
	return topResults(scores, k)
}

// SearchVector ranks documents by cosine similarity between the query
// vector and each document's TF-IDF vector. Hive uses this form when the
// "query" is a context vector (active workpad contents) rather than typed
// keywords. Query terms are processed in sorted order so repeated calls
// (and a Frozen snapshot of this index) accumulate floats identically.
func (ix *Index) SearchVector(query Vector, k int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(query) == 0 {
		return nil
	}
	terms := make([]string, 0, len(query))
	for t := range query {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	// Accumulate dot products via postings of the query terms only.
	dots := make(map[string]float64)
	var qnSq float64
	for _, t := range terms {
		qw := query[t]
		qnSq += qw * qw
		ps, ok := ix.postings[t]
		if !ok {
			continue
		}
		idf := ix.idfLocked(t)
		for _, p := range ps {
			// Associated as qw × (tf × idf): the tf×idf factor is what a
			// Frozen snapshot precomputes per posting, so grouping it
			// keeps live and frozen sums bit-identical.
			dots[p.doc] += qw * (float64(p.tf) * idf)
		}
	}
	if qnSq == 0 {
		return nil
	}
	qn := math.Sqrt(qnSq)
	scores := make(map[string]float64, len(dots))
	for doc, dot := range dots {
		dn := ix.docNormLocked(doc)
		if dn == 0 {
			continue
		}
		scores[doc] = dot / (qn * dn)
	}
	return topResults(scores, k)
}

// docNormLocked computes the Euclidean norm of a document's TF-IDF
// vector from its forward-index entry: O(terms-in-doc).
func (ix *Index) docNormLocked(docID string) float64 {
	var s float64
	for _, dt := range ix.docTerms[docID] {
		w := float64(dt.tf) * ix.idfLocked(dt.term)
		s += w * w
	}
	return math.Sqrt(s)
}

func topResults(scores map[string]float64, k int) []Result {
	h := topk.New[Result](k, func(a, b Result) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.DocID < b.DocID
	})
	for d, s := range scores {
		h.Push(Result{DocID: d, Score: s})
	}
	return h.Sorted()
}
