package textindex

import (
	"math"
	"sort"
)

// Vector is a sparse term-weight vector (term -> weight).
type Vector map[string]float64

// Norm returns the Euclidean norm of the vector.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity between two vectors, in [0, 1] for
// non-negative weights. Empty vectors yield 0.
func (v Vector) Cosine(o Vector) float64 {
	if len(v) == 0 || len(o) == 0 {
		return 0
	}
	small, large := v, o
	if len(large) < len(small) {
		small, large = large, small
	}
	var dot float64
	for t, w := range small {
		if w2, ok := large[t]; ok {
			dot += w * w2
		}
	}
	nv, no := v.Norm(), o.Norm()
	if nv == 0 || no == 0 {
		return 0
	}
	return dot / (nv * no)
}

// Add accumulates o into v with the given scale.
func (v Vector) Add(o Vector, scale float64) {
	for t, w := range o {
		v[t] += w * scale
	}
}

// TopTerms returns the k highest-weight terms, ties broken
// lexicographically for determinism.
func (v Vector) TopTerms(k int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].t
	}
	return out
}

// TermFrequency builds a raw term-count vector from the canonical analysis
// chain.
func TermFrequency(text string) Vector {
	v := make(Vector)
	for _, t := range Terms(text) {
		v[t]++
	}
	return v
}
