package hive

// Leader/follower replication: the follower side.
//
// A durable platform journals every change batch (typed events + the
// raw kv write image) through internal/journal; the server exposes that
// journal as GET /api/v1/replication/events plus a full-state snapshot
// endpoint. A follower (Options.FollowURL) bootstraps from the
// snapshot, then tails the journal: each batch's kv image applies
// verbatim — the follower's store converges byte-for-byte with the
// leader's — and the batch's events flow through the ordinary onChange
// → ApplyDelta path, so the follower's serving snapshot is maintained
// by exactly the machinery a leader uses for its own writes. Followers
// serve the full read API with bounded, observable lag and reject
// writes with a typed NotLeaderError naming the leader.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"hive/api"
	"hive/client"
	"hive/internal/social"
)

// NotLeaderError is returned by mutation methods on a follower: writes
// must go to the leader it names. The HTTP layer maps it to the stable
// not_leader error code with the leader URL in the error details.
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("hive: not the leader; send writes to %s", e.Leader)
}

// Follower tuning. The long-poll wait keeps propagation sub-second
// without hot-polling; the batch cap bounds per-iteration memory.
const (
	followPollWait  = 20 * time.Second
	followBatchMax  = 256
	followBackoffLo = 100 * time.Millisecond
	followBackoffHi = 5 * time.Second
	// bootstrapAttempts bounds how long Open waits for a reachable
	// leader before failing fast (the operator restarts the follower).
	bootstrapAttempts = 10
)

// follower holds the tail-loop state of a following platform.
type follower struct {
	url    string
	c      *client.Client
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}

	applied    atomic.Uint64 // last leader sequence folded into the local store
	leaderTail atomic.Uint64 // leader journal tail at the most recent poll
	lastErr    atomic.Pointer[replErr]
	bootstraps atomic.Uint64 // snapshot bootstraps since Open (re-syncs after compaction/holes)
}

// replErr boxes a tail-loop outcome for atomic storage.
type replErr struct{ err error }

// startFollowing performs the initial bootstrap synchronously (so a
// returned Platform serves reads immediately) and starts the tail loop.
func (p *Platform) startFollowing(url string) error {
	ctx, cancel := context.WithCancel(context.Background())
	f := &follower{
		url:    url,
		c:      client.New(url),
		cancel: cancel,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.follow = f

	// Resume point: a durable follower that restarted already holds the
	// state up to its journal tail; it only needs the snapshot when
	// starting empty. A stale resume point past the leader's retention
	// horizon is detected on the first poll and re-bootstraps.
	var lastErr error
	for attempt := 0; attempt < bootstrapAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoffDelay(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if seq := p.store.ChangeSeq(); seq > 0 {
			f.applied.Store(seq)
			lastErr = nil
		} else if lastErr = p.bootstrapFollower(ctx); lastErr != nil {
			continue
		}
		// Build the first serving snapshot from the bootstrapped store.
		if lastErr = p.Refresh(); lastErr != nil {
			continue
		}
		go p.followLoop(ctx)
		return nil
	}
	cancel()
	return fmt.Errorf("hive: follower bootstrap from %s failed: %w", url, lastErr)
}

// stopFollowing cancels the tail loop and waits for it to exit.
func (p *Platform) stopFollowing() {
	f := p.follow
	if f == nil {
		return
	}
	select {
	case <-f.stop:
		return // already stopped
	default:
	}
	close(f.stop)
	f.cancel()
	<-f.done
}

// bootstrapFollower replaces the local store with the leader's full
// snapshot and positions the tail at its watermark.
func (p *Platform) bootstrapFollower(ctx context.Context) error {
	f := p.follow
	snap, err := f.c.ReplicationSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	entries := make(map[string][]byte, len(snap.Entries))
	for _, e := range snap.Entries {
		entries[e.Key] = e.Value
	}
	if err := p.store.ImportReplicaSnapshot(snap.Seq, entries); err != nil {
		return fmt.Errorf("import snapshot: %w", err)
	}
	f.applied.Store(p.store.ChangeSeq())
	f.bootstraps.Add(1)
	return nil
}

// followLoop tails the leader's journal until the platform closes,
// reconnecting with exponential backoff and re-bootstrapping from the
// snapshot when the leader compacted past our position (or a journal
// hole is detected).
func (p *Platform) followLoop(ctx context.Context) {
	f := p.follow
	defer close(f.done)
	failures := 0
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if failures > 0 {
			select {
			case <-time.After(backoffDelay(failures)):
			case <-f.stop:
				return
			}
		}

		from := f.applied.Load()
		ev, err := f.c.ReplicationEvents(ctx, from, followBatchMax, followPollWait)
		switch {
		case err == nil:
		case api.IsCode(err, api.CodeCompacted):
			// Fell behind the leader's retention horizon: tailing can
			// never catch up, re-sync from the full snapshot.
			if berr := p.resyncFollower(ctx); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap after compaction: %w", berr)})
				failures++
				continue
			}
			f.lastErr.Store(&replErr{})
			failures = 0
			continue
		default:
			if ctx.Err() != nil {
				return
			}
			f.lastErr.Store(&replErr{fmt.Errorf("poll leader: %w", err)})
			failures++
			continue
		}

		// A leader whose journal tail is *behind* our applied sequence
		// is not the leader we replicated from (repurposed data dir,
		// restored backup, wrong -follow target): tailing would silently
		// serve unrelated state while reporting zero lag. Re-sync from
		// its snapshot instead.
		if ev.Tail < from {
			f.leaderTail.Store(ev.Tail)
			if berr := p.resyncFollower(ctx); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap after leader regression (tail %d < applied %d): %w", ev.Tail, from, berr)})
				failures++
				continue
			}
			f.lastErr.Store(&replErr{})
			failures = 0
			continue
		}
		f.leaderTail.Store(ev.Tail)
		hole := false
		for _, rb := range ev.Batches {
			applied := f.applied.Load()
			if rb.Last <= applied {
				continue // overlap from a record spanning the resume point
			}
			if rb.First > applied+1 {
				// A hole in the feed (journal gap): events between were
				// lost; only a snapshot restores the missing data.
				hole = true
				break
			}
			if aerr := p.store.ApplyReplica(rb); aerr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("apply batch [%d,%d]: %w", rb.First, rb.Last, aerr)})
				hole = true // re-sync rather than skip acknowledged data
				break
			}
			f.applied.Store(rb.Last)
		}
		if hole {
			if berr := p.resyncFollower(ctx); berr != nil {
				f.lastErr.Store(&replErr{fmt.Errorf("re-bootstrap after feed hole: %w", berr)})
				failures++
				continue
			}
		}
		f.lastErr.Store(&replErr{})
		failures = 0
	}
}

// resyncFollower re-bootstraps from the snapshot and rebuilds the
// serving snapshot (imported state has no event trail to delta from).
func (p *Platform) resyncFollower(ctx context.Context) error {
	if err := p.bootstrapFollower(ctx); err != nil {
		return err
	}
	// Drop any queued events from before the import: the full rebuild
	// below covers everything the imported image contains.
	p.pendMu.Lock()
	p.pending = nil
	p.overflow = false
	p.pendingCount.Store(0)
	p.pendMu.Unlock()
	return p.Refresh()
}

// backoffDelay is the reconnect schedule: 100ms doubling to a 5s cap.
func backoffDelay(failures int) time.Duration {
	d := followBackoffLo << uint(failures-1)
	if d > followBackoffHi || d <= 0 {
		return followBackoffHi
	}
	return d
}

// writable gates every mutation wrapper: followers reject writes with a
// typed error naming the leader, so clients can redirect.
func (p *Platform) writable() error {
	if p.follow != nil {
		return &NotLeaderError{Leader: p.follow.url}
	}
	return nil
}

// --- Replication observability --------------------------------------------------

// IsFollower reports whether the platform tails a leader.
func (p *Platform) IsFollower() bool { return p.follow != nil }

// LeaderURL returns the followed leader's base URL ("" on a leader).
func (p *Platform) LeaderURL() string {
	if p.follow == nil {
		return ""
	}
	return p.follow.url
}

// ReplicationApplied returns the last leader sequence folded into the
// local store (0 on a leader).
func (p *Platform) ReplicationApplied() uint64 {
	if p.follow == nil {
		return 0
	}
	return p.follow.applied.Load()
}

// ReplicationLeaderTail returns the leader's journal tail observed at
// the most recent poll (0 before the first successful poll).
func (p *Platform) ReplicationLeaderTail() uint64 {
	if p.follow == nil {
		return 0
	}
	return p.follow.leaderTail.Load()
}

// ReplicationLag returns how many journaled leader events this follower
// has not yet applied, per the most recent poll — the "bounded,
// observable lag" healthz reports. 0 on a leader and on a caught-up
// follower; while disconnected it is a lower bound (the leader keeps
// writing but the observed tail freezes).
func (p *Platform) ReplicationLag() uint64 {
	if p.follow == nil {
		return 0
	}
	tail, applied := p.follow.leaderTail.Load(), p.follow.applied.Load()
	if tail <= applied {
		return 0
	}
	return tail - applied
}

// ReplicationBootstraps counts snapshot bootstraps since Open (1 for a
// fresh follower; more after retention or feed holes forced re-syncs).
func (p *Platform) ReplicationBootstraps() uint64 {
	if p.follow == nil {
		return 0
	}
	return p.follow.bootstraps.Load()
}

// LastReplicationError returns the tail loop's most recent failure, or
// nil when the loop is healthy (or the platform is a leader).
func (p *Platform) LastReplicationError() error {
	if p.follow == nil {
		return nil
	}
	if box := p.follow.lastErr.Load(); box != nil {
		return box.err
	}
	return nil
}

// --- Leader-side feed ------------------------------------------------------------

// ErrNoJournal is returned by ReplicationFeed on in-memory platforms:
// without a durable change journal there is nothing for followers to
// tail.
var ErrNoJournal = errors.New("hive: platform has no change journal (in-memory store); followers need -data")

// ReplicationFeed reads up to max journaled change batches after
// sequence `from`, long-polling up to wait for new data when the caller
// is caught up. It returns the batches plus the current journal tail.
// journal.ErrCompacted (mapped to the compacted API code by the server)
// means the range was dropped by retention. Served on any journaled
// node, so followers can chain.
func (p *Platform) ReplicationFeed(ctx context.Context, from uint64, max int, wait time.Duration) ([]social.ReplicationBatch, uint64, error) {
	if !p.store.Journaled() {
		return nil, 0, ErrNoJournal
	}
	batches, err := p.store.ChangesSince(from, max)
	if err != nil {
		return nil, 0, err
	}
	_, tail, _ := p.store.JournalStats()
	// Long-poll only when genuinely caught up (tail == from). A tail
	// *behind* from means the caller replicated from someone else — it
	// needs that signal immediately (its regression detector triggers a
	// re-bootstrap), not after the wait expires.
	if len(batches) == 0 && wait > 0 && tail >= from {
		waitCtx, cancel := context.WithTimeout(ctx, wait)
		if p.store.WaitChanges(waitCtx.Done(), from) {
			batches, err = p.store.ChangesSince(from, max)
		}
		cancel()
		if err != nil {
			return nil, 0, err
		}
		_, tail, _ = p.store.JournalStats()
	}
	return batches, tail, nil
}

// ReplicationSnapshot captures the full bootstrap image: the store's
// entire kv state and the change-sequence watermark it covers.
func (p *Platform) ReplicationSnapshot() (seq uint64, entries map[string][]byte, err error) {
	if !p.store.Journaled() {
		return 0, nil, ErrNoJournal
	}
	seq, entries = p.store.SnapshotForReplication()
	return seq, entries, nil
}
