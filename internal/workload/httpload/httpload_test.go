package httpload

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hive"
	"hive/client"
	"hive/internal/server"
	"hive/internal/workload"
)

// newAPIClient builds an in-process server + SDK client pair.
func newAPIClient(t *testing.T) (*client.Client, *hive.Platform) {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return client.New(ts.URL), p
}

// loadDirect applies the same dataset via the in-process store loader,
// as the ground truth both HTTP paths must match.
func loadDirect(t *testing.T, cfg workload.Config) *hive.Platform {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := workload.Generate(cfg).Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchMatchesLoad: the chunked batch-ingest path over the v1 API
// lands the same world as the direct store loader, at a fraction of the
// snapshot invalidations.
func TestBatchMatchesLoad(t *testing.T) {
	cfg := workload.Config{Seed: 7, Users: 16}
	ds := workload.Generate(cfg)
	direct := loadDirect(t, cfg)

	c, p := newAPIClient(t)
	var invalidations atomic.Int32
	p.Store().OnChange(func([]hive.ChangeEvent) { invalidations.Add(1) })
	if err := Batch(context.Background(), c, ds, 256); err != nil {
		t.Fatal(err)
	}

	if got, want := p.Users(), direct.Users(); len(got) != len(want) {
		t.Fatalf("users: %d vs %d", len(got), len(want))
	}
	if got, want := p.Store().Papers(), direct.Store().Papers(); len(got) != len(want) {
		t.Fatalf("papers: %d vs %d", len(got), len(want))
	}
	for _, u := range ds.Users {
		wp, err := p.ActiveWorkpad(u.ID)
		if err != nil || wp.Owner != u.ID {
			t.Fatalf("active workpad of %s: %+v, %v", u.ID, wp, err)
		}
	}
	// The dataset fits a few chunks: invalidations must be on the order
	// of chunks + workpad activations, far below the entity count.
	ents, err := Entities(ds)
	if err != nil {
		t.Fatal(err)
	}
	budget := int32(len(ents)/256 + 1 + len(ds.Workpads))
	if got := invalidations.Load(); got > budget {
		t.Fatalf("Batch cost %d invalidations for %d entities (budget %d)",
			got, len(ents), budget)
	}
}

// TestPerEntityMatchesLoad: the typed-request baseline lands the same
// world too.
func TestPerEntityMatchesLoad(t *testing.T) {
	cfg := workload.Config{Seed: 11, Users: 8}
	ds := workload.Generate(cfg)
	direct := loadDirect(t, cfg)

	c, p := newAPIClient(t)
	if err := PerEntity(context.Background(), c, ds); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Users(), direct.Users(); len(got) != len(want) {
		t.Fatalf("users: %d vs %d", len(got), len(want))
	}
	if got, want := p.Store().Papers(), direct.Store().Papers(); len(got) != len(want) {
		t.Fatalf("papers: %d vs %d", len(got), len(want))
	}
}
