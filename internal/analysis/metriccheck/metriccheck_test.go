package metriccheck_test

import (
	"testing"

	"hive/internal/analysis/analysistest"
	"hive/internal/analysis/metriccheck"
)

func TestMetricCheck(t *testing.T) {
	analysistest.Run(t, "testdata", metriccheck.Analyzer)
}
