// Package core is a stub mirroring the real engine: fields may only
// be written on the Builder.Build/ApplyDelta call graph.
package core

type Engine struct {
	Gen     int
	users   []string
	ctxOver map[string]int
	pprMemo map[string][]float64
}

type Builder struct{}

func (b *Builder) Build() *Engine {
	e := &Engine{ctxOver: map[string]int{}}
	e.users = []string{"u1"} // construction: allowed
	finish(e)
	return e
}

func (b *Builder) ApplyDelta(prev *Engine) *Engine {
	ne := &Engine{users: prev.users}
	ne.ctxOver = map[string]int{} // construction: allowed
	ne.ctxOver["u1"] = 1          // construction: allowed
	ne.Gen = prev.Gen + 1         // construction: allowed
	return ne
}

// finish is reachable from Build.
func finish(e *Engine) {
	e.pprMemo = map[string][]float64{} // allowed via reachability
}

// Memoize runs on the read path, after the snapshot is published.
func (e *Engine) Memoize(u string) {
	e.pprMemo[u] = nil // want `outside the construction whitelist`
}
