package server

// Quorum-write tests: synchronous durability (k follower acks before a
// write response returns), the cluster commit index, bounded typed
// degradation when the quorum is unreachable, the caught-up promotion
// gate, and — the headline — TestQuorumNoLostWrites, which drives
// randomized writers through fault-injected replication links and a
// leader kill and proves every acknowledged write survives promotion.
// All in-process and -race-clean; make race-nightly runs the no-lost-
// writes test explicitly.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hive"
	"hive/api"
	"hive/client"
	"hive/internal/election"
	"hive/internal/faultnet"
)

// startQuorumNode is startClusterNode with the quorum knobs exposed:
// write quorum k, ack timeout, and the fault-injection transport for
// the node's replication client.
func startQuorumNode(t *testing.T, l net.Listener, self string, peers []string, el election.Elector, k int, ackTimeout time.Duration, rt http.RoundTripper) *clusterNode {
	t.Helper()
	p, err := hive.Open(hive.Options{
		Dir: t.TempDir(),
		Cluster: &hive.ClusterConfig{
			SelfURL:              self,
			Peers:                peers,
			Election:             el,
			QuorumWrites:         k,
			AckTimeout:           ackTimeout,
			ReplicationTransport: rt,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: New(p)}}
	ts.Start()
	n := &clusterNode{url: self, ts: ts, p: p}
	t.Cleanup(n.kill)
	return n
}

// hostOf strips the scheme off a node URL for faultnet partitioning.
func hostOf(u string) string { return strings.TrimPrefix(u, "http://") }

// TestQuorumWriteAdvancesCommitIndex is the happy path: with k=1 and
// two live followers, writes return only after an ack, the leader's
// commit index covers every acknowledged sequence, healthz reports the
// per-follower ack table, and followers adopt the leader-published
// commit index from the poll feed.
func TestQuorumWriteAdvancesCommitIndex(t *testing.T) {
	elA, elB, elF := election.NewManual(), election.NewManual(), election.NewManual()
	lA, urlA := listenLocal(t)
	lB, urlB := listenLocal(t)
	lF, urlF := listenLocal(t)

	elA.Set(election.State{Role: election.Leader, Epoch: 1, Leader: urlA})
	a := startQuorumNode(t, lA, urlA, []string{urlB, urlF}, elA, 1, 5*time.Second, nil)
	waitRole(t, a.p, "leader", 5*time.Second)
	elB.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	b := startQuorumNode(t, lB, urlB, []string{urlA, urlF}, elB, 1, 5*time.Second, nil)
	elF.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	f := startQuorumNode(t, lF, urlF, []string{urlA, urlB}, elF, 1, 5*time.Second, nil)

	for i := 0; i < 10; i++ {
		if err := a.p.RegisterUser(hive.User{ID: fmt.Sprintf("q%02d", i), Name: "Q", Interests: []string{"quorum"}}); err != nil {
			t.Fatalf("quorum write %d: %v", i, err)
		}
	}
	// The write only returned because a follower acked it: the commit
	// index must already cover the store's sequence, with no extra wait.
	seq := a.p.Store().ChangeSeq()
	if ci := a.p.CommitIndex(); ci < seq {
		t.Fatalf("commit index %d below acknowledged seq %d", ci, seq)
	}

	// healthz on the leader reports the durability mode and ack table.
	var h api.Health
	hc := client.New(urlA)
	var err error
	if h, err = hc.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h.Replication.QuorumWrites != 1 {
		t.Fatalf("healthz quorum_writes = %d, want 1", h.Replication.QuorumWrites)
	}
	if h.Replication.CommitIndex < seq {
		t.Fatalf("healthz commit_index = %d, want >= %d", h.Replication.CommitIndex, seq)
	}
	if len(h.Replication.FollowerAcks) == 0 {
		t.Fatal("healthz reports no follower acks on a quorum-writing leader")
	}
	for _, fa := range h.Replication.FollowerAcks {
		if fa.URL != urlB && fa.URL != urlF {
			t.Fatalf("unexpected follower in ack table: %s", fa.URL)
		}
	}

	// Followers adopt the leader-published commit index (capped at their
	// own applied position, which converges to the leader's sequence).
	for _, n := range []*clusterNode{b, f} {
		waitConverged(t, a.p, n.p, 20*time.Second)
		deadline := time.Now().Add(10 * time.Second)
		for n.p.CommitIndex() < seq {
			if time.Now().After(deadline) {
				t.Fatalf("follower %s commit index stuck at %d, want >= %d", n.url, n.p.CommitIndex(), seq)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestQuorumUnavailableTypedDegradation: with k=1 and no reachable
// follower, a write degrades within the ack timeout to the typed
// quorum_unavailable error — over HTTP a 503 with acked/needed details —
// and recovers as soon as a follower returns. The failing write stays
// journaled: recovery replicates it.
func TestQuorumUnavailableTypedDegradation(t *testing.T) {
	elA, elB := election.NewManual(), election.NewManual()
	lA, urlA := listenLocal(t)
	lB, urlB := listenLocal(t)

	elA.Set(election.State{Role: election.Leader, Epoch: 1, Leader: urlA})
	a := startQuorumNode(t, lA, urlA, []string{urlB}, elA, 1, 400*time.Millisecond, nil)
	waitRole(t, a.p, "leader", 5*time.Second)

	// No follower yet: the platform-level write fails typed and bounded.
	start := time.Now()
	err := a.p.RegisterUser(hive.User{ID: "lonely", Name: "Lonely"})
	var que *hive.QuorumUnavailableError
	if !errors.As(err, &que) {
		t.Fatalf("write without followers: got %v, want QuorumUnavailableError", err)
	}
	if que.Acked != 0 || que.Needed != 1 {
		t.Fatalf("degradation details acked=%d needed=%d, want 0/1", que.Acked, que.Needed)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("degradation took %v, want bounded by the 400ms ack timeout", waited)
	}

	// Same failure over HTTP: 503 + quorum_unavailable + details.
	c := client.New(urlA)
	err = c.CreateUser(context.Background(), api.User{ID: "lonely2", Name: "Lonely"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeQuorumUnavailable {
		t.Fatalf("HTTP write without followers: got %v, want code %s", err, api.CodeQuorumUnavailable)
	}
	if ae.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("quorum_unavailable arrived with HTTP %d, want 503", ae.HTTPStatus)
	}
	if got, ok := ae.Details["needed"].(float64); !ok || int(got) != 1 {
		t.Fatalf("quorum_unavailable details %v lack needed=1", ae.Details)
	}

	// A follower joins: acks flow, writes commit, and the previously
	// unproven writes are replicated along the way.
	elB.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	b := startQuorumNode(t, lB, urlB, []string{urlA}, elB, 1, 5*time.Second, nil)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := a.p.RegisterUser(hive.User{ID: "recovered", Name: "R"}); err == nil {
			break
		} else if !errors.As(err, &que) {
			t.Fatalf("recovery write: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered after the follower joined")
		}
	}
	waitConverged(t, a.p, b.p, 20*time.Second)
	for _, id := range []string{"lonely", "lonely2", "recovered"} {
		if _, err := b.p.GetUser(id); err != nil {
			t.Fatalf("follower missing %s after recovery: %v", id, err)
		}
	}
}

// TestAsyncWritesCanBeLostOnFailover is the contrast fixture for the
// no-lost-writes guarantee: in async mode (k=0) a leader acknowledges
// writes its partitioned follower never saw, and promoting that
// follower loses them — acknowledged-but-gone. The identical topology
// at k=1 refuses the ack instead (quorum_unavailable), so the caller is
// never lied to. Together they demonstrate what the quorum buys.
func TestAsyncWritesCanBeLostOnFailover(t *testing.T) {
	run := func(t *testing.T, k int) (lostOnB bool, writeErr error) {
		elA, elB := election.NewManual(), election.NewManual()
		lA, urlA := listenLocal(t)
		lB, urlB := listenLocal(t)

		// B's replication link to A is cut from the start: it can never
		// bootstrap or ack.
		ft := faultnet.New(nil, faultnet.Config{Seed: 7})
		ft.Partition(hostOf(urlA))

		elA.Set(election.State{Role: election.Leader, Epoch: 1, Leader: urlA})
		a := startQuorumNode(t, lA, urlA, []string{urlB}, elA, k, 400*time.Millisecond, nil)
		waitRole(t, a.p, "leader", 5*time.Second)
		elB.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
		b := startQuorumNode(t, lB, urlB, []string{urlA}, elB, k, 400*time.Millisecond, ft)

		writeErr = a.p.RegisterUser(hive.User{ID: "volatile", Name: "V"})

		// Fail A over to the partitioned B.
		a.kill()
		elB.Set(election.State{Role: election.Leader, Epoch: 2, Leader: urlB})
		waitRole(t, b.p, "leader", 10*time.Second)
		_, err := b.p.GetUser("volatile")
		return err != nil, writeErr
	}

	t.Run("async", func(t *testing.T) {
		lost, writeErr := run(t, 0)
		if writeErr != nil {
			t.Fatalf("async write failed: %v", writeErr)
		}
		if !lost {
			t.Fatal("partitioned follower somehow has the write; the contrast fixture is broken")
		}
	})
	t.Run("quorum", func(t *testing.T) {
		_, writeErr := run(t, 1)
		var que *hive.QuorumUnavailableError
		if !errors.As(writeErr, &que) {
			t.Fatalf("quorum write against a partitioned follower: got %v, want QuorumUnavailableError", writeErr)
		}
	})
}

// TestPromotionDefersToMoreCaughtUpPeer: a follower that wins an
// election while a reachable peer holds more history yields instead of
// promoting — and after maxPromotionDeferrals consecutive yields leads
// anyway, so an unclaiming peer cannot leave the cluster leaderless.
// The gate reads the peer's healthz JSON, so this test also pins the
// wire names (replication.epoch/journal_tail/applied_seq) the gate's
// local decoder spells out.
func TestPromotionDefersToMoreCaughtUpPeer(t *testing.T) {
	elA, elB, elC := election.NewManual(), election.NewManual(), election.NewManual()
	lA, urlA := listenLocal(t)
	lB, urlB := listenLocal(t)
	lC, urlC := listenLocal(t)

	// C's link to the leader is cut: B converges, C stays empty.
	ft := faultnet.New(nil, faultnet.Config{Seed: 11})
	ft.Partition(hostOf(urlA))

	elA.Set(election.State{Role: election.Leader, Epoch: 1, Leader: urlA})
	a := startQuorumNode(t, lA, urlA, []string{urlB, urlC}, elA, 0, 0, nil)
	waitRole(t, a.p, "leader", 5*time.Second)
	seedLeader(t, a.p, 8)
	elB.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	b := startQuorumNode(t, lB, urlB, []string{urlA, urlC}, elB, 0, 0, nil)
	elC.Set(election.State{Role: election.Follower, Epoch: 1, Leader: urlA})
	c := startQuorumNode(t, lC, urlC, []string{urlA, urlB}, elC, 0, 0, ft)
	waitConverged(t, a.p, b.p, 20*time.Second)
	if got := c.p.ReplicationApplied(); got != 0 {
		t.Fatalf("partitioned node applied %d events; fixture broken", got)
	}

	a.kill()

	// C "wins" the election while B is reachable and ahead: the gate must
	// defer, not promote.
	waitDeferrals := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for c.p.PromotionDeferrals() < want {
			if time.Now().After(deadline) {
				t.Fatalf("deferrals stuck at %d, want %d (role %s)", c.p.PromotionDeferrals(), want, c.p.Role())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i := uint64(1); i <= 3; i++ {
		elC.Set(election.State{Role: election.Leader, Epoch: 1 + i, Leader: urlC})
		waitDeferrals(i)
		if c.p.Role() != "follower" {
			t.Fatalf("node promoted on deferral round %d despite a more caught-up peer", i)
		}
	}

	// The deferral budget is spent: the next win promotes regardless, so
	// a peer that never claims cannot wedge the cluster leaderless.
	elC.Set(election.State{Role: election.Leader, Epoch: 9, Leader: urlC})
	waitRole(t, c.p, "leader", 10*time.Second)
	if got := c.p.PromotionDeferrals(); got != 3 {
		t.Fatalf("deferrals after capped promotion = %d, want exactly 3", got)
	}
	_ = b
}

// TestQuorumNoLostWrites is the headline robustness test, run under
// -race by make race-nightly: a three-node FileLease cluster at k=1
// with fault-injected replication links (dropped polls, delayed acks)
// takes randomized concurrent writes, the leader is killed mid-stream,
// and after the surviving nodes elect and converge every write that was
// ever acknowledged to a client must exist on the new leader. The
// commit index must also never regress on a surviving node.
func TestQuorumNoLostWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster failover test; skipped in -short")
	}
	leaseDir := t.TempDir()
	ttl := 500 * time.Millisecond

	var ls [3]net.Listener
	var urls [3]string
	for i := range ls {
		ls[i], urls[i] = listenLocal(t)
	}
	peersOf := func(i int) []string {
		var ps []string
		for j, u := range urls {
			if j != i {
				ps = append(ps, u)
			}
		}
		return ps
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		lease, err := election.NewFileLease(election.LeaseConfig{Dir: leaseDir, Self: urls[i], TTL: ttl})
		if err != nil {
			t.Fatal(err)
		}
		// Every node's replication client runs over a lossy link: 3% of
		// polls dropped, 0-3ms of jitter on the rest, occasional duplicate
		// delivery on the ack path. Seeded per node for reproducibility.
		ft := faultnet.New(nil, faultnet.Config{
			Seed:     int64(100 + i),
			DropProb: 0.03,
			Jitter:   3 * time.Millisecond,
			DupProb:  0.02,
		})
		nodes[i] = startQuorumNode(t, ls[i], urls[i], peersOf(i), lease, 1, 5*time.Second, ft)
	}

	leader1 := waitLeaderAmong(t, nodes, 10*time.Second)

	// acked records every write a client saw succeed — the set that must
	// survive no matter what happens to the leader.
	var ackedMu sync.Mutex
	acked := map[string]bool{}
	writeOne := func(c *client.Client, id string) {
		deadline := time.Now().Add(45 * time.Second)
		for {
			err := c.CreateUser(context.Background(), api.User{ID: id, Name: "W " + id, Interests: []string{"quorum"}})
			if err == nil {
				ackedMu.Lock()
				acked[id] = true
				ackedMu.Unlock()
				return
			}
			// quorum_unavailable, not_leader and transport errors are all
			// legitimate mid-failover; the writer retries like a queue
			// would. Durability is only claimed for writes that returned
			// success.
			if time.Now().After(deadline) {
				t.Errorf("write %s never accepted: %v", id, err)
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	const writers, perWriter = 4, 6
	runRound := func(prefix string) {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := client.New(urls[w%len(urls)], client.WithCluster(urls[:]...))
				for i := 0; i < perWriter; i++ {
					writeOne(c, fmt.Sprintf("%s-%d-%02d", prefix, w, i))
				}
			}(w)
		}
		wg.Wait()
	}

	runRound("pre")

	// Snapshot the surviving followers' commit indices, then kill the
	// leader cold (connections die, lease lapses).
	preCommit := map[string]uint64{}
	for _, n := range nodes {
		if n != leader1 {
			preCommit[n.url] = n.p.CommitIndex()
		}
	}
	leader1.kill()

	runRound("post")

	survivors := make([]*clusterNode, 0, 2)
	for _, n := range nodes {
		if !n.killed {
			survivors = append(survivors, n)
		}
	}
	leader2 := waitLeaderAmong(t, survivors, 15*time.Second)
	for _, n := range survivors {
		if n != leader2 {
			waitConverged(t, leader2.p, n.p, 30*time.Second)
		}
	}

	// The guarantee: every acknowledged write exists on every survivor.
	ackedMu.Lock()
	ids := make([]string, 0, len(acked))
	for id := range acked {
		ids = append(ids, id)
	}
	ackedMu.Unlock()
	if len(ids) == 0 {
		t.Fatal("no write was ever acknowledged; the harness is broken")
	}
	for _, n := range survivors {
		for _, id := range ids {
			if _, err := n.p.GetUser(id); err != nil {
				t.Fatalf("acknowledged write %s missing on %s after failover: %v", id, n.url, err)
			}
		}
	}
	// Commit indices never regress across the leader change.
	for _, n := range survivors {
		if got := n.p.CommitIndex(); got < preCommit[n.url] {
			t.Fatalf("commit index on %s regressed %d -> %d across failover", n.url, preCommit[n.url], got)
		}
	}
}
