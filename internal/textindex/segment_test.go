package textindex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomText draws n words from the shared small vocabulary.
func randomText(rng *rand.Rand, n int) string {
	vocab := []string{
		"graph", "partition", "stream", "tensor", "social", "network",
		"query", "ranking", "index", "cluster", "community", "context",
		"sketch", "latency", "snapshot", "peer", "overlay", "segment",
	}
	words := make([]string, n)
	for i := range words {
		words[i] = vocab[rng.Intn(len(vocab))]
	}
	return strings.Join(words, " ")
}

// TestSegmentedParity is the base+overlay extension of the PR-3 frozen
// parity property test: starting from a frozen base segment, random
// streams of document adds, updates and deletes are applied through
// WithDocs/WithoutDocs while the same mutations replay against a live
// Index. After every round, the segmented view must reproduce both the
// live index and a from-scratch Frozen of the final corpus exactly —
// results, scores (bit-identical) and tie-break order — across Search,
// SearchVector, SearchCompiled, TFIDFVector, DocNorm, Text and DocIDs.
func TestSegmentedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := []string{
		"graph partition", "stream tensor graph", "overlay segment snapshot",
		"latency", "unknown words only", "", "graph graph graph",
	}
	for trial := 0; trial < 25; trial++ {
		// Base corpus, frozen.
		live, _ := randomCorpus(rng, 1+rng.Intn(25))
		base := live.Freeze()
		seg := NewSegmented(base)

		rounds := 1 + rng.Intn(4)
		for round := 0; round < rounds; round++ {
			// A chunk of adds/updates: new IDs and existing ones (updates
			// shadow base versions through tombstones).
			chunk := make(map[string]string)
			for i := 0; i < 1+rng.Intn(6); i++ {
				var id string
				if rng.Intn(2) == 0 {
					id = fmt.Sprintf("doc/%02d", rng.Intn(30)) // maybe existing
				} else {
					id = fmt.Sprintf("new/%d-%d", round, i)
				}
				chunk[id] = randomText(rng, 1+rng.Intn(20))
			}
			seg = seg.WithDocs(chunk)
			for id, text := range chunk {
				live.Add(id, text)
			}
			// Occasionally delete a document outright.
			if rng.Intn(3) == 0 {
				victims := live.DocIDs()
				if len(victims) > 1 {
					id := victims[rng.Intn(len(victims))]
					seg = seg.WithoutDocs([]string{id})
					live.Remove(id)
				}
			}

			fresh := live.Freeze() // the from-scratch build to match
			label := func(what string) string {
				return fmt.Sprintf("trial %d round %d %s", trial, round, what)
			}
			if seg.Len() != live.Len() || seg.Len() != fresh.Len() {
				t.Fatalf("%s: len seg=%d live=%d fresh=%d", label("Len"), seg.Len(), live.Len(), fresh.Len())
			}
			segIDs, freshIDs := seg.DocIDs(), fresh.DocIDs()
			for i := range freshIDs {
				if segIDs[i] != freshIDs[i] {
					t.Fatalf("%s: id[%d] seg=%q fresh=%q", label("DocIDs"), i, segIDs[i], freshIDs[i])
				}
			}
			for _, q := range queries {
				for _, k := range []int{1, 3, 10, 0} {
					sameResults(t, label(fmt.Sprintf("Search(%q,%d) vs live", q, k)),
						live.Search(q, k), seg.Search(q, k))
					sameResults(t, label(fmt.Sprintf("Search(%q,%d) vs fresh", q, k)),
						fresh.Search(q, k), seg.Search(q, k))
				}
			}
			for qi := 0; qi < 4; qi++ {
				qv := randomQueryVector(rng)
				// Compiled against the *base* segment: the index-independent
				// half must serve the overlay view with merged statistics.
				cq := base.Compile(qv)
				for _, k := range []int{1, 5, 0} {
					want := live.SearchVector(qv, k)
					sameResults(t, label(fmt.Sprintf("SearchVector(#%d,%d)", qi, k)),
						want, seg.SearchVector(qv, k))
					sameResults(t, label(fmt.Sprintf("SearchCompiled(#%d,%d)", qi, k)),
						want, seg.SearchCompiled(cq, k))
					sameResults(t, label(fmt.Sprintf("fresh SearchVector(#%d,%d)", qi, k)),
						fresh.SearchVector(qv, k), seg.SearchVector(qv, k))
				}
			}
			for _, id := range freshIDs {
				fv, ferr := fresh.TFIDFVector(id)
				sv, serr := seg.TFIDFVector(id)
				if (ferr == nil) != (serr == nil) {
					t.Fatalf("%s: TFIDFVector(%s) fresh err %v seg err %v", label("TFIDF"), id, ferr, serr)
				}
				if len(fv) != len(sv) {
					t.Fatalf("%s: TFIDFVector(%s) fresh %d terms seg %d", label("TFIDF"), id, len(fv), len(sv))
				}
				for term, w := range fv {
					if sv[term] != w {
						t.Fatalf("%s: TFIDFVector(%s) term %q fresh %v seg %v", label("TFIDF"), id, term, w, sv[term])
					}
				}
				if fn, sn := fresh.DocNorm(id), seg.DocNorm(id); fn != sn {
					t.Fatalf("%s: DocNorm(%s) fresh %v seg %v", label("DocNorm"), id, fn, sn)
				}
				ft, _ := fresh.Text(id)
				st, err := seg.Text(id)
				if err != nil || ft != st {
					t.Fatalf("%s: Text(%s) mismatch (err %v)", label("Text"), id, err)
				}
			}
		}
	}
}

// TestSegmentedTombstones checks the shadowing and deletion contract
// explicitly: updated base docs become tombstones, their old text is
// unreachable, and deletes drop docs from every read path.
func TestSegmentedTombstones(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "graph partitioning systems")
	ix.Add("b", "stream processing engines")
	ix.Add("c", "community detection")
	seg := NewSegmented(ix.Freeze())

	seg = seg.WithDocs(map[string]string{"a": "tensor sketches"}) // shadow base a
	if seg.Tombstones() != 1 || seg.OverlayDocs() != 1 {
		t.Fatalf("tombstones=%d overlay=%d, want 1/1", seg.Tombstones(), seg.OverlayDocs())
	}
	if res := seg.Search("graph", 10); len(res) != 0 {
		t.Fatalf("shadowed text still searchable: %v", res)
	}
	if res := seg.Search("tensor", 10); len(res) != 1 || res[0].DocID != "a" {
		t.Fatalf("overlay version not searchable: %v", res)
	}
	txt, err := seg.Text("a")
	if err != nil || txt != "tensor sketches" {
		t.Fatalf("Text(a) = %q, %v", txt, err)
	}

	seg = seg.WithoutDocs([]string{"a", "b", "missing"})
	if seg.Len() != 1 {
		t.Fatalf("len = %d after deletes, want 1", seg.Len())
	}
	if _, err := seg.Text("a"); err == nil {
		t.Fatal("deleted overlay doc still readable")
	}
	if _, err := seg.TFIDFVector("b"); err == nil {
		t.Fatal("deleted base doc still readable")
	}
	if seg.DocNorm("b") != 0 {
		t.Fatal("deleted base doc has nonzero norm")
	}
	if got := seg.DocIDs(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("DocIDs = %v, want [c]", got)
	}
}

// TestSegmentedImmutable checks that WithDocs never mutates the parent
// view: a reader holding the old Segmented keeps seeing the old corpus.
func TestSegmentedImmutable(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "graph partitioning")
	v0 := NewSegmented(ix.Freeze())
	v1 := v0.WithDocs(map[string]string{"b": "graph streams"})
	v2 := v1.WithDocs(map[string]string{"c": "graph tensors"})

	if got := len(v0.Search("graph", 10)); got != 1 {
		t.Fatalf("v0 sees %d docs, want 1", got)
	}
	if got := len(v1.Search("graph", 10)); got != 2 {
		t.Fatalf("v1 sees %d docs, want 2", got)
	}
	if got := len(v2.Search("graph", 10)); got != 3 {
		t.Fatalf("v2 sees %d docs, want 3", got)
	}
}
