package core

import (
	"fmt"
	"strconv"
	"time"

	"hive/internal/social"
	"hive/internal/textindex"
)

// Delta maintenance: ApplyDelta turns a batch of typed store change
// events into a new Engine snapshot in time proportional to the events
// (and the current overlay), not the corpus. The new snapshot
// structurally shares everything the events did not touch — the frozen
// base segment, the evidence-layer graphs, the concept map, the
// knowledge base and the untouched rows of every phase-2 table — and
// repairs only:
//
//   - the text read view: new/updated papers, presentations and
//     questions enter the overlay segment (shadowing their base
//     versions), so Search/vectors serve them immediately;
//   - context vectors (and compiled queries, workpad peer pins) of the
//     users whose profile or workpad the events touched;
//   - uploaded-content vectors of authors/owners of touched documents;
//   - interaction vectors and object popularity for appended activity
//     events past the snapshot's stream watermark (exactly once);
//   - the PageRank memo: entries of affected users are invalidated, all
//     others carry over.
//
// What a delta deliberately does NOT repair: the evidence-layer graphs,
// their integration, communities, the RDF knowledge base, the
// bibliographic networks and the concept map. Events with such effects
// bump the snapshot's graphPending counter instead; the platform's
// compaction policy schedules a full Build (the compaction) when the
// overlay, tombstone ratio or graphPending crosses its threshold. Until
// then, content freshness is immediate and graph evidence ages at the
// paper's original offline-refresh cadence.

// ApplyDelta derives a new snapshot from prev by applying the change
// events against the current store state. prev is never mutated; both
// snapshots stay fully serveable. Events referencing entities that no
// longer resolve in the store are skipped. A panic in any repair is
// converted into an error, like every build stage.
func (b *Builder) ApplyDelta(prev *Engine, events []social.ChangeEvent) (eng *Engine, err error) {
	defer func() {
		if r := recover(); r != nil {
			eng, err = nil, fmt.Errorf("core: delta apply panicked: %v", r)
		}
	}()
	if prev == nil || prev.seg == nil {
		return nil, fmt.Errorf("core: delta apply needs a fully built base snapshot")
	}
	start := time.Now()
	st := b.Store

	// Classify the batch into the repairs it demands.
	docs := map[string]string{}   // docID -> re-rendered text
	drops := []string(nil)        // docIDs to tombstone
	ctxUsers := map[string]bool{} // users whose context vector must recompute
	contentUsers := map[string]bool{}
	var activity []social.Event // appended stream events past the watermark
	graphPending := 0

	for _, ev := range events {
		switch ev.EntityType {
		case social.EntityPaper:
			if p, err := st.Paper(ev.ID); err == nil {
				docs[DocPaper+p.ID] = p.Title + ". " + p.Abstract
				for _, a := range p.Authors {
					contentUsers[a] = true
				}
			} else if ev.Kind == social.ChangeDelete {
				drops = append(drops, DocPaper+ev.ID)
			}
			graphPending++ // coauthor/citation layers, knowledge base
		case social.EntityPresentation:
			if pr, err := st.Presentation(ev.ID); err == nil {
				docs[DocPresentation+pr.ID] = pr.Title + ". " + pr.Text
				contentUsers[pr.Owner] = true
			} else if ev.Kind == social.ChangeDelete {
				drops = append(drops, DocPresentation+ev.ID)
			}
		case social.EntityQuestion:
			if q, err := st.Question(ev.ID); err == nil {
				docs[DocQuestion+q.ID] = q.Text
			} else if ev.Kind == social.ChangeDelete {
				drops = append(drops, DocQuestion+ev.ID)
			}
			graphPending++ // QA layer
		case social.EntityUser:
			// Interests feed the context vector; layer membership waits
			// for compaction.
			ctxUsers[ev.ID] = true
			graphPending++
		case social.EntityWorkpad:
			if len(ev.Refs) > 0 {
				ctxUsers[ev.Refs[0]] = true
			}
		case social.EntityActiveWorkpad:
			ctxUsers[ev.ID] = true
		case social.EntityConnection, social.EntityFollow, social.EntityCheckin,
			social.EntityAnswer:
			graphPending++
		case social.EntityActivity:
			seq, perr := strconv.ParseUint(ev.ID, 16, 64)
			if perr != nil || seq <= prev.evtSeq {
				continue // already folded into the base tables
			}
			if sev, err := st.EventBySeq(seq); err == nil {
				activity = append(activity, sev)
			}
		}
	}

	ne := &Engine{
		store:  st,
		index:  prev.index,
		frozen: prev.frozen,
		seg:    prev.seg,
		// Shared derived structures — repaired only by compaction.
		concepts:    prev.concepts,
		papers:      prev.papers,
		users:       prev.users,
		coauthorNet: prev.coauthorNet,
		citationNet: prev.citationNet,
		litNet:      prev.litNet,
		connLayer:   prev.connLayer,
		coauthLayer: prev.coauthLayer,
		attendLayer: prev.attendLayer,
		qaLayer:     prev.qaLayer,
		layers:      prev.layers,
		integrated:  prev.integrated,
		peerGraph:   prev.peerGraph,
		kb:          prev.kb,
		communities: prev.communities,
		// Shared phase-2 base tables; the overlays below carry repairs.
		ctxVecs:      prev.ctxVecs,
		ctxQueries:   prev.ctxQueries,
		wpPeerRefs:   prev.wpPeerRefs,
		userContent:  prev.userContent,
		interVecs:    prev.interVecs,
		popularity:   prev.popularity,
		evtSeq:       prev.evtSeq,
		graphPending: prev.graphPending + graphPending,
		buildWorkers: prev.buildWorkers,
		builtAt:      prev.builtAt,
		buildDur:     prev.buildDur,
		deltaCount:   prev.deltaCount + 1,
	}

	// Text overlay: new and updated documents shadow their base
	// versions; removed ones tombstone.
	if len(docs) > 0 {
		ne.seg = ne.seg.WithDocs(docs)
	}
	if len(drops) > 0 {
		ne.seg = ne.seg.WithoutDocs(drops)
	}

	// Overlay tables start as copies of the previous overlay (bounded by
	// the compaction threshold, never by the corpus) and absorb this
	// batch's repairs.
	ne.ctxOver = cloneMap(prev.ctxOver, len(ctxUsers))
	ne.ctxQOver = cloneMap(prev.ctxQOver, len(ctxUsers))
	ne.wpRefsOver = cloneMap(prev.wpRefsOver, len(ctxUsers))
	ne.contentOver = cloneMap(prev.contentOver, len(contentUsers))
	ne.interOver = cloneMap(prev.interOver, len(activity))
	ne.popOver = cloneMap(prev.popOver, len(activity))

	// Context repairs: recompute the affected users' vectors against the
	// current store, compile against the shared base segment (the
	// compiled form's term list serves the overlay view too), and
	// re-snapshot their workpad peer pins.
	for u := range ctxUsers {
		v := ne.computeContextVector(u)
		ne.ctxOver[u] = v
		if len(v) > 0 {
			ne.ctxQOver[u] = ne.frozen.Compile(v)
		} else {
			ne.ctxQOver[u] = nil // mask any base entry
		}
		var refs []string
		if wp, err := st.ActiveWorkpad(u); err == nil {
			for _, item := range wp.Items {
				if item.Kind == social.ItemUser {
					refs = append(refs, item.Ref)
				}
			}
		}
		ne.wpRefsOver[u] = refs
	}

	// Content repairs: authors/owners of touched documents, computed
	// through the new overlay view so the vectors carry merged-corpus
	// statistics.
	for u := range contentUsers {
		ne.contentOver[u] = ne.computeUserContentVector(u)
	}

	// Interaction repairs: fold appended activity events in exactly
	// once, copying each touched row out of the base table first.
	for _, sev := range activity {
		if sev.Seq > ne.evtSeq {
			ne.evtSeq = sev.Seq
		}
		doc := ne.docIDForObject(sev.Object)
		if doc == "" {
			continue
		}
		if _, ok := ne.popOver[doc]; !ok {
			ne.popOver[doc] = prev.popularityOf(doc)
		}
		ne.popOver[doc]++
		if w, ok := verbWeight[sev.Verb]; ok && sev.Object != "" {
			v, ok := ne.interOver[sev.Actor]
			if !ok {
				v = make(textindex.Vector, len(prev.interactionVectorOf(sev.Actor))+1)
				for d, x := range prev.interactionVectorOf(sev.Actor) {
					v[d] = x
				}
			}
			v[doc] += w
			ne.interOver[sev.Actor] = v
		}
	}

	// PageRank memo: carry over every entry except the users whose
	// restart bias (workpad pins) may have changed.
	ne.pprMemo = make(map[string][]float64, len(prev.pprMemo))
	prev.pprMu.Lock()
	for u, pr := range prev.pprMemo {
		if !ctxUsers[u] {
			ne.pprMemo[u] = pr
		}
	}
	prev.pprMu.Unlock()

	ne.lastDeltaDur = time.Since(start)
	ne.appliedAt = time.Now()
	return ne, nil
}

// cloneMap copies a possibly-nil overlay map with headroom for extra
// entries.
func cloneMap[V any](m map[string]V, extra int) map[string]V {
	out := make(map[string]V, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}
