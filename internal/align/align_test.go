package align

import (
	"errors"
	"testing"

	"hive/internal/graph"
)

func layerFromEdges(name string, trust float64, edges [][2]string) *Layer {
	g := graph.New()
	for _, e := range edges {
		a := g.EnsureNode(e[0], "concept")
		b := g.EnsureNode(e[1], "concept")
		_ = g.AddUndirected(a, b, "related", 1)
	}
	return &Layer{Name: name, Trust: trust, G: g}
}

func TestLexicalSimilarity(t *testing.T) {
	if s := LexicalSimilarity("graph processing", "graph processing"); s != 1 {
		t.Fatalf("identical = %v", s)
	}
	if s := LexicalSimilarity("graph processing", "processing of graphs"); s < 0.6 {
		t.Fatalf("reordered/inflected = %v, want high", s)
	}
	if s := LexicalSimilarity("tensor streams", "community detection"); s != 0 {
		t.Fatalf("unrelated = %v", s)
	}
	if s := LexicalSimilarity("", "x"); s != 0 {
		t.Fatalf("empty = %v", s)
	}
}

func TestAlignExactAndFuzzy(t *testing.T) {
	a := layerFromEdges("concepts", 1, [][2]string{
		{"graph processing", "partitioning"},
		{"partitioning", "communication"},
	})
	b := layerFromEdges("papers", 1, [][2]string{
		{"graph processing", "partitioning methods"},
		{"partitioning methods", "communication"},
	})
	maps := Align(a, b, Options{})
	got := map[string]string{}
	for _, m := range maps {
		got[m.A] = m.B
		if m.Score <= 0 || m.Score > 1 {
			t.Fatalf("score out of range: %+v", m)
		}
	}
	if got["graph processing"] != "graph processing" {
		t.Fatalf("exact match missing: %v", got)
	}
	if got["partitioning"] != "partitioning methods" {
		t.Fatalf("fuzzy match missing: %v", got)
	}
}

func TestAlignOneToOne(t *testing.T) {
	a := layerFromEdges("a", 1, [][2]string{{"graph", "x"}})
	b := layerFromEdges("b", 1, [][2]string{{"graph", "graphs"}})
	maps := Align(a, b, Options{})
	seenB := map[string]bool{}
	for _, m := range maps {
		if seenB[m.B] {
			t.Fatalf("B node matched twice: %v", maps)
		}
		seenB[m.B] = true
	}
	// "graph" in A must match exactly one of graph/graphs.
	count := 0
	for _, m := range maps {
		if m.A == "graph" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("A node matched %d times", count)
	}
}

func TestAlignStructuralBoost(t *testing.T) {
	// Two B candidates have equal lexical similarity to A's "sigmod";
	// only one shares neighbors. Structure must pick it.
	a := layerFromEdges("a", 1, [][2]string{
		{"sigmod conf", "databases"},
		{"sigmod conf", "indexing"},
	})
	bg := graph.New()
	right := bg.EnsureNode("sigmod venue", "concept")
	wrong := bg.EnsureNode("sigmod event", "concept")
	db := bg.EnsureNode("databases", "concept")
	ix := bg.EnsureNode("indexing", "concept")
	other := bg.EnsureNode("cooking", "concept")
	_ = bg.AddUndirected(right, db, "related", 1)
	_ = bg.AddUndirected(right, ix, "related", 1)
	_ = bg.AddUndirected(wrong, other, "related", 1)
	b := &Layer{Name: "b", G: bg}

	maps := Align(a, b, Options{MinLexical: 0.3, MinScore: 0.25})
	for _, m := range maps {
		if m.A == "sigmod conf" {
			if m.B != "sigmod venue" {
				t.Fatalf("structure ignored: matched %q", m.B)
			}
			return
		}
	}
	t.Fatal("sigmod not aligned at all")
}

func TestIntegrateEmpty(t *testing.T) {
	if _, err := Integrate(nil, Options{}); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("err = %v", err)
	}
}

func TestIntegrateMergesAlignedNodes(t *testing.T) {
	a := layerFromEdges("social", 1, [][2]string{{"alice", "bob"}})
	b := layerFromEdges("coauthor", 1, [][2]string{{"alice", "bob"}})
	in, err := Integrate([]*Layer{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.G.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want merged 2", in.G.NumNodes())
	}
	if in.Resolve("coauthor", "alice") != "alice" {
		t.Fatalf("Resolve = %q", in.Resolve("coauthor", "alice"))
	}
}

func TestIntegrateNoisyOrReinforcement(t *testing.T) {
	// The alice-bob edge exists in both layers; alice-carol in one. The
	// combined weight of the doubly-asserted edge must be strictly
	// higher.
	a := layerFromEdges("social", 0.8, [][2]string{{"alice", "bob"}, {"alice", "carol"}})
	b := layerFromEdges("coauthor", 0.8, [][2]string{{"alice", "bob"}})
	in, err := Integrate([]*Layer{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	al := in.G.Lookup("alice")
	bo := in.G.Lookup("bob")
	ca := in.G.Lookup("carol")
	eb, ok1 := in.G.EdgeBetween(al, bo, EdgeIntegrated)
	ec, ok2 := in.G.EdgeBetween(al, ca, EdgeIntegrated)
	if !ok1 || !ok2 {
		t.Fatalf("integrated edges missing: %v %v", ok1, ok2)
	}
	if eb.Weight <= ec.Weight {
		t.Fatalf("reinforcement failed: both=%v single=%v", eb.Weight, ec.Weight)
	}
	// Noisy-OR keeps weights in (0, 1].
	if eb.Weight > 1 || ec.Weight > 1 {
		t.Fatalf("weights exceed 1: %v %v", eb.Weight, ec.Weight)
	}
	// Per-layer edges are preserved alongside.
	if _, ok := in.G.EdgeBetween(al, bo, "layer/social/related"); !ok {
		t.Fatal("per-layer edge missing")
	}
}

func TestIntegrateTrustScalesContribution(t *testing.T) {
	hi := layerFromEdges("trusted", 1.0, [][2]string{{"x", "y"}})
	lo := layerFromEdges("noisy", 0.2, [][2]string{{"x", "z"}})
	in, err := Integrate([]*Layer{hi, lo}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := in.G.Lookup("x")
	ey, _ := in.G.EdgeBetween(x, in.G.Lookup("y"), EdgeIntegrated)
	ez, _ := in.G.EdgeBetween(x, in.G.Lookup("z"), EdgeIntegrated)
	if ey.Weight <= ez.Weight {
		t.Fatalf("trust ignored: trusted=%v noisy=%v", ey.Weight, ez.Weight)
	}
}

func TestIntegratePreservesUnalignedNodes(t *testing.T) {
	a := layerFromEdges("a", 1, [][2]string{{"alice", "bob"}})
	b := layerFromEdges("b", 1, [][2]string{{"tensor streams", "compressed sensing"}})
	in, err := Integrate([]*Layer{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.G.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 distinct", in.G.NumNodes())
	}
}

func TestAgree(t *testing.T) {
	a := layerFromEdges("a", 1, [][2]string{{"alice", "bob"}, {"alice", "carol"}})
	b := layerFromEdges("b", 1, [][2]string{{"alice", "bob"}, {"bob", "carol"}})
	in, err := Integrate([]*Layer{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ag := in.Agree([]*Layer{a, b}, "a", "b")
	// alice-bob (both directions) reinforced; alice-carol and bob-carol
	// conflict (both endpoints in both layers, edge in only one).
	if ag.Reinforced != 2 {
		t.Fatalf("Reinforced = %d, want 2 (directed)", ag.Reinforced)
	}
	if ag.Conflicting != 4 {
		t.Fatalf("Conflicting = %d, want 4 (directed)", ag.Conflicting)
	}
	// Unknown layer names yield zero.
	if got := in.Agree([]*Layer{a, b}, "a", "zzz"); got != (Agreement{}) {
		t.Fatalf("unknown layer agreement = %+v", got)
	}
}

func TestIntegratedString(t *testing.T) {
	a := layerFromEdges("a", 1, [][2]string{{"x", "y"}})
	in, _ := Integrate([]*Layer{a}, Options{})
	if in.String() == "" {
		t.Fatal("empty String")
	}
}
