// Package metrics is a stub of the process-wide registry: the closed
// name registry plus just enough of the instrument surface for the
// checker's receiver matching.
package metrics

const (
	HTTPRequestsTotal = "hive_http_requests_total"
	SearchSeconds     = "hive_search_seconds"
)

type Registry struct{}

var Default = &Registry{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return &Histogram{}
}
