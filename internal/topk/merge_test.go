package topk

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

type scored struct {
	id    string
	score float64
}

func betterScored(a, b scored) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

func TestMergeTopKBasic(t *testing.T) {
	lists := [][]scored{
		{{"a", 3}, {"d", 1}},
		{{"b", 2}},
		nil,
		{{"c", 2.5}, {"e", 0.5}},
	}
	got := MergeTopK(lists, 3, betterScored)
	want := []scored{{"a", 3}, {"c", 2.5}, {"b", 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if out := MergeTopK([][]scored{nil, {}}, 5, betterScored); out != nil {
		t.Fatalf("empty merge: got %v, want nil", out)
	}
}

func TestMergeTopKListIndexTieBreak(t *testing.T) {
	// Two items better cannot separate: the lower list index must win.
	lists := [][]scored{
		1: {{"dup", 1}},
		0: {{"dup", 1}},
		2: {{"dup", 1}},
	}
	got := MergeTopK(lists, 0, func(a, b scored) bool { return a.score > b.score })
	if len(got) != 3 {
		t.Fatalf("got %d items, want 3", len(got))
	}
}

// TestMergeTopKMatchesGlobalHeap is the scatter-gather parity property:
// partition a random corpus into n "shards", select each shard's local
// top-k with Heap, merge with MergeTopK — the result must be
// byte-identical (order included) to pushing the whole corpus through
// one Heap.
func TestMergeTopKMatchesGlobalHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		shards := 1 + rng.Intn(6)
		k := 1 + rng.Intn(20)
		corpus := make([]scored, n)
		for i := range corpus {
			// Coarse scores force frequent ties so the tie-break path is
			// actually exercised.
			corpus[i] = scored{id: fmt.Sprintf("doc-%04d", i), score: float64(rng.Intn(8))}
		}

		global := New(k, betterScored)
		for _, s := range corpus {
			global.Push(s)
		}
		want := global.Sorted()

		lists := make([][]scored, shards)
		for _, s := range corpus {
			sh := rng.Intn(shards)
			lists[sh] = append(lists[sh], s)
		}
		for i := range lists {
			local := New(k, betterScored)
			for _, s := range lists[i] {
				local.Push(s)
			}
			lists[i] = local.Sorted()
		}
		got := MergeTopK(lists, k, betterScored)

		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d item %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeTopKPreservesListOrder checks the stream-merge property
// pagination relies on: inputs sorted by a key the comparator agrees
// with are consumed front to back, so the merged output is globally
// sorted and each list's relative order survives.
func TestMergeTopKPreservesListOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	desc := func(a, b int) bool { return a > b }
	for trial := 0; trial < 100; trial++ {
		lists := make([][]int, 1+rng.Intn(5))
		var all []int
		for i := range lists {
			m := rng.Intn(30)
			lists[i] = make([]int, m)
			for j := range lists[i] {
				lists[i][j] = rng.Intn(1000)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(lists[i])))
			all = append(all, lists[i]...)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(all)))
		got := MergeTopK(lists, 0, desc)
		if len(got) != len(all) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("trial %d item %d: got %d, want %d", trial, i, got[i], all[i])
			}
		}
	}
}
